"""An I/O-heavy pipeline: disk -> shared memory -> kernel -> disk.

The Section 4.4 story: `read()` lands file data *directly* in a shared
object (GMAC's interposition performs it in block-sized chunks, giving the
illusion of peer DMA), the kernel reconstructs, and `write()` streams the
result out of accelerator-hosted memory.  The per-category break-down at
the end is a miniature Figure 10.

Run:  python examples/mri_pipeline.py
"""

import numpy as np

from repro import reference_system, Application
from repro.util.tables import render_table
from repro.workloads.parboil.mrifhd import FHD_KERNEL
from repro.workloads.parboil.mri_common import fhd_reference, make_samples, make_voxels


def main():
    machine = reference_system()
    app = Application(machine)
    gmac = app.gmac(protocol="rolling", layer="driver")

    n_samples, n_voxels = 16384, 128
    rng = np.random.default_rng(1)
    samples = make_samples(rng, n_samples)
    voxels = make_voxels(rng, n_voxels)
    app.fs.create("scan.dat", samples.tobytes())
    app.fs.create("grid.dat", voxels.tobytes())

    sample_buf = gmac.alloc(samples.nbytes, name="samples")
    voxel_buf = gmac.alloc(voxels.nbytes, name="voxels")
    r_out = gmac.alloc(4 * n_voxels, name="rFhD")
    i_out = gmac.alloc(4 * n_voxels, name="iFhD")

    # read() straight into accelerator-hosted shared memory.
    with app.fs.open("scan.dat") as handle:
        app.libc.read(handle, int(sample_buf), samples.nbytes)
    with app.fs.open("grid.dat") as handle:
        app.libc.read(handle, int(voxel_buf), voxels.nbytes)

    gmac.call(
        FHD_KERNEL,
        samples=sample_buf,
        voxels=voxel_buf,
        r_out=r_out,
        i_out=i_out,
        n_samples=n_samples,
        n_voxels=n_voxels,
    )
    gmac.sync()

    with app.fs.open("fhd.out", "w") as handle:
        app.libc.write(handle, int(r_out), 4 * n_voxels)

    r_ref, _ = fhd_reference(
        samples[:, :3], samples[:, 3], samples[:, 4], voxels
    )
    produced = np.frombuffer(app.fs.data_of("fhd.out"), dtype=np.float32)
    assert np.allclose(produced, r_ref, rtol=1e-4, atol=1e-5)
    print("FHd reconstruction written to fhd.out: OK\n")

    total = machine.accounting.total()
    rows = [
        [name, round(seconds * 1e3, 3), round(100 * seconds / total, 1)]
        for name, seconds in sorted(
            machine.accounting.breakdown().items(), key=lambda kv: -kv[1]
        )
        if seconds > 0
    ]
    print(render_table(
        ["category", "ms", "% of run"], rows,
        title="execution-time break-down (mini Figure 10)",
    ))


if __name__ == "__main__":
    main()
