"""Architecture independence: one program, two machines.

Section 3.1's first claimed benefit: a data-centric program targets both a
discrete-GPU system (Figure 1) and a low-cost system where CPU and
accelerator share physical memory — *without source changes*.  On the
integrated machine GMAC simply performs no copies.  The script also
demonstrates the Section 4.2 `adsmSafeAlloc` fallback for multi-accelerator
address collisions.

Run:  python examples/portable_machines.py
"""

import numpy as np

from repro import reference_system, integrated_system, Application, Kernel
from repro.util.errors import GmacError


def scale_fn(gpu, data, n, factor):
    gpu.view(data, "f4", n)[:] *= np.float32(factor)


SCALE = Kernel(
    "scale", scale_fn, cost=lambda data, n, factor: (n, 8 * n), writes=("data",)
)


def run_once(machine, label):
    app = Application(machine)
    gmac = app.gmac(protocol="rolling", layer="driver")
    n = 1 << 18
    data = gmac.alloc(4 * n, name="data")
    data.write_array(np.arange(n, dtype=np.float32))
    gmac.call(SCALE, data=data, n=n, factor=3.0)
    gmac.sync()
    assert np.allclose(
        data.read_array("f4", n), 3.0 * np.arange(n, dtype=np.float32)
    )
    moved = sum(machine.link.bytes_moved.values())
    print(f"{label:28s} OK   {moved:>9} bytes over the link, "
          f"{machine.clock.now * 1e3:6.2f} ms virtual")


def demonstrate_safe_alloc():
    machine = reference_system()
    app = Application(machine)
    gmac = app.gmac(protocol="rolling", layer="driver")
    probe = gmac.alloc(4096, name="probe")
    # Simulate another accelerator's allocation occupying the host range
    # the next cudaMalloc will return.
    app.process.address_space.mmap(8 * 4096, fixed_address=int(probe) + 8192)
    try:
        gmac.alloc(4 * 4096, name="doomed")
        raise AssertionError("collision should have been detected")
    except GmacError as exc:
        print("\nadsmAlloc:", exc)
    safe = gmac.safe_alloc(4 * 4096, name="recovered")
    print(f"adsmSafeAlloc: host pointer {int(safe):#x} "
          f"-> device pointer {gmac.safe(safe):#x} (adsmSafe translation)")


def main():
    run_once(reference_system(), "discrete GPU over PCIe")
    run_once(integrated_system(), "integrated shared memory")
    demonstrate_safe_alloc()


if __name__ == "__main__":
    main()
