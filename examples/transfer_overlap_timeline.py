"""Watching rolling-update overlap transfers with computation.

Section 4.3: "data is eagerly transferred from system memory to accelerator
memory while the CPU code continues producing the remaining accelerator
input data."  This walk-through produces a vector under rolling-update on a
*traced* machine and renders the execution timeline: eager Copy activity
interleaved with CPU production, the kernel starting once the H2D queue
drains, and the per-block read-back afterwards.

Run:  python examples/transfer_overlap_timeline.py
"""

import numpy as np

from repro import reference_system, Application
from repro.util.units import KB
from repro.sim.timeline import machine_timeline
from repro.workloads.vecadd import VECADD, CPU_STREAM_RATE


def main():
    machine = reference_system(trace=True)
    app = Application(machine)
    gmac = app.gmac(
        protocol="rolling",
        layer="driver",
        protocol_options={"block_size": 128 * KB, "rolling_size": 2},
    )
    elements = 512 * 1024
    nbytes = 4 * elements
    a = gmac.alloc(nbytes, name="a")
    b = gmac.alloc(nbytes, name="b")
    c = gmac.alloc(nbytes, name="c")

    rng = np.random.default_rng(3)
    for ptr in (a, b):
        values = rng.random(elements).astype(np.float32)
        raw = values.tobytes()
        for offset in range(0, nbytes, 32 * KB):
            machine.cpu.stream(32 * KB, CPU_STREAM_RATE, label="produce")
            ptr.write_bytes(raw[offset:offset + 32 * KB], offset=offset)

    gmac.call(VECADD, a=a, b=b, c=c, n=elements)
    gmac.sync()
    c.read_bytes(nbytes)  # fault the whole result back, block by block

    print(machine_timeline(
        machine, width=70,
        title="vecadd under rolling-update (eager eviction overlap)",
    ))
    print(f"\neager bytes pushed during production: "
          f"{gmac.manager.eager_bytes_to_accelerator >> 10} KB")
    print(f"page faults handled: {gmac.fault_count}")


if __name__ == "__main__":
    main()
