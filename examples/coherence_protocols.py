"""Comparing GMAC's three coherence protocols on an iterative solver.

The same Jacobi-style iteration runs under batch-, lazy- and rolling-update
(Figure 6 of the paper).  The CPU only samples a residual each step, so the
fault-driven protocols move almost nothing, while batch-update re-transfers
the whole state around every kernel call — the Figure 7 effect in ~60
lines.

Run:  python examples/coherence_protocols.py
"""

import numpy as np

from repro import reference_system, Application, Kernel
from repro.util.tables import render_table


def jacobi_fn(gpu, grid, scratch, residual, n):
    current = gpu.view(grid, "f4", n * n).reshape(n, n)
    nxt = gpu.view(scratch, "f4", n * n).reshape(n, n)
    nxt[:] = current
    nxt[1:-1, 1:-1] = 0.25 * (
        current[:-2, 1:-1] + current[2:, 1:-1]
        + current[1:-1, :-2] + current[1:-1, 2:]
    )
    gpu.view(residual, "f4", 1)[0] = np.abs(nxt - current).max()
    current[:] = nxt


JACOBI = Kernel(
    "jacobi",
    jacobi_fn,
    cost=lambda grid, scratch, residual, n: (6 * n * n, 12 * n * n),
    writes=("grid", "scratch", "residual"),
)


def run(protocol, n=512, steps=24):
    machine = reference_system()
    app = Application(machine)
    gmac = app.gmac(protocol=protocol, layer="driver")
    grid = gmac.alloc(4 * n * n, name="grid")
    scratch = gmac.alloc(4 * n * n, name="scratch")
    residual = gmac.alloc(4, name="residual")

    rng = np.random.default_rng(42)
    grid.write_array(rng.random((n, n)).astype(np.float32))
    residuals = []
    for _ in range(steps):
        gmac.call(JACOBI, grid=grid, scratch=scratch, residual=residual, n=n)
        gmac.sync()
        residuals.append(float(residual.read_array("f4", 1)[0]))

    assert residuals == sorted(residuals, reverse=True), "diverging Jacobi?"
    return {
        "protocol": protocol,
        "time_ms": machine.clock.now * 1e3,
        "h2d_mb": gmac.bytes_to_accelerator / 2**20,
        "d2h_mb": gmac.bytes_to_host / 2**20,
        "faults": gmac.fault_count,
        "final_residual": residuals[-1],
    }


def main():
    rows = []
    for protocol in ("batch", "lazy", "rolling"):
        stats = run(protocol)
        rows.append(
            [
                stats["protocol"],
                round(stats["time_ms"], 2),
                round(stats["h2d_mb"], 2),
                round(stats["d2h_mb"], 2),
                stats["faults"],
                round(stats["final_residual"], 6),
            ]
        )
    print(render_table(
        ["protocol", "time ms", "H2D MB", "D2H MB", "faults", "residual"],
        rows,
        title="Jacobi iteration under GMAC's coherence protocols",
    ))
    print("\nbatch-update moves the whole state twice per kernel call;")
    print("lazy/rolling move only the 4-byte residual the CPU actually reads.")


if __name__ == "__main__":
    main()
