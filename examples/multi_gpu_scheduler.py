"""Scheduling kernels across several accelerators.

The Figure 5 kernel scheduler "selects the most appropriate accelerator for
execution of a given kernel".  This walk-through launches a batch of
independent kernels on a 3-GPU machine under each policy and reports the
completion time and per-GPU launch distribution.

Run:  python examples/multi_gpu_scheduler.py
"""

from repro import Kernel
from repro.hw.machine import reference_system
from repro.workloads.base import Application
from repro.core.scheduler import KernelScheduler, POLICIES
from repro.util.tables import render_table


def _work(gpu, units):
    pass  # timing-only kernel: the cost model does the talking


WORK = Kernel("work", _work, cost=lambda units: (units, 0))


def run(policy_name, launches=12):
    machine = reference_system(gpu_count=3)
    app = Application(machine)
    scheduler = KernelScheduler(machine, app.process, policy=policy_name)
    for index in range(launches):
        # A mix of long and short kernels, like a real job stream.
        units = 400_000_000 if index % 3 == 0 else 80_000_000
        scheduler.launch(WORK, {"units": units})
    scheduler.synchronize()
    return machine.clock.now, scheduler.launch_counts


def main():
    rows = []
    for policy_name in sorted(POLICIES):
        elapsed, counts = run(policy_name)
        rows.append([policy_name, round(elapsed * 1e3, 3), str(counts)])
    print(render_table(
        ["policy", "makespan ms", "launches per GPU"],
        rows,
        title="12 mixed kernels on a 3-GPU machine",
    ))
    print("\nleast-loaded and predictive pack the queues evenly; "
          "round-robin ignores kernel length.")


if __name__ == "__main__":
    main()
