"""Quickstart: one shared pointer, zero explicit transfers.

The ADSM programming model in a nutshell (Figure 4 of the paper): allocate
a data object once with ``adsmAlloc``, touch it with plain CPU loads and
stores, hand the *same pointer* to an accelerator kernel with ``adsmCall``,
wait with ``adsmSync`` and keep using it from the CPU.  GMAC's coherence
protocol moves the bytes behind the scenes.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import reference_system, Application, Kernel
from repro.util.units import format_time


def saxpy_fn(gpu, x, y, n, alpha):
    vx = gpu.view(x, "f4", n)
    vy = gpu.view(y, "f4", n)
    vy += np.float32(alpha) * vx


SAXPY = Kernel(
    "saxpy",
    saxpy_fn,
    cost=lambda x, y, n, alpha: (2 * n, 12 * n),
    writes=("y",),
)


def main():
    machine = reference_system()
    app = Application(machine)
    gmac = app.gmac(protocol="rolling")

    n = 1 << 20
    x = gmac.adsmAlloc(4 * n)       # one pointer, valid on CPU *and* GPU
    y = gmac.adsmAlloc(4 * n)

    # Plain CPU stores -- no cudaMemcpy anywhere in this program.
    x.write_array(np.arange(n, dtype=np.float32))
    y.write_array(np.ones(n, dtype=np.float32))

    gmac.adsmCall(SAXPY, x=x, y=y, n=n, alpha=2.0)   # release objects
    gmac.adsmSync()                                  # re-acquire them

    # Plain CPU loads; the protocol faults the result back on demand.
    result = y.read_array("f4", n)
    expected = 2.0 * np.arange(n, dtype=np.float32) + 1.0
    assert np.allclose(result, expected), "saxpy result mismatch"

    print("saxpy over", n, "elements: OK")
    print("virtual execution time:", format_time(machine.clock.now))
    print("bytes moved host->accelerator:", gmac.bytes_to_accelerator)
    print("bytes moved accelerator->host:", gmac.bytes_to_host)
    print("page faults handled by GMAC:", gmac.fault_count)
    gmac.shutdown()


if __name__ == "__main__":
    main()
