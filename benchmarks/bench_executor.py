"""The executor engine itself: serial vs persistent-pool quick-sweep timing.

Times the same quick figure sweep from cold private caches — once inline,
once over the persistent worker-pool engine — verifies the parallel
outcomes are **byte-identical** to the serial ones (canonical form; see
:meth:`~repro.experiments.spec.SpecOutcome.canonical_bytes`), re-primes
the warm cache to prove the cache-aware dispatch executes nothing and
spawns nobody, and records both timings plus the engine's per-spec
dispatch-overhead counters in ``results/BENCH_sweep.json``.

The speedup gate is core-count-aware: parallel wall-clock on a
single-core runner is honestly ~1x (the engine still wins on dispatch
shape, not physics), so the assertion arms only when the runner can
actually parallelize — opt in or tune via ``REPRO_SWEEP_MIN_SPEEDUP``
(CI sets 1.5 on its multi-core runners).  The artifact always records
the measured value and which gate (if any) applied.
"""

import json
import os
import pathlib
import time

from repro.experiments import common
from repro.experiments.cache import ResultCache
from repro.experiments.executor import ExperimentExecutor, expand
from repro.experiments.result import environment_stamp

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Every experiment with a spec hook: the full sweep the engine dedups.
SWEEP = ["fig7", "fig8", "fig9", "fig10", "fig11", "fig12"]


def _timed_sweep(jobs, cache_dir, pool):
    """Prime the whole sweep from scratch; returns (wall s, stats, counters)."""
    common.clear_cache()
    executor = ExperimentExecutor(jobs=jobs, cache_dir=cache_dir, pool=pool)
    specs = expand(SWEEP, quick=True)
    start = time.perf_counter()  # sanitizer: allow[R003] - real wall time
    try:
        with executor.cache_context():
            executor.prime(specs)
    finally:
        elapsed = time.perf_counter() - start  # sanitizer: allow[R003]
        executor.close()
    common.clear_cache()
    return elapsed, executor.stats, executor.counters.snapshot()


def _speedup_gate():
    """The minimum serial/parallel ratio to assert, or None (record only).

    ``REPRO_SWEEP_MIN_SPEEDUP`` wins when set (CI pins 1.5); otherwise a
    multi-core runner defaults to a conservative 1.2 and a single-core
    runner records without asserting — demanding parallel speedup from
    one core would gate on noise.
    """
    override = os.environ.get("REPRO_SWEEP_MIN_SPEEDUP")
    if override:
        return float(override)
    cores = os.cpu_count() or 1
    return 1.2 if cores >= 2 else None


def test_sweep_serial_vs_persistent(tmp_path, request):
    jobs = max(4, request.config.getoption("--jobs"))
    serial_s, serial_stats, _ = _timed_sweep(1, tmp_path / "serial", "serial")
    parallel_s, parallel_stats, counters = _timed_sweep(
        jobs, tmp_path / "parallel", "persistent"
    )

    # Both sweeps ran everything (cold caches) over the same spec list.
    assert serial_stats["executed"] == serial_stats["expanded"] > 0
    assert parallel_stats == serial_stats

    # Worker scheduling must not leak into results: every parallel outcome
    # is byte-identical (canonical form) to its serial counterpart.
    serial_cache = ResultCache(tmp_path / "serial")
    parallel_cache = ResultCache(tmp_path / "parallel")
    for spec in expand(SWEEP, quick=True):
        ours = parallel_cache.get(spec)
        theirs = serial_cache.get(spec)
        assert ours is not None and theirs is not None
        assert ours == theirs
        assert ours.canonical_bytes() == theirs.canonical_bytes()

    # Warm re-prime: the cache-aware dispatch short-circuits everything in
    # the parent — zero executions, zero workers.
    warm = ExperimentExecutor(
        jobs=jobs, cache_dir=tmp_path / "parallel", pool="persistent"
    )
    try:
        with warm.cache_context():
            warm.prime(expand(SWEEP, quick=True))
    finally:
        warm.close()
    assert warm.stats["executed"] == 0
    assert warm.stats["reused"] == warm.stats["expanded"]
    assert warm.counters.get("workers_spawned") == 0
    assert warm.counters.get("warm_hits") == warm.stats["expanded"]

    speedup = round(serial_s / parallel_s, 3) if parallel_s else None
    gate = _speedup_gate()

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "sweep": SWEEP,
        "quick": True,
        "specs": serial_stats["expanded"],
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": speedup,
        "speedup_gate": gate,
        "pool_counters": counters,
        "dispatch_overhead_us_per_spec": (
            round(counters["dispatch_overhead_us"]
                  / counters["specs_dispatched"], 1)
            if counters.get("specs_dispatched") else None
        ),
        "environment": environment_stamp(),
    }
    (RESULTS_DIR / "BENCH_sweep.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # Engine sanity regardless of core count: every spec travelled the
    # shared-memory plane exactly once, nothing crashed, nothing stale.
    assert counters.get("specs_dispatched") == serial_stats["expanded"]
    assert (counters.get("plane_payloads", 0)
            + counters.get("plane_inline_fallbacks", 0)
            ) == serial_stats["expanded"]
    assert counters.get("worker_respawns", 0) == 0

    if gate is not None:
        assert speedup is not None and speedup >= gate, (
            f"persistent pool speedup {speedup}x below gate {gate}x "
            f"(serial {serial_s:.2f}s, parallel {parallel_s:.2f}s, "
            f"jobs={jobs}, cores={os.cpu_count()})"
        )
