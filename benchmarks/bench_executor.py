"""The executor engine itself: serial vs parallel quick-sweep wall-clock.

Times the same quick figure sweep twice — once inline, once over the
worker pool — from cold private caches, verifies the parallel outcomes
are identical to the serial ones, and records both timings in
``results/BENCH_sweep.json`` for regression tracking.  The speedup value
is informational: it depends on the runner's core count (CI pins
``--jobs 2`` on a multi-core runner; a single-core box will show ~1x).
"""

import json
import os
import pathlib
import time

from repro.experiments import common
from repro.experiments.cache import ResultCache
from repro.experiments.executor import ExperimentExecutor, expand

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Every experiment with a spec hook: the full sweep the engine dedups.
SWEEP = ["fig7", "fig8", "fig9", "fig10", "fig11", "fig12"]


def _timed_sweep(jobs, cache_dir):
    """Prime the whole sweep from scratch; returns (wall seconds, stats)."""
    common.clear_cache()
    executor = ExperimentExecutor(jobs=jobs, cache_dir=cache_dir)
    specs = expand(SWEEP, quick=True)
    start = time.perf_counter()
    with executor.cache_context():
        executor.prime(specs)
    elapsed = time.perf_counter() - start
    common.clear_cache()
    return elapsed, executor.stats


def test_sweep_serial_vs_parallel(tmp_path, request):
    jobs = max(2, request.config.getoption("--jobs"))
    serial_s, serial_stats = _timed_sweep(1, tmp_path / "serial")
    parallel_s, parallel_stats = _timed_sweep(jobs, tmp_path / "parallel")

    # Both sweeps ran everything (cold caches) over the same spec list.
    assert serial_stats["executed"] == serial_stats["expanded"] > 0
    assert parallel_stats == serial_stats

    # Worker scheduling must not leak into results: every parallel outcome
    # equals its serial counterpart.
    serial_cache = ResultCache(tmp_path / "serial")
    parallel_cache = ResultCache(tmp_path / "parallel")
    for spec in expand(SWEEP, quick=True):
        ours = parallel_cache.get(spec)
        theirs = serial_cache.get(spec)
        assert ours is not None and theirs is not None
        assert ours.elapsed == theirs.elapsed
        assert ours.breakdown == theirs.breakdown
        assert ours.bytes_to_accelerator == theirs.bytes_to_accelerator
        assert ours.bytes_to_host == theirs.bytes_to_host
        assert ours.faults == theirs.faults

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "sweep": SWEEP,
        "quick": True,
        "specs": serial_stats["expanded"],
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
    }
    (RESULTS_DIR / "BENCH_sweep.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
