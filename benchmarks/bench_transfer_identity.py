"""Transfer-ledger byte-identity gate: lazy vs eager quick sweep.

The ledger's whole contract is that it changes *when* bytes move, never
*what* bytes are observed (DESIGN.md §14).  This gate runs the serial
quick figure sweep twice in fresh interpreters — once with the default
lazy engine and once with ``REPRO_EAGER_TRANSFERS=1`` — hashes every
``SpecOutcome.canonical_bytes()`` in both, and fails on the first
divergent spec.  It also fails if the lazy sweep's measured
``elided_fraction`` drops below a floor: an engine that stops eliding is
paying the ledger's bookkeeping for nothing, which is its own
regression even while outputs stay identical.

Run directly (``python benchmarks/bench_transfer_identity.py``) or via
pytest; writes ``BENCH_transfer_identity.json`` at the repo root.
"""

import json
import os
import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_PATH = ROOT / "BENCH_transfer_identity.json"

#: The sweep's measured elided fraction sits around 0.5 (batch rounds
#: elide nearly everything, lazy/rolling rounds legitimately almost
#: nothing); the floor trips if a change quietly stops the elision.
ELIDED_FLOOR = 0.25

_CHILD = r"""
import hashlib, json
from repro.experiments.executor import expand
from repro.hw.memory import ledger_counters, reset_ledger_counters

reset_ledger_counters()
specs = expand(["fig7", "fig8", "fig9", "fig10", "fig11", "fig12"],
               quick=True)
digests = {}
for spec in specs:
    outcome = spec.execute()
    digests[repr(spec.key)] = hashlib.sha256(
        outcome.canonical_bytes()
    ).hexdigest()
print(json.dumps({"digests": digests, "ledger": ledger_counters()}))
"""


def _run_sweep(eager):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    env["REPRO_EAGER_TRANSFERS"] = "1" if eager else "0"
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD],
        capture_output=True, text=True, check=True, env=env,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def run_benchmark(output_path=OUTPUT_PATH):
    lazy = _run_sweep(eager=False)
    eager = _run_sweep(eager=True)
    divergent = sorted(
        key for key in lazy["digests"]
        if eager["digests"].get(key) != lazy["digests"][key]
    )
    report = {
        "spec_count": len(lazy["digests"]),
        "divergent_specs": divergent,
        "identical": not divergent,
        "lazy_ledger": lazy["ledger"],
        "eager_ledger": eager["ledger"],
        "elided_fraction": lazy["ledger"]["elided_fraction"],
        "elided_floor": ELIDED_FLOOR,
        "elision_ok": lazy["ledger"]["elided_fraction"] >= ELIDED_FLOOR,
    }
    output_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def test_lazy_and_eager_sweeps_are_byte_identical():
    report = run_benchmark()
    assert report["identical"], (
        f"{len(report['divergent_specs'])} spec(s) diverge between lazy "
        f"and eager transfer engines: {report['divergent_specs'][:5]}"
    )
    assert report["elision_ok"], (
        f"lazy sweep elided_fraction {report['elided_fraction']:.3f} fell "
        f"below the {ELIDED_FLOOR} floor: the ledger has stopped eliding"
    )
    # The eager sweep must be genuinely eager (no ledger activity at all).
    assert report["eager_ledger"]["bytes_deferred"] == 0


def main():
    report = run_benchmark()
    print(json.dumps(report, indent=2, sort_keys=True))
    if not report["identical"]:
        print("DIVERGENCE between lazy and eager sweeps", file=sys.stderr)
        return 1
    if not report["elision_ok"]:
        print(
            f"elided_fraction {report['elided_fraction']:.3f} below the "
            f"{ELIDED_FLOOR} floor",
            file=sys.stderr,
        )
        return 1
    print(
        f"{report['spec_count']} specs byte-identical; "
        f"elided_fraction {report['elided_fraction']:.3f}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
