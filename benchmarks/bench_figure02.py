"""Figure 2 — NPB bandwidth requirements vs interconnect capacity."""

import pytest


def test_figure02(regenerate):
    result = regenerate("fig2")
    rows = result.row_map("benchmark")
    pcie = result.headers.index("maxIPC:PCIe 2.0 x16")
    # The paper's break-points: PCIe caps bt at IPC~50 and ua at IPC~5.
    assert rows["bt"][pcie] == pytest.approx(50, rel=0.2)
    assert rows["ua"][pcie] == pytest.approx(5, rel=0.2)
