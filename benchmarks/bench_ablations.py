"""Design-choice ablations (annotation, integrated, safe-alloc, adaptive)."""


def test_ablations(regenerate):
    result = regenerate("ablations")
    assert all(row[-1] == "yes" for row in result.rows)
