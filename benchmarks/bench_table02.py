"""Table 2 — the Parboil suite inventory."""


def test_table02(regenerate):
    result = regenerate("tab2")
    assert {row[0] for row in result.rows} == {
        "cp", "mri-fhd", "mri-q", "pns", "rpes", "sad", "tpacf",
    }
