"""Figure 9 — 3D-Stencil across volume and block sizes."""


def test_figure09(regenerate):
    result = regenerate("fig9")
    assert all(row[-1] == "yes" for row in result.rows)
    lazy = result.headers.index("lazy ms")
    tiny = result.headers.index("rolling 4KB ms")
    mid = result.headers.index("rolling 256KB ms")
    huge = result.headers.index("rolling 32MB ms")
    largest = result.rows[-1]
    # Paper: rolling (moderate blocks) beats lazy increasingly with volume;
    # 4KB pays fault/latency overheads; 32MB behaves like whole-object.
    assert largest[mid] < largest[lazy]
    assert largest[tiny] > largest[mid]
    assert largest[huge] >= largest[mid]
    gain_small = result.rows[0][lazy] - result.rows[0][mid]
    gain_large = largest[lazy] - largest[mid]
    assert gain_large > gain_small
