"""Figure 7 — GMAC slow-down vs CUDA (full-size Parboil runs)."""


def test_figure07(regenerate):
    result = regenerate("fig7")
    rows = result.row_map("benchmark")
    batch = result.headers.index("batch slow-down")
    lazy = result.headers.index("lazy slow-down")
    rolling = result.headers.index("rolling slow-down")
    assert all(row[-1] == "yes" for row in result.rows)
    # Paper: batch up to 65.18x on pns and 18.61x on rpes.
    assert rows["pns"][batch] > 20
    assert rows["rpes"][batch] > 8
    # Paper: lazy and rolling achieve performance equal to CUDA.
    for row in result.rows:
        assert row[lazy] < 1.3
        assert row[rolling] < 1.3
