"""Figure 12 — tpacf under fixed rolling sizes 1/2/4."""


def test_figure12(regenerate):
    result = regenerate("fig12")
    assert all(row[-1] == "yes" for row in result.rows)
    col1 = result.headers.index("tpacf-1 ms")
    col2 = result.headers.index("tpacf-2 ms")
    col4 = result.headers.index("tpacf-4 ms")
    by_block = {row[0]: row for row in result.rows}
    # Small blocks + small rolling size: continuous re-transfer.
    assert by_block["128KB"][col1] > by_block["4MB"][col1]
    # The critical block size scales as ~TILE/R: rolling 2 recovers at half
    # the block size rolling 1 needs.
    assert by_block["512KB"][col2] < by_block["512KB"][col1] * 1.02
    # Rolling size 4 is the flattest of the three.
    spreads = {}
    for label, column in (("1", col1), ("2", col2), ("4", col4)):
        values = [row[column] for row in result.rows]
        spreads[label] = max(values) / min(values)
    assert spreads["4"] <= spreads["1"]
