"""Figure 8 — transferred data normalized to batch-update."""


def test_figure08(regenerate):
    result = regenerate("fig8")
    rows = result.row_map("benchmark")
    # Iterative benchmarks: fault-driven protocols move tiny fractions.
    for name in ("pns", "rpes"):
        assert rows[name][1] < 0.1 and rows[name][3] < 0.1
    # Paper: rolling's fine grain avoids transfers on mri-q.
    lazy_d2h = result.headers.index("lazy d2h/batch")
    rolling_d2h = result.headers.index("rolling d2h/batch")
    assert rows["mri-q"][rolling_d2h] < rows["mri-q"][lazy_d2h]
