"""Figure 11 — vecadd transfer times and bandwidth vs block size."""


def test_figure11(regenerate):
    result = regenerate("fig11")
    assert all(row[-1] == "yes" for row in result.rows)
    h2d_bw = result.headers.index("H2D GB/s")
    cpu_to_gpu = result.headers.index("CPU-to-GPU ms")
    gpu_to_cpu = result.headers.index("GPU-to-CPU ms")
    bandwidths = [row[h2d_bw] for row in result.rows]
    uploads = [row[cpu_to_gpu] for row in result.rows]
    downloads = [row[gpu_to_cpu] for row in result.rows]
    # Paper: bandwidth rises monotonically, maximal at 32MB.
    assert bandwidths == sorted(bandwidths)
    # Paper: small blocks pay fault+latency overheads...
    assert uploads[0] == max(uploads)
    assert downloads == sorted(downloads, reverse=True)
    # ...and the anomaly: some mid-size block beats every larger size
    # (eager eviction overlap), so CPU-to-GPU time is non-monotonic.
    best = uploads.index(min(uploads))
    assert 0 < best < len(uploads) - 1
    assert min(uploads) < uploads[-1]
