"""Benchmark harness plumbing.

Each bench module regenerates one paper table/figure through the experiment
registry, times it with pytest-benchmark (one round — these are simulation
campaigns, not microseconds-scale functions), verifies the paper-shape
assertions, and writes the rendered table to ``results/<id>.txt`` so the
regenerated artifact is inspectable after the run.
"""

import pathlib

import pytest

from repro.experiments.executor import ExperimentExecutor

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    group = parser.getgroup("repro", "experiment sweep execution")
    # When benchmarks/ is collected alongside tests/ (e.g. ``pytest .``),
    # this conftest is not an initial one: another plugin may already have
    # added the options, or option registration may be closed entirely.
    # Either way the benches must still collect and run with defaults.
    try:
        group.addoption(
            "--jobs", type=int, default=1,
            help="worker processes for experiment sweeps (default: serial)",
        )
        group.addoption(
            "--no-cache", action="store_true",
            help="ignore the persistent result cache under results/cache/",
        )
        group.addoption(
            "--pool", choices=("persistent", "fork", "serial"),
            default="persistent",
            help=(
                "sweep engine shape (engine configuration only; results "
                "are byte-identical across shapes)"
            ),
        )
        group.addoption(
            "--sanitize", action="store_true",
            help=(
                "arm the coherence model checker and kernel-window race "
                "detector on every GMAC workload execution (disables the "
                "result cache: checked results must come from checked runs)"
            ),
        )
    except ValueError:
        pass


@pytest.fixture(scope="session", autouse=True)
def _sanitize_mode(request):
    from repro import analysis

    if not _option(request.config, "--sanitize", False):
        yield
        return
    analysis.enable()
    yield
    analysis.disable()


def _option(config, name, default):
    """getoption with a fallback for runs where registration was skipped."""
    try:
        return config.getoption(name)
    except ValueError:
        return default


@pytest.fixture
def executor(request):
    """The sweep executor configured from the --jobs/--pool/--no-cache options."""
    instance = ExperimentExecutor(
        jobs=_option(request.config, "--jobs", 1),
        use_cache=not (
            _option(request.config, "--no-cache", False)
            or _option(request.config, "--sanitize", False)
        ),
        pool=_option(request.config, "--pool", "persistent"),
    )
    yield instance
    instance.close()


@pytest.fixture
def regenerate(benchmark, executor):
    """Run one experiment under the benchmark timer and persist its table."""

    def run(experiment_id, quick=False):
        result = benchmark.pedantic(
            executor.run,
            args=(experiment_id,),
            kwargs={"quick": quick},
            rounds=1,
            iterations=1,
        )
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{experiment_id}.txt").write_text(
            result.render() + "\n"
        )
        (RESULTS_DIR / f"{experiment_id}.json").write_text(result.to_json())
        return result

    return run
