"""Hot-path engine benchmark: cold, serial quick-sweep wall clock.

Measures what the flat block-state engine is for — the host-side cost of
simulating the full quick figure sweep (59 specs) — and writes
``BENCH_hotpath.json`` at the repo root:

* **cold runs**: each sweep executes in a fresh interpreter (cold process,
  cold memoization caches, no persistent result cache), serially, exactly
  as the acceptance methodology prescribes;
* **calibration**: a fixed numpy+interpreter workload timed in the same
  child process.  Wall-clock on shared machines drifts by 2x within
  minutes, so regression checks compare the *normalized* metric
  ``sweep_s / calibration_s`` against ``hotpath_baseline.json`` (recorded
  on the pre-PR engine) rather than raw seconds;
* **throughput counters**: one instrumented run's faults/s,
  block-transitions/s and host-seconds-per-virtual-second from
  :meth:`repro.sim.tracing.TimeAccounting.throughput`;
* **transfer-ledger counters**: the sweep's copy-elision totals —
  ``transfers_elided``, ``bytes_deferred``, ``bytes_materialized``,
  ``cow_snapshots``, ``elided_fraction`` and the flush delta split
  (``flush_bytes_copied`` / ``flush_bytes_skipped``) from
  :func:`repro.hw.memory.ledger_counters` — see DESIGN.md §14;
* **kernel-numerics counters**: the deferred-engine view of one
  launch-heavy run (pns at quick size) — ``kernel_rounds_per_host_s``
  (launches whose numerics executed, per host second) and
  ``batched_fraction`` (the share that executed through a
  ``batched_fn`` — see DESIGN.md §9);
* **retry-once gate**: a regressed comparison re-measures once before
  failing, cutting machine-variance flakes on shared CI runners.

Run directly (``python benchmarks/bench_hotpath.py``) or via pytest.
``--profile PATH`` instead runs one in-process sweep under cProfile and
writes the top-25 functions by internal time — the artifact CI uploads
so future PRs can see where the hot path moved.
"""

import json
import os
import pathlib
import statistics
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_PATH = pathlib.Path(__file__).resolve().parent / "hotpath_baseline.json"
OUTPUT_PATH = ROOT / "BENCH_hotpath.json"

#: Cold sweeps to run; the median smooths scheduler noise between children.
DEFAULT_RUNS = 3

#: CI fails when the normalized metric regresses by more than this factor.
REGRESSION_LIMIT = 1.25

#: Armed sanitizer (model checker + race detector) may at most double a
#: run's host cost; the checkers are per-event O(blocks) observers, so
#: anything past 2x means an accidental hot-path coupling.
SANITIZER_OVERHEAD_LIMIT = 2.0

#: A no-fault run on a multi-device machine may at most double the
#: single-device host cost: ownership is a bulk-filled column, dispatch
#: stays O(1), and the watchdog only arms under an installed fault plan,
#: so anything past 2x means the topology leaked into the hot path.
FAILOVER_OVERHEAD_LIMIT = 2.0

#: Executed in a fresh interpreter per cold run.  Calibration scales with
#: the same resources the simulator burns (numpy ufunc dispatch + Python
#: bytecode), so sweep/calibration is comparable across machines.
_CHILD = r"""
import json, sys, time
import numpy as np

# Keep freed simulation buffers resident in the malloc arena so repeat
# runs touch warm pages (the production entry points do the same; the
# baseline recording run reuses this child against engines predating it).
try:
    from repro.util.hostalloc import retain_arena
except ImportError:
    pass
else:
    retain_arena()


def calibrate_once():
    start = time.perf_counter()
    total = 0
    for i in range(2000):
        a = np.arange(4096, dtype=np.int64)
        total += int(((a * 3 + i) & 0x7FFF).sum())
    for i in range(1000000):
        total += i
    return time.perf_counter() - start


calibration_s = min(calibrate_once() for _ in range(3))

from repro.experiments.executor import expand

# Transfer-ledger counters over the whole sweep (engines predating the
# ledger — the baseline recording run reuses this child — omit the block).
try:
    from repro.hw.memory import ledger_counters, reset_ledger_counters
except ImportError:
    ledger_counters = None
else:
    reset_ledger_counters()

specs = expand(["fig7", "fig8", "fig9", "fig10", "fig11", "fig12"],
               quick=True)
start = time.perf_counter()
for spec in specs:
    spec.execute()
sweep_s = time.perf_counter() - start
transfer_ledger = ledger_counters() if ledger_counters is not None else None

from repro.workloads.vecadd import VectorAdd

# Steady-state sample: one warm-up run retires first-touch page faults and
# fills the input/reference memos, so the instrumented run measures the
# engine's per-event cost rather than one-time process warm-up.
VectorAdd().execute(mode="gmac", protocol="rolling")
result = VectorAdd().execute(mode="gmac", protocol="rolling")
accounting = result.extra["machine"].accounting
# Engines predating the throughput counters (the baseline recording run
# reuses this child against the pre-PR checkout) just omit the sample.
throughput = (
    accounting.throughput() if hasattr(accounting, "throughput") else None
)

# Sanitizer overhead: the same workload, unchecked vs with the coherence
# model checker + race detector armed.  Older engines (the baseline
# recording run reuses this child) predate the analysis package.
sanitizer_overhead = None
try:
    from repro import analysis
except ImportError:
    analysis = None
if analysis is not None:
    def sanitized_pair():
        start = time.perf_counter()
        VectorAdd(seed=11).execute(mode="gmac", protocol="rolling")
        unchecked = time.perf_counter() - start
        analysis.enable()
        try:
            start = time.perf_counter()
            VectorAdd(seed=11).execute(mode="gmac", protocol="rolling")
            checked = time.perf_counter() - start
        finally:
            analysis.disable()
        return unchecked, checked

    pairs = [sanitized_pair() for _ in range(3)]
    unchecked_s = min(pair[0] for pair in pairs)
    checked_s = min(pair[1] for pair in pairs)
    sanitizer_overhead = {
        "unchecked_s": unchecked_s,
        "checked_s": checked_s,
        "overhead_x": checked_s / unchecked_s,
    }

# Multi-device tax: the same workload, classic machine vs a 3-device one,
# no faults injected.  Older engines (the baseline recording run reuses
# this child) predate the multi-device topology and omit the sample.
failover_overhead = None
try:
    from repro.hw.machine import multi_device_system
except ImportError:
    multi_device_system = None
if multi_device_system is not None:
    def timed_vecadd(machine=None):
        start = time.perf_counter()
        VectorAdd(seed=13).execute(
            mode="gmac", protocol="rolling", machine=machine
        )
        return time.perf_counter() - start

    single_s = min(timed_vecadd() for _ in range(3))
    multi_s = min(
        timed_vecadd(multi_device_system(devices=3)) for _ in range(3)
    )
    failover_overhead = {
        "single_device_s": single_s,
        "multi_device_s": multi_s,
        "overhead_x": multi_s / single_s,
    }

from repro.util.units import MB
from repro.workloads.parboil import PARBOIL

pns = PARBOIL["pns"](n_places=(1 * MB) // 4, iterations=48, sample_interval=8)
start = time.perf_counter()
pns_result = pns.execute(mode="gmac", protocol="rolling")
pns_host_s = time.perf_counter() - start
gpu = pns_result.extra["machine"].gpu
# Engines predating the deferred-numerics counters omit the block too.
kernel_numerics = None
if hasattr(gpu, "numerics_rounds") and gpu.numerics_rounds:
    kernel_numerics = {
        "kernel_rounds_per_host_s": gpu.numerics_rounds / pns_host_s,
        "batched_fraction": gpu.batched_rounds / gpu.numerics_rounds,
        "numerics_rounds": gpu.numerics_rounds,
        "batched_rounds": gpu.batched_rounds,
        "numerics_flushes": gpu.numerics_flushes,
    }

print(json.dumps({
    "calibration_s": calibration_s,
    "sweep_s": sweep_s,
    "spec_count": len(specs),
    "throughput": throughput,
    "transfer_ledger": transfer_ledger,
    "kernel_numerics": kernel_numerics,
    "sanitizer_overhead": sanitizer_overhead,
    "failover_overhead": failover_overhead,
}))
"""


def environment_stamp():
    """Provenance stamp (see :func:`repro.experiments.result.environment_stamp`).

    The stamp itself lives with the experiment layer so every benchmark
    artifact (``BENCH_hotpath.json``, ``BENCH_sweep.json``) records the
    same configuration block.
    """
    sys.path.insert(0, str(ROOT / "src"))
    from repro.experiments.result import environment_stamp as stamp

    return stamp()


def run_cold_sweep(repo_root=ROOT):
    """One cold, serial quick sweep in a fresh interpreter."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(pathlib.Path(repo_root) / "src")
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD],
        capture_output=True,
        text=True,
        check=True,
        env=env,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _measure(runs):
    """One measurement round: ``runs`` cold sweeps compared to baseline."""
    samples = [run_cold_sweep() for _ in range(runs)]
    sweep_s = [s["sweep_s"] for s in samples]
    calibration_s = [s["calibration_s"] for s in samples]
    median_sweep = statistics.median(sweep_s)
    median_calibration = statistics.median(calibration_s)
    normalized = median_sweep / median_calibration

    baseline = json.loads(BASELINE_PATH.read_text())
    base_normalized = baseline["normalized"]
    return {
        "spec_count": samples[0]["spec_count"],
        "runs": runs,
        "sweep_s": sweep_s,
        "sweep_s_median": median_sweep,
        "calibration_s_median": median_calibration,
        "normalized": normalized,
        "baseline": baseline,
        "speedup_vs_baseline": base_normalized / normalized,
        "regression_limit": REGRESSION_LIMIT,
        "regressed": normalized > base_normalized * REGRESSION_LIMIT,
        "throughput": samples[-1]["throughput"],
        "transfer_ledger": samples[-1].get("transfer_ledger"),
        "kernel_numerics": samples[-1].get("kernel_numerics"),
        "sanitizer_overhead": samples[-1].get("sanitizer_overhead"),
        "sanitizer_overhead_limit": SANITIZER_OVERHEAD_LIMIT,
        "failover_overhead": samples[-1].get("failover_overhead"),
        "failover_overhead_limit": FAILOVER_OVERHEAD_LIMIT,
    }


def run_benchmark(runs=DEFAULT_RUNS, output_path=OUTPUT_PATH, retries=1):
    """Run the cold sweeps, compare against the baseline, write the JSON.

    A regressed comparison is re-measured up to ``retries`` times before
    it stands: one noisy neighbour on a shared runner should not fail
    the gate when a fresh round lands back inside the limit.
    """
    report = _measure(runs)
    attempts = 1
    while report["regressed"] and attempts <= retries:
        attempts += 1
        report = _measure(runs)
    report["attempts"] = attempts
    report["environment"] = environment_stamp()
    output_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def write_profile(path, top=25):
    """cProfile one in-process quick sweep; write the ``top`` hot functions.

    Complements the regression gate: the gate says *whether* the hot
    path moved, the uploaded profile says *where to*.
    """
    import cProfile
    import io
    import pstats

    sys.path.insert(0, str(ROOT / "src"))
    from repro.experiments.executor import expand

    specs = expand(["fig7", "fig8", "fig9", "fig10", "fig11", "fig12"],
                   quick=True)
    profiler = cProfile.Profile()
    profiler.enable()
    for spec in specs:
        spec.execute()
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("tottime").print_stats(top)
    path = profile_artifact_path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(buffer.getvalue())
    return path


def profile_artifact_path(path):
    """Stamp backend and scale into a profile artifact's filename.

    A numba-backend or paper-scale profile is a different hot path from
    the default; uploading them all as ``profile.txt`` made CI artifacts
    overwrite each other and left the configuration unrecoverable.
    """
    path = pathlib.Path(path)
    stamp = environment_stamp()
    tag = f"{stamp['backend']}-{stamp['scale']}"
    if tag in path.stem:
        return path
    suffix = path.suffix or ".txt"
    return path.with_name(f"{path.stem}-{tag}{suffix}")


def test_hotpath_cold_sweep_vs_baseline():
    """Cold-sweep regression gate: normalized cost within the CI limit."""
    report = run_benchmark()
    assert report["spec_count"] == 59
    assert not report["regressed"], (
        f"hot-path regression: normalized {report['normalized']:.2f} vs "
        f"baseline {report['baseline']['normalized']:.2f} "
        f"(limit {REGRESSION_LIMIT}x)"
    )
    overhead = report.get("sanitizer_overhead")
    if overhead is not None:
        assert overhead["overhead_x"] <= SANITIZER_OVERHEAD_LIMIT, (
            f"sanitizer overhead {overhead['overhead_x']:.2f}x exceeds the "
            f"{SANITIZER_OVERHEAD_LIMIT}x budget"
        )
    failover = report.get("failover_overhead")
    if failover is not None:
        assert failover["overhead_x"] <= FAILOVER_OVERHEAD_LIMIT, (
            f"no-fault multi-device overhead {failover['overhead_x']:.2f}x "
            f"exceeds the {FAILOVER_OVERHEAD_LIMIT}x budget"
        )


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "--profile":
        if len(argv) != 2:
            print("usage: bench_hotpath.py [--profile PATH]", file=sys.stderr)
            return 2
        written = write_profile(argv[1])
        print(f"wrote cProfile top-25 to {written}")
        return 0
    report = run_benchmark()
    print(json.dumps(report, indent=2, sort_keys=True))
    if report["regressed"]:
        print(
            f"REGRESSION: normalized {report['normalized']:.2f} exceeds "
            f"baseline {report['baseline']['normalized']:.2f} "
            f"by more than {REGRESSION_LIMIT}x",
            file=sys.stderr,
        )
        return 1
    print(
        f"hot-path speedup vs pre-PR baseline: "
        f"{report['speedup_vs_baseline']:.2f}x "
        f"(sweep median {report['sweep_s_median']:.3f}s over "
        f"{report['spec_count']} specs)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
