"""Section 5 porting effort + Section 2.2 motivation numbers."""

import pytest


def test_porting(regenerate):
    result = regenerate("porting")
    # Paper: porting only removes lines; every benchmark shrinks.
    assert all(row[-1] == "yes" for row in result.rows)


def test_motivation(regenerate):
    result = regenerate("motivation")
    for row in result.rows:
        assert row[-1] == pytest.approx(0.99, abs=0.02)
