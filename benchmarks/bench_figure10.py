"""Figure 10 — execution-time break-down under rolling-update."""

import pytest


def test_figure10(regenerate):
    result = regenerate("fig10")
    signal = result.headers.index("Signal%")
    ioread = result.headers.index("IORead%")
    rows = result.row_map("benchmark")
    for row in result.rows:
        assert sum(row[1:]) == pytest.approx(100.0, abs=0.5)
        # Paper: signal handling "always below 2% of the total".
        assert row[signal] < 2.5, (row[0], row[signal])
    # Paper: mri-fhd and mri-q have high levels of I/O read activity.
    assert rows["mri-fhd"][ioread] > 25
    assert rows["mri-q"][ioread] > 25
