"""Legacy shim so `pip install -e . --no-use-pep517` works without wheel.

The offline environment lacks the `wheel` package, which PEP 517 editable
installs require; this file lets pip fall back to `setup.py develop`.
Configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
