"""Fault ordering under the deferred-numerics engine.

Injected launch rejections and device losses must keep firing at
*enqueue* (launch) time — the instant `driver.launch` charges virtual
time — even though the numpy evaluation now waits in the GPU's numerics
queue.  A rejected launch must never reach the queue, and a device loss
must replay the queued work against the dying memory image before the
reset wipes it, so recovery observes exactly what an eager engine
would have left behind.
"""

import numpy as np
import pytest

from repro.util.errors import DeviceLostError, LaunchError
from repro.util.units import KB
from repro.faults import FaultPlan
from repro.hw.machine import reference_system
from repro.cuda.driver import DriverContext
from repro.cuda.kernels import Kernel
from repro.workloads.base import Application

PROTOCOLS = ("batch", "lazy", "rolling")

N = KB // 4


def _bump_fn(gpu, data, n, step):
    gpu.view(data, "f4", n)[:] += np.float32(1.0)


def _bump_batched(gpu, launches):
    first = launches[0]
    view = gpu.view(first["data"], "f4", first["n"])
    view += np.float32(len(launches))


#: Batchable no-input kernel: K deferred launches collapse to one += K.
BUMP = Kernel(
    "bump", _bump_fn,
    cost=lambda data, n, step: (n, 8 * n),
    writes=("data",),
    batched_fn=_bump_batched,
    batch_by=("step",),
)


class TestRejectionAtEnqueue:
    """Transient launch rejections: raised at launch, queue untouched."""

    def _queued_context(self, app):
        ctx = DriverContext(app.machine, app.process)
        dev = ctx.mem_alloc(KB)
        ctx.gpu.memory.view(dev, "f4", N)[:] = np.float32(1.0)
        for step in range(3):
            ctx.launch(BUMP, {"data": dev, "n": N, "step": step})
        assert ctx.gpu.pending_numerics == 3
        return ctx, dev

    def test_rejection_raised_at_launch_time_not_at_flush(self, app):
        ctx, dev = self._queued_context(app)
        app.machine.install_faults(FaultPlan(launch_fault_rate=1.0))
        before = app.machine.clock.now
        with pytest.raises(LaunchError) as excinfo:
            ctx.launch(BUMP, {"data": dev, "n": N, "step": 3})
        assert excinfo.value.timestamp >= before
        assert excinfo.value.timestamp == app.machine.clock.now

    def test_rejected_launch_never_reaches_the_queue(self, app):
        ctx, dev = self._queued_context(app)
        app.machine.install_faults(FaultPlan(launch_fault_rate=1.0))
        with pytest.raises(LaunchError):
            ctx.launch(BUMP, {"data": dev, "n": N, "step": 3})
        # The three earlier launches are still queued; the rejected one
        # added nothing, so materialising yields exactly +3.
        assert ctx.gpu.pending_numerics == 3
        values = ctx.gpu.memory.view(dev, "f4", N)  # barrier: flushes
        assert ctx.gpu.pending_numerics == 0
        assert np.all(values == np.float32(4.0))

    def test_device_loss_fires_at_launch_queue_intact_until_revive(self, app):
        ctx, dev = self._queued_context(app)
        app.machine.install_faults(FaultPlan(device_lost_at_launch=1))
        with pytest.raises(DeviceLostError):
            ctx.launch(BUMP, {"data": dev, "n": N, "step": 3})
        assert not ctx.alive
        # The loss fired at launch time: the failed launch enqueued
        # nothing, and the earlier queue is still pending.
        assert ctx.gpu.pending_numerics == 3
        # revive() resets the device: the queue is replayed against the
        # dying memory image first, then a fresh (zeroed) memory appears.
        ctx.revive()
        assert ctx.gpu.pending_numerics == 0
        ctx.restore_allocation(dev, KB)
        assert np.all(ctx.gpu.memory.view(dev, "f4", N) == np.float32(0.0))


class TestDeferredRecoveryPerProtocol:
    """Device loss mid-queue recovers to the eager engine's bytes."""

    def _run(self, protocol, defer):
        machine = reference_system(defer_numerics=defer)
        plan = FaultPlan(device_lost_at_launch=4)
        machine.install_faults(plan)
        app = Application(machine)
        gmac = app.gmac(protocol=protocol, layer="driver")
        ptr = gmac.alloc(KB, name="data")
        ptr.write_array(np.full(N, 2.0, dtype=np.float32))
        peak_queue = 0
        for step in range(6):
            gmac.call(BUMP, data=ptr, n=N, step=step)
            peak_queue = max(peak_queue, machine.gpu.pending_numerics)
        gmac.sync()
        values = ptr.read_array("f4", N).copy()
        return values, peak_queue, plan

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_recovery_matches_eager_engine(self, protocol):
        deferred, peak_queue, plan = self._run(protocol, defer=True)
        eager, eager_peak, eager_plan = self._run(protocol, defer=False)
        # The loss must hit a non-empty queue or the scenario is vacuous.
        assert peak_queue > 1
        assert eager_peak == 0
        assert plan.injected["cuda.launch"] == 1
        assert eager_plan.injected["cuda.launch"] == 1
        assert np.array_equal(deferred, eager)
        assert np.all(deferred == np.float32(8.0))
