"""Multi-device failover: re-homing, watchdog escalation, readmission.

The scenarios the ISSUE's acceptance criteria name: device loss at a
kernel launch fails the lost device's regions over onto survivors
(byte-identically, from host-canonical state); a wedged transfer trips
the watchdog's deadline and escalates to declare-device-lost after
salvaging device-only bytes; flapping devices readmit after quarantine
and the rebalancer migrates load back; and recovery exhaustion raises
the typed, pickle-safe :class:`RecoveryExhausted`.
"""

import pickle

import numpy as np
import pytest

from repro.util.errors import (
    RecoveryExhausted,
    RetryExhaustedError,
    TransferError,
)
from repro.util.units import KB, MB
from repro.faults import FaultPlan
from repro.hw.machine import multi_device_system
from repro.workloads.base import Application
from repro.core.recovery import RecoveryPolicy


@pytest.fixture
def multi_machine():
    return multi_device_system(devices=3)


@pytest.fixture
def multi_app(multi_machine):
    return Application(multi_machine)


@pytest.fixture
def multi_gmac_factory(multi_app):
    def build(protocol="rolling", **kwargs):
        kwargs.setdefault("layer", "driver")
        return multi_app.gmac(protocol=protocol, **kwargs)

    return build


def _device_bytes(gmac, region):
    context = gmac.layer.context_for(region.owner)
    return np.array(
        context.gpu.memory.view(region.device_start, "u1", region.mapped_size)
    )


class TestMultiDevicePlacement:
    def test_round_robin_spreads_ownership(self, multi_gmac_factory):
        gmac = multi_gmac_factory()
        ptrs = [gmac.alloc(256 * KB, name=f"r{i}") for i in range(3)]
        assert [ptr.region.owner for ptr in ptrs] == [0, 1, 2]

    def test_kernel_consolidates_regions_over_peer_dma(
            self, multi_gmac_factory, add_kernel):
        gmac = multi_gmac_factory()
        n = (256 * KB) // 4
        a = gmac.alloc(256 * KB, name="a")
        b = gmac.alloc(256 * KB, name="b")
        c = gmac.alloc(256 * KB, name="c")
        a.write_array(np.full(n, 2.0, dtype=np.float32))
        b.write_array(np.full(n, 3.0, dtype=np.float32))
        gmac.call(add_kernel, a=a, b=b, c=c, n=n)
        gmac.sync()
        owners = {ptr.region.owner for ptr in (a, b, c)}
        assert len(owners) == 1, "all operands co-located for the launch"
        assert gmac.manager.peer_bytes > 0
        assert np.allclose(c.read_array("f4", n), 5.0)


class TestDeviceLossFailover:
    def test_lost_regions_rehome_onto_survivors(
            self, multi_machine, multi_gmac_factory, add_kernel):
        multi_machine.install_faults(
            FaultPlan(seed=17, device_lost_at_launch=1)
        )
        gmac = multi_gmac_factory()
        n = (256 * KB) // 4
        a = gmac.alloc(256 * KB, name="a")
        b = gmac.alloc(256 * KB, name="b")
        c = gmac.alloc(256 * KB, name="c")
        a.write_array(np.full(n, 2.0, dtype=np.float32))
        b.write_array(np.full(n, 3.0, dtype=np.float32))
        gmac.call(add_kernel, a=a, b=b, c=c, n=n)
        gmac.sync()
        stats = gmac.recovery.stats
        assert stats["failovers"] == 1
        assert stats["device_recoveries"] == 1
        lost = next(iter(gmac.placement.dead))
        for ptr in (a, b, c):
            assert ptr.region.owner != lost
        assert np.allclose(c.read_array("f4", n), 5.0)

    def test_rematerialisation_is_byte_identical(
            self, multi_machine, multi_gmac_factory, scale_kernel):
        multi_machine.install_faults(
            FaultPlan(seed=17, device_lost_at_launch=1)
        )
        gmac = multi_gmac_factory()
        n = (512 * KB) // 4
        data = gmac.alloc(512 * KB, name="data")
        pattern = np.arange(n, dtype=np.float32)
        data.write_array(pattern)
        gmac.call(scale_kernel, data=data, n=n, factor=2.0)
        gmac.sync()
        # The survivor's device copy matches the oracle exactly: the
        # host checkpoint re-materialised every byte.
        got = _device_bytes(gmac, data.region)[:4 * n].view(np.float32)
        assert np.array_equal(got, pattern * np.float32(2.0))
        assert np.array_equal(data.read_array("f4", n),
                              pattern * np.float32(2.0))

    def test_single_device_machine_still_revives_in_place(
            self, app, gmac_factory, scale_kernel):
        app.machine.install_faults(
            FaultPlan(seed=17, device_lost_at_launch=1)
        )
        gmac = gmac_factory()
        data = gmac.alloc(256 * KB, name="data")
        n = (256 * KB) // 4
        data.write_array(np.ones(n, dtype=np.float32))
        gmac.call(scale_kernel, data=data, n=n, factor=3.0)
        gmac.sync()
        assert gmac.recovery.stats["device_recoveries"] == 1
        assert gmac.recovery.stats["failovers"] == 0
        assert np.allclose(data.read_array("f4", n), 3.0)


class TestWatchdogEscalation:
    def test_wedged_transfer_escalates_to_device_lost(
            self, multi_machine, multi_gmac_factory, scale_kernel):
        multi_machine.install_faults(
            FaultPlan(seed=17, transfer_burst=(1, 10))
        )
        # 4 ms: the cumulative backoff (20 us doubling) crosses it on the
        # ~8th failure — before retry exhaustion — while the burst's one
        # or two leftover faults retry cleanly under a fresh deadline
        # during the recovery flushes.
        gmac = multi_gmac_factory(
            protocol="lazy",
            recovery=RecoveryPolicy(transfer_deadline_s=4e-3),
        )
        data = gmac.alloc(1 * MB, name="data")
        n = (1 * MB) // 4
        data.write_array(np.ones(n, dtype=np.float32))
        gmac.call(scale_kernel, data=data, n=n, factor=2.0)
        gmac.sync()
        stats = gmac.recovery.stats
        trips = stats["watchdog_trips"]
        assert [t["action"] for t in trips] == ["declare-device-lost"]
        assert trips[0]["tripped_at"] >= trips[0]["expires_at"]
        assert stats["failovers"] == 1
        assert np.allclose(data.read_array("f4", n), 2.0)

    def test_salvage_pulls_device_only_blocks_home(
            self, multi_machine, multi_gmac_factory, scale_kernel):
        # Never fires: the plan only arms the recovery machinery.
        multi_machine.install_faults(
            FaultPlan(seed=17, device_lost_at_launch=999)
        )
        gmac = multi_gmac_factory()
        data = gmac.alloc(256 * KB, name="data")
        n = (256 * KB) // 4
        data.write_array(np.ones(n, dtype=np.float32))
        gmac.call(scale_kernel, data=data, n=n, factor=5.0)
        gmac.sync()
        region = data.region
        from repro.core.blocks import BlockState

        assert list(region.table.indices_in(BlockState.INVALID)), (
            "the kernel output must live only on the device for this test"
        )
        recovery = gmac.recovery
        recovery._salvage(gmac.layer.context_for(region.owner))
        assert recovery.stats["blocks_salvaged"] > 0
        host = gmac.process.address_space.view(
            region.host_start, "f4", n
        )
        assert np.allclose(np.array(host), 5.0)


class TestFlappingAndReadmission:
    def test_flapping_device_readmits_and_rebalances(
            self, multi_machine, multi_gmac_factory, add_kernel):
        multi_machine.install_faults(
            FaultPlan(seed=17, device_lost_at_launches=(1, 3))
        )
        gmac = multi_gmac_factory(
            recovery=RecoveryPolicy(readmit_after_s=1e-3)
        )
        n = (256 * KB) // 4
        a = gmac.alloc(256 * KB, name="a")
        b = gmac.alloc(256 * KB, name="b")
        c = gmac.alloc(256 * KB, name="c")
        a.write_array(np.full(n, 1.0, dtype=np.float32))
        b.write_array(np.full(n, 1.0, dtype=np.float32))
        for _ in range(6):
            gmac.call(add_kernel, a=a, b=b, c=c, n=n)
            gmac.sync()
        stats = gmac.recovery.stats
        assert stats["failovers"] == 2
        assert stats["readmissions"] == 2
        assert stats["rebalances"] >= 1
        assert not gmac.placement.dead
        assert np.allclose(c.read_array("f4", n), 2.0)


class TestRecoveryExhaustion:
    def test_too_many_losses_raise_recovery_exhausted(
            self, multi_machine, multi_gmac_factory, scale_kernel):
        multi_machine.install_faults(
            FaultPlan(seed=17, device_lost_at_launches=(1, 2, 3))
        )
        gmac = multi_gmac_factory(
            recovery=RecoveryPolicy(max_device_recoveries=2)
        )
        data = gmac.alloc(256 * KB, name="data")
        n = (256 * KB) // 4
        data.write_array(np.ones(n, dtype=np.float32))
        with pytest.raises(RecoveryExhausted) as excinfo:
            gmac.call(scale_kernel, data=data, n=n, factor=2.0)
        assert excinfo.value.attempts == 3
        # Existing handlers that catch the base class keep working.
        assert isinstance(excinfo.value, RetryExhaustedError)

    def test_recovery_exhausted_is_pickle_safe(self):
        class Unpicklable:
            def __reduce__(self):
                raise TypeError("live simulator object")

        error = RecoveryExhausted(
            "gave up", attempts=4,
            last_error=TransferError("dma", timestamp=1.0),
            timestamp=2.5, resource="NVIDIA G280",
        )
        error.last_error.context = Unpicklable()  # a live object chain
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, RecoveryExhausted)
        assert str(clone) == "gave up"
        assert clone.attempts == 4
        assert clone.timestamp == 2.5
        assert clone.resource == "NVIDIA G280"
        assert clone.last_error is None  # dropped by design


class TestSeededDeterminism:
    """Satellite: burst/loss plans replay identically across a fork pool."""

    def _burst_spec(self, workload="vecadd"):
        from repro.experiments.spec import RunSpec

        return RunSpec.make(
            workload=workload,
            params=dict(elements=64 * 1024),
            protocol="lazy",
            layer="driver",
            fault_plan=dict(seed=17, transfer_burst=(1, 10)),
            recovery=dict(transfer_deadline_s=4e-3),
            devices=3,
        )

    def _loss_spec(self):
        from repro.experiments.spec import RunSpec

        return RunSpec.make(
            workload="vecadd",
            params=dict(elements=64 * 1024),
            protocol="rolling",
            layer="driver",
            fault_plan=dict(seed=17, device_lost_at_launches=(1,)),
            devices=3,
        )

    def test_fork_pool_outcomes_match_serial(self):
        from repro.experiments import common
        from repro.experiments.executor import ExperimentExecutor

        specs = [self._burst_spec(), self._loss_spec()]
        serial = [spec.execute() for spec in specs]
        executor = ExperimentExecutor(jobs=2, use_cache=False)
        try:
            with executor.cache_context():
                common.clear_cache()
                executor.prime(specs)
                pooled = [common.peek(spec) for spec in specs]
        finally:
            common.clear_cache()
        assert executor.stats["executed"] == 2
        for mine, theirs in zip(serial, pooled):
            assert theirs is not None
            assert theirs.elapsed == mine.elapsed
            assert theirs.breakdown == mine.breakdown
            assert theirs.verified and mine.verified
            assert theirs.recovery_stats == mine.recovery_stats
            assert theirs.injected_faults == mine.injected_faults

    def test_same_spec_executes_identically_twice(self):
        spec = self._burst_spec()
        first = spec.execute()
        second = spec.execute()
        assert first.elapsed == second.elapsed
        assert first.breakdown == second.breakdown
        assert first.recovery_stats == second.recovery_stats
