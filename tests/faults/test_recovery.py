"""Recovery: retries, OOM relief, device re-materialisation, degradation."""

import numpy as np
import pytest

from repro.util.errors import RetryExhaustedError, TransferError
from repro.util.units import KB
from repro.faults import FaultPlan
from repro.core.recovery import RecoveryPolicy


class TestAutoArming:
    def test_enabled_plan_arms_recovery(self, app, gmac_factory):
        app.machine.install_faults(FaultPlan(transfer_fault_rate=0.1))
        gmac = gmac_factory()
        assert isinstance(gmac.recovery, RecoveryPolicy)
        assert gmac.manager.recovery is gmac.recovery
        assert gmac.recovery.gmac is gmac

    def test_no_plan_means_no_recovery(self, gmac_factory):
        gmac = gmac_factory()
        assert gmac.recovery is None
        assert gmac.manager.recovery is None

    def test_explicit_policy_wins(self, app, gmac_factory):
        app.machine.install_faults(FaultPlan(transfer_fault_rate=0.1))
        policy = RecoveryPolicy(max_transfer_retries=2)
        gmac = gmac_factory(recovery=policy)
        assert gmac.recovery is policy


class TestTransientTransferRecovery:
    def _noisy_run(self, app, gmac_factory, scale_kernel, rate=0.3):
        plan = app.machine.install_faults(
            FaultPlan(seed=5, transfer_fault_rate=rate)
        )
        gmac = gmac_factory()
        ptr = gmac.alloc(1024 * KB, name="data")
        n = (1024 * KB) // 4
        values = np.ones(n, dtype=np.float32)
        for _ in range(3):
            ptr.write_array(values)
            gmac.call(scale_kernel, data=ptr, n=n, factor=3.0)
            gmac.sync()
            values = ptr.read_array("f4", n).copy()
        return plan, gmac, values

    def test_numerics_survive_and_counters_reconcile(self, app, gmac_factory,
                                                     scale_kernel):
        plan, gmac, values = self._noisy_run(app, gmac_factory, scale_kernel)
        assert np.allclose(values, 27.0)
        injected = (plan.injected["transfer.h2d"]
                    + plan.injected["transfer.d2h"])
        assert injected > 0, "seed 5 at 30% must inject on this traffic"
        assert gmac.recovery.stats["transfer_retries"] == injected

    def test_backoff_lands_in_retry_category(self, app, gmac_factory,
                                             scale_kernel):
        _, gmac, _ = self._noisy_run(app, gmac_factory, scale_kernel)
        breakdown = app.machine.accounting.breakdown()
        stats = gmac.recovery.stats
        assert stats["backoff_s"] > 0
        assert breakdown["Retry"] == pytest.approx(stats["backoff_s"])

    def test_permanent_failure_exhausts_retries(self, app, gmac_factory,
                                                scale_kernel):
        app.machine.install_faults(FaultPlan(transfer_fault_rate=1.0))
        gmac = gmac_factory(recovery=RecoveryPolicy(max_transfer_retries=3))
        ptr = gmac.alloc(4 * KB, name="data")
        ptr.write_array(np.ones(4, dtype=np.float32))
        with pytest.raises(RetryExhaustedError) as excinfo:
            gmac.call(scale_kernel, data=ptr, n=4, factor=2.0)
        assert excinfo.value.attempts == 4  # 1 try + 3 retries
        assert isinstance(excinfo.value.last_error, TransferError)

    def test_backoff_delay_grows_then_caps(self, app, gmac_factory):
        app.machine.install_faults(FaultPlan(transfer_fault_rate=1.0))
        policy = RecoveryPolicy(max_transfer_retries=10,
                                backoff_base_s=1e-6, backoff_factor=2.0,
                                max_backoff_s=4e-6)
        gmac = gmac_factory(recovery=policy)

        calls = []

        def attempt():
            calls.append(gmac.machine.clock.now)
            raise TransferError("always", timestamp=0.0, resource="link")

        with pytest.raises(RetryExhaustedError):
            policy.retry_transfer(attempt)
        gaps = [b - a for a, b in zip(calls, calls[1:])]
        # 1us, 2us, then capped at 4us forever.
        assert gaps[0] == pytest.approx(1e-6)
        assert gaps[1] == pytest.approx(2e-6)
        assert gaps[2] == pytest.approx(4e-6)
        assert all(g == pytest.approx(4e-6) for g in gaps[2:])


class TestOomRecovery:
    def test_scheduled_oom_retried_after_forced_eviction(self, app,
                                                         gmac_factory):
        app.machine.install_faults(FaultPlan(oom_at_mallocs=(1,)))
        gmac = gmac_factory()
        ptr = gmac.alloc(64 * KB, name="data")  # first cudaMalloc faults
        assert ptr.region is not None
        assert gmac.recovery.stats["oom_retries"] == 1

    def test_force_evict_drains_dirty_fifo_and_shrinks_rolling(self, app,
                                                               gmac_factory,
                                                               scale_kernel):
        # Second region's cudaMalloc faults, once region A has dirty blocks.
        app.machine.install_faults(FaultPlan(oom_at_mallocs=(2,)))
        gmac = gmac_factory(protocol_options={"rolling_size": 4})
        a = gmac.alloc(256 * KB, name="a")
        a.write_array(np.ones((256 * KB) // 4, dtype=np.float32))
        assert len(gmac.protocol._dirty) > 0
        gmac.alloc(64 * KB, name="b")
        assert gmac.recovery.stats["oom_retries"] == 1
        assert len(gmac.protocol._dirty) == 0
        assert gmac.protocol.rolling_size == 2  # halved from 4
        # The evicted data reached the device intact.
        n = (256 * KB) // 4
        gmac.call(scale_kernel, data=a, n=n, factor=2.0)
        gmac.sync()
        assert np.allclose(a.read_array("f4", n), 2.0)

    def test_hopeless_oom_exhausts(self, app, gmac_factory):
        app.machine.install_faults(FaultPlan(malloc_fault_rate=1.0))
        gmac = gmac_factory(recovery=RecoveryPolicy(max_oom_retries=2))
        with pytest.raises(RetryExhaustedError) as excinfo:
            gmac.alloc(4 * KB)
        assert excinfo.value.attempts == 3


class TestDeviceLossRecovery:
    def test_rematerialisation_preserves_numerics(self, app, gmac_factory,
                                                  scale_kernel):
        plan = app.machine.install_faults(FaultPlan(device_lost_at_launch=1))
        gmac = gmac_factory()
        ptr = gmac.alloc(256 * KB, name="data")
        n = (256 * KB) // 4
        ptr.write_array(np.full(n, 7.0, dtype=np.float32))
        gmac.call(scale_kernel, data=ptr, n=n, factor=2.0)
        gmac.sync()
        assert np.allclose(ptr.read_array("f4", n), 14.0)
        assert plan.device_losses == 1
        stats = gmac.recovery.stats
        assert stats["device_recoveries"] == 1
        assert stats["blocks_rematerialized"] == len(ptr.region.blocks)
        assert gmac.layer.driver.alive

    def test_unwritten_regions_survive_device_loss(self, app, gmac_factory,
                                                   add_kernel):
        app.machine.install_faults(FaultPlan(device_lost_at_launch=1))
        gmac = gmac_factory()
        a = gmac.alloc(4 * KB, name="a")
        b = gmac.alloc(4 * KB, name="b")
        c = gmac.alloc(4 * KB, name="c")
        a.write_array(np.full(16, 2.0, dtype=np.float32))
        b.write_array(np.full(16, 5.0, dtype=np.float32))
        gmac.call(add_kernel, writes=[c], a=a, b=b, c=c, n=16)
        gmac.sync()
        assert np.allclose((a).read_array("f4", 16), 2.0)
        assert np.allclose((c).read_array("f4", 16), 7.0)

    def test_checkpoint_makes_second_call_recoverable(self, app, gmac_factory,
                                                      scale_kernel):
        """The device dies at call #2 while call #1's outputs are still
        device-only; the auto-checkpoint fetches them first."""
        app.machine.install_faults(FaultPlan(device_lost_at_launch=2))
        gmac = gmac_factory()
        ptr = gmac.alloc(256 * KB, name="data")
        n = (256 * KB) // 4
        ptr.write_array(np.ones(n, dtype=np.float32))
        gmac.call(scale_kernel, data=ptr, n=n, factor=2.0)
        gmac.sync()
        # No host read between the calls: blocks stay INVALID on the host.
        gmac.call(scale_kernel, data=ptr, n=n, factor=3.0)
        gmac.sync()
        assert np.allclose(ptr.read_array("f4", n), 6.0)
        assert gmac.recovery.stats["checkpoint_s"] > 0

    def test_repeated_losses_eventually_give_up(self, app, gmac_factory,
                                                scale_kernel):
        app.machine.install_faults(FaultPlan(device_lost_at_launch=1))
        gmac = gmac_factory(recovery=RecoveryPolicy(max_device_recoveries=0))
        ptr = gmac.alloc(4 * KB, name="data")
        ptr.write_array(np.ones(4, dtype=np.float32))
        with pytest.raises(RetryExhaustedError):
            gmac.call(scale_kernel, data=ptr, n=4, factor=2.0)


class TestLaunchRecovery:
    def test_transient_rejections_reconcile(self, app, gmac_factory,
                                            scale_kernel):
        plan = app.machine.install_faults(
            FaultPlan(seed=3, launch_fault_rate=0.5)
        )
        gmac = gmac_factory()
        ptr = gmac.alloc(4 * KB, name="data")
        ptr.write_array(np.ones(4, dtype=np.float32))
        for _ in range(6):
            gmac.call(scale_kernel, data=ptr, n=4, factor=2.0)
            gmac.sync()
        assert np.allclose(ptr.read_array("f4", 4), 2.0 ** 6)
        assert plan.injected["cuda.launch"] > 0
        assert gmac.recovery.stats["launch_retries"] == (
            plan.injected["cuda.launch"]
        )


class TestDegradation:
    def _run_calls(self, gmac, scale_kernel, ptr, n, calls):
        for _ in range(calls):
            gmac.call(scale_kernel, data=ptr, n=n, factor=2.0)
            gmac.sync()
            # Touch the data so every round re-dirties and re-transfers.
            ptr.write_array(ptr.read_array("f4", n))

    def test_high_fault_rate_degrades_rolling_to_lazy_to_batch(
            self, app, gmac_factory, scale_kernel):
        app.machine.install_faults(FaultPlan(seed=2, transfer_fault_rate=0.5))
        gmac = gmac_factory(
            recovery=RecoveryPolicy(degrade_min_attempts=4,
                                    degrade_threshold=0.2,
                                    max_transfer_retries=64),
        )
        ptr = gmac.alloc(64 * KB, name="data")
        n = (64 * KB) // 4
        ptr.write_array(np.ones(n, dtype=np.float32))
        self._run_calls(gmac, scale_kernel, ptr, n, calls=8)
        steps = gmac.recovery.stats["degradations"]
        assert [s["from"] for s in steps] == ["rolling", "lazy"]
        assert [s["to"] for s in steps] == ["lazy", "batch"]
        assert gmac.protocol.name == "batch"
        assert gmac.manager.protocol is gmac.protocol
        assert np.allclose(ptr.read_array("f4", n), 2.0 ** 8)

    def test_batch_never_degrades_further(self, app, gmac_factory,
                                          scale_kernel):
        app.machine.install_faults(FaultPlan(seed=2, transfer_fault_rate=0.5))
        gmac = gmac_factory(
            protocol="batch",
            recovery=RecoveryPolicy(degrade_min_attempts=2,
                                    degrade_threshold=0.1,
                                    max_transfer_retries=64),
        )
        ptr = gmac.alloc(4 * KB, name="data")
        ptr.write_array(np.ones(4, dtype=np.float32))
        for _ in range(4):
            gmac.call(scale_kernel, data=ptr, n=4, factor=2.0)
            gmac.sync()
        assert gmac.recovery.stats["degradations"] == []
        assert gmac.protocol.name == "batch"

    def test_low_fault_rate_never_degrades(self, app, gmac_factory,
                                           scale_kernel):
        app.machine.install_faults(FaultPlan(seed=2, transfer_fault_rate=0.02))
        gmac = gmac_factory()
        ptr = gmac.alloc(64 * KB, name="data")
        n = (64 * KB) // 4
        ptr.write_array(np.ones(n, dtype=np.float32))
        self._run_calls(gmac, scale_kernel, ptr, n, calls=6)
        assert gmac.recovery.stats["degradations"] == []
        assert gmac.protocol.name == "rolling"
