"""Property-style sweep: seeded fault plans across protocols and workloads.

Marked ``chaos`` — the CI smoke job runs exactly these.  For every
(seed, protocol, workload) combination under a <=5% transfer-fault plan:

* outputs still match the pure-numpy oracle;
* the recovery layer's retry counters reconcile exactly with the plan's
  injection counters (nothing silently swallowed, nothing double-counted).
"""

import pytest

from repro.faults import FaultPlan
from repro.hw.machine import reference_system
from repro.workloads.vecadd import VectorAdd
from repro.workloads.parboil import PARBOIL

SEEDS = (0, 1, 2)
PROTOCOLS = ("batch", "lazy", "rolling")

#: <=5% transfer faults (the acceptance-criterion ceiling) plus launch
#: rejections and short disk reads.
PLAN_KWARGS = dict(
    transfer_fault_rate=0.05,
    launch_fault_rate=0.05,
    short_read_rate=0.25,
)


def _workload(name):
    if name == "vecadd":
        return VectorAdd(elements=256 * 1024)
    if name == "tpacf":
        return PARBOIL["tpacf"](n_points=131072)
    if name == "mri-q":
        return PARBOIL["mri-q"](n_samples=48, n_voxels=65536)
    raise AssertionError(name)


@pytest.mark.chaos
@pytest.mark.parametrize("workload_name", ("vecadd", "tpacf", "mri-q"))
@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("seed", SEEDS)
def test_faulty_runs_validate_and_reconcile(workload_name, protocol, seed):
    machine = reference_system()
    plan = machine.install_faults(FaultPlan(seed=seed, **PLAN_KWARGS))
    result = _workload(workload_name).execute(
        mode="gmac", protocol=protocol, machine=machine,
        gmac_options={"layer": "driver"},
    )
    assert result.verified, (
        f"{workload_name}/{protocol}/seed={seed} lost data under {plan!r}"
    )
    stats = result.extra["gmac"].recovery.stats
    assert stats["transfer_retries"] == (
        plan.injected["transfer.h2d"] + plan.injected["transfer.d2h"]
    )
    assert stats["launch_retries"] == plan.injected["cuda.launch"]
    # Every injected short read forced exactly one resumed read() call
    # (all of these workloads read inside file bounds, via the libc).
    assert stats["short_read_resumes"] == plan.injected["disk.read"]
    assert stats["device_recoveries"] == 0  # no device loss scheduled


@pytest.mark.chaos
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_device_loss_mid_run_recovers(protocol):
    machine = reference_system()
    plan = machine.install_faults(
        FaultPlan(seed=9, transfer_fault_rate=0.02, device_lost_at_launch=1)
    )
    result = _workload("vecadd").execute(
        mode="gmac", protocol=protocol, machine=machine,
        gmac_options={"layer": "driver"},
    )
    assert result.verified
    assert plan.device_losses == 1
    stats = result.extra["gmac"].recovery.stats
    assert stats["device_recoveries"] == 1
    assert stats["blocks_rematerialized"] > 0
