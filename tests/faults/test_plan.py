"""FaultPlan: determinism, counters, decision semantics."""

import pytest

from repro.faults import (
    DEVICE_LOST,
    TRANSIENT,
    FaultPlan,
    SITE_DISK_READ,
    SITE_LAUNCH,
    SITE_MALLOC,
    SITE_TRANSFER_D2H,
    SITE_TRANSFER_H2D,
)


class TestConstruction:
    def test_none_plan_is_disabled(self):
        plan = FaultPlan.none()
        assert not plan.enabled
        assert plan.injected_total == 0

    def test_any_rate_enables(self):
        assert FaultPlan(transfer_fault_rate=0.01).enabled
        assert FaultPlan(launch_fault_rate=0.01).enabled
        assert FaultPlan(malloc_fault_rate=0.01).enabled
        assert FaultPlan(short_read_rate=0.01).enabled
        assert FaultPlan(oom_at_mallocs=(1,)).enabled
        assert FaultPlan(device_lost_at_launch=1).enabled

    @pytest.mark.parametrize("kwargs", [
        {"transfer_fault_rate": -0.1},
        {"transfer_fault_rate": 1.5},
        {"launch_fault_rate": 2.0},
        {"malloc_fault_rate": -1.0},
        {"short_read_rate": 1.0001},
        # Scheduled events are 1-based; 0/negative would silently never fire.
        {"oom_at_mallocs": (0,)},
        {"oom_at_mallocs": (2, -1)},
        {"device_lost_at_launch": 0},
    ])
    def test_rates_validated(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        a = FaultPlan(seed=42, transfer_fault_rate=0.3, short_read_rate=0.3)
        b = FaultPlan(seed=42, transfer_fault_rate=0.3, short_read_rate=0.3)
        assert (
            [a.transfer_fault() for _ in range(200)]
            == [b.transfer_fault() for _ in range(200)]
        )
        assert (
            [a.short_read(4096) for _ in range(200)]
            == [b.short_read(4096) for _ in range(200)]
        )

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1, transfer_fault_rate=0.3)
        b = FaultPlan(seed=2, transfer_fault_rate=0.3)
        assert (
            [a.transfer_fault() for _ in range(200)]
            != [b.transfer_fault() for _ in range(200)]
        )

    def test_sites_have_independent_streams(self):
        """Consulting one site must not perturb another's sequence."""
        solo = FaultPlan(seed=7, transfer_fault_rate=0.3)
        solo_seq = [solo.transfer_fault() for _ in range(100)]
        mixed = FaultPlan(seed=7, transfer_fault_rate=0.3,
                          short_read_rate=0.5, launch_fault_rate=0.3)
        mixed_seq = []
        for _ in range(100):
            mixed.short_read(4096)
            mixed.launch_fault()
            mixed_seq.append(mixed.transfer_fault())
        assert solo_seq == mixed_seq

    def test_h2d_and_d2h_are_separate_sites(self):
        plan = FaultPlan(seed=3, transfer_fault_rate=0.4)
        for _ in range(50):
            plan.transfer_fault(d2h=False)
            plan.transfer_fault(d2h=True)
        assert plan.attempts[SITE_TRANSFER_H2D] == 50
        assert plan.attempts[SITE_TRANSFER_D2H] == 50


class TestDecisions:
    def test_rate_one_always_injects(self):
        plan = FaultPlan(transfer_fault_rate=1.0)
        assert all(
            plan.transfer_fault() is TRANSIENT for _ in range(20)
        )
        assert plan.injected[SITE_TRANSFER_H2D] == 20

    def test_rate_zero_never_injects(self):
        plan = FaultPlan(transfer_fault_rate=0.0, short_read_rate=1.0)
        assert all(plan.transfer_fault() is None for _ in range(20))
        assert plan.injected[SITE_TRANSFER_H2D] == 0

    def test_scheduled_oom_uses_one_based_attempts(self):
        plan = FaultPlan(oom_at_mallocs=(2, 4))
        assert [plan.malloc_fault() for _ in range(5)] == [
            False, True, False, True, False
        ]
        assert plan.injected[SITE_MALLOC] == 2

    def test_device_lost_fires_once_at_scheduled_launch(self):
        plan = FaultPlan(device_lost_at_launch=3)
        outcomes = [plan.launch_fault() for _ in range(6)]
        assert outcomes == [None, None, DEVICE_LOST, None, None, None]
        assert plan.device_losses == 1
        assert plan.injected[SITE_LAUNCH] == 1

    def test_short_read_delivers_strict_nonempty_prefix(self):
        plan = FaultPlan(seed=11, short_read_rate=1.0)
        for _ in range(200):
            delivered = plan.short_read(4096)
            assert 1 <= delivered < 4096
        assert plan.injected[SITE_DISK_READ] == 200

    def test_short_read_of_one_byte_cannot_shrink(self):
        plan = FaultPlan(short_read_rate=1.0)
        assert plan.short_read(1) == 1
        assert plan.injected[SITE_DISK_READ] == 0


class TestReporting:
    def test_summary_pairs_injected_with_attempts(self):
        plan = FaultPlan(transfer_fault_rate=1.0)
        plan.transfer_fault()
        plan.transfer_fault(d2h=True)
        summary = plan.summary()
        assert summary[SITE_TRANSFER_H2D] == (1, 1)
        assert summary[SITE_TRANSFER_D2H] == (1, 1)
        assert summary[SITE_LAUNCH] == (0, 0)
        assert plan.injected_total == 2

    def test_repr_mentions_active_knobs(self):
        text = repr(FaultPlan(seed=5, transfer_fault_rate=0.1,
                              device_lost_at_launch=2))
        assert "seed=5" in text
        assert "transfer=0.1" in text
        assert "device_lost_at_launch=2" in text
