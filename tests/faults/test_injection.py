"""Layer-level fault injection: driver, interconnect, filesystem.

These tests bypass GMAC and poke the injection points directly, so each
failure mode is checked in isolation; recovery is covered separately in
test_recovery.py.
"""

import numpy as np
import pytest

from repro.util.errors import (
    CudaOutOfMemoryError,
    DeviceLostError,
    LaunchError,
    TransferError,
)
from repro.util.units import MB
from repro.faults import FaultPlan
from repro.hw.machine import integrated_system, reference_system
from repro.hw.interconnect import Direction
from repro.cuda.driver import DriverContext
from repro.cuda.kernels import Kernel
from repro.workloads.base import Application
from repro.workloads.vecadd import VectorAdd


def _double_fn(gpu, data, n):
    gpu.view(data, "f4", n)[:] *= np.float32(2.0)


DOUBLE = Kernel("double", _double_fn, cost=lambda data, n: (n, 8 * n))


@pytest.fixture
def ctx(app):
    return DriverContext(app.machine, app.process)


class TestTransferInjection:
    def test_h2d_fault_raises_stamped_transfer_error(self, app, ctx):
        app.machine.install_faults(FaultPlan(transfer_fault_rate=1.0))
        host = app.process.malloc(MB)
        dev = ctx.mem_alloc(MB)
        with pytest.raises(TransferError) as excinfo:
            ctx.memcpy_h2d(dev, int(host), MB)
        error = excinfo.value
        assert error.transient
        assert error.direction is Direction.H2D
        assert error.size == MB
        assert error.timestamp == app.machine.clock.now
        assert "PCIe" in error.resource

    def test_failed_dma_occupies_the_link_full_duration(self, app, ctx):
        """The engine only reports the error at completion time, so a
        failed attempt costs as much wall-clock as a successful one."""
        app.machine.install_faults(FaultPlan(transfer_fault_rate=1.0))
        host = app.process.malloc(MB)
        dev = ctx.mem_alloc(MB)
        before = app.machine.clock.now
        with pytest.raises(TransferError):
            ctx.memcpy_h2d(dev, int(host), MB)
        elapsed = app.machine.clock.now - before
        assert elapsed >= app.machine.link.spec.transfer_seconds(MB)

    def test_failed_dma_counts_separately_from_figure8_bytes(self, app, ctx):
        app.machine.install_faults(FaultPlan(transfer_fault_rate=1.0))
        host = app.process.malloc(MB)
        dev = ctx.mem_alloc(MB)
        with pytest.raises(TransferError):
            ctx.memcpy_h2d(dev, int(host), MB)
        link = app.machine.link
        assert link.faulted_bytes[Direction.H2D] == MB
        assert link.faulted_count[Direction.H2D] == 1
        assert link.bytes_moved[Direction.H2D] == 0

    def test_failed_h2d_leaves_device_memory_untouched(self, app, ctx):
        app.machine.install_faults(FaultPlan(transfer_fault_rate=1.0))
        host = app.process.malloc(64)
        host.write_bytes(b"x" * 64)
        dev = ctx.mem_alloc(64)
        before = bytes(ctx.gpu.memory.read(dev, 64))
        with pytest.raises(TransferError):
            ctx.memcpy_h2d(dev, int(host), 64)
        assert bytes(ctx.gpu.memory.read(dev, 64)) == before

    def test_d2h_uses_its_own_site(self, app, ctx):
        plan = app.machine.install_faults(FaultPlan(transfer_fault_rate=1.0))
        host = app.process.malloc(64)
        dev = ctx.mem_alloc(64)
        with pytest.raises(TransferError) as excinfo:
            ctx.memcpy_d2h(int(host), dev, 64)
        assert excinfo.value.direction is Direction.D2H
        assert plan.injected["transfer.d2h"] == 1
        assert plan.injected["transfer.h2d"] == 0

    def test_integrated_machine_has_no_dma_to_fault(self):
        machine = integrated_system()
        machine.install_faults(FaultPlan(transfer_fault_rate=1.0))
        app = Application(machine)
        ctx = DriverContext(machine, app.process)
        host = app.process.malloc(64)
        dev = ctx.mem_alloc(64)
        ctx.memcpy_h2d(dev, int(host), 64)  # must not raise
        assert machine.faults.attempts["transfer.h2d"] == 0


class TestMallocInjection:
    def test_injected_oom_is_transient(self, app, ctx):
        app.machine.install_faults(FaultPlan(oom_at_mallocs=(1,)))
        with pytest.raises(CudaOutOfMemoryError) as excinfo:
            ctx.mem_alloc(4096)
        assert excinfo.value.transient
        # The schedule named only the first attempt; the next one works.
        assert ctx.mem_alloc(4096) is not None


class TestLaunchInjection:
    def test_transient_rejection_has_no_device_effect(self, app, ctx):
        app.machine.install_faults(FaultPlan(launch_fault_rate=1.0))
        dev = ctx.mem_alloc(64)
        ctx.gpu.memory.view(dev, "f4", 16)[:] = 3.0
        with pytest.raises(LaunchError) as excinfo:
            ctx.launch(DOUBLE, {"data": dev, "n": 16})
        assert excinfo.value.kernel == "double"
        assert np.allclose(ctx.gpu.memory.view(dev, "f4", 16), 3.0)

    def test_device_lost_kills_the_context(self, app, ctx):
        app.machine.install_faults(FaultPlan(device_lost_at_launch=1))
        dev = ctx.mem_alloc(64)
        with pytest.raises(DeviceLostError):
            ctx.launch(DOUBLE, {"data": dev, "n": 16})
        assert not ctx.alive
        # Every subsequent operation fails until the device is revived.
        with pytest.raises(DeviceLostError):
            ctx.mem_alloc(64)
        with pytest.raises(DeviceLostError):
            ctx.memcpy_h2d(dev, 0, 64)

    def test_revive_resets_device_and_allocations(self, app, ctx):
        app.machine.install_faults(FaultPlan(device_lost_at_launch=1))
        dev = ctx.mem_alloc(4096)
        with pytest.raises(DeviceLostError):
            ctx.launch(DOUBLE, {"data": dev, "n": 16})
        ctx.revive()
        assert ctx.alive
        assert ctx.allocations == {}
        restored = ctx.restore_allocation(dev, 4096)
        assert restored == dev
        # The fault plan's device loss fired; later launches succeed.
        ctx.launch(DOUBLE, {"data": dev, "n": 16})


class TestDiskInjection:
    def test_short_read_delivers_prefix_and_keeps_position(self, app):
        app.machine.install_faults(FaultPlan(seed=1, short_read_rate=1.0))
        app.fs.create("f", bytes(range(200)))
        with app.fs.open("f") as handle:
            first = handle.read(100)
            assert 1 <= len(first) < 100
            # The undelivered tail is still in the file, at the position.
            second = handle.read(200 - len(first))
            assert (first + second).startswith(bytes(range(len(first))))

    def test_no_plan_reads_are_exact(self, app):
        app.fs.create("f", bytes(range(200)))
        with app.fs.open("f") as handle:
            assert len(handle.read(100)) == 100


class TestZeroCost:
    """With FaultPlan.none() every run is byte-identical to no plan."""

    def test_disabled_plan_never_consulted(self, app, ctx):
        plan = app.machine.install_faults(FaultPlan.none())
        host = app.process.malloc(MB)
        dev = ctx.mem_alloc(MB)
        ctx.memcpy_h2d(dev, int(host), MB)
        ctx.launch(DOUBLE, {"data": dev, "n": 16})
        assert sum(plan.attempts.values()) == 0

    def test_vecadd_identical_with_and_without_none_plan(self):
        workload = VectorAdd(elements=64 * 1024)
        plain = workload.execute(mode="gmac", protocol="rolling",
                                 gmac_options={"layer": "driver"})
        machine = reference_system()
        machine.install_faults(FaultPlan.none())
        nulled = workload.execute(mode="gmac", protocol="rolling",
                                  machine=machine,
                                  gmac_options={"layer": "driver"})
        assert nulled.verified and plain.verified
        assert nulled.elapsed == plain.elapsed
        assert nulled.breakdown == plain.breakdown
        assert nulled.bytes_to_accelerator == plain.bytes_to_accelerator
        assert nulled.bytes_to_host == plain.bytes_to_host
        assert nulled.faults == plain.faults
        # A disabled plan must not even arm the recovery machinery.
        assert nulled.extra["gmac"].recovery is None
