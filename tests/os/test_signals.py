"""SIGSEGV dispatch."""

import pytest

from repro.util.errors import SegmentationFault
from repro.sim.clock import SimClock
from repro.sim.tracing import TimeAccounting, Category
from repro.os.paging import AccessKind
from repro.os.signals import SegvInfo, SignalDispatcher


@pytest.fixture
def clock():
    return SimClock()


class TestDispatch:
    def test_unhandled_fault_crashes(self, clock):
        dispatcher = SignalDispatcher(clock)
        with pytest.raises(SegmentationFault):
            dispatcher.deliver(SegvInfo(0x1000, AccessKind.WRITE))
        assert dispatcher.unhandled == 1

    def test_handler_claims_fault(self, clock):
        dispatcher = SignalDispatcher(clock)
        seen = []
        dispatcher.register(lambda info: seen.append(info) or True)
        dispatcher.deliver(SegvInfo(0x1000, AccessKind.READ))
        assert seen[0].address == 0x1000
        assert dispatcher.delivered == 1
        assert dispatcher.unhandled == 0

    def test_handler_declining_falls_through(self, clock):
        dispatcher = SignalDispatcher(clock)
        dispatcher.register(lambda info: False)
        with pytest.raises(SegmentationFault):
            dispatcher.deliver(SegvInfo(0x2000, AccessKind.WRITE))

    def test_later_registration_runs_first(self, clock):
        dispatcher = SignalDispatcher(clock)
        order = []
        dispatcher.register(lambda info: order.append("first") or True)
        dispatcher.register(lambda info: order.append("second") and False)
        dispatcher.deliver(SegvInfo(0, AccessKind.READ))
        assert order == ["second", "first"]

    def test_unregister(self, clock):
        dispatcher = SignalDispatcher(clock)
        handler = dispatcher.register(lambda info: True)
        dispatcher.unregister(handler)
        with pytest.raises(SegmentationFault):
            dispatcher.deliver(SegvInfo(0, AccessKind.READ))

    def test_delivery_charges_time(self, clock):
        dispatcher = SignalDispatcher(clock, overhead_s=1e-6)
        dispatcher.register(lambda info: True)
        dispatcher.deliver(SegvInfo(0, AccessKind.READ))
        assert clock.now == pytest.approx(1e-6)

    def test_delivery_charges_signal_category(self, clock):
        accounting = TimeAccounting(clock)
        dispatcher = SignalDispatcher(clock, accounting=accounting,
                                      overhead_s=2e-6)
        dispatcher.register(lambda info: True)
        dispatcher.deliver(SegvInfo(0, AccessKind.WRITE))
        assert accounting.totals[Category.SIGNAL] == pytest.approx(2e-6)

    def test_register_is_idempotent(self, clock):
        dispatcher = SignalDispatcher(clock)
        observed = []

        def probe(info):
            observed.append(info.address)
            return False

        dispatcher.register(lambda info: True)  # terminal claimant
        assert dispatcher.register(probe) is probe
        assert dispatcher.register(probe) is probe
        dispatcher.deliver(SegvInfo(0x1000, AccessKind.READ))
        # A duplicated registration would have run the probe twice.
        assert observed == [0x1000]
        # And a single unregister removes the handler completely.
        dispatcher.unregister(probe)
        dispatcher.deliver(SegvInfo(0x2000, AccessKind.READ))
        assert observed == [0x1000]

    def test_segv_info_fields(self):
        info = SegvInfo(0xABC, AccessKind.WRITE)
        assert info.address == 0xABC
        assert info.access is AccessKind.WRITE


class TestNamedRegistration:
    def test_name_collision_names_the_incumbent(self, clock):
        dispatcher = SignalDispatcher(clock)

        def incumbent(info):
            return True

        def challenger(info):
            return True

        dispatcher.register(incumbent, name="race-monitor")
        with pytest.raises(ValueError) as excinfo:
            dispatcher.register(challenger, name="race-monitor")
        message = str(excinfo.value)
        assert "race-monitor" in message
        assert "incumbent" in message  # the error identifies who holds it

    def test_same_handler_reregisters_under_its_name(self, clock):
        dispatcher = SignalDispatcher(clock)

        def handler(info):
            return True

        dispatcher.register(handler, name="race-monitor")
        assert dispatcher.register(handler, name="race-monitor") is handler

    def test_unregister_releases_the_name(self, clock):
        dispatcher = SignalDispatcher(clock)
        first, second = (lambda info: True), (lambda info: True)
        dispatcher.register(first, name="slot")
        dispatcher.unregister(first)
        assert dispatcher.register(second, name="slot") is second

    def test_default_names_distinguish_bound_methods(self, clock):
        """Two instances' bound methods must not collide (the latent
        double-register: bound methods materialize fresh per access, so
        identity-keyed bookkeeping would tangle them)."""
        dispatcher = SignalDispatcher(clock)

        class Owner:
            def handle(self, info):
                return False

        one, two = Owner(), Owner()
        dispatcher.register(one.handle)
        dispatcher.register(two.handle)  # distinct owner: no collision
        assert dispatcher.register(one.handle) is not None  # re-register ok
        assert len(dispatcher._handlers) == 2
