"""The simulated address space: mmap/munmap/mprotect and the software MMU."""

import pytest

from repro.util.errors import AddressError, AllocationError, ProtectionError
from repro.os.paging import PAGE_SIZE, Prot, AccessKind, page_floor, page_ceil
from repro.os.address_space import AddressSpace, MMAP_BASE


@pytest.fixture
def space():
    return AddressSpace()


class TestPagingHelpers:
    def test_page_floor(self):
        assert page_floor(0) == 0
        assert page_floor(PAGE_SIZE - 1) == 0
        assert page_floor(PAGE_SIZE) == PAGE_SIZE

    def test_page_ceil(self):
        assert page_ceil(0) == 0
        assert page_ceil(1) == PAGE_SIZE
        assert page_ceil(PAGE_SIZE) == PAGE_SIZE

    def test_required_prot(self):
        assert AccessKind.READ.required_prot == Prot.READ
        assert AccessKind.WRITE.required_prot == Prot.WRITE


class TestMmap:
    def test_anonymous_mapping_placed_in_mmap_area(self, space):
        mapping = space.mmap(PAGE_SIZE)
        assert mapping.start >= MMAP_BASE
        assert mapping.size == PAGE_SIZE

    def test_size_rounded_to_pages(self, space):
        mapping = space.mmap(100)
        assert mapping.size == PAGE_SIZE

    def test_two_mappings_disjoint(self, space):
        a = space.mmap(PAGE_SIZE)
        b = space.mmap(PAGE_SIZE)
        assert not a.interval.overlaps(b.interval)

    def test_fixed_address(self, space):
        mapping = space.mmap(PAGE_SIZE, fixed_address=0x7F00_0000_0000)
        assert mapping.start == 0x7F00_0000_0000

    def test_fixed_collision_rejected(self, space):
        space.mmap(2 * PAGE_SIZE, fixed_address=0x10000)
        with pytest.raises(AllocationError):
            space.mmap(PAGE_SIZE, fixed_address=0x10000 + PAGE_SIZE)

    def test_fixed_unaligned_rejected(self, space):
        with pytest.raises(AddressError):
            space.mmap(PAGE_SIZE, fixed_address=123)

    def test_zero_size_rejected(self, space):
        with pytest.raises(AllocationError):
            space.mmap(0)

    def test_munmap(self, space):
        mapping = space.mmap(PAGE_SIZE)
        space.munmap(mapping.start)
        assert space.mapping_at(mapping.start) is None
        with pytest.raises(AddressError):
            space.munmap(mapping.start)

    def test_address_reuse_after_munmap(self, space):
        first = space.mmap(PAGE_SIZE)
        space.munmap(first.start)
        second = space.mmap(PAGE_SIZE)
        assert second.start == first.start

    def test_fresh_mapping_is_zeroed(self, space):
        mapping = space.mmap(PAGE_SIZE)
        assert space.peek(mapping.start, PAGE_SIZE) == bytes(PAGE_SIZE)


class TestMprotect:
    def test_protect_whole_mapping(self, space):
        mapping = space.mmap(2 * PAGE_SIZE)
        space.mprotect(mapping.start, 2 * PAGE_SIZE, Prot.READ)
        assert mapping.prot_of(mapping.start) == Prot.READ
        assert mapping.prot_of(mapping.start + PAGE_SIZE) == Prot.READ

    def test_protect_subrange(self, space):
        mapping = space.mmap(4 * PAGE_SIZE)
        space.mprotect(mapping.start + PAGE_SIZE, PAGE_SIZE, Prot.NONE)
        assert mapping.prot_of(mapping.start) == Prot.RW
        assert mapping.prot_of(mapping.start + PAGE_SIZE) == Prot.NONE
        assert mapping.prot_of(mapping.start + 2 * PAGE_SIZE) == Prot.RW

    def test_unaligned_rejected(self, space):
        mapping = space.mmap(PAGE_SIZE)
        with pytest.raises(ProtectionError):
            space.mprotect(mapping.start + 1, 100, Prot.READ)

    def test_unmapped_rejected(self, space):
        with pytest.raises(ProtectionError):
            space.mprotect(0x5000, PAGE_SIZE, Prot.READ)

    def test_crossing_mapping_end_rejected(self, space):
        mapping = space.mmap(PAGE_SIZE, fixed_address=0x100000)
        with pytest.raises(ProtectionError):
            space.mprotect(mapping.start, 2 * PAGE_SIZE, Prot.READ)


class TestMmuCheck:
    def test_rw_access_clean(self, space):
        mapping = space.mmap(PAGE_SIZE)
        assert space.check(mapping.start, PAGE_SIZE, AccessKind.WRITE) is None

    def test_read_on_none_faults(self, space):
        mapping = space.mmap(PAGE_SIZE, prot=Prot.NONE)
        assert space.check(mapping.start, 4, AccessKind.READ) == mapping.start

    def test_write_on_readonly_faults(self, space):
        mapping = space.mmap(PAGE_SIZE, prot=Prot.READ)
        assert space.check(mapping.start, 4, AccessKind.WRITE) == mapping.start
        assert space.check(mapping.start, 4, AccessKind.READ) is None

    def test_fault_address_is_first_bad_page(self, space):
        mapping = space.mmap(3 * PAGE_SIZE)
        space.mprotect(mapping.start + 2 * PAGE_SIZE, PAGE_SIZE, Prot.READ)
        fault = space.check(mapping.start, 3 * PAGE_SIZE, AccessKind.WRITE)
        assert fault == mapping.start + 2 * PAGE_SIZE

    def test_fault_mid_page_reports_access_start(self, space):
        mapping = space.mmap(PAGE_SIZE, prot=Prot.READ)
        fault = space.check(mapping.start + 100, 4, AccessKind.WRITE)
        assert fault == mapping.start + 100

    def test_unmapped_access_faults_at_gap(self, space):
        mapping = space.mmap(PAGE_SIZE, fixed_address=0x200000)
        fault = space.check(mapping.start, 2 * PAGE_SIZE, AccessKind.READ)
        assert fault == mapping.end

    def test_access_spanning_two_mappings(self, space):
        a = space.mmap(PAGE_SIZE, fixed_address=0x300000)
        space.mmap(PAGE_SIZE, fixed_address=0x300000 + PAGE_SIZE)
        assert space.check(a.start, 2 * PAGE_SIZE, AccessKind.WRITE) is None

    def test_writable_prefix(self, space):
        mapping = space.mmap(2 * PAGE_SIZE)
        space.mprotect(mapping.start + PAGE_SIZE, PAGE_SIZE, Prot.READ)
        prefix = space.writable_prefix(
            mapping.start, 2 * PAGE_SIZE, AccessKind.WRITE
        )
        assert prefix == PAGE_SIZE

    def test_bad_size_rejected(self, space):
        with pytest.raises(ValueError):
            space.check(0, 0, AccessKind.READ)


class TestPrivilegedAccess:
    def test_peek_poke_ignore_protections(self, space):
        mapping = space.mmap(PAGE_SIZE, prot=Prot.NONE)
        space.poke(mapping.start, b"secret")
        assert space.peek(mapping.start, 6) == b"secret"

    def test_poke_fill(self, space):
        mapping = space.mmap(PAGE_SIZE)
        space.poke_fill(mapping.start, 0x7F, 16)
        assert space.peek(mapping.start, 16) == b"\x7f" * 16

    def test_view(self, space):
        mapping = space.mmap(PAGE_SIZE)
        space.view(mapping.start, "i4", 4)[:] = [1, 2, 3, 4]
        assert space.view(mapping.start, "i4", 4).tolist() == [1, 2, 3, 4]

    def test_unmapped_peek_rejected(self, space):
        with pytest.raises(AddressError):
            space.peek(0xDEAD000, 4)

    def test_peek_crossing_end_rejected(self, space):
        mapping = space.mmap(PAGE_SIZE, fixed_address=0x400000)
        with pytest.raises(AddressError):
            space.peek(mapping.start + PAGE_SIZE - 2, 4)
