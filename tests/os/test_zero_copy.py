"""The zero-copy data plane: views flow end-to-end without bytes copies.

``write_bytes``/``read_bytes`` style access must accept any C-contiguous
buffer and move it into (out of) the simulated backing without
materializing intermediate ``bytes`` objects.  Copies are asserted absent
two ways: **buffer identity** (a borrowed view tracks later writes to the
backing, which a copy cannot) and **allocation counting** (tracemalloc
peak during a large transfer stays far below the payload size).
"""

import tracemalloc

import numpy as np
import pytest

from repro.workloads.base import Application

SIZE = 4 * 1024 * 1024


@pytest.fixture
def process(machine):
    return Application(machine).process


def _peak_during(fn):
    """Peak traced allocation (bytes) while ``fn`` runs."""
    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


class TestWritePath:
    def test_write_accepts_memoryview(self, process):
        ptr = process.malloc(64)
        payload = np.arange(16, dtype=np.uint8)
        ptr.write_bytes(memoryview(payload), offset=8)
        assert ptr.read_bytes(16, offset=8) == payload.tobytes()

    def test_write_accepts_numpy_views(self, process):
        ptr = process.malloc(64)
        values = np.linspace(0.0, 1.0, 8, dtype=np.float32)
        ptr.write_bytes(values.view(np.uint8))
        assert ptr.read_array("f4", 8).tolist() == values.tolist()

    def test_large_write_allocates_nothing(self, process):
        ptr = process.malloc(SIZE)
        payload = memoryview(np.ones(SIZE, dtype=np.uint8))
        peak = _peak_during(lambda: ptr.write_bytes(payload))
        assert peak < SIZE // 2

    def test_device_memory_write_accepts_memoryview(self, machine):
        address = machine.gpu.memory.alloc(64)
        payload = np.arange(64, dtype=np.uint8)
        machine.gpu.memory.write(address, memoryview(payload))
        assert machine.gpu.memory.read(address, 64) == payload.tobytes()


class TestReadPath:
    def test_read_view_aliases_backing(self, process):
        ptr = process.malloc(64)
        ptr.write_bytes(b"\x01" * 64)
        view = ptr.read_view(16, offset=8)
        assert view.readonly
        assert bytes(view) == b"\x01" * 16
        # A copy would freeze the old contents; the borrowed view must
        # track this later write.
        ptr.write_bytes(b"\x02" * 16, offset=8)
        assert bytes(view) == b"\x02" * 16

    def test_read_into_fills_caller_buffer(self, process):
        ptr = process.malloc(64)
        payload = np.arange(64, dtype=np.uint8)
        ptr.write_bytes(payload)
        out = np.zeros(32, dtype=np.uint8)
        assert ptr.read_into(out, offset=16) == 32
        assert out.tolist() == payload[16:48].tolist()

    def test_large_read_into_allocates_nothing(self, process):
        ptr = process.malloc(SIZE)
        out = np.empty(SIZE, dtype=np.uint8)
        peak = _peak_during(lambda: ptr.read_into(out))
        assert peak < SIZE // 2


class TestFileIo:
    def test_file_write_accepts_memoryview(self, machine):
        app = Application(machine)
        payload = np.arange(256, dtype=np.uint8)
        with app.fs.open("out.bin", "w") as handle:
            handle.write(memoryview(payload))
        assert app.fs.data_of("out.bin") == payload.tobytes()

    def test_large_file_write_allocates_little(self, machine):
        app = Application(machine)
        ptr = app.process.malloc(SIZE)
        with app.fs.open("out.bin", "w") as handle:
            handle.write(b"")  # create before tracing
            peak = _peak_during(
                lambda: app.libc.write(handle, int(ptr), SIZE)
            )
        # The file buffer itself must grow by SIZE; anything much beyond
        # that would be an intermediate copy of the payload.
        assert peak < 2 * SIZE
        assert app.fs.size_of("out.bin") == SIZE
