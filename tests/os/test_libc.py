"""libc semantics: interposition table and un-restartable I/O.

The critical behaviour (Section 4.4): a ``read()`` into memory that faults
*after partial progress* cannot be restarted — the default implementation
must abort, because that failure is exactly what GMAC's interposed,
block-chunked I/O exists to avoid.
"""

import pytest

from repro.util.errors import IoError, SegmentationFault
from repro.os.paging import PAGE_SIZE, Prot


@pytest.fixture
def process(app):
    return app.process


@pytest.fixture
def libc(app):
    return app.libc


@pytest.fixture
def fs(app):
    return app.fs


class TestPlainIo:
    def test_read_into_plain_memory(self, process, libc, fs):
        fs.create("in.bin", b"abcdefgh")
        ptr = process.malloc(16)
        with fs.open("in.bin") as handle:
            assert libc.read(handle, int(ptr), 8) == 8
        assert ptr.read_bytes(8) == b"abcdefgh"

    def test_short_read_at_eof(self, process, libc, fs):
        fs.create("in.bin", b"abc")
        ptr = process.malloc(16)
        with fs.open("in.bin") as handle:
            assert libc.read(handle, int(ptr), 10) == 3

    def test_write_from_plain_memory(self, process, libc, fs):
        ptr = process.malloc(16)
        ptr.write_bytes(b"payload!")
        with fs.open("out.bin", "w") as handle:
            assert libc.write(handle, int(ptr), 8) == 8
        assert fs.data_of("out.bin") == b"payload!"

    def test_io_charges_categories(self, app, process, libc, fs):
        from repro.sim.tracing import Category

        fs.create("in.bin", bytes(PAGE_SIZE))
        ptr = process.malloc(PAGE_SIZE)
        with fs.open("in.bin") as handle:
            libc.read(handle, int(ptr), PAGE_SIZE)
        assert app.machine.accounting.totals[Category.IO_READ] > 0


class TestUnrestartableIo:
    def _arm_one_shot_repair(self, process):
        """Repair exactly the faulting page, like a lazy fault handler."""

        def handler(info):
            page = info.address - info.address % PAGE_SIZE
            process.address_space.mprotect(page, PAGE_SIZE, Prot.RW)
            return True

        process.signals.register(handler)

    def test_fault_at_offset_zero_is_restartable(self, process, libc, fs):
        fs.create("in.bin", bytes(PAGE_SIZE))
        mapping = process.address_space.mmap(PAGE_SIZE, prot=Prot.READ)
        self._arm_one_shot_repair(process)
        with fs.open("in.bin") as handle:
            assert libc.read(handle, mapping.start, PAGE_SIZE) == PAGE_SIZE

    def test_fault_after_progress_aborts(self, process, libc, fs):
        """Two protected pages: the first fault is repaired, progress is
        made, and the second fault aborts the read (data already consumed
        from the file cannot be replayed)."""
        fs.create("in.bin", bytes(2 * PAGE_SIZE))
        mapping = process.address_space.mmap(2 * PAGE_SIZE, prot=Prot.READ)
        self._arm_one_shot_repair(process)
        with fs.open("in.bin") as handle:
            with pytest.raises(IoError, match="not restartable"):
                libc.read(handle, mapping.start, 2 * PAGE_SIZE)
        # The handler DID run for the second page before the abort.
        assert process.signals.delivered == 2

    def test_write_aborts_symmetrically(self, process, libc, fs):
        mapping = process.address_space.mmap(2 * PAGE_SIZE, prot=Prot.NONE)

        def handler(info):
            page = info.address - info.address % PAGE_SIZE
            process.address_space.mprotect(page, PAGE_SIZE, Prot.READ)
            return True

        process.signals.register(handler)
        with fs.open("out.bin", "w") as handle:
            with pytest.raises(IoError, match="not restartable"):
                libc.write(handle, mapping.start, 2 * PAGE_SIZE)

    def test_unrepaired_fault_is_segfault(self, process, libc, fs):
        fs.create("in.bin", bytes(PAGE_SIZE))
        mapping = process.address_space.mmap(PAGE_SIZE, prot=Prot.READ)
        with fs.open("in.bin") as handle:
            with pytest.raises(SegmentationFault):
                libc.read(handle, mapping.start, PAGE_SIZE)


class TestBulkOps:
    def test_memset(self, process, libc):
        ptr = process.malloc(64)
        libc.memset(int(ptr), 0x42, 64)
        assert ptr.read_bytes(64) == b"\x42" * 64

    def test_memcpy(self, process, libc):
        src = process.malloc(64)
        dst = process.malloc(64)
        src.write_bytes(b"0123456789")
        libc.memcpy(int(dst), int(src), 10)
        assert dst.read_bytes(10) == b"0123456789"

    def test_bulk_ops_charge_cpu_time(self, app, process, libc):
        ptr = process.malloc(1 << 16)
        before = app.machine.clock.now
        libc.memset(int(ptr), 0, 1 << 16)
        assert app.machine.clock.now > before


class TestInterposition:
    def test_interpose_wraps_and_forwards(self, process, libc, fs):
        fs.create("in.bin", b"abcd")
        ptr = process.malloc(8)
        calls = []

        def factory(default):
            def wrapper(handle, address, size):
                calls.append(size)
                return default(handle, address, size)

            return wrapper

        previous = libc.interpose("read", factory)
        with fs.open("in.bin") as handle:
            libc.read(handle, int(ptr), 4)
        assert calls == [4]
        assert ptr.read_bytes(4) == b"abcd"
        libc.restore("read", previous)
        with fs.open("in.bin") as handle:
            libc.read(handle, int(ptr), 4)
        assert calls == [4]  # wrapper no longer active

    def test_unknown_name_rejected(self, libc):
        with pytest.raises(ValueError):
            libc.interpose("open", lambda default: default)
