"""The process access loop: fault, repair, retry, progressive commit."""

import numpy as np
import pytest

from repro.util.errors import SegmentationFault
from repro.os.paging import PAGE_SIZE, Prot, AccessKind


@pytest.fixture
def process(app):
    return app.process


class TestHeap:
    def test_malloc_returns_rw_pointer(self, process):
        ptr = process.malloc(100)
        ptr.write_bytes(b"hello")
        assert ptr.read_bytes(5) == b"hello"

    def test_free(self, process):
        ptr = process.malloc(100)
        process.free(ptr)
        with pytest.raises(SegmentationFault):
            ptr.read_bytes(1)

    def test_mallocs_are_disjoint(self, process):
        a = process.malloc(PAGE_SIZE)
        b = process.malloc(PAGE_SIZE)
        a.write_bytes(b"A" * 16)
        b.write_bytes(b"B" * 16)
        assert a.read_bytes(16) == b"A" * 16


class TestFaultRetry:
    def _protected_mapping(self, process, pages=4, prot=Prot.NONE):
        mapping = process.address_space.mmap(pages * PAGE_SIZE, prot=prot)
        return mapping

    def test_write_faults_and_retries_after_repair(self, process):
        mapping = self._protected_mapping(process, prot=Prot.READ)
        repaired = []

        def handler(info):
            process.address_space.mprotect(
                info.address - info.address % PAGE_SIZE, PAGE_SIZE, Prot.RW
            )
            repaired.append(info.address)
            return True

        process.signals.register(handler)
        process.write(mapping.start, b"x" * (2 * PAGE_SIZE))
        assert len(repaired) == 2  # one fault per protected page
        assert process.read(mapping.start, 3) == b"xxx"

    def test_unrepaired_fault_crashes(self, process):
        mapping = self._protected_mapping(process, prot=Prot.READ)
        process.signals.register(lambda info: True)  # claims, repairs nothing
        with pytest.raises(SegmentationFault):
            process.write(mapping.start, b"x")

    def test_progressive_commit_survives_demotion(self, process):
        """Handling a fault on page N may demote page N-1 to read-only
        (rolling-update's eviction); committed data must survive and the
        access must not re-trip on the demoted page."""
        mapping = self._protected_mapping(process, pages=3, prot=Prot.READ)
        faults = []

        def handler(info):
            page = info.address - info.address % PAGE_SIZE
            process.address_space.mprotect(page, PAGE_SIZE, Prot.RW)
            if faults:
                # Demote the previously-repaired page again.
                process.address_space.mprotect(faults[-1], PAGE_SIZE, Prot.READ)
            faults.append(page)
            return True

        process.signals.register(handler)
        payload = bytes(range(256)) * (3 * PAGE_SIZE // 256)
        process.write(mapping.start, payload)
        assert len(faults) == 3
        assert process.address_space.peek(mapping.start, len(payload)) == payload

    def test_read_fault_path(self, process):
        mapping = self._protected_mapping(process, prot=Prot.NONE)
        process.address_space.poke(mapping.start, b"hidden")

        def handler(info):
            process.address_space.mprotect(
                mapping.start, mapping.size, Prot.READ
            )
            return True

        process.signals.register(handler)
        assert process.read(mapping.start, 6) == b"hidden"

    def test_touch_faults_without_moving_data(self, process):
        mapping = self._protected_mapping(process, prot=Prot.READ)
        count = []

        def handler(info):
            process.address_space.mprotect(mapping.start, mapping.size, Prot.RW)
            count.append(info)
            return True

        process.signals.register(handler)
        process.touch(mapping.start, mapping.size, AccessKind.WRITE)
        assert len(count) == 1
        assert process.address_space.peek(mapping.start, 4) == bytes(4)

    def test_fill(self, process):
        ptr = process.malloc(64)
        process.fill(int(ptr), 0x5A, 64)
        assert ptr.read_bytes(64) == b"\x5a" * 64

    def test_unmapped_access_crashes(self, process):
        with pytest.raises(SegmentationFault):
            process.read(0xDEAD0000, 4)


class TestTypedHelpers:
    def test_array_roundtrip(self, process):
        ptr = process.malloc(64)
        values = np.arange(16, dtype=np.float32)
        ptr.write_array(values)
        assert np.array_equal(ptr.read_array("f4", 16), values)

    def test_array_offset(self, process):
        ptr = process.malloc(64)
        ptr.write_array(np.array([7], dtype=np.int64), offset=8)
        assert ptr.read_array("i8", 1, offset=8)[0] == 7

    def test_ptr_arithmetic(self, process):
        ptr = process.malloc(64)
        shifted = ptr + 8
        shifted.write_bytes(b"ab")
        assert ptr.read_bytes(2, offset=8) == b"ab"
        assert int(shifted) == int(ptr) + 8

    def test_ptr_equality_and_hash(self, process):
        ptr = process.malloc(64)
        assert ptr + 0 == ptr
        assert hash(ptr + 0) == hash(ptr)
        assert ptr + 1 != ptr

    def test_ptr_repr(self, process):
        assert "0x" in repr(process.malloc(16))
