"""Property-based testing of the address space against a flat page model.

A random sequence of mmap/munmap/mprotect/poke operations runs against both
the real :class:`AddressSpace` and a naive dict-of-pages model; protection
checks and data reads must agree everywhere.
"""

from hypothesis import given, settings, strategies as st

from repro.util.errors import AllocationError, ProtectionError
from repro.os.paging import PAGE_SIZE, Prot, AccessKind
from repro.os.address_space import AddressSpace

ARENA_BASE = 0x100000
ARENA_PAGES = 16

_operations = st.lists(
    st.one_of(
        st.tuples(st.just("mmap"), st.integers(0, ARENA_PAGES - 1),
                  st.integers(1, 4)),
        st.tuples(st.just("munmap"), st.integers(0, ARENA_PAGES - 1)),
        st.tuples(
            st.just("mprotect"),
            st.integers(0, ARENA_PAGES - 1),
            st.integers(1, 4),
            st.sampled_from([Prot.NONE, Prot.READ, Prot.RW]),
        ),
        st.tuples(st.just("poke"), st.integers(0, ARENA_PAGES - 1),
                  st.integers(0, 255)),
    ),
    max_size=40,
)


class _PageModel:
    """The oracle: a dict page-index -> (prot, mapping-id, first-byte)."""

    def __init__(self):
        self.pages = {}
        self.mapping_starts = {}  # page index -> page count

    def mmap(self, page, count):
        if any(page + i in self.pages for i in range(count)):
            raise AllocationError("overlap")
        for i in range(count):
            self.pages[page + i] = [Prot.RW, 0]
        self.mapping_starts[page] = count

    def munmap(self, page):
        count = self.mapping_starts.pop(page)
        for i in range(count):
            del self.pages[page + i]

    def owner_of(self, page):
        for start, count in self.mapping_starts.items():
            if start <= page < start + count:
                return start, count
        return None

    def mprotect(self, page, count, prot):
        owner = self.owner_of(page)
        if owner is None:
            raise ProtectionError("unmapped")
        start, size = owner
        if page + count > start + size:
            raise ProtectionError("crosses mapping end")
        for i in range(count):
            self.pages[page + i][0] = prot

    def poke(self, page, value):
        self.pages[page][1] = value

    def check(self, page, kind):
        entry = self.pages.get(page)
        if entry is None:
            return False
        return bool(entry[0] & kind.required_prot)


def _address(page):
    return ARENA_BASE + page * PAGE_SIZE


class TestAgainstPageModel:
    @given(_operations)
    @settings(max_examples=80, deadline=None)
    def test_operations_agree_with_model(self, operations):
        space = AddressSpace()
        model = _PageModel()
        for op in operations:
            if op[0] == "mmap":
                _, page, count = op
                if _address(page + count) > _address(ARENA_PAGES):
                    continue
                real_failed = model_failed = False
                try:
                    model.mmap(page, count)
                except AllocationError:
                    model_failed = True
                try:
                    space.mmap(count * PAGE_SIZE, fixed_address=_address(page))
                except AllocationError:
                    real_failed = True
                assert real_failed == model_failed
            elif op[0] == "munmap":
                _, page = op
                if page in model.mapping_starts:
                    model.munmap(page)
                    space.munmap(_address(page))
            elif op[0] == "mprotect":
                _, page, count, prot = op
                real_failed = model_failed = False
                try:
                    model.mprotect(page, count, prot)
                except ProtectionError:
                    model_failed = True
                try:
                    space.mprotect(_address(page), count * PAGE_SIZE, prot)
                except ProtectionError:
                    real_failed = True
                assert real_failed == model_failed
            elif op[0] == "poke":
                _, page, value = op
                if page in model.pages:
                    model.poke(page, value)
                    space.poke(_address(page), bytes([value]))

        # Final agreement over every page and both access kinds.
        for page in range(ARENA_PAGES):
            address = _address(page)
            for kind in (AccessKind.READ, AccessKind.WRITE):
                allowed = space.check(address, 1, kind) is None
                assert allowed == model.check(page, kind), (page, kind)
            if page in model.pages:
                assert space.peek(address, 1)[0] == model.pages[page][1]
