"""The simulated filesystem over the disk model."""

import numpy as np
import pytest

from repro.util.errors import IoError
from repro.os.filesystem import FileSystem
from repro.hw.disk import Disk
from repro.hw.specs import COMMODITY_DISK
from repro.sim.clock import SimClock


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def fs(clock):
    return FileSystem(Disk(COMMODITY_DISK, clock))


class TestFiles:
    def test_create_and_read(self, fs):
        fs.create("a.txt", b"hello")
        with fs.open("a.txt") as handle:
            assert handle.read(5) == b"hello"

    def test_read_past_end_truncates(self, fs):
        fs.create("a.txt", b"hi")
        with fs.open("a.txt") as handle:
            assert handle.read(100) == b"hi"
            assert handle.read(10) == b""

    def test_sequential_reads_advance(self, fs):
        fs.create("a.txt", b"abcdef")
        with fs.open("a.txt") as handle:
            assert handle.read(2) == b"ab"
            assert handle.read(2) == b"cd"
            assert handle.tell() == 4

    def test_write_mode_truncates(self, fs):
        fs.create("a.txt", b"old contents")
        with fs.open("a.txt", "w") as handle:
            handle.write(b"new")
        assert fs.data_of("a.txt") == b"new"

    def test_append_mode(self, fs):
        fs.create("a.txt", b"one")
        with fs.open("a.txt", "a") as handle:
            handle.write(b"two")
        assert fs.data_of("a.txt") == b"onetwo"

    def test_seek(self, fs):
        fs.create("a.txt", b"abcdef")
        with fs.open("a.txt") as handle:
            handle.seek(4)
            assert handle.read(2) == b"ef"
        with pytest.raises(IoError):
            fs.open("a.txt").seek(-1)

    def test_write_extends_with_zeros(self, fs):
        with fs.open("b.bin", "w") as handle:
            handle.seek(4)
            handle.write(b"x")
        assert fs.data_of("b.bin") == b"\x00\x00\x00\x00x"

    def test_missing_file(self, fs):
        with pytest.raises(IoError):
            fs.open("nope")
        with pytest.raises(IoError):
            fs.data_of("nope")

    def test_unlink(self, fs):
        fs.create("a.txt", b"x")
        fs.unlink("a.txt")
        assert not fs.exists("a.txt")

    def test_mode_enforcement(self, fs):
        fs.create("a.txt", b"x")
        with pytest.raises(IoError):
            fs.open("a.txt").write(b"y")
        with pytest.raises(IoError):
            fs.open("a.txt", "w").read(1)
        with pytest.raises(IoError):
            fs.open("a.txt", "rw")

    def test_closed_handle(self, fs):
        fs.create("a.txt", b"x")
        handle = fs.open("a.txt")
        handle.close()
        with pytest.raises(IoError):
            handle.read(1)

    def test_create_random_deterministic(self, fs):
        first = fs.create_random("r1.bin", 1024, seed=5)
        second = fs.create_random("r2.bin", 1024, seed=5)
        assert np.array_equal(first, second)
        assert fs.data_of("r1.bin") == fs.data_of("r2.bin")
        assert fs.size_of("r1.bin") == 1024

    def test_create_random_bad_size(self, fs):
        with pytest.raises(IoError):
            fs.create_random("r.bin", 1023)


class TestTiming:
    def test_reads_charge_disk_time(self, clock, fs):
        fs.create("a.bin", bytes(1024 * 1024))
        with fs.open("a.bin") as handle:
            handle.read(1024 * 1024)
        assert clock.now == pytest.approx(
            COMMODITY_DISK.read_seconds(1024 * 1024)
        )

    def test_writes_charge_disk_time(self, clock, fs):
        with fs.open("a.bin", "w") as handle:
            handle.write(bytes(1024 * 1024))
        assert clock.now == pytest.approx(
            COMMODITY_DISK.write_seconds(1024 * 1024)
        )

    def test_data_of_is_free(self, clock, fs):
        fs.create("a.bin", bytes(4096))
        fs.data_of("a.bin")
        assert clock.now == 0.0

    def test_empty_read_is_free(self, clock, fs):
        fs.create("a.bin", b"")
        fs.open("a.bin").read(10)
        assert clock.now == 0.0
