"""The link model: per-direction timelines, byte counters, bandwidth."""

import pytest

from repro.util.units import KB, MB, GB
from repro.sim.clock import SimClock
from repro.hw.specs import PCIE_2_0_X16, LinkSpec
from repro.hw.interconnect import Link, Direction


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def link(clock):
    return Link(PCIE_2_0_X16, clock)


class TestLinkSpec:
    def test_transfer_time_has_latency_floor(self):
        assert PCIE_2_0_X16.transfer_seconds(1) > PCIE_2_0_X16.latency_s

    def test_zero_size_is_free(self):
        assert PCIE_2_0_X16.transfer_seconds(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PCIE_2_0_X16.transfer_seconds(-1)

    def test_effective_bandwidth_monotone_in_size(self):
        sizes = [4 * KB, 64 * KB, 1 * MB, 32 * MB]
        bandwidths = [PCIE_2_0_X16.effective_bandwidth(s) for s in sizes]
        assert bandwidths == sorted(bandwidths)

    def test_effective_bandwidth_approaches_peak(self):
        bw = PCIE_2_0_X16.effective_bandwidth(512 * MB)
        assert bw == pytest.approx(PCIE_2_0_X16.h2d_bytes_per_s, rel=0.05)

    def test_small_transfers_are_latency_bound(self):
        bw = PCIE_2_0_X16.effective_bandwidth(4 * KB)
        assert bw < 0.1 * PCIE_2_0_X16.h2d_bytes_per_s

    def test_directional_asymmetry(self):
        assert PCIE_2_0_X16.transfer_seconds(MB, d2h=True) > (
            PCIE_2_0_X16.transfer_seconds(MB, d2h=False)
        )


class TestLink:
    def test_directions_are_independent(self, clock, link):
        up = link.transfer(MB, Direction.H2D)
        down = link.transfer(MB, Direction.D2H)
        # Full duplex: both start immediately.
        assert up.start == 0.0
        assert down.start == 0.0

    def test_same_direction_serializes(self, link):
        first = link.transfer(MB, Direction.H2D)
        second = link.transfer(MB, Direction.H2D)
        assert second.start == first.finish

    def test_sync_transfer_blocks(self, clock, link):
        link.transfer_sync(MB, Direction.H2D)
        assert clock.now == pytest.approx(
            PCIE_2_0_X16.transfer_seconds(MB)
        )

    def test_byte_counters(self, link):
        link.transfer(100, Direction.H2D)
        link.transfer(200, Direction.H2D)
        link.transfer(300, Direction.D2H)
        assert link.bytes_moved[Direction.H2D] == 300
        assert link.bytes_moved[Direction.D2H] == 300
        assert link.transfer_count[Direction.H2D] == 2

    def test_reset_counters(self, link):
        link.transfer(100, Direction.H2D)
        link.reset_counters()
        assert link.bytes_moved[Direction.H2D] == 0

    def test_drain(self, clock, link):
        link.transfer(MB, Direction.H2D)
        link.transfer(2 * MB, Direction.D2H)
        link.drain()
        assert clock.now == pytest.approx(
            PCIE_2_0_X16.transfer_seconds(2 * MB, d2h=True)
        )

    def test_pending_until(self, link):
        completion = link.transfer(MB, Direction.H2D)
        assert link.pending_until() == completion.finish

    def test_many_small_slower_than_one_big(self, clock):
        spec = LinkSpec("test", 10e-6, 1 * GB, 1 * GB)
        chunks = Link(spec, SimClock())
        for _ in range(64):
            chunks.transfer(MB // 64, Direction.H2D)
        chunked_time = chunks.drain()
        single = Link(spec, SimClock())
        single.transfer_sync(MB, Direction.H2D)
        assert chunked_time > single.clock.now
