"""GPU, CPU and disk cost models."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.tracing import TimeAccounting, Category
from repro.hw.specs import GTX280, OPTERON_2222, COMMODITY_DISK
from repro.hw.gpu import Gpu
from repro.hw.cpu import Cpu
from repro.hw.disk import Disk


@pytest.fixture
def clock():
    return SimClock()


class TestGpu:
    def test_launch_is_async(self, clock):
        gpu = Gpu(GTX280, clock)
        completion = gpu.launch(1e-3)
        assert completion.finish == pytest.approx(
            GTX280.issue_overhead_s + 1e-3
        )
        assert clock.now == 0.0

    def test_launches_serialize(self, clock):
        gpu = Gpu(GTX280, clock)
        first = gpu.launch(1e-3)
        second = gpu.launch(1e-3)
        assert second.start == first.finish

    def test_synchronize(self, clock):
        gpu = Gpu(GTX280, clock)
        gpu.launch(2e-3)
        gpu.synchronize()
        assert clock.now == pytest.approx(GTX280.issue_overhead_s + 2e-3)

    def test_kernel_seconds_compute_bound(self):
        gpu = Gpu(GTX280, SimClock())
        assert gpu.kernel_seconds(500e9, 0) == pytest.approx(1.0)

    def test_kernel_seconds_memory_bound(self):
        gpu = Gpu(GTX280, SimClock())
        seconds = gpu.kernel_seconds(1, GTX280.memory_bandwidth_bytes_per_s)
        assert seconds == pytest.approx(1.0)

    def test_kernel_count(self, clock):
        gpu = Gpu(GTX280, clock)
        gpu.launch(1e-6)
        gpu.launch(1e-6)
        assert gpu.kernels_launched == 2

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            GTX280.kernel_seconds(-1, 0)

    def test_device_memory_view(self, clock):
        gpu = Gpu(GTX280, clock)
        addr = gpu.memory.alloc(16)
        gpu.view(addr, "i4", 4)[:] = [1, 2, 3, 4]
        assert gpu.view(addr, "i4", 4).tolist() == [1, 2, 3, 4]


class TestCpu:
    def test_compute_time(self, clock):
        cpu = Cpu(OPTERON_2222, clock)
        cpu.compute(3e9)
        assert clock.now == pytest.approx(1.0)

    def test_touch_time(self, clock):
        cpu = Cpu(OPTERON_2222, clock)
        cpu.touch(OPTERON_2222.touch_bytes_per_s)
        assert clock.now == pytest.approx(1.0)

    def test_stream_custom_rate(self, clock):
        cpu = Cpu(OPTERON_2222, clock)
        cpu.stream(2e9, 2e9)
        assert clock.now == pytest.approx(1.0)

    def test_stream_bad_rate(self, clock):
        with pytest.raises(ValueError):
            Cpu(OPTERON_2222, clock).stream(10, 0)

    def test_busy(self, clock):
        Cpu(OPTERON_2222, clock).busy(0.5)
        assert clock.now == 0.5
        with pytest.raises(ValueError):
            Cpu(OPTERON_2222, clock).busy(-0.5)

    def test_charges_cpu_category(self, clock):
        accounting = TimeAccounting(clock)
        cpu = Cpu(OPTERON_2222, clock, accounting=accounting)
        cpu.compute(3e9)
        assert accounting.totals[Category.CPU] == pytest.approx(1.0)

    def test_counters(self, clock):
        cpu = Cpu(OPTERON_2222, clock)
        cpu.compute(100)
        cpu.touch(50)
        assert cpu.instructions_retired == 100
        assert cpu.bytes_touched == 50


class TestDisk:
    def test_read_time(self, clock):
        disk = Disk(COMMODITY_DISK, clock)
        disk.read(COMMODITY_DISK.read_bytes_per_s)
        assert clock.now == pytest.approx(1.0 + COMMODITY_DISK.latency_s)

    def test_write_time(self, clock):
        disk = Disk(COMMODITY_DISK, clock)
        disk.write(COMMODITY_DISK.write_bytes_per_s)
        assert clock.now == pytest.approx(1.0 + COMMODITY_DISK.latency_s)

    def test_operations_serialize(self, clock):
        disk = Disk(COMMODITY_DISK, clock)
        disk.read(1024)
        first_done = clock.now
        disk.write(1024)
        assert clock.now > first_done

    def test_byte_counters(self, clock):
        disk = Disk(COMMODITY_DISK, clock)
        disk.read(100)
        disk.write(200)
        assert disk.bytes_read == 100
        assert disk.bytes_written == 200

    def test_zero_size_free(self):
        assert COMMODITY_DISK.read_seconds(0) == 0.0
        assert COMMODITY_DISK.write_seconds(0) == 0.0
