"""Device memory: the first-fit, coalescing allocator + byte store."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.util.errors import AddressError, AllocationError
from repro.hw.memory import DeviceMemory, DEVICE_BASE


@pytest.fixture
def memory():
    return DeviceMemory(1 << 20)


class TestAllocator:
    def test_first_allocation_at_base(self, memory):
        assert memory.alloc(4096) == DEVICE_BASE

    def test_allocations_are_disjoint_and_aligned(self, memory):
        a = memory.alloc(100)
        b = memory.alloc(100)
        assert b >= a + 100
        assert a % memory.alignment == 0
        assert b % memory.alignment == 0

    def test_free_and_reuse(self, memory):
        a = memory.alloc(4096)
        memory.free(a)
        assert memory.alloc(4096) == a

    def test_first_fit_prefers_lowest_hole(self, memory):
        a = memory.alloc(4096)
        b = memory.alloc(4096)
        memory.alloc(4096)
        memory.free(a)
        memory.free(b)  # coalesces with a's hole
        assert memory.alloc(8192) == a

    def test_coalescing_forward_and_backward(self, memory):
        a = memory.alloc(4096)
        b = memory.alloc(4096)
        c = memory.alloc(4096)
        memory.free(a)
        memory.free(c)
        memory.free(b)  # merges all three
        memory.check_invariants()
        assert memory.alloc(3 * 4096) == a

    def test_oom(self):
        memory = DeviceMemory(8192)
        memory.alloc(8192)
        with pytest.raises(AllocationError):
            memory.alloc(1)

    def test_fragmentation_can_cause_failure(self):
        memory = DeviceMemory(3 * 4096)
        a = memory.alloc(4096)
        memory.alloc(4096)
        c = memory.alloc(4096)
        memory.free(a)
        memory.free(c)
        # 8KB are free, but split into two non-adjacent 4KB holes.
        assert memory.bytes_free == 2 * 4096
        with pytest.raises(AllocationError):
            memory.alloc(2 * 4096)

    def test_double_free_rejected(self, memory):
        a = memory.alloc(4096)
        memory.free(a)
        with pytest.raises(AllocationError):
            memory.free(a)

    def test_free_unknown_rejected(self, memory):
        with pytest.raises(AllocationError):
            memory.free(DEVICE_BASE + 12345)

    def test_nonpositive_size_rejected(self, memory):
        with pytest.raises(AllocationError):
            memory.alloc(0)
        with pytest.raises(AllocationError):
            memory.alloc(-5)

    def test_bytes_accounting(self, memory):
        assert memory.bytes_free == memory.capacity
        a = memory.alloc(4096)
        assert memory.bytes_in_use == 4096
        memory.free(a)
        assert memory.bytes_in_use == 0
        assert memory.bytes_free == memory.capacity

    def test_allocation_at(self, memory):
        a = memory.alloc(8192)
        interval = memory.allocation_at(a + 100)
        assert interval.start == a
        assert memory.allocation_at(a + 8192) is None

    @given(
        st.lists(
            st.one_of(
                st.tuples(st.just("alloc"), st.integers(1, 9000)),
                st.tuples(st.just("free"), st.integers(0, 20)),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=60)
    def test_allocator_invariants_under_random_ops(self, ops):
        memory = DeviceMemory(1 << 18)
        live = []
        for op, value in ops:
            if op == "alloc":
                try:
                    live.append(memory.alloc(value))
                except AllocationError:
                    pass
            elif live:
                memory.free(live.pop(value % len(live)))
            memory.check_invariants()


class TestDataAccess:
    def test_roundtrip(self, memory):
        a = memory.alloc(256)
        memory.write(a, b"hello world")
        assert memory.read(a, 11) == b"hello world"

    def test_fresh_memory_is_zeroed(self, memory):
        a = memory.alloc(64)
        assert memory.read(a, 64) == bytes(64)

    def test_fill(self, memory):
        a = memory.alloc(64)
        memory.fill(a, 0xAB, 64)
        assert memory.read(a, 64) == b"\xab" * 64

    def test_view_is_writable(self, memory):
        a = memory.alloc(16)
        view = memory.view(a, "f4", 4)
        view[:] = [1.0, 2.0, 3.0, 4.0]
        assert np.frombuffer(memory.read(a, 16), dtype="f4").tolist() == [
            1.0, 2.0, 3.0, 4.0,
        ]

    def test_offset_access(self, memory):
        a = memory.alloc(256)
        memory.write(a + 10, b"xyz")
        assert memory.read(a + 10, 3) == b"xyz"

    def test_out_of_allocation_access_rejected(self, memory):
        a = memory.alloc(100)  # padded to alignment
        interval = memory.allocation_at(a)
        with pytest.raises(AddressError):
            memory.read(interval.end, 1)
        with pytest.raises(AddressError):
            memory.read(a, interval.size + 1)

    def test_unallocated_access_rejected(self, memory):
        with pytest.raises(AddressError):
            memory.read(DEVICE_BASE + 500000, 4)

    def test_data_survives_neighbour_free(self, memory):
        a = memory.alloc(64)
        b = memory.alloc(64)
        memory.write(b, b"keep")
        memory.free(a)
        assert memory.read(b, 4) == b"keep"

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            DeviceMemory(0)
        with pytest.raises(ValueError):
            DeviceMemory(1024, alignment=3)
