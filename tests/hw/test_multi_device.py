"""Multi-device machine topology: disjoint heaps, per-device links."""

import pytest

from repro.hw.machine import (
    DEVICE_BASE_STRIDE,
    multi_device_system,
    reference_system,
)
from repro.hw.memory import DEVICE_BASE
from repro.hw.specs import HYPERTRANSPORT, PCIE_2_0_X16, QPI


class TestTopology:
    def test_one_gpu_and_link_per_device(self):
        machine = multi_device_system(devices=3)
        assert machine.multi_device
        assert len(machine.gpus) == 3
        assert len(machine.links) == 3
        assert len({id(link) for link in machine.links}) == 3

    def test_device_heaps_are_disjoint_and_strided(self):
        machine = multi_device_system(devices=3)
        bases = [gpu.memory.base for gpu in machine.gpus]
        assert bases == [
            DEVICE_BASE + index * DEVICE_BASE_STRIDE for index in range(3)
        ]
        capacity = machine.gpus[0].spec.memory_bytes
        assert capacity <= DEVICE_BASE_STRIDE, (
            "heaps must not overlap the next device's base"
        )

    def test_legacy_machines_stay_legacy(self):
        machine = reference_system()
        assert not machine.multi_device
        assert len(machine.links) == 1
        assert machine.link is machine.links[0]

    def test_at_least_one_device(self):
        with pytest.raises(ValueError):
            multi_device_system(devices=0)


class TestLinkRouting:
    def test_link_for_routes_per_device(self):
        machine = multi_device_system(devices=3)
        for index, gpu in enumerate(machine.gpus):
            assert machine.device_index(gpu) == index
            assert machine.link_for(gpu) is machine.links[index]

    def test_foreign_gpu_falls_back_to_primary(self):
        machine = multi_device_system(devices=2)
        other = reference_system()
        assert machine.device_index(other.gpu) == 0
        assert machine.link_for(other.gpu) is machine.links[0]

    def test_asymmetric_link_specs(self):
        specs = [PCIE_2_0_X16, QPI, HYPERTRANSPORT]
        machine = multi_device_system(devices=3, link_specs=specs)
        assert [link.spec for link in machine.links] == specs

    def test_link_spec_count_must_match(self):
        with pytest.raises(ValueError):
            multi_device_system(devices=3, link_specs=[PCIE_2_0_X16])

    def test_per_device_transfers_charge_their_own_link(self):
        machine = multi_device_system(devices=2)
        from repro.hw.interconnect import Direction

        machine.links[1].transfer(4096, Direction.H2D, label="t").wait()
        assert sum(machine.links[1].bytes_moved.values()) == 4096
        assert sum(machine.links[0].bytes_moved.values()) == 0
