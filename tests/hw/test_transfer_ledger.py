"""The transfer ledger: RunSet model tests + eager-vs-lazy parity.

Two layers (DESIGN.md §14):

* :class:`repro.hw.memory.RunSet` — the flat sorted-edge run tracker under
  both the dirty tracker and the synced map — is property-tested against a
  plain Python set of byte indices.
* The ledger itself is tested by *parity*: two machines, one deferring
  transfers and one eager, are driven through identical random interleavings
  of transfers, host writes, device writes, PCIe fault storms and device
  loss (``Gpu.reset`` via the driver's revive path); every host read and the
  final host-canonical/device bytes must match byte for byte.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cuda.driver import DriverContext
from repro.faults.plan import FaultPlan
from repro.hw.machine import reference_system
from repro.hw.memory import RunSet, ledger_bind, ledger_counters
from repro.os.paging import Prot
from repro.util.errors import TransferError
from repro.workloads.base import Application

# ---------------------------------------------------------------------------
# RunSet vs a model set of byte indices


_ops = st.lists(
    st.tuples(
        st.sampled_from(["add", "discard"]),
        st.integers(min_value=0, max_value=64),
        st.integers(min_value=0, max_value=64),
    ),
    max_size=24,
)


class TestRunSetModel:
    @settings(max_examples=200, deadline=None)
    @given(ops=_ops, qlo=st.integers(0, 64), qhi=st.integers(0, 64))
    def test_matches_index_set(self, ops, qlo, qhi):
        runs = RunSet()
        model = set()
        for op, a, b in ops:
            lo, hi = min(a, b), max(a, b)
            if op == "add":
                runs.add(lo, hi)
                model.update(range(lo, hi))
            else:
                runs.discard(lo, hi)
                model.difference_update(range(lo, hi))
        # Total coverage and full enumeration match the model.
        assert runs.total() == len(model)
        covered = set()
        previous_hi = None
        for lo, hi in runs:
            assert lo < hi
            if previous_hi is not None:
                # Runs are sorted, disjoint and coalesced (never touching).
                assert lo > previous_hi
            previous_hi = hi
            covered.update(range(lo, hi))
        assert covered == model
        # Windowed queries agree too.
        qlo, qhi = min(qlo, qhi), max(qlo, qhi)
        windowed = set()
        for lo, hi in runs.runs_in(qlo, qhi):
            assert qlo <= lo < hi <= qhi
            windowed.update(range(lo, hi))
        assert windowed == {i for i in model if qlo <= i < qhi}

    def test_clear_and_bool(self):
        runs = RunSet()
        assert not runs
        runs.add(3, 9)
        assert runs
        runs.clear()
        assert not runs and runs.total() == 0


# ---------------------------------------------------------------------------
# Eager-vs-lazy parity under random interleavings

SIZE = 8192


class _Rig:
    """One machine + driver context + one ledger-bound host mapping."""

    def __init__(self, defer, fault_rate=0.0):
        self.machine = reference_system(defer_transfers=defer)
        if fault_rate:
            self.machine.install_faults(
                FaultPlan(seed=7, transfer_fault_rate=fault_rate)
            )
        self.app = Application(self.machine)
        self.ctx = DriverContext(self.machine, self.app.process)
        self.space = self.app.process.address_space
        self.mapping = self.space.mmap(SIZE, prot=Prot.RW)
        self.host = self.mapping.start
        self.dev = self.ctx.mem_alloc(SIZE)
        if defer:
            # Mirror Manager._bind_transfer_plane: zeroed alloc and zeroed
            # mmap start out byte-identical, so the binding opens synced.
            ledger_bind(
                self.ctx.gpu.memory, self.dev, self.mapping,
                self.host, SIZE, synced=True,
            )

    def apply(self, op):
        """Apply one step; returns observable bytes (or None)."""
        kind = op[0]
        try:
            if kind == "h2d":
                _, lo, length = op
                self.ctx.memcpy_h2d(self.dev + lo, self.host + lo, length)
            elif kind == "d2h":
                _, lo, length = op
                self.ctx.memcpy_d2h(self.host + lo, self.dev + lo, length)
            elif kind == "host_write":
                _, lo, length, value = op
                self.space.poke_fill(self.host + lo, value, length)
            elif kind == "host_read":
                _, lo, length = op
                return self.space.peek(self.host + lo, length)
            elif kind == "dev_fill":
                _, lo, length, value = op
                self.ctx.gpu.memory.fill(self.dev + lo, value, length)
            elif kind == "dev_read":
                _, lo, length = op
                return self.ctx.gpu.memory.read(self.dev + lo, length)
            elif kind == "lose_device":
                # Device loss mid-stream: all on-board bytes are gone; the
                # driver revives the device and replays the allocation at
                # its old address (zeroed, like recovery does before its
                # host-canonical flush).
                self.ctx.revive()
                self.dev = self.ctx.restore_allocation(self.dev, SIZE)
        except TransferError as error:
            return ("fault", error.direction, error.size)
        return None

    def final_state(self):
        host = self.space.peek(self.host, SIZE)
        device = self.ctx.gpu.memory.read(self.dev, SIZE)
        return host, bytes(device)


_extent = st.tuples(
    st.integers(min_value=0, max_value=SIZE - 1),
    st.integers(min_value=1, max_value=SIZE),
).map(lambda pair: (pair[0], min(pair[1], SIZE - pair[0])))

_step = st.one_of(
    _extent.map(lambda e: ("h2d", e[0], e[1])),
    _extent.map(lambda e: ("d2h", e[0], e[1])),
    st.tuples(_extent, st.integers(1, 255)).map(
        lambda t: ("host_write", t[0][0], t[0][1], t[1])
    ),
    _extent.map(lambda e: ("host_read", e[0], e[1])),
    st.tuples(_extent, st.integers(1, 255)).map(
        lambda t: ("dev_fill", t[0][0], t[0][1], t[1])
    ),
    _extent.map(lambda e: ("dev_read", e[0], e[1])),
    st.just(("lose_device",)),
)


class TestInterleavingParity:
    @settings(max_examples=60, deadline=None)
    @given(ops=st.lists(_step, min_size=1, max_size=30))
    def test_random_interleavings_match_eager(self, ops):
        lazy, eager = _Rig(defer=True), _Rig(defer=False)
        for op in ops:
            assert lazy.apply(op) == eager.apply(op), op
        assert lazy.final_state() == eager.final_state()

    @settings(max_examples=25, deadline=None)
    @given(ops=st.lists(_step, min_size=1, max_size=20))
    def test_fault_storm_parity(self, ops):
        """A seeded PCIe fault storm fires at identical points in both
        modes (deferred transfers fault at charge time) and leaves
        identical observable state."""
        lazy = _Rig(defer=True, fault_rate=0.3)
        eager = _Rig(defer=False, fault_rate=0.3)
        for op in ops:
            assert lazy.apply(op) == eager.apply(op), op
        assert lazy.final_state() == eager.final_state()

    def test_materialization_on_dying_device(self):
        """The PR-4 reset-parity extension: entries recorded against a
        device that is then lost must still materialize the bytes the
        device held at record time."""
        lazy, eager = _Rig(defer=True), _Rig(defer=False)
        for rig in (lazy, eager):
            rig.ctx.gpu.memory.fill(rig.dev, 0xAB, SIZE)
            rig.ctx.memcpy_d2h(rig.host, rig.dev, SIZE)  # record / copy
            rig.ctx.revive()                             # device dies
            rig.dev = rig.ctx.restore_allocation(rig.dev, SIZE)
        # The host observes the recorded bytes, not the reset device's.
        assert (lazy.space.peek(lazy.host, SIZE)
                == eager.space.peek(eager.host, SIZE)
                == b"\xab" * SIZE)
        assert lazy.final_state() == eager.final_state()

    def test_device_write_cow_protects_recorded_extent(self):
        """A device write after a recorded D2H snapshots the overlapping
        source runs: the host must later observe the *recorded* bytes."""
        lazy = _Rig(defer=True)
        before = ledger_counters()["cow_snapshots"]
        lazy.ctx.gpu.memory.fill(lazy.dev, 0x11, SIZE)
        lazy.ctx.memcpy_d2h(lazy.host, lazy.dev, SIZE)   # record
        lazy.ctx.gpu.memory.fill(lazy.dev, 0x22, SIZE)   # overwrite source
        assert ledger_counters()["cow_snapshots"] > before
        assert lazy.space.peek(lazy.host, SIZE) == b"\x11" * SIZE
        assert bytes(lazy.ctx.gpu.memory.read(lazy.dev, SIZE)) \
            == b"\x22" * SIZE

    def test_elision_without_observation(self):
        """A recorded transfer whose destination is overwritten before any
        read dies whole — zero bytes ever move for it."""
        lazy = _Rig(defer=True)
        counters = ledger_counters()
        elided = counters["transfers_elided"]
        materialized = counters["bytes_materialized"]
        lazy.ctx.gpu.memory.fill(lazy.dev, 0x33, SIZE)
        lazy.ctx.memcpy_d2h(lazy.host, lazy.dev, SIZE)        # record
        lazy.space.poke_fill(lazy.host, 0x44, SIZE)           # clobber
        counters = ledger_counters()
        assert counters["transfers_elided"] == elided + 1
        assert counters["bytes_materialized"] == materialized
        assert lazy.space.peek(lazy.host, SIZE) == b"\x44" * SIZE
