"""Machine assembly: the Figure 1 reference system and variants."""

import pytest

from repro.util.units import GB
from repro.hw.machine import Machine, reference_system, integrated_system
from repro.hw.specs import GTX280, PCIE_2_0_X16, HYPERTRANSPORT


class TestReferenceSystem:
    def test_components_share_one_clock(self):
        machine = reference_system()
        assert machine.cpu.clock is machine.clock
        assert machine.gpu.clock is machine.clock
        assert machine.link.clock is machine.clock
        assert machine.disk.clock is machine.clock

    def test_testbed_specs(self):
        machine = reference_system()
        assert machine.gpu.spec is GTX280
        assert machine.gpu.memory.capacity == 1 * GB
        assert machine.link.spec is PCIE_2_0_X16
        assert machine.cpu.spec.clock_hz == 3.0e9

    def test_not_integrated(self):
        assert reference_system().integrated is False

    def test_elapsed_tracks_clock(self):
        machine = reference_system()
        machine.clock.advance(1.5)
        assert machine.elapsed() == 1.5

    def test_multi_gpu(self):
        machine = reference_system(gpu_count=2)
        assert len(machine.gpus) == 2
        # Both GPUs expose the same (overlapping) device address range --
        # the Section 4.2 collision hazard.
        assert machine.gpus[0].memory.base == machine.gpus[1].memory.base

    def test_zero_gpus_rejected(self):
        with pytest.raises(ValueError):
            Machine(gpu_count=0)

    def test_trace_flag(self):
        assert reference_system(trace=True).trace is not None
        assert reference_system().trace is None


class TestIntegratedSystem:
    def test_flag_and_link(self):
        machine = integrated_system()
        assert machine.integrated is True
        assert machine.link.spec is HYPERTRANSPORT

    def test_reset_transfer_counters(self):
        machine = reference_system()
        from repro.hw.interconnect import Direction

        machine.link.transfer(100, Direction.H2D)
        machine.reset_transfer_counters()
        assert machine.link.bytes_moved[Direction.H2D] == 0
