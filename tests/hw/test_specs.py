"""Hardware preset sanity: the Section 5 testbed and Figure 2 lines."""

import pytest

from repro.util.units import GB, MB
from repro.hw.specs import (
    PCIE_2_0_X16,
    HYPERTRANSPORT,
    QPI,
    GTX295_MEMORY,
    GTX280,
    OPTERON_2222,
    COMMODITY_DISK,
    CpuSpec,
    GpuSpec,
    DiskSpec,
)


class TestTestbed:
    def test_gpu_is_the_papers_g280(self):
        assert GTX280.memory_bytes == 1 * GB  # "1GB of device memory"
        assert "G280" in GTX280.name

    def test_cpu_is_a_3ghz_opteron(self):
        assert OPTERON_2222.clock_hz == 3.0e9

    def test_figure2_capacity_ordering(self):
        # PCIe < HyperTransport < QPI << on-board GDDR, as drawn.
        assert (
            PCIE_2_0_X16.h2d_bytes_per_s
            < HYPERTRANSPORT.h2d_bytes_per_s
            < QPI.h2d_bytes_per_s
            < GTX295_MEMORY.h2d_bytes_per_s
        )

    def test_gpu_memory_bandwidth_dwarfs_pcie(self):
        # The Section 2.2 argument for hosting data on the accelerator.
        assert GTX280.memory_bandwidth_bytes_per_s > (
            20 * PCIE_2_0_X16.h2d_bytes_per_s
        )

    def test_pcie_latency_dominates_page_transfers(self):
        four_kb = PCIE_2_0_X16.transfer_seconds(4096)
        assert four_kb > 0.9 * PCIE_2_0_X16.latency_s


class TestSpecValidation:
    def test_cpu_negative_inputs(self):
        with pytest.raises(ValueError):
            OPTERON_2222.compute_seconds(-1)
        with pytest.raises(ValueError):
            OPTERON_2222.touch_seconds(-1)

    def test_gpu_kernel_model_max_rule(self):
        compute_bound = GTX280.kernel_seconds(GTX280.work_units_per_s, 0)
        memory_bound = GTX280.kernel_seconds(
            0, GTX280.memory_bandwidth_bytes_per_s
        )
        both = GTX280.kernel_seconds(
            GTX280.work_units_per_s, GTX280.memory_bandwidth_bytes_per_s
        )
        assert both == pytest.approx(max(compute_bound, memory_bound))

    def test_disk_negative_inputs(self):
        with pytest.raises(ValueError):
            COMMODITY_DISK.read_seconds(-1)
        with pytest.raises(ValueError):
            COMMODITY_DISK.write_seconds(-1)

    def test_disk_latency_floor(self):
        assert COMMODITY_DISK.read_seconds(1) > COMMODITY_DISK.latency_s

    def test_specs_are_frozen(self):
        with pytest.raises(Exception):
            GTX280.memory_bytes = 0
