"""The experiment plumbing: caching and quick parameters."""

import pytest

from repro.experiments import common
from repro.workloads.parboil import PARBOIL


class TestRunCache:
    def test_identical_requests_hit_the_cache(self):
        common.clear_cache()
        first = common.run_parboil("cp", "cuda", quick=True)
        second = common.run_parboil("cp", "cuda", quick=True)
        assert first is second
        common.clear_cache()

    def test_distinct_configurations_do_not_collide(self):
        common.clear_cache()
        lazy = common.run_parboil("cp", "gmac", protocol="lazy", quick=True)
        rolling = common.run_parboil("cp", "gmac", protocol="rolling",
                                     quick=True)
        assert lazy is not rolling
        assert lazy.protocol == "lazy"
        assert rolling.protocol == "rolling"
        common.clear_cache()

    def test_protocol_options_are_part_of_the_key(self):
        common.clear_cache()
        small = common.run_parboil(
            "cp", "gmac", quick=True,
            protocol_options={"block_size": 4096},
        )
        default = common.run_parboil("cp", "gmac", quick=True)
        assert small is not default
        common.clear_cache()

    def test_cuda_mode_ignores_protocol_in_key(self):
        common.clear_cache()
        a = common.run_parboil("cp", "cuda", protocol="lazy", quick=True)
        b = common.run_parboil("cp", "cuda", protocol="rolling", quick=True)
        assert a is b
        common.clear_cache()


class TestQuickParams:
    def test_quick_workloads_are_smaller(self):
        for name in PARBOIL:
            quick = common.make_workload(name, quick=True)
            full = common.make_workload(name, quick=False)
            quick_footprint = sum(
                getattr(quick, attribute)
                for attribute in dir(quick)
                if attribute.endswith("_bytes")
                and isinstance(getattr(quick, attribute), int)
            )
            full_footprint = sum(
                getattr(full, attribute)
                for attribute in dir(full)
                if attribute.endswith("_bytes")
                and isinstance(getattr(full, attribute), int)
            )
            assert quick_footprint <= full_footprint, name

    def test_protocol_order_matches_figures(self):
        assert common.PROTOCOL_ORDER == ("batch", "lazy", "rolling")
