"""The experiment plumbing: caching and quick parameters."""

import pytest

from repro.experiments import common
from repro.workloads.parboil import PARBOIL


class TestRunCache:
    def test_identical_requests_hit_the_cache(self):
        common.clear_cache()
        first = common.run_parboil("cp", "cuda", quick=True)
        second = common.run_parboil("cp", "cuda", quick=True)
        assert first is second
        common.clear_cache()

    def test_distinct_configurations_do_not_collide(self):
        common.clear_cache()
        lazy = common.run_parboil("cp", "gmac", protocol="lazy", quick=True)
        rolling = common.run_parboil("cp", "gmac", protocol="rolling",
                                     quick=True)
        assert lazy is not rolling
        assert lazy.protocol == "lazy"
        assert rolling.protocol == "rolling"
        common.clear_cache()

    def test_protocol_options_are_part_of_the_key(self):
        common.clear_cache()
        small = common.run_parboil(
            "cp", "gmac", quick=True,
            protocol_options={"block_size": 4096},
        )
        default = common.run_parboil("cp", "gmac", quick=True)
        assert small is not default
        common.clear_cache()

    def test_cuda_mode_ignores_protocol_in_key(self):
        common.clear_cache()
        a = common.run_parboil("cp", "cuda", protocol="lazy", quick=True)
        b = common.run_parboil("cp", "cuda", protocol="rolling", quick=True)
        assert a is b
        common.clear_cache()


class TestQuickParams:
    def test_quick_workloads_are_smaller(self):
        for name in PARBOIL:
            quick = common.make_workload(name, quick=True)
            full = common.make_workload(name, quick=False)
            quick_footprint = sum(
                getattr(quick, attribute)
                for attribute in dir(quick)
                if attribute.endswith("_bytes")
                and isinstance(getattr(quick, attribute), int)
            )
            full_footprint = sum(
                getattr(full, attribute)
                for attribute in dir(full)
                if attribute.endswith("_bytes")
                and isinstance(getattr(full, attribute), int)
            )
            assert quick_footprint <= full_footprint, name

    def test_protocol_order_matches_figures(self):
        assert common.PROTOCOL_ORDER == ("batch", "lazy", "rolling")


class TestScalePresets:
    def test_no_override_means_no_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert common.active_scale() is None
        assert common.params_for("cp", quick=True) == common.QUICK_PARAMS["cp"]
        assert common.params_for("cp", quick=False) is None

    def test_unknown_scale_is_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "huge")
        with pytest.raises(KeyError):
            common.active_scale()

    @pytest.mark.parametrize("scale", sorted(common.SCALE_PARAMS))
    def test_scale_overrides_the_quick_flag(self, scale, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", scale)
        assert common.active_scale() == scale
        preset = common.SCALE_PARAMS[scale]
        for name in PARBOIL:
            assert common.params_for(name, quick=True) == preset.get(name)
            assert common.params_for(name, quick=False) == preset.get(name)

    def test_paper_params_dominate_quick(self):
        """Every paper preset is at least as large as its quick twin, so
        ``--scale paper`` strictly grows the simulated footprint."""
        for name, quick in common.QUICK_PARAMS.items():
            paper = common.PAPER_PARAMS[name]
            assert set(paper) == set(quick), name
            for key, value in quick.items():
                assert paper[key] >= value, (name, key)

    def test_paper_scale_changes_the_spec_key(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        quick = common.parboil_spec("cp", "gmac", quick=True)
        monkeypatch.setenv("REPRO_SCALE", "paper")
        paper = common.parboil_spec("cp", "gmac", quick=True)
        assert paper.key() != quick.key()
        assert paper.params == tuple(sorted(common.PAPER_PARAMS["cp"].items()))
