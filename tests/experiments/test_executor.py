"""The sweep executor: determinism, caching and spec expansion.

The engine's contract (ISSUE acceptance criteria):

* a parallel sweep produces results byte-identical to a serial one —
  ``Pool.map`` merges outcomes in submission order, so worker scheduling
  never leaks into the tables;
* a warm persistent cache satisfies a rerun with **zero** workload
  executions (asserted via the process-global execution counter);
* expansion deduplicates specs shared between figures (fig7 and fig8
  project the same protocol runs).
"""

import pytest

from repro.experiments import common
from repro.experiments.cache import ResultCache
from repro.experiments.executor import ExperimentExecutor, expand
from repro.experiments.spec import RunSpec
from repro.workloads import base as workload_base

EXPERIMENTS = ["fig7", "fig12"]


def _run_sweep(jobs, cache_dir):
    """One fresh sweep of EXPERIMENTS: empty memory, private disk cache."""
    common.clear_cache()
    executor = ExperimentExecutor(jobs=jobs, cache_dir=cache_dir)
    results = executor.run_many(EXPERIMENTS, quick=True)
    return executor, {
        experiment_id: result.to_json() for experiment_id, result in results
    }


class TestDeterminism:
    def test_parallel_matches_serial(self, tmp_path):
        _, serial = _run_sweep(jobs=1, cache_dir=tmp_path / "serial")
        executor, parallel = _run_sweep(jobs=4, cache_dir=tmp_path / "parallel")
        common.clear_cache()
        assert executor.stats["executed"] > 0  # the pool really ran
        assert parallel == serial

    def test_pool_merge_is_spec_ordered(self, tmp_path):
        common.clear_cache()
        executor = ExperimentExecutor(jobs=4, cache_dir=tmp_path)
        specs = expand(EXPERIMENTS, quick=True)
        with executor.cache_context():
            executor.prime(specs)
            outcomes = [common.peek(spec) for spec in specs]
        common.clear_cache()
        assert all(outcome is not None for outcome in outcomes)
        for spec, outcome in zip(specs, outcomes):
            assert outcome.spec == spec


class TestWarmCache:
    def test_warm_rerun_executes_nothing(self, tmp_path):
        _, cold = _run_sweep(jobs=1, cache_dir=tmp_path)
        common.clear_cache()  # drop memory: only the disk cache remains
        before = workload_base.EXECUTIONS
        _, warm = _run_sweep(jobs=1, cache_dir=tmp_path)
        common.clear_cache()
        assert workload_base.EXECUTIONS == before
        assert warm == cold

    def test_no_cache_executes_again(self, tmp_path):
        executor, _ = _run_sweep(jobs=1, cache_dir=tmp_path)
        first = dict(executor.stats)
        common.clear_cache()
        before = workload_base.EXECUTIONS
        common.clear_cache()
        uncached = ExperimentExecutor(jobs=1, use_cache=False)
        assert uncached.cache is None
        uncached.run_many(EXPERIMENTS, quick=True)
        common.clear_cache()
        assert uncached.stats["executed"] == first["expanded"]
        assert workload_base.EXECUTIONS == before + first["expanded"]


class TestExpansion:
    def test_expand_deduplicates_shared_specs(self):
        fig7 = expand(["fig7"], quick=True)
        fig8 = expand(["fig8"], quick=True)
        union = expand(["fig7", "fig8"], quick=True)
        assert len(union) == len(set(union))
        # fig8's protocol comparison is a subset of fig7's sweep.
        assert len(union) < len(fig7) + len(fig8)

    def test_expand_preserves_first_seen_order(self):
        union = expand(["fig7", "fig12"], quick=True)
        fig7 = expand(["fig7"], quick=True)
        assert union[: len(fig7)] == fig7

    def test_experiments_without_hook_expand_empty(self):
        assert expand(["tab2"], quick=True) == []


class TestResultCache:
    def _spec(self):
        return RunSpec.make(
            workload="vecadd", params={"elements": 4096}, protocol="rolling",
            layer="driver",
        )

    def test_roundtrip(self, tmp_path):
        spec = self._spec()
        cache = ResultCache(tmp_path)
        assert cache.get(spec) is None
        outcome = spec.execute()
        cache.put(spec, outcome)
        assert len(cache) == 1
        loaded = cache.get(spec)
        assert loaded.elapsed == outcome.elapsed
        assert loaded.breakdown == outcome.breakdown
        assert loaded.spec == spec

    def test_source_fingerprint_addresses_entries(self, tmp_path, monkeypatch):
        spec = self._spec()
        cache = ResultCache(tmp_path)
        cache.put(spec, spec.execute())
        monkeypatch.setattr(
            "repro.experiments.cache.source_fingerprint", lambda: "changed"
        )
        assert cache.get(spec) is None  # old entry no longer addressed

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        spec = self._spec()
        cache = ResultCache(tmp_path)
        cache.put(spec, spec.execute())
        for path in cache.root.glob("*.pkl"):
            path.write_bytes(b"not a pickle")
        assert cache.get(spec) is None
