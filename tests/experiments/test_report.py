"""The markdown reproduction report."""

import pytest

from repro.experiments.report import build_report, write_report, SECTION_ORDER
from repro.experiments.registry import REGISTRY


class TestReport:
    @pytest.fixture(scope="class")
    def report(self):
        # A small subset keeps the test fast; the full report is exercised
        # by the CLI path in production runs.
        return build_report(
            quick=True, experiment_ids=["fig2", "motivation", "tab2"]
        )

    def test_has_title_and_sections(self, report):
        assert report.startswith("# GMAC/ADSM reproduction report")
        assert "## fig2" in report
        assert "## motivation" in report

    def test_contains_paper_claims(self, report):
        assert "**Paper claim:**" in report

    def test_markdown_tables_wellformed(self, report):
        for line in report.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")

    def test_section_order_covers_registry(self):
        assert set(SECTION_ORDER) == set(REGISTRY)

    def test_write_report(self, tmp_path):
        path = tmp_path / "report.md"
        text = write_report(path, quick=True,
                            experiment_ids=["motivation"])
        assert path.read_text() == text
        assert "motivation" in text

    def test_cli_report_mode(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        # Patch: restrict to a fast subset via a tiny wrapper is overkill;
        # the quick full report is still a real end-to-end run, so keep it
        # to the CLI contract only when explicitly requested.
        output = tmp_path / "out.md"
        assert main(["report", "--quick", "--output", str(output)]) == 0
        assert output.exists()
        assert "wrote" in capsys.readouterr().out
