"""Every experiment regenerates with the paper's qualitative shape.

These are the repro gates: each test pins down the claim the paper makes
about the corresponding table/figure, on quick-sized runs.
"""

import pytest

from repro.experiments.registry import REGISTRY, run_experiment


@pytest.fixture(scope="module")
def results():
    """Run every experiment once (quick mode) and share the results."""
    return {
        experiment_id: run_experiment(experiment_id, quick=True)
        for experiment_id in REGISTRY
    }


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        assert {"fig2", "tab2", "fig7", "fig8", "fig9", "fig10", "fig11",
                "fig12", "porting", "motivation", "ablations"} <= set(REGISTRY)

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_render_is_printable(self, results):
        for result in results.values():
            text = result.render()
            assert result.experiment_id in text
            assert "paper:" in text


class TestFigure2(object):
    def test_pcie_breakpoints(self, results):
        rows = results["fig2"].row_map("benchmark")
        column = results["fig2"].headers.index("maxIPC:PCIe 2.0 x16")
        assert rows["bt"][column] == pytest.approx(50, rel=0.2)
        assert rows["ua"][column] == pytest.approx(5, rel=0.2)

    def test_gpu_memory_dwarfs_interconnects(self, results):
        fig2 = results["fig2"]
        pcie = fig2.headers.index("maxIPC:PCIe 2.0 x16")
        gpu = fig2.headers.index("maxIPC:NVIDIA GTX295 Memory")
        for row in fig2.rows:
            assert row[gpu] > 10 * row[pcie]


class TestMotivation:
    def test_99_percent_in_kernels(self, results):
        for row in results["motivation"].rows:
            assert row[-1] == pytest.approx(0.99, abs=0.03)


class TestFigure7:
    def test_all_verified(self, results):
        assert all(row[-1] == "yes" for row in results["fig7"].rows)

    def test_batch_always_slowest(self, results):
        fig7 = results["fig7"]
        batch = fig7.headers.index("batch slow-down")
        lazy = fig7.headers.index("lazy slow-down")
        rolling = fig7.headers.index("rolling slow-down")
        for row in fig7.rows:
            assert row[batch] >= row[lazy] * 0.99
            assert row[batch] >= row[rolling] * 0.99

    def test_pns_and_rpes_blow_up_under_batch(self, results):
        rows = results["fig7"].row_map("benchmark")
        batch = results["fig7"].headers.index("batch slow-down")
        assert rows["pns"][batch] > 5
        assert rows["rpes"][batch] > 3
        assert rows["pns"][batch] > rows["rpes"][batch]

    def test_lazy_and_rolling_match_cuda(self, results):
        fig7 = results["fig7"]
        for header in ("lazy slow-down", "rolling slow-down"):
            column = fig7.headers.index(header)
            for row in fig7.rows:
                assert row[column] < 1.6, (row[0], header, row[column])


class TestFigure8:
    def test_fractions_at_most_one(self, results):
        for row in results["fig8"].rows:
            for value in row[1:]:
                assert 0.0 <= value <= 1.2

    def test_iterative_benchmarks_move_tiny_fractions(self, results):
        rows = results["fig8"].row_map("benchmark")
        for name in ("pns", "rpes"):
            assert rows[name][1] < 0.1  # lazy h2d / batch
            assert rows[name][3] < 0.1  # rolling h2d / batch

    def test_mriq_rolling_reads_back_less_than_lazy(self, results):
        rows = results["fig8"].row_map("benchmark")
        lazy_d2h = results["fig8"].headers.index("lazy d2h/batch")
        rolling_d2h = results["fig8"].headers.index("rolling d2h/batch")
        assert rows["mri-q"][rolling_d2h] < rows["mri-q"][lazy_d2h]


class TestFigure9:
    def test_all_verified(self, results):
        assert all(row[-1] == "yes" for row in results["fig9"].rows)

    def test_mid_blocks_beat_lazy_at_large_volumes(self, results):
        fig9 = results["fig9"]
        lazy = fig9.headers.index("lazy ms")
        mid = fig9.headers.index("rolling 256KB ms")
        last = fig9.rows[-1]
        assert last[mid] <= last[lazy]

    def test_tiny_blocks_lose(self, results):
        fig9 = results["fig9"]
        tiny = fig9.headers.index("rolling 4KB ms")
        mid = fig9.headers.index("rolling 256KB ms")
        for row in fig9.rows:
            assert row[tiny] > row[mid]


class TestFigure10:
    def test_shares_sum_to_100(self, results):
        for row in results["fig10"].rows:
            assert sum(row[1:]) == pytest.approx(100.0, abs=0.5)

    def test_signal_overhead_small(self, results):
        """The paper: signal handling 'always below 2%'."""
        signal = results["fig10"].headers.index("Signal%")
        for row in results["fig10"].rows:
            assert row[signal] < 3.0, (row[0], row[signal])

    def test_mri_benchmarks_are_ioread_heavy(self, results):
        rows = results["fig10"].row_map("benchmark")
        ioread = results["fig10"].headers.index("IORead%")
        for name in ("mri-fhd", "mri-q"):
            assert rows[name][ioread] > 25.0

    def test_cpu_gpu_dominate_compute_benchmarks(self, results):
        rows = results["fig10"].row_map("benchmark")
        gpu = results["fig10"].headers.index("GPU%")
        cpu = results["fig10"].headers.index("CPU%")
        assert rows["tpacf"][gpu] + rows["tpacf"][cpu] > 50.0


class TestFigure11:
    def test_all_verified(self, results):
        assert all(row[-1] == "yes" for row in results["fig11"].rows)

    def test_bandwidth_rises_to_max_at_32mb(self, results):
        fig11 = results["fig11"]
        h2d = fig11.headers.index("H2D GB/s")
        bandwidths = [row[h2d] for row in fig11.rows]
        assert bandwidths == sorted(bandwidths)
        assert bandwidths[-1] > 5.0

    def test_4kb_blocks_are_worst_for_transfers(self, results):
        fig11 = results["fig11"]
        cpu_to_gpu = fig11.headers.index("CPU-to-GPU ms")
        values = [row[cpu_to_gpu] for row in fig11.rows]
        assert values[0] == max(values)

    def test_gpu_to_cpu_falls_monotonically(self, results):
        fig11 = results["fig11"]
        column = fig11.headers.index("GPU-to-CPU ms")
        values = [row[column] for row in fig11.rows]
        assert values == sorted(values, reverse=True)


class TestFigure12:
    def test_all_verified(self, results):
        assert all(row[-1] == "yes" for row in results["fig12"].rows)

    def test_small_rolling_thrashes_at_small_blocks(self, results):
        fig12 = results["fig12"]
        tpacf1 = fig12.headers.index("tpacf-1 ms")
        first, last = fig12.rows[0], fig12.rows[-1]
        assert first[tpacf1] > last[tpacf1]

    def test_rolling4_flatter_than_rolling1(self, results):
        fig12 = results["fig12"]
        col1 = fig12.headers.index("tpacf-1 ms")
        col4 = fig12.headers.index("tpacf-4 ms")
        spread1 = max(r[col1] for r in fig12.rows) / min(
            r[col1] for r in fig12.rows
        )
        spread4 = max(r[col4] for r in fig12.rows) / min(
            r[col4] for r in fig12.rows
        )
        assert spread4 <= spread1 * 1.05


class TestPortingAndTable2:
    def test_every_port_removes_lines(self, results):
        assert all(row[-1] == "yes" for row in results["porting"].rows)

    def test_table2_lists_the_suite(self, results):
        names = {row[0] for row in results["tab2"].rows}
        assert names == {"cp", "mri-fhd", "mri-q", "pns", "rpes", "sad",
                         "tpacf"}


class TestAblations:
    def test_all_observations_hold(self, results):
        assert all(row[-1] == "yes" for row in results["ablations"].rows)

    def test_annotation_halves_readback(self, results):
        rows = [r for r in results["ablations"].rows if r[0] == "annotation"]
        unannotated = int(rows[0][2].split()[1])
        annotated = int(rows[1][2].split()[1])
        assert annotated < unannotated

    def test_integrated_machine_moves_nothing(self, results):
        rows = [r for r in results["ablations"].rows if r[0] == "integrated"]
        integrated = [r for r in rows if "integrated" in r[1]][0]
        assert integrated[2].startswith("0 bytes")
