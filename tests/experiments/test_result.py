"""The ExperimentResult container."""

import pytest

from repro.experiments.result import ExperimentResult


@pytest.fixture
def result():
    return ExperimentResult(
        experiment_id="figX",
        title="demo",
        paper_claim="things hold",
        headers=["benchmark", "value"],
        rows=[["a", 1.5], ["b", 2.5]],
        notes=["a note"],
    )


class TestAccessors:
    def test_column(self, result):
        assert result.column("value") == [1.5, 2.5]
        assert result.column("benchmark") == ["a", "b"]

    def test_unknown_column_raises(self, result):
        with pytest.raises(ValueError):
            result.column("nope")

    def test_row_map(self, result):
        rows = result.row_map("benchmark")
        assert rows["a"] == ["a", 1.5]
        assert set(rows) == {"a", "b"}

    def test_render_contains_everything(self, result):
        text = result.render()
        assert "figX" in text
        assert "things hold" in text
        assert "note: a note" in text
        assert "2.5" in text

    def test_chart_requires_spec(self, result):
        assert result.chart() is None


class TestSerialization:
    def test_json_roundtrip(self, result):
        restored = ExperimentResult.from_json(result.to_json())
        assert restored.experiment_id == result.experiment_id
        assert restored.headers == result.headers
        assert restored.rows == result.rows
        assert restored.notes == result.notes

    def test_json_is_valid(self, result):
        import json

        data = json.loads(result.to_json())
        assert data["paper_claim"] == "things hold"

    def test_csv_shape(self, result):
        import csv
        import io

        rows = list(csv.reader(io.StringIO(result.to_csv())))
        assert rows[0] == ["benchmark", "value"]
        assert rows[1] == ["a", "1.5"]
        assert len(rows) == 3
