"""The persistent worker-pool engine and its shared-memory result plane.

The engine's contract (ISSUE acceptance criteria):

* any pool shape — persistent, legacy fork, serial — leaves the caches
  byte-identical (canonical form) to a serial sweep, for every worker
  completion order including crash-and-requeue;
* workers fork once per executor lifetime and a warm cache spawns none;
* a crashed worker is respawned and its in-flight spec requeued exactly
  once — a spec that kills two fresh workers raises :class:`WorkerCrash`;
* spawn-only platforms rebuild the memoized inputs per worker instead of
  silently recomputing them per spec; a fork-only code path degrades to
  serial where fork is unavailable;
* the pool shape is engine configuration: it never joins a spec or its
  cache key.
"""

import multiprocessing
import os
import pickle
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments import common
from repro.experiments.cache import ResultCache
from repro.experiments.executor import ExperimentExecutor, expand
from repro.experiments.pool import (
    PersistentWorkerPool, StreamingMerge, WorkerCrash, distinct_configs,
    rebuild_memoized_inputs,
)
from repro.experiments.spec import RunSpec, SpecOutcome, WORKLOAD_FACTORIES
from repro.workloads.vecadd import VectorAdd

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

fork_only = pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")


def _vec_spec(elements):
    return RunSpec.make(
        "vecadd", params={"elements": elements}, layer="driver",
    )


def _specs(count=4, base=512):
    return [_vec_spec(base + 256 * i) for i in range(count)]


def _canonical(outcomes):
    return [outcome.canonical_bytes() for outcome in outcomes]


def _engine_run(pool, specs):
    """Run ``specs`` on a started engine; outcomes back in spec order."""
    merge = StreamingMerge(specs)
    pool.run(
        list(enumerate(specs)),
        lambda seq, outcome, host_s: merge.deposit(seq, outcome),
    )
    return merge.ordered()


class TestEngine:
    @fork_only
    def test_outcomes_byte_identical_to_serial(self):
        specs = _specs(5)
        serial = [spec.execute() for spec in specs]
        with PersistentWorkerPool(jobs=3) as pool:
            pool.start()
            pooled = _engine_run(pool, specs)
        assert pooled == serial
        assert _canonical(pooled) == _canonical(serial)
        assert pool.counters.get("plane_payloads") == len(specs)
        assert pool.counters.get("specs_completed") == len(specs)

    @fork_only
    def test_oversize_outcome_rides_the_queue(self):
        """A slab too small for any outcome falls back inline, never wrong."""
        specs = _specs(3)
        serial = [spec.execute() for spec in specs]
        with PersistentWorkerPool(jobs=2, slab_size=32) as pool:
            pool.start()
            pooled = _engine_run(pool, specs)
        assert _canonical(pooled) == _canonical(serial)
        assert pool.counters.get("plane_inline_fallbacks") == len(specs)
        assert pool.counters.get("plane_payloads", 0) == 0

    @fork_only
    def test_workers_fork_once_across_primes(self, tmp_path):
        common.clear_cache()
        executor = ExperimentExecutor(jobs=2, cache_dir=tmp_path)
        with executor.cache_context():
            executor.prime(_specs(3))
            assert executor.counters.get("workers_spawned") == 2
            executor.prime(_specs(3, base=4096))
        executor.close()
        common.clear_cache()
        # The second prime reused the same live workers.
        assert executor.counters.get("workers_spawned") == 2

    def test_warm_prime_spawns_no_workers(self, tmp_path):
        specs = _specs(3)
        common.clear_cache()
        cold = ExperimentExecutor(jobs=2, cache_dir=tmp_path)
        with cold.cache_context():
            cold.prime(specs)
        cold.close()
        common.clear_cache()  # only the disk cache remains
        warm = ExperimentExecutor(jobs=2, cache_dir=tmp_path)
        with warm.cache_context():
            warm.prime(specs)
        warm.close()
        common.clear_cache()
        assert warm.stats == {"expanded": 3, "reused": 3, "executed": 0}
        assert warm.counters.get("workers_spawned") == 0
        assert warm.counters.get("warm_hits") == 3


class TestCrashRecovery:
    """The supervisor's bounded-retry ladder (RecoveryPolicy idiom)."""

    @staticmethod
    def _crash_factory(marker):
        parent = os.getpid()

        def build(elements=512, **_ignored):
            # Workers inherit this closure through fork.  The parent
            # (pre-warm) and the respawned worker (marker exists) build
            # normally; the first worker to get here dies mid-spec.
            if os.getpid() != parent and not os.path.exists(marker):
                open(marker, "w").close()
                os._exit(17)
            return VectorAdd(elements=elements)

        return build

    @fork_only
    def test_crash_respawns_and_requeues_exactly_once(
            self, tmp_path, monkeypatch):
        marker = str(tmp_path / "crashed")
        monkeypatch.setitem(
            WORKLOAD_FACTORIES, "crashonce", self._crash_factory(marker)
        )
        specs = _specs(3) + [
            RunSpec.make("crashonce", params={"elements": 512}, layer="driver")
        ]
        with PersistentWorkerPool(jobs=2) as pool:
            pool.start()
            pooled = _engine_run(pool, specs)
        assert os.path.exists(marker)  # the crash really happened
        assert pool.counters.get("worker_respawns") == 1
        assert pool.counters.get("specs_requeued") == 1
        assert all(outcome is not None for outcome in pooled)
        # The requeued spec's replacement execution matches a direct one.
        assert (pooled[-1].canonical_bytes()
                == specs[-1].execute().canonical_bytes())

    @fork_only
    def test_second_crash_on_same_spec_raises(self, monkeypatch):
        parent = os.getpid()

        def always_crash(elements=512, **_ignored):
            if os.getpid() != parent:
                os._exit(17)
            return VectorAdd(elements=elements)

        monkeypatch.setitem(WORKLOAD_FACTORIES, "crashalways", always_crash)
        spec = RunSpec.make(
            "crashalways", params={"elements": 512}, layer="driver"
        )
        pool = PersistentWorkerPool(jobs=2)
        pool.start()
        with pytest.raises(WorkerCrash):
            _engine_run(pool, [spec])
        assert not pool.started  # the failed pool shut itself down


class TestSpawnRebuild:
    def test_spawn_workers_rebuild_memoized_inputs(self):
        """Without fork inheritance each worker rewarm the memo once."""
        specs = _specs(4)
        serial = [spec.execute() for spec in specs]
        configs = distinct_configs(specs)
        pool = PersistentWorkerPool(jobs=2, start_method="spawn")
        with pool:
            pool.start(configs=configs)
            pooled = _engine_run(pool, specs)
        assert _canonical(pooled) == _canonical(serial)
        assert pool.counters.get("worker_rebuilds") == 2 * len(configs)

    def test_fork_pool_degrades_to_serial_without_fork(
            self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        common.clear_cache()
        executor = ExperimentExecutor(jobs=2, cache_dir=tmp_path, pool="fork")
        with executor.cache_context():
            executor.prime(_specs(3))
        executor.close()
        common.clear_cache()
        assert executor.counters.get("degraded_serial") == 1
        assert executor.stats["executed"] == 3
        cache = ResultCache(tmp_path)
        assert all(cache.get(spec) is not None for spec in _specs(3))

    def test_rebuild_tolerates_broken_configs(self):
        built = rebuild_memoized_inputs(
            [("vecadd", (("elements", 512),)),
             ("vecadd", (("no_such_kwarg", 1),))]
        )
        assert built == 1


class TestPoolShapeCollapse:
    """The pool shape is engine configuration, never part of a key."""

    def test_pool_is_not_a_spec_field(self):
        assert "pool" not in RunSpec.__dataclass_fields__
        assert "jobs" not in RunSpec.__dataclass_fields__

    def test_cache_entries_identical_across_pool_shapes(self, tmp_path):
        specs = _specs(3)
        entries = {}
        for kind, jobs in (("serial", 1), ("persistent", 2), ("fork", 2)):
            if kind == "fork" and not HAVE_FORK:
                continue
            common.clear_cache()
            cache_dir = tmp_path / kind
            executor = ExperimentExecutor(
                jobs=jobs, cache_dir=cache_dir, pool=kind
            )
            with executor.cache_context():
                executor.prime(specs)
            executor.close()
            common.clear_cache()
            cache = ResultCache(cache_dir)
            entries[kind] = {
                "paths": sorted(p.name for p in cache_dir.glob("*.pkl")),
                "bytes": _canonical(cache.get(spec) for spec in specs),
            }
        assert all(e == entries["serial"] for e in entries.values())


@pytest.fixture(scope="module")
def merge_fixture():
    """Five executed specs plus their serial outcomes, computed once."""
    specs = _specs(5, base=256)
    return specs, [spec.execute() for spec in specs]


class TestStreamingMerge:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_any_completion_order_merges_byte_identical(
            self, merge_fixture, data):
        """Randomized worker completion orders (requeue dupes included)."""
        specs, serial = merge_fixture
        order = data.draw(st.permutations(list(range(len(specs)))))
        dupes = data.draw(
            st.lists(st.integers(0, len(specs) - 1), max_size=4)
        )
        committed = []
        merge = StreamingMerge(
            specs, commit=lambda spec, outcome: committed.append(spec)
        )
        landed = set()
        for seq in order:
            assert merge.deposit(seq, serial[seq]) is True
            landed.add(seq)
            for dupe in dupes:
                if dupe in landed:
                    # A crashed worker's spec re-executed after requeue:
                    # deterministic execution makes the second arrival a
                    # value-equal copy, which the merge drops.
                    copy = pickle.loads(pickle.dumps(serial[dupe]))
                    assert merge.deposit(dupe, copy) is False
        assert merge.complete
        merged = merge.ordered()
        assert merged == serial
        assert _canonical(merged) == _canonical(serial)
        assert sorted(committed, key=specs.index) == specs
        assert len(committed) == len(specs)  # commit fired once per seq

    def test_incomplete_merge_refuses_to_order(self, merge_fixture):
        specs, serial = merge_fixture
        merge = StreamingMerge(specs)
        merge.deposit(0, serial[0])
        with pytest.raises(RuntimeError, match="never landed"):
            merge.ordered()


class TestCacheConcurrency:
    def test_concurrent_writers_leave_a_valid_entry(self, tmp_path):
        spec = _vec_spec(1024)
        outcome = spec.execute()
        cache = ResultCache(tmp_path)
        errors = []

        def hammer():
            try:
                for _ in range(5):
                    cache.put(spec, outcome)
            except Exception as error:  # pragma: no cover - the assertion
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        loaded = cache.get(spec)
        assert loaded is not None
        assert loaded.canonical_bytes() == outcome.canonical_bytes()
        assert not list(tmp_path.glob("*.tmp"))  # no staging litter

    def test_put_verifies_after_rename(self, tmp_path, monkeypatch):
        spec = _vec_spec(1024)
        cache = ResultCache(tmp_path)
        monkeypatch.setattr(
            ResultCache, "_write_atomic",
            staticmethod(lambda path, entry: path.write_bytes(b"torn")),
        )
        with pytest.raises(OSError, match="verification"):
            cache.put(spec, spec.execute())


class TestTimingMetadata:
    def test_roundtrip_and_merge(self, tmp_path):
        cache = ResultCache(tmp_path)
        a, b = _vec_spec(512), _vec_spec(1024)
        cache.record_timings({ResultCache.timing_key(a): 0.25})
        cache.record_timings({ResultCache.timing_key(b): 1.5})
        assert cache.expected_cost(a) == 0.25
        assert cache.expected_cost(b) == 1.5

    def test_timing_key_survives_source_edits(self, monkeypatch):
        spec = _vec_spec(512)
        before = ResultCache.timing_key(spec)
        monkeypatch.setattr(
            "repro.experiments.cache.source_fingerprint", lambda: "changed"
        )
        assert ResultCache.timing_key(spec) == before

    def test_corrupt_timings_tolerated(self, tmp_path):
        cache = ResultCache(tmp_path)
        tmp_path.mkdir(exist_ok=True)
        (tmp_path / "timings.json").write_text("{not json")
        assert cache.timings() == {}
        assert cache.expected_cost(_vec_spec(512)) is None
        cache.record_timings({"k": 1.0})  # recovers by rewriting
        assert cache.timings() == {"k": 1.0}


class TestCostOrdering:
    def test_recorded_timings_rank_longest_first(self, tmp_path):
        specs = _specs(3)  # cost hints ascending with elements
        executor = ExperimentExecutor(jobs=2, cache_dir=tmp_path)
        executor.cache.record_timings({
            ResultCache.timing_key(specs[0]): 9.0,
            ResultCache.timing_key(specs[2]): 1.0,
        })
        ordered = executor._cost_ordered(specs)
        executor.close()
        # Each population ranks big-first: the untimed specs[1] keeps its
        # unitless cost hint, the timed specs keep host seconds (9.0 > 1.0).
        assert [seq for seq, _ in ordered] == [1, 0, 2]

    def test_cost_hint_fallback_orders_by_size(self, tmp_path):
        specs = _specs(3)
        executor = ExperimentExecutor(jobs=2, cache_dir=tmp_path)
        ordered = executor._cost_ordered(specs)
        executor.close()
        assert [seq for seq, _ in ordered] == [2, 1, 0]
        hints = [spec.cost_hint() for spec in specs]
        assert hints == sorted(hints)

    def test_cost_hint_scales_with_devices(self):
        one = RunSpec.make("vecadd", params={"elements": 512}, devices=1)
        two = RunSpec.make("vecadd", params={"elements": 512}, devices=2)
        assert two.cost_hint() == 2 * one.cost_hint()
