"""The experiments CLI (`python -m repro.experiments`)."""

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_single_experiment(self, capsys):
        assert main(["fig2", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "fig2" in output
        assert "maxIPC" in output
        assert "regenerated in" in output

    def test_motivation(self, capsys):
        assert main(["motivation", "--quick"]) == 0
        assert "kernel fraction" in capsys.readouterr().out

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["fig99"])

    def test_table_experiment(self, capsys):
        assert main(["tab2", "--quick"]) == 0
        out = capsys.readouterr().out
        for name in ("cp", "mri-fhd", "tpacf"):
            assert name in out

    @pytest.mark.parametrize("pool", ["persistent", "fork", "serial"])
    def test_pool_flag_accepted(self, pool, capsys):
        assert main(["fig2", "--quick", "--pool", pool]) == 0
        assert "fig2" in capsys.readouterr().out

    def test_unknown_pool_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig2", "--pool", "threads"])
        assert "invalid choice" in capsys.readouterr().err
