"""Topology knobs in :class:`RunSpec`: normalization, keying, building."""

import pytest

from repro.experiments.spec import RunSpec


def make(**kwargs):
    kwargs.setdefault("workload", "vecadd")
    kwargs.setdefault("params", dict(elements=1024))
    return RunSpec.make(**kwargs)


class TestNormalization:
    def test_single_device_is_the_default(self):
        spec = make()
        assert spec.devices == 1
        assert spec.link_specs == ()
        assert spec.placement == "-"

    def test_multi_device_defaults_to_round_robin(self):
        spec = make(devices=3)
        assert spec.devices == 3
        assert spec.placement == "round-robin"

    def test_devices_one_collapses_topology_knobs(self):
        spec = make(devices=1, link_specs=["pcie2x16"], placement="capacity")
        assert spec.link_specs == ()
        assert spec.placement == "-"
        assert spec.key() == make(devices=1).key()

    def test_non_gmac_mode_collapses_devices(self):
        spec = make(mode="cuda", devices=3, placement="capacity")
        assert spec.devices == 1
        assert spec.placement == "-"
        assert spec.key() == make(mode="cuda").key()

    def test_unknown_link_preset_rejected(self):
        with pytest.raises(KeyError):
            make(devices=2, link_specs=["pcie2x16", "carrier-pigeon"])

    def test_link_spec_count_must_match_devices(self):
        with pytest.raises(ValueError):
            make(devices=3, link_specs=["pcie2x16", "qpi"])

    def test_integrated_machine_cannot_be_multi_device(self):
        with pytest.raises(ValueError):
            make(devices=2, machine="integrated")

    def test_devices_below_one_rejected(self):
        with pytest.raises(ValueError):
            make(devices=0)


class TestKeying:
    """Satellite: device topology must be part of the cache identity."""

    def test_key_contains_topology_fields(self):
        spec = make(devices=3, link_specs=["pcie2x16", "qpi", "qpi"],
                    placement="capacity")
        key = spec.key()
        for fragment in ('"devices": 3', '"placement": "capacity"', "qpi"):
            assert fragment in key

    def test_device_count_changes_the_key(self):
        assert make(devices=2).key() != make(devices=3).key()

    def test_placement_changes_the_key(self):
        assert (make(devices=3).key()
                != make(devices=3, placement="capacity").key())

    def test_link_specs_change_the_key(self):
        symmetric = make(devices=2)
        asymmetric = make(devices=2, link_specs=["pcie2x16", "qpi"])
        assert symmetric.key() != asymmetric.key()


class TestBuilding:
    def test_multi_device_spec_builds_a_multi_device_machine(self):
        machine = make(devices=3)._build_machine()
        assert machine.multi_device
        assert len(machine.gpus) == 3

    def test_link_preset_names_resolve_to_specs(self):
        from repro.hw.specs import PCIE_2_0_X16, QPI

        machine = make(
            devices=2, link_specs=["pcie2x16", "qpi"]
        )._build_machine()
        assert [link.spec for link in machine.links] == [PCIE_2_0_X16, QPI]

    def test_multi_device_outcome_reports_peer_traffic(self):
        outcome = make(devices=3, layer="driver").execute()
        assert outcome.verified
        assert outcome.peer_bytes > 0
        assert sum(outcome.link_bytes_moved.values()) > 0

    def test_single_device_matches_legacy_reference_run(self):
        multi_off = make(devices=1).execute()
        legacy = RunSpec.make(
            workload="vecadd", params=dict(elements=1024)
        ).execute()
        assert multi_off.elapsed == legacy.elapsed
        assert multi_off.breakdown == legacy.breakdown
        assert multi_off.bytes_to_accelerator == legacy.bytes_to_accelerator
