"""ASCII chart rendering."""

import pytest

from repro.util.charts import render_chart, chart_from_result, MARKERS
from repro.experiments.result import ExperimentResult


class TestRenderChart:
    def test_basic_structure(self):
        chart = render_chart(
            ["a", "b", "c"], {"s": [1.0, 10.0, 100.0]}, height=5,
            title="demo",
        )
        lines = chart.splitlines()
        assert lines[0] == "demo"
        assert "+" in lines[-3]       # axis
        assert "a" in lines[-2]       # labels
        assert "o=s" in lines[-1]     # legend

    def test_log_scale_extremes(self):
        chart = render_chart(["lo", "hi"], {"s": [1.0, 1000.0]}, height=6)
        lines = chart.splitlines()
        # Max value sits on the top row, min on the bottom row.
        assert "o" in lines[0]
        assert "o" in lines[5]
        assert lines[0].strip().startswith("1000")

    def test_two_series_use_distinct_markers(self):
        chart = render_chart(
            ["x"], {"first": [1.0], "second": [100.0]}, height=4
        )
        assert f"{MARKERS[0]}=first" in chart
        assert f"{MARKERS[1]}=second" in chart

    def test_collision_marked(self):
        chart = render_chart(["x"], {"a": [5.0], "b": [5.0]}, height=4)
        assert "!" in chart

    def test_flat_series(self):
        chart = render_chart(["a", "b"], {"s": [3.0, 3.0]}, height=4)
        # Both points land on the bottom row (flat series, log floor).
        assert chart.splitlines()[3].count("o") == 2

    def test_zero_values_plot_on_bottom(self):
        chart = render_chart(["a", "b"], {"s": [0.0, 10.0]}, height=4)
        assert "o" in chart.splitlines()[3]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            render_chart(["a", "b"], {"s": [1.0]})

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            render_chart(["a"], {})

    def test_y_label(self):
        chart = render_chart(["a"], {"s": [1.0]}, y_label="ms")
        assert "ms" in chart


class TestChartFromResult:
    def _result(self, chart_spec=None):
        return ExperimentResult(
            experiment_id="figX",
            title="demo",
            paper_claim="",
            headers=["size", "time ms", "ok"],
            rows=[["4KB", 10.0, "yes"], ["8KB", 5.0, "yes"]],
            chart_spec=chart_spec,
        )

    def test_chart_from_columns(self):
        chart = chart_from_result(self._result(), "size", ["time ms"])
        assert "4KB" in chart and "8KB" in chart
        assert "figX" in chart

    def test_result_chart_method(self):
        result = self._result(chart_spec=("size", ["time ms"]))
        assert "time ms" in result.chart()

    def test_unchartable_result_returns_none(self):
        assert self._result().chart() is None
