"""ASCII table rendering."""

import pytest

from repro.util.tables import render_table, render_series


class TestRenderTable:
    def test_basic_alignment(self):
        text = render_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        text = render_table(["x"], [[1]], title="demo")
        assert text.splitlines()[0] == "demo"

    def test_numeric_right_aligned(self):
        text = render_table(["v"], [[1], [100]])
        rows = text.splitlines()[-2:]
        assert rows[0].endswith("1")
        assert rows[1].endswith("100")

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_float_formatting(self):
        text = render_table(["v"], [[0.123456]])
        assert "0.1235" in text

    def test_tiny_float_scientific(self):
        text = render_table(["v"], [[1e-7]])
        assert "e-07" in text

    def test_zero(self):
        assert render_table(["v"], [[0.0]]).splitlines()[-1].endswith("0")

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert "a" in text


class TestRenderSeries:
    def test_pairs(self):
        text = render_series("s", [1, 2], [10.0, 20.0], "x", "y")
        assert text.splitlines()[0] == "s"
        assert "10" in text and "20" in text
