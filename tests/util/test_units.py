"""Unit helpers: size parsing/formatting, time and bandwidth rendering."""

import pytest

from repro.util.units import (
    KB, MB, GB, parse_size, format_size, format_time, format_bandwidth,
)


class TestParseSize:
    def test_plain_integer_passes_through(self):
        assert parse_size(4096) == 4096

    def test_zero(self):
        assert parse_size(0) == 0

    def test_negative_integer_rejected(self):
        with pytest.raises(ValueError):
            parse_size(-1)

    @pytest.mark.parametrize(
        "text, expected",
        [
            ("4KB", 4 * KB),
            ("256KB", 256 * KB),
            ("1MB", MB),
            ("32MB", 32 * MB),
            ("2GB", 2 * GB),
            ("512B", 512),
            ("512", 512),
            ("4 MB", 4 * MB),
            ("32mb", 32 * MB),
            ("0.5MB", 512 * KB),
        ],
    )
    def test_strings(self, text, expected):
        assert parse_size(text) == expected

    def test_fractional_bytes_rejected(self):
        with pytest.raises(ValueError):
            parse_size("0.3KB")

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_size("lots")

    def test_roundtrip_with_format(self):
        for size in (4 * KB, 256 * KB, MB, 32 * MB, 3 * GB):
            assert parse_size(format_size(size)) == size


class TestFormatSize:
    def test_exact_units(self):
        assert format_size(4 * KB) == "4KB"
        assert format_size(32 * MB) == "32MB"
        assert format_size(2 * GB) == "2GB"

    def test_small_bytes(self):
        assert format_size(123) == "123B"

    def test_non_exact_uses_decimal(self):
        assert format_size(1536 * KB) == "1.5MB"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_size(-5)


class TestFormatTime:
    def test_seconds(self):
        assert format_time(1.5) == "1.500s"

    def test_milliseconds(self):
        assert format_time(0.0042) == "4.200ms"

    def test_microseconds(self):
        assert format_time(3.5e-6) == "3.500us"

    def test_nanoseconds(self):
        assert format_time(2e-9) == "2.0ns"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_time(-1e-3)


class TestFormatBandwidth:
    def test_gigabytes(self):
        assert format_bandwidth(5.6 * GB).endswith("GBps")

    def test_megabytes(self):
        assert format_bandwidth(250 * MB) == "250.00MBps"

    def test_bytes(self):
        assert format_bandwidth(10) == "10.0Bps"
