"""The balanced block-index tree (Section 5.2's O(log n) structure)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.util.avltree import AvlTree


class TestBasics:
    def test_empty(self):
        tree = AvlTree()
        assert len(tree) == 0
        assert tree.get(5) is None
        assert tree.floor(5) is None
        assert tree.ceiling(5) is None
        assert tree.min_item() is None
        assert tree.max_item() is None
        assert list(tree.items()) == []

    def test_insert_and_get(self):
        tree = AvlTree()
        tree.insert(10, "a")
        tree.insert(5, "b")
        tree.insert(20, "c")
        assert tree.get(10) == "a"
        assert tree.get(5) == "b"
        assert tree.get(20) == "c"
        assert tree.get(7, default="missing") == "missing"
        assert len(tree) == 3

    def test_insert_replaces(self):
        tree = AvlTree()
        tree.insert(10, "a")
        tree.insert(10, "b")
        assert tree.get(10) == "b"
        assert len(tree) == 1

    def test_delete(self):
        tree = AvlTree()
        for key in (3, 1, 4, 1, 5, 9, 2, 6):
            tree.insert(key, key)
        tree.delete(4)
        assert tree.get(4) is None
        assert len(tree) == 6  # 1 was a duplicate insert
        with pytest.raises(KeyError):
            tree.delete(4)

    def test_delete_root_with_two_children(self):
        tree = AvlTree()
        for key in (10, 5, 20, 15, 25):
            tree.insert(key, key)
        tree.delete(10)
        assert sorted(tree.keys()) == [5, 15, 20, 25]
        tree.check_invariants()

    def test_items_sorted(self):
        tree = AvlTree()
        for key in (9, 2, 7, 1, 8):
            tree.insert(key, str(key))
        assert [k for k, _ in tree.items()] == [1, 2, 7, 8, 9]

    def test_min_max(self):
        tree = AvlTree()
        for key in (9, 2, 7):
            tree.insert(key, key)
        assert tree.min_item() == (2, 2)
        assert tree.max_item() == (9, 9)

    def test_clear(self):
        tree = AvlTree()
        tree.insert(1, 1)
        tree.clear()
        assert len(tree) == 0
        assert tree.get(1) is None


class TestFloorCeiling:
    def test_floor_is_block_lookup(self):
        # Blocks at 0x0, 0x1000, 0x2000; the block containing an address is
        # the floor of that address.
        tree = AvlTree()
        for start in (0x0, 0x1000, 0x2000):
            tree.insert(start, f"block@{start:#x}")
        assert tree.floor(0x0) == (0x0, "block@0x0")
        assert tree.floor(0xFFF) == (0x0, "block@0x0")
        assert tree.floor(0x1000) == (0x1000, "block@0x1000")
        assert tree.floor(0x2FFF) == (0x2000, "block@0x2000")

    def test_floor_below_min(self):
        tree = AvlTree()
        tree.insert(100, "x")
        assert tree.floor(99) is None

    def test_ceiling(self):
        tree = AvlTree()
        for key in (10, 20, 30):
            tree.insert(key, key)
        assert tree.ceiling(15) == (20, 20)
        assert tree.ceiling(20) == (20, 20)
        assert tree.ceiling(31) is None


class TestBalance:
    def test_height_is_logarithmic_for_sorted_inserts(self):
        tree = AvlTree()
        n = 1024
        for key in range(n):
            tree.insert(key, key)
        # A plain BST would have height 1024; AVL stays near log2.
        assert tree.height <= int(1.44 * math.log2(n + 2)) + 1
        tree.check_invariants()

    def test_search_steps_counter_grows_logarithmically(self):
        tree = AvlTree()
        for key in range(4096):
            tree.insert(key, key)
        tree.search_steps = 0
        tree.floor(4095)
        assert 1 <= tree.search_steps <= 2 * math.ceil(math.log2(4096)) + 2

    @given(st.lists(st.integers(-1000, 1000), max_size=200))
    @settings(max_examples=50)
    def test_invariants_after_random_inserts(self, keys):
        tree = AvlTree()
        for key in keys:
            tree.insert(key, key)
        tree.check_invariants()
        assert sorted(set(keys)) == list(tree.keys())

    @given(
        st.lists(st.integers(0, 100), min_size=1, max_size=100),
        st.lists(st.integers(0, 100), max_size=100),
    )
    @settings(max_examples=50)
    def test_matches_dict_model(self, inserts, deletes):
        tree = AvlTree()
        model = {}
        for key in inserts:
            tree.insert(key, key * 2)
            model[key] = key * 2
        for key in deletes:
            if key in model:
                tree.delete(key)
                del model[key]
            else:
                with pytest.raises(KeyError):
                    tree.delete(key)
        tree.check_invariants()
        assert dict(tree.items()) == model
        if model:
            for probe in range(-1, 102):
                expected = max((k for k in model if k <= probe), default=None)
                found = tree.floor(probe)
                assert (found[0] if found else None) == expected
