"""Intervals and the range map behind the OS region table."""

import pytest
from hypothesis import given, strategies as st

from repro.util.errors import AddressError
from repro.util.intervals import Interval, RangeMap


class TestInterval:
    def test_sized_constructor(self):
        interval = Interval.sized(0x1000, 0x200)
        assert interval.start == 0x1000
        assert interval.end == 0x1200
        assert interval.size == 0x200

    def test_reversed_bounds_rejected(self):
        with pytest.raises(ValueError):
            Interval(10, 5)

    def test_empty_interval_is_falsy(self):
        assert not Interval(5, 5)
        assert Interval(5, 6)

    def test_contains_is_half_open(self):
        interval = Interval(10, 20)
        assert interval.contains(10)
        assert interval.contains(19)
        assert not interval.contains(20)
        assert not interval.contains(9)

    def test_contains_interval(self):
        outer = Interval(0, 100)
        assert outer.contains_interval(Interval(0, 100))
        assert outer.contains_interval(Interval(10, 20))
        assert not outer.contains_interval(Interval(90, 101))

    def test_overlaps(self):
        assert Interval(0, 10).overlaps(Interval(9, 20))
        assert not Interval(0, 10).overlaps(Interval(10, 20))
        assert Interval(5, 6).overlaps(Interval(0, 100))

    def test_intersection(self):
        assert Interval(0, 10).intersection(Interval(5, 20)) == Interval(5, 10)
        assert not Interval(0, 10).intersection(Interval(20, 30))

    def test_split_chunks_covers_exactly(self):
        pieces = list(Interval(0, 10).split_chunks(4))
        assert pieces == [Interval(0, 4), Interval(4, 8), Interval(8, 10)]

    def test_split_chunks_bad_size(self):
        with pytest.raises(ValueError):
            list(Interval(0, 10).split_chunks(0))

    def test_aligned_chunks_cut_at_absolute_boundaries(self):
        pieces = list(Interval(6, 22).aligned_chunks(8))
        assert pieces == [Interval(6, 8), Interval(8, 16), Interval(16, 22)]

    @given(
        start=st.integers(0, 1 << 20),
        size=st.integers(1, 1 << 16),
        chunk=st.integers(1, 1 << 12),
    )
    def test_chunking_partitions_the_interval(self, start, size, chunk):
        interval = Interval.sized(start, size)
        for chunks in (
            list(interval.split_chunks(chunk)),
            list(interval.aligned_chunks(chunk)),
        ):
            assert chunks[0].start == interval.start
            assert chunks[-1].end == interval.end
            for left, right in zip(chunks, chunks[1:]):
                assert left.end == right.start
            assert all(piece.size <= chunk for piece in chunks)


class TestRangeMap:
    def test_add_and_find(self):
        rmap = RangeMap()
        rmap.add(Interval(100, 200), "a")
        rmap.add(Interval(300, 400), "b")
        assert rmap.find(150) == (Interval(100, 200), "a")
        assert rmap.find(300) == (Interval(300, 400), "b")
        assert rmap.find(250) is None
        assert rmap.find(99) is None

    def test_overlap_rejected(self):
        rmap = RangeMap()
        rmap.add(Interval(100, 200), "a")
        with pytest.raises(AddressError):
            rmap.add(Interval(150, 250), "b")
        with pytest.raises(AddressError):
            rmap.add(Interval(50, 101), "c")

    def test_adjacent_allowed(self):
        rmap = RangeMap()
        rmap.add(Interval(100, 200), "a")
        rmap.add(Interval(200, 300), "b")
        assert len(rmap) == 2

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            RangeMap().add(Interval(5, 5), "x")

    def test_remove(self):
        rmap = RangeMap()
        rmap.add(Interval(100, 200), "a")
        interval, value = rmap.remove(100)
        assert (interval, value) == (Interval(100, 200), "a")
        assert len(rmap) == 0
        with pytest.raises(AddressError):
            rmap.remove(100)

    def test_find_exact(self):
        rmap = RangeMap()
        rmap.add(Interval(100, 200), "a")
        assert rmap.find_exact(100) == (Interval(100, 200), "a")
        assert rmap.find_exact(150) is None

    def test_overlapping_query(self):
        rmap = RangeMap()
        rmap.add(Interval(0, 10), "a")
        rmap.add(Interval(20, 30), "b")
        rmap.add(Interval(40, 50), "c")
        hits = rmap.overlapping(Interval(5, 45))
        assert [value for _, value in hits] == ["a", "b", "c"]
        assert rmap.overlapping(Interval(10, 20)) == []

    def test_find_gap_lowest_fit(self):
        rmap = RangeMap()
        rmap.add(Interval(0x1000, 0x2000), "a")
        rmap.add(Interval(0x3000, 0x4000), "b")
        gap = rmap.find_gap(0x1000, 0x0, 0x10000, alignment=0x1000)
        assert gap == Interval(0x0, 0x1000)
        gap = rmap.find_gap(0x1000, 0x1000, 0x10000, alignment=0x1000)
        assert gap == Interval(0x2000, 0x3000)

    def test_find_gap_none_when_full(self):
        rmap = RangeMap()
        rmap.add(Interval(0, 100), "a")
        assert rmap.find_gap(10, 0, 100) is None

    def test_find_gap_respects_alignment(self):
        rmap = RangeMap()
        rmap.add(Interval(0, 5), "a")
        gap = rmap.find_gap(8, 0, 100, alignment=8)
        assert gap.start % 8 == 0

    @given(
        st.lists(
            st.tuples(st.integers(0, 1000), st.integers(1, 50)),
            max_size=30,
        )
    )
    def test_insertions_never_overlap(self, requests):
        rmap = RangeMap()
        accepted = []
        for start, size in requests:
            interval = Interval.sized(start, size)
            try:
                rmap.add(interval, None)
            except AddressError:
                assert any(interval.overlaps(other) for other in accepted)
            else:
                accepted.append(interval)
        intervals = rmap.intervals()
        assert intervals == sorted(intervals)
        for left, right in zip(intervals, intervals[1:]):
            assert left.end <= right.start
