"""The exception hierarchy."""

import pytest

from repro.util.errors import (
    ReproError,
    AddressError,
    AllocationError,
    ProtectionError,
    SegmentationFault,
    IoError,
    CudaError,
    GmacError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [AddressError, AllocationError, ProtectionError, SegmentationFault,
         IoError, CudaError, GmacError],
    )
    def test_all_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)

    def test_one_clause_catches_everything(self):
        with pytest.raises(ReproError):
            raise GmacError("boom")

    def test_segfault_carries_context(self):
        from repro.os.paging import AccessKind

        fault = SegmentationFault(0x1234, AccessKind.WRITE)
        assert fault.address == 0x1234
        assert fault.access is AccessKind.WRITE
        assert "0x1234" in str(fault)

    def test_segfault_custom_message(self):
        fault = SegmentationFault(0x1, "read", message="custom detail")
        assert "custom detail" in str(fault)
