"""Run statistics helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.util.stats import summarize, geometric_mean


class TestSummarize:
    def test_single_value(self):
        stats = summarize([3.0])
        assert stats.count == 1
        assert stats.mean == 3.0
        assert stats.stdev == 0.0
        assert stats.minimum == stats.maximum == 3.0

    def test_known_values(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.mean == pytest.approx(2.5)
        assert stats.stdev == pytest.approx(math.sqrt(5.0 / 3.0))
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_relative_stdev(self):
        stats = summarize([10.0, 10.0])
        assert stats.relative_stdev == 0.0

    def test_relative_stdev_zero_mean(self):
        stats = summarize([-1.0, 1.0])
        assert stats.relative_stdev == 0.0

    def test_str_mentions_mean(self):
        assert "mean=" in str(summarize([1.0, 2.0]))

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    def test_bounds_hold(self, values):
        stats = summarize(values)
        slack = 1e-9 * max(1.0, abs(stats.maximum), abs(stats.minimum))
        assert stats.minimum - slack <= stats.mean <= stats.maximum + slack
        assert stats.stdev >= 0.0


class TestGeometricMean:
    def test_known(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_identity(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(0.01, 100.0), min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        result = geometric_mean(values)
        assert min(values) <= result * (1 + 1e-9)
        assert result <= max(values) * (1 + 1e-9)
