"""Vectorized fault storms: golden equivalence with per-block dispatch.

``REPRO_FAULT_STORMS=1`` (the default) lets one physical SIGSEGV delivery
repair a whole contiguous same-state run of blocks; the absorbed faults
are replayed immediately after with exactly the per-block charge sequence
(signal overhead, AVL step cost, protocol transition).  These tests pin
the equivalence at trace-row granularity — including when a fault plan
kills a PCIe transfer in the middle of a storm, which must split the run
and charge ``Retry`` precisely as per-block dispatch would.
"""

import numpy as np
import pytest

from repro.core import manager as manager_module
from repro.core.recovery import RecoveryPolicy
from repro.faults import FaultPlan
from repro.hw.machine import reference_system
from repro.sim.tracing import Category
from repro.workloads.base import Application
from repro.workloads.stencil3d import STENCIL, Stencil3D

PROTOCOLS = ("batch", "lazy", "rolling")

#: Small multi-block configuration: a 128KB volume over 4KB blocks gives
#: rolling-update 32-block regions (batch and lazy use whole-object
#: blocks — and accept no granularity options — so their runs are single
#: blocks and storms degenerate to the per-block path; the equivalence
#: must hold there too).
ROLLING_OPTIONS = {"block_size": 4096, "rolling_size": 4}


def _protocol_options(protocol):
    return dict(ROLLING_OPTIONS) if protocol == "rolling" else {}


def _workload():
    return Stencil3D(n=32, steps=2, dump_interval=1)


def _execute(protocol, storms, monkeypatch, transfer_burst=None):
    monkeypatch.setenv("REPRO_FAULT_STORMS", "1" if storms else "0")
    machine = reference_system(trace=True)
    plan = None
    gmac_options = {"protocol_options": _protocol_options(protocol)}
    if transfer_burst is not None:
        plan = machine.install_faults(FaultPlan(transfer_burst=transfer_burst))
        gmac_options["recovery"] = RecoveryPolicy()
    result = _workload().execute(
        mode="gmac", protocol=protocol, machine=machine,
        gmac_options=gmac_options,
    )
    return result, machine, plan


def _trace_rows(machine):
    return [
        (event.category, event.label, event.start, event.duration)
        for event in machine.accounting.trace.events
    ]


def _outcome_record(result, machine):
    return {
        "elapsed": repr(result.elapsed),
        "breakdown": {k: repr(v) for k, v in result.breakdown.items()},
        "faults": result.faults,
        "signals": result.signals,
        "bytes_to_accelerator": result.bytes_to_accelerator,
        "bytes_to_host": result.bytes_to_host,
        "verified": result.verified,
    }


class _StormRecorder:
    """Wraps ``Manager._replay_storm`` to observe replayed spans and the
    fault plan's transfer-attempt window inside each replay."""

    def __init__(self, monkeypatch, plan=None):
        self.spans = []
        self.attempt_windows = []
        original = manager_module.Manager._replay_storm
        recorder = self

        def wrapped(self, region, first, last, access):
            before = plan.transfer_attempt_total if plan is not None else 0
            original(self, region, first, last, access)
            after = plan.transfer_attempt_total if plan is not None else 0
            recorder.spans.append(last - first + 1)
            recorder.attempt_windows.append((before, after))

        monkeypatch.setattr(manager_module.Manager, "_replay_storm", wrapped)


def _api_run(protocol, storms, monkeypatch, transfer_burst,
             recorder_factory=None):
    """Drive the GMAC API directly so a storm contains device fetches.

    Workload dumps pre-fault per block through the interposer, so their
    storms never fetch mid-replay.  Here the CPU reads the whole kernel
    output in one access: under rolling-update every block is INVALID, so
    the replay performs one ``fetch_to_host`` (a PCIe transfer) per
    absorbed fault — exactly the window a mid-storm fault plan can hit.
    """
    monkeypatch.setenv("REPRO_FAULT_STORMS", "1" if storms else "0")
    machine = reference_system(trace=True)
    plan = machine.install_faults(FaultPlan(transfer_burst=transfer_burst))
    recorder = (
        recorder_factory(monkeypatch, plan=plan) if recorder_factory else None
    )
    app = Application(machine)
    gmac = app.gmac(
        protocol=protocol,
        layer="driver",
        protocol_options=_protocol_options(protocol),
        recovery=RecoveryPolicy(),
    )
    n = 32
    count = n ** 3
    vin = gmac.alloc(4 * count, name="vin")
    vout = gmac.alloc(4 * count, name="vout")
    vin.write_array(
        (np.arange(count, dtype=np.float32) / count).reshape(n, n, n)
    )
    gmac.call(STENCIL, vin=vin, vout=vout, n=n)
    gmac.sync()
    output = vout.read_array("f4", count)
    record = {
        "now": repr(machine.clock.now),
        "totals": {
            category: repr(value)
            for category, value in machine.accounting.totals.items()
        },
        "faults": gmac.fault_count,
        "signals": app.process.signals.delivered,
        "bytes_to_accelerator": gmac.bytes_to_accelerator,
        "bytes_to_host": gmac.bytes_to_host,
    }
    return {
        "record": record,
        "trace": _trace_rows(machine),
        "injected": plan.injected_total,
        "retry": machine.accounting.totals[Category.RETRY],
        "recorder": recorder,
        "output": np.array(output, copy=True),
    }


class TestStormEquivalence:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_traces_identical_with_and_without_storms(
        self, protocol, monkeypatch
    ):
        batched_result, batched_machine, _ = _execute(
            protocol, storms=True, monkeypatch=monkeypatch
        )
        legacy_result, legacy_machine, _ = _execute(
            protocol, storms=False, monkeypatch=monkeypatch
        )
        assert _trace_rows(batched_machine) == _trace_rows(legacy_machine)
        assert _outcome_record(batched_result, batched_machine) == (
            _outcome_record(legacy_result, legacy_machine)
        )

    def test_rolling_storms_actually_batch(self, monkeypatch):
        recorder = _StormRecorder(monkeypatch)
        _execute("rolling", storms=True, monkeypatch=monkeypatch)
        assert recorder.spans, "no storm fired on a multi-block region"
        assert max(recorder.spans) > 1

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_mid_storm_pcie_fault_matches_per_block_dispatch(
        self, protocol, monkeypatch
    ):
        """A transfer killed mid-storm retries exactly like per-block mode.

        The driven sequence — bulk init write, kernel call, sync, then a
        single whole-region read of the now-invalid output — makes
        rolling-update fetch every block *inside* one uncapped read storm.
        The probe finds a transfer attempt inside a replay; the golden
        runs then kill precisely that attempt, which must split the storm
        and agree with per-block dispatch row for row, including the
        Retry backoff charges.
        """
        # Probe: a burst that never fires still counts transfer attempts,
        # so the recorder can see which attempts land inside a replay.
        probe = _api_run(
            protocol, storms=True, monkeypatch=monkeypatch,
            transfer_burst=(10 ** 9, 1),
            recorder_factory=_StormRecorder,
        )
        windows = [
            (before, after)
            for before, after in probe["recorder"].attempt_windows
            if after > before
        ]
        if protocol == "rolling":
            assert windows, "no transfer attempt landed inside a storm"
            target = windows[0][0] + 1  # 1-based attempt index
        else:
            # Whole-object protocols have single-block runs, so no storm
            # can contain a transfer; kill an early attempt instead to pin
            # the degenerate path.
            target = 2
        monkeypatch.undo()

        batched = _api_run(
            protocol, storms=True, monkeypatch=monkeypatch,
            transfer_burst=(target, 1),
        )
        legacy = _api_run(
            protocol, storms=False, monkeypatch=monkeypatch,
            transfer_burst=(target, 1),
        )
        assert batched["injected"] == 1
        assert legacy["injected"] == 1
        assert batched["retry"] > 0, "the injected fault charged no Retry"
        assert batched["trace"] == legacy["trace"]
        assert batched["record"] == legacy["record"]
        np.testing.assert_array_equal(batched["output"], legacy["output"])


class TestSanitizerInteraction:
    def test_sanitized_run_is_clean_and_disables_storms(self, monkeypatch):
        """``--sanitize`` stays green with storms requested.

        The race monitor needs to judge every fault individually, so the
        manager suppresses batching while a monitor is armed; the run must
        still verify and report zero violations.
        """
        monkeypatch.setenv("REPRO_FAULT_STORMS", "1")
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        recorder = _StormRecorder(monkeypatch)
        result = _workload().execute(
            mode="gmac", protocol="rolling",
            gmac_options={"protocol_options": _protocol_options("rolling")},
        )
        assert result.verified
        stats = result.extra["sanitizer"]
        assert stats["violations"] == 0
        assert recorder.spans == [], "storms fired under the race monitor"
