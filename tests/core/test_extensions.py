"""The paper's suggested extensions: accelerator virtual memory (Section
4.2's "good solution") and hardware peer DMA (Section 7)."""

import numpy as np
import pytest

from repro.util.errors import AllocationError, CudaError, GmacError
from repro.os.paging import PAGE_SIZE
from repro.hw.machine import Machine
from repro.hw.specs import FERMI
from repro.workloads.base import Application
from repro.core.blocks import BlockState


@pytest.fixture
def vm_machine():
    return Machine(gpu_spec=FERMI, gpu_count=2)


@pytest.fixture
def vm_app(vm_machine):
    return Application(vm_machine)


class TestDeviceVirtualMemory:
    def test_alloc_at_carves_exact_range(self):
        from repro.hw.memory import DeviceMemory, DEVICE_BASE

        memory = DeviceMemory(1 << 20)
        address = memory.alloc_at(DEVICE_BASE + 8 * PAGE_SIZE, PAGE_SIZE)
        assert address == DEVICE_BASE + 8 * PAGE_SIZE
        memory.check_invariants()
        with pytest.raises(AllocationError):
            memory.alloc_at(DEVICE_BASE + 8 * PAGE_SIZE, PAGE_SIZE)
        memory.free(address)
        memory.check_invariants()
        assert memory.bytes_in_use == 0

    def test_alloc_at_unaligned_rejected(self):
        from repro.hw.memory import DeviceMemory, DEVICE_BASE

        memory = DeviceMemory(1 << 20)
        with pytest.raises(AllocationError):
            memory.alloc_at(DEVICE_BASE + 5, PAGE_SIZE)

    def test_non_vm_gpu_rejects_placement(self, app):
        from repro.cuda.driver import DriverContext
        from repro.hw.memory import DEVICE_BASE

        ctx = DriverContext(app.machine, app.process)
        with pytest.raises(CudaError):
            ctx.mem_alloc_at(DEVICE_BASE, PAGE_SIZE)

    def test_two_vm_gpus_no_collision_no_safe_alloc(self, vm_machine, vm_app):
        """The multi-accelerator case that forces adsmSafeAlloc on
        VM-less GPUs just works with accelerator virtual memory."""
        first = vm_app.gmac(protocol="rolling", layer="driver",
                            gpu=vm_machine.gpus[0], interpose=False)
        second = vm_app.gmac(protocol="rolling", layer="driver",
                             gpu=vm_machine.gpus[1], interpose=False)
        a = first.alloc(4 * PAGE_SIZE)
        b = second.alloc(4 * PAGE_SIZE)  # would raise GmacError without VM
        assert int(a) != int(b)
        assert first.manager.region_at(int(a)).is_aliased
        assert second.manager.region_at(int(b)).is_aliased
        a.write_bytes(b"gpu0")
        b.write_bytes(b"gpu1")
        assert a.read_bytes(4) == b"gpu0"
        assert b.read_bytes(4) == b"gpu1"

    def test_vm_allocation_skips_host_conflicts(self, vm_machine, vm_app):
        gmac = vm_app.gmac(protocol="rolling", layer="driver",
                           gpu=vm_machine.gpus[0], interpose=False)
        probe = gmac.alloc(PAGE_SIZE)
        # Occupy the next device-range addresses on the host side.
        vm_app.process.address_space.mmap(
            4 * PAGE_SIZE, fixed_address=int(probe) + PAGE_SIZE
        )
        ptr = gmac.alloc(2 * PAGE_SIZE)  # must route around the conflict
        assert int(ptr) >= int(probe) + 5 * PAGE_SIZE
        ptr.write_bytes(b"routed")
        assert ptr.read_bytes(6) == b"routed"

    def test_vm_roundtrip_through_kernel(self, vm_machine, vm_app,
                                         scale_kernel):
        gmac = vm_app.gmac(protocol="rolling", layer="driver",
                           gpu=vm_machine.gpus[0])
        ptr = gmac.alloc(64)
        ptr.write_array(np.full(16, 4.0, dtype=np.float32))
        gmac.call(scale_kernel, data=ptr, n=16, factor=0.5)
        gmac.sync()
        assert np.allclose(ptr.read_array("f4", 16), 2.0)


class TestPeerDma:
    @pytest.fixture
    def peer_gmac(self, app):
        return app.gmac(
            protocol="rolling", layer="driver", peer_dma=True,
            protocol_options={"block_size": PAGE_SIZE},
        )

    def test_peer_read_lands_on_device_without_faults(self, app, peer_gmac):
        payload = bytes(range(256)) * (2 * PAGE_SIZE // 256)
        app.fs.create("in.bin", payload)
        ptr = peer_gmac.alloc(2 * PAGE_SIZE)
        before = app.process.signals.delivered
        with app.fs.open("in.bin") as handle:
            assert app.libc.read(handle, int(ptr), 2 * PAGE_SIZE) == (
                2 * PAGE_SIZE
            )
        assert app.process.signals.delivered == before  # no page faults
        region = peer_gmac.manager.region_at(int(ptr))
        assert all(b.state is BlockState.INVALID for b in region.blocks)
        assert peer_gmac.layer.gpu.memory.read(
            region.device_start, len(payload)
        ) == payload
        # The CPU still sees the data, via normal on-demand fetching.
        assert ptr.read_bytes(16) == payload[:16]

    def test_peer_write_streams_from_device(self, app, peer_gmac,
                                            scale_kernel):
        n = 2 * PAGE_SIZE // 4
        ptr = peer_gmac.alloc(2 * PAGE_SIZE)
        ptr.write_array(np.full(n, 3.0, dtype=np.float32))
        peer_gmac.call(scale_kernel, data=ptr, n=n, factor=2.0)
        peer_gmac.sync()
        before = peer_gmac.bytes_to_host
        with app.fs.open("out.bin", "w") as handle:
            app.libc.write(handle, int(ptr), 2 * PAGE_SIZE)
        # Nothing was fetched into system memory.
        assert peer_gmac.bytes_to_host == before
        written = np.frombuffer(app.fs.data_of("out.bin"), dtype=np.float32)
        assert np.allclose(written, 6.0)

    def test_peer_dma_speeds_up_io_heavy_workload(self):
        """mri-fhd — the benchmark the paper says 'would benefit from
        hardware that supports peer DMA' — gets faster with it."""
        from repro.workloads.parboil import MriFhd

        def run(peer_dma):
            workload = MriFhd(n_samples=8192, n_voxels=64)
            result = workload.execute(
                mode="gmac", protocol="rolling",
                gmac_options={"layer": "driver", "peer_dma": peer_dma},
            )
            assert result.verified
            return result.elapsed

        assert run(True) < run(False)

    def test_partial_block_reads_fall_back(self, app, peer_gmac):
        app.fs.create("in.bin", b"Z" * 100)
        ptr = peer_gmac.alloc(PAGE_SIZE)
        with app.fs.open("in.bin") as handle:
            app.libc.read(handle, int(ptr) + 8, 100)
        assert ptr.read_bytes(100, offset=8) == b"Z" * 100
