"""The shared memory manager: address space, index, fault dispatch."""

import numpy as np
import pytest

from repro.util.errors import GmacError, SegmentationFault
from repro.util.units import KB
from repro.os.paging import PAGE_SIZE, Prot
from repro.core.blocks import BlockState


@pytest.fixture
def gmac(gmac_factory):
    return gmac_factory("rolling", protocol_options={"block_size": 64 * KB})


class TestSharedAddressSpace:
    def test_single_pointer_for_both_processors(self, gmac):
        ptr = gmac.alloc(PAGE_SIZE)
        region = gmac.manager.region_at(int(ptr))
        assert region.is_aliased
        assert gmac.manager.translate(int(ptr)) == int(ptr)

    def test_translation_with_offset(self, gmac):
        ptr = gmac.alloc(4 * PAGE_SIZE)
        assert gmac.manager.translate(int(ptr) + 100) == int(ptr) + 100

    def test_translate_non_shared_rejected(self, gmac):
        with pytest.raises(GmacError):
            gmac.manager.translate(0x1234)

    def test_regions_listed(self, gmac):
        a = gmac.alloc(PAGE_SIZE, name="a")
        b = gmac.alloc(PAGE_SIZE, name="b")
        names = {region.name for region in gmac.manager.regions()}
        assert names == {"a", "b"}
        assert gmac.manager.region_at(int(a)).name == "a"
        assert gmac.manager.region_starting_at(int(b)).name == "b"

    def test_block_index_tracks_blocks(self, gmac):
        gmac.alloc(256 * KB)  # 4 blocks of 64KB
        assert gmac.manager.block_count == 4

    def test_free_removes_everything(self, gmac):
        ptr = gmac.alloc(256 * KB)
        gmac.free(ptr)
        assert gmac.manager.block_count == 0
        assert gmac.manager.region_at(int(ptr)) is None

    def test_free_unknown_rejected(self, gmac):
        with pytest.raises(GmacError):
            gmac.free(0xABCD)

    def test_double_free_rejected(self, gmac):
        ptr = gmac.alloc(PAGE_SIZE)
        gmac.free(ptr)
        with pytest.raises(GmacError):
            gmac.free(ptr)

    def test_free_all(self, gmac):
        gmac.alloc(PAGE_SIZE)
        gmac.alloc(PAGE_SIZE)
        gmac.manager.free_all()
        assert gmac.manager.block_count == 0

    def test_device_memory_released_on_free(self, gmac):
        device = gmac.layer.gpu.memory
        baseline = device.bytes_in_use
        ptr = gmac.alloc(1 << 20)
        assert device.bytes_in_use > baseline
        gmac.free(ptr)
        assert device.bytes_in_use == baseline

    def test_bad_size_rejected(self, gmac):
        with pytest.raises(GmacError):
            gmac.alloc(0)

    def test_safe_alloc_not_aliased(self, gmac):
        ptr = gmac.safe_alloc(PAGE_SIZE)
        region = gmac.manager.region_at(int(ptr))
        assert not region.is_aliased
        assert gmac.safe(ptr) == region.device_start


class TestFaultDispatch:
    def test_fault_outside_shared_memory_still_crashes(self, app, gmac):
        gmac.alloc(PAGE_SIZE)  # handler is registered, but not for this:
        with pytest.raises(SegmentationFault):
            app.process.read(0xDEAD0000, 4)

    def test_fault_in_gap_between_regions_crashes(self, app, gmac):
        a = gmac.alloc(PAGE_SIZE)
        region = gmac.manager.region_at(int(a))
        # Just past the region's mapped end: floor() finds a's last block,
        # but the containment check must reject it.
        with pytest.raises(SegmentationFault):
            app.process.read(region.interval.end, 4)

    def test_fault_count(self, app, gmac):
        ptr = gmac.alloc(PAGE_SIZE)
        ptr.write_bytes(b"x")  # write fault on a read-only fresh block
        assert gmac.fault_count == 1

    def test_fault_charges_signal_time(self, app, gmac):
        from repro.sim.tracing import Category

        ptr = gmac.alloc(PAGE_SIZE)
        ptr.write_bytes(b"x")
        assert app.machine.accounting.totals[Category.SIGNAL] > 0


class TestDataMovement:
    def test_flush_then_fetch_roundtrip(self, gmac):
        ptr = gmac.alloc(PAGE_SIZE)
        region = gmac.manager.region_at(int(ptr))
        block = region.blocks[0]
        ptr.write_bytes(b"payload")
        gmac.manager.flush_to_device(block, sync=True)
        gmac.process.address_space.poke(int(ptr), b"clobber")
        gmac.manager.fetch_to_host(block)
        assert gmac.process.address_space.peek(int(ptr), 7) == b"payload"

    def test_byte_counters(self, gmac):
        ptr = gmac.alloc(PAGE_SIZE)
        region = gmac.manager.region_at(int(ptr))
        gmac.manager.flush_to_device(region.blocks[0], sync=True)
        gmac.manager.fetch_to_host(region.blocks[0])
        assert gmac.manager.bytes_to_accelerator == PAGE_SIZE
        assert gmac.manager.bytes_to_host == PAGE_SIZE
        gmac.manager.reset_counters()
        assert gmac.manager.bytes_to_accelerator == 0

    def test_async_flush_counts_as_eager(self, gmac):
        ptr = gmac.alloc(PAGE_SIZE)
        region = gmac.manager.region_at(int(ptr))
        gmac.manager.flush_to_device(region.blocks[0], sync=False)
        assert gmac.manager.eager_bytes_to_accelerator == PAGE_SIZE

    def test_ensure_device_canonical_flushes_dirty(self, gmac):
        ptr = gmac.alloc(PAGE_SIZE)
        region = gmac.manager.region_at(int(ptr))
        ptr.write_bytes(b"dirty data")
        assert region.blocks[0].state is BlockState.DIRTY
        gmac.manager.ensure_device_canonical(region, region.interval)
        assert region.blocks[0].state is BlockState.READ_ONLY
        assert gmac.layer.gpu.memory.read(region.device_start, 10) == b"dirty data"

    def test_ensure_host_canonical_fetches_invalid(self, gmac):
        ptr = gmac.alloc(PAGE_SIZE)
        region = gmac.manager.region_at(int(ptr))
        gmac.layer.gpu.memory.write(region.device_start, b"from device")
        gmac.manager.set_region_blocks(region, BlockState.INVALID, Prot.NONE)
        gmac.manager.ensure_host_canonical(region, region.interval)
        assert ptr.read_bytes(11) == b"from device"
