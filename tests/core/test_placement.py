"""Placement policies: deterministic choice, liveness, survivor picking."""

import pytest

from repro.util.errors import GmacError
from repro.util.units import MB
from repro.hw.machine import multi_device_system
from repro.core.placement import (
    PLACEMENTS,
    CapacityAware,
    PlacementPolicy,
    RoundRobin,
)


@pytest.fixture
def multi_machine():
    return multi_device_system(devices=3)


class TestRoundRobin:
    def test_cycles_over_alive_devices(self, multi_machine):
        policy = RoundRobin(multi_machine)
        assert [policy.place(MB) for _ in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_skips_dead_devices(self, multi_machine):
        policy = RoundRobin(multi_machine)
        policy.mark_dead(1)
        assert [policy.place(MB) for _ in range(4)] == [0, 2, 0, 2]

    def test_readmitted_device_rejoins_rotation(self, multi_machine):
        policy = RoundRobin(multi_machine)
        policy.mark_dead(0)
        policy.place(MB)
        policy.mark_alive(0)
        assert 0 in [policy.place(MB) for _ in range(3)]

    def test_no_alive_device_raises(self, multi_machine):
        policy = RoundRobin(multi_machine)
        for device in range(3):
            policy.mark_dead(device)
        with pytest.raises(GmacError):
            policy.place(MB)


class TestCapacityAware:
    def test_prefers_most_free_memory(self, multi_machine):
        policy = CapacityAware(multi_machine)
        multi_machine.gpus[0].memory.alloc(64 * MB)
        multi_machine.gpus[2].memory.alloc(32 * MB)
        assert policy.place(MB) == 1

    def test_ties_break_to_lowest_index(self, multi_machine):
        policy = CapacityAware(multi_machine)
        assert policy.place(MB) == 0


class TestSurvivors:
    def test_survivor_excludes_the_lost_device(self, multi_machine):
        policy = RoundRobin(multi_machine)
        policy.mark_dead(1)
        for _ in range(4):
            assert policy.pick_survivor(1, MB) in (0, 2)

    def test_no_survivor_returns_none(self, multi_machine):
        policy = RoundRobin(multi_machine)
        policy.mark_dead(0)
        policy.mark_dead(2)
        assert policy.pick_survivor(1, MB) is None


class TestRegistryAndWiring:
    def test_registry_names(self):
        assert PLACEMENTS["round-robin"] is RoundRobin
        assert PLACEMENTS["capacity"] is CapacityAware
        for cls in PLACEMENTS.values():
            assert issubclass(cls, PlacementPolicy)

    def test_gmac_resolves_policy_by_name(self, multi_machine):
        from repro.workloads.base import Application

        gmac = Application(multi_machine).gmac(
            protocol="rolling", layer="driver", placement="capacity"
        )
        assert isinstance(gmac.placement, CapacityAware)
        assert gmac.manager.placement is gmac.placement

    def test_unknown_policy_name_raises(self, multi_machine):
        from repro.workloads.base import Application

        with pytest.raises(GmacError):
            Application(multi_machine).gmac(
                protocol="rolling", placement="nope"
            )

    def test_policy_needs_a_multi_device_machine(self, machine, app):
        policy = RoundRobin(machine)
        with pytest.raises(GmacError):
            app.gmac(protocol="rolling", placement=policy)
