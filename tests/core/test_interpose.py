"""I/O and bulk-memory interposition (Section 4.4)."""

import numpy as np
import pytest

from repro.util.units import KB
from repro.os.paging import PAGE_SIZE
from repro.core.blocks import BlockState


@pytest.fixture
def gmac(gmac_factory):
    # Small blocks so multi-block effects are easy to trigger.
    return gmac_factory(
        "rolling",
        protocol_options={"block_size": PAGE_SIZE, "rolling_size": 8},
    )


class TestInterposedRead:
    def test_read_into_shared_memory_works(self, app, gmac):
        """The un-restartable-read problem, solved: a multi-block read
        into a shared object succeeds through the interposed read()."""
        payload = bytes(range(256)) * (3 * PAGE_SIZE // 256)
        app.fs.create("in.bin", payload)
        ptr = gmac.alloc(3 * PAGE_SIZE)
        with app.fs.open("in.bin") as handle:
            assert app.libc.read(handle, int(ptr), len(payload)) == len(payload)
        assert ptr.read_bytes(len(payload)) == payload

    def test_read_proceeds_in_block_chunks(self, app, gmac):
        app.fs.create("in.bin", bytes(3 * PAGE_SIZE))
        ptr = gmac.alloc(3 * PAGE_SIZE)
        before = app.process.signals.delivered
        with app.fs.open("in.bin") as handle:
            app.libc.read(handle, int(ptr), 3 * PAGE_SIZE)
        # One pre-fault per block, not an abort.
        assert app.process.signals.delivered - before == 3

    def test_read_after_kernel_overwrites_invalid_blocks(self, app, gmac,
                                                         scale_kernel):
        ptr = gmac.alloc(2 * PAGE_SIZE)
        gmac.call(scale_kernel, data=ptr, n=1, factor=1.0)
        gmac.sync()
        app.fs.create("in.bin", b"Q" * (2 * PAGE_SIZE))
        with app.fs.open("in.bin") as handle:
            app.libc.read(handle, int(ptr), 2 * PAGE_SIZE)
        assert ptr.read_bytes(8) == b"QQQQQQQQ"

    def test_read_spanning_shared_and_plain(self, app, gmac):
        """A single read covering a malloc'd buffer is forwarded to the
        default implementation untouched."""
        app.fs.create("in.bin", b"plain-memory-read")
        plain = app.process.malloc(64)
        with app.fs.open("in.bin") as handle:
            app.libc.read(handle, int(plain), 17)
        assert plain.read_bytes(17) == b"plain-memory-read"


class TestInterposedWrite:
    def test_write_from_invalid_shared_memory(self, app, gmac, scale_kernel):
        """Writing a kernel result to disk fetches blocks one at a time
        through the pre-faulting interposed write()."""
        ptr = gmac.alloc(2 * PAGE_SIZE)
        values = np.arange(2 * PAGE_SIZE // 4, dtype=np.float32)
        ptr.write_array(values)
        gmac.call(scale_kernel, data=ptr, n=len(values), factor=2.0)
        gmac.sync()
        with app.fs.open("out.bin", "w") as handle:
            app.libc.write(handle, int(ptr), 2 * PAGE_SIZE)
        written = np.frombuffer(app.fs.data_of("out.bin"), dtype=np.float32)
        assert np.allclose(written, values * 2.0)

    def test_write_fetches_per_block(self, app, gmac, scale_kernel):
        ptr = gmac.alloc(4 * PAGE_SIZE)
        gmac.call(scale_kernel, data=ptr, n=1, factor=1.0)
        gmac.sync()
        with app.fs.open("out.bin", "w") as handle:
            app.libc.write(handle, int(ptr), 4 * PAGE_SIZE)
        assert gmac.bytes_to_host == 4 * PAGE_SIZE


class TestInterposedMemset:
    def test_full_blocks_use_device_memset(self, app, gmac):
        ptr = gmac.alloc(2 * PAGE_SIZE)
        app.libc.memset(int(ptr), 0x77, 2 * PAGE_SIZE)
        region = gmac.manager.region_at(int(ptr))
        # Device is canonical, host copy discarded.
        assert all(b.state is BlockState.INVALID for b in region.blocks)
        assert gmac.layer.gpu.memory.read(region.device_start, 8) == b"\x77" * 8
        # CPU read faults the value back.
        assert ptr.read_bytes(8) == b"\x77" * 8

    def test_partial_block_stays_on_host_path(self, app, gmac):
        ptr = gmac.alloc(2 * PAGE_SIZE)
        app.libc.memset(int(ptr) + 16, 0x55, 64)
        region = gmac.manager.region_at(int(ptr))
        assert region.blocks[0].state is BlockState.DIRTY
        assert ptr.read_bytes(64, offset=16) == b"\x55" * 64

    def test_memset_discards_dirty_cache_entry(self, app, gmac):
        ptr = gmac.alloc(PAGE_SIZE)
        ptr.write_bytes(b"dirty")
        app.libc.memset(int(ptr), 0, PAGE_SIZE)
        assert len(gmac.protocol._dirty) == 0
        assert ptr.read_bytes(5) == bytes(5)

    def test_plain_memory_forwarded(self, app, gmac):
        plain = app.process.malloc(64)
        app.libc.memset(int(plain), 0xAA, 64)
        assert plain.read_bytes(64) == b"\xaa" * 64

    def test_batch_protocol_uses_host_path(self, app, gmac_factory):
        gmac = gmac_factory("batch")
        ptr = gmac.alloc(PAGE_SIZE)
        app.libc.memset(int(ptr), 0x99, PAGE_SIZE)
        region = gmac.manager.region_at(int(ptr))
        assert region.blocks[0].state is BlockState.DIRTY
        assert ptr.read_bytes(4) == b"\x99" * 4


class TestInterposedMemcpy:
    def test_shared_to_shared_uses_device_copy(self, app, gmac):
        src = gmac.alloc(PAGE_SIZE, name="src")
        dst = gmac.alloc(PAGE_SIZE, name="dst")
        src.write_bytes(b"D" * PAGE_SIZE)
        engine_ops_before = gmac.layer.gpu.engine.operation_count
        app.libc.memcpy(int(dst), int(src), PAGE_SIZE)
        assert gmac.layer.gpu.engine.operation_count > engine_ops_before
        assert dst.read_bytes(8) == b"D" * 8

    def test_plain_to_shared_full_block_is_dma(self, app, gmac):
        plain = app.process.malloc(PAGE_SIZE)
        plain.write_bytes(b"H" * PAGE_SIZE)
        dst = gmac.alloc(PAGE_SIZE)
        before = gmac.manager.bytes_to_accelerator
        app.libc.memcpy(int(dst), int(plain), PAGE_SIZE)
        assert gmac.manager.bytes_to_accelerator - before == PAGE_SIZE
        assert dst.read_bytes(4) == b"HHHH"

    def test_shared_to_plain_streams_invalid_blocks(self, app, gmac,
                                                    scale_kernel):
        src = gmac.alloc(PAGE_SIZE)
        src.write_array(np.full(PAGE_SIZE // 4, 4.0, dtype=np.float32))
        gmac.call(scale_kernel, data=src, n=PAGE_SIZE // 4, factor=2.0)
        gmac.sync()
        plain = app.process.malloc(PAGE_SIZE)
        app.libc.memcpy(int(plain), int(src), PAGE_SIZE)
        assert np.allclose(plain.read_array("f4", PAGE_SIZE // 4), 8.0)
        # The copy streamed straight from device memory; the shared blocks
        # stayed invalid on the host.
        region = gmac.manager.region_at(int(src))
        assert region.blocks[0].state is BlockState.INVALID

    def test_partial_copy_host_path(self, app, gmac):
        src = gmac.alloc(PAGE_SIZE)
        dst = gmac.alloc(PAGE_SIZE)
        src.write_bytes(b"partial!")
        app.libc.memcpy(int(dst) + 8, int(src), 8)
        assert dst.read_bytes(8, offset=8) == b"partial!"

    def test_plain_to_plain_forwarded(self, app, gmac):
        a = app.process.malloc(64)
        b = app.process.malloc(64)
        a.write_bytes(b"forwarded")
        app.libc.memcpy(int(b), int(a), 9)
        assert b.read_bytes(9) == b"forwarded"


class TestInstallUninstall:
    def test_uninstall_restores_defaults(self, app, gmac):
        ptr = gmac.alloc(2 * PAGE_SIZE)
        gmac.interposer.uninstall()
        from repro.util.errors import IoError
        from repro.os.paging import Prot

        # Make the region multi-fault for a plain read again.
        gmac.manager.set_region_blocks(
            gmac.manager.region_at(int(ptr)),
            BlockState.READ_ONLY,
            Prot.READ,
        )
        app.fs.create("in.bin", bytes(2 * PAGE_SIZE))
        with app.fs.open("in.bin") as handle:
            with pytest.raises(IoError):
                app.libc.read(handle, int(ptr), 2 * PAGE_SIZE)
