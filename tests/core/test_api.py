"""The Table 1 API surface and call/return consistency semantics."""

import numpy as np
import pytest

from repro.util.errors import GmacError
from repro.os.paging import PAGE_SIZE
from repro.core.api import Gmac, SharedPtr


class TestTable1Surface:
    """Table 1: the compulsory ADSM API, under its paper names."""

    def test_paper_aliases_exist(self, gmac_factory):
        gmac = gmac_factory()
        for name in ("adsmAlloc", "adsmFree", "adsmCall", "adsmSync",
                     "adsmSafeAlloc", "adsmSafe"):
            assert callable(getattr(gmac, name))

    def test_alloc_returns_shared_ptr(self, gmac_factory):
        gmac = gmac_factory()
        ptr = gmac.adsmAlloc(PAGE_SIZE)
        assert isinstance(ptr, SharedPtr)
        assert ptr.device_addr == int(ptr)
        assert ptr.region is not None

    def test_call_then_sync(self, gmac_factory, scale_kernel):
        gmac = gmac_factory()
        ptr = gmac.adsmAlloc(64)
        ptr.write_array(np.ones(16, dtype=np.float32))
        gmac.adsmCall(scale_kernel, data=ptr, n=16, factor=5.0)
        gmac.adsmSync()
        assert np.allclose(ptr.read_array("f4", 16), 5.0)

    def test_unknown_protocol_rejected(self, app):
        with pytest.raises(GmacError):
            Gmac(app.machine, app.process, protocol="magic")

    def test_bad_layer_rejected(self, app):
        with pytest.raises(ValueError):
            Gmac(app.machine, app.process, layer="kernel-module")


class TestCallSemantics:
    def test_host_pointer_argument_rejected(self, app, gmac_factory,
                                            scale_kernel):
        """The asymmetry: accelerators cannot access host memory."""
        gmac = gmac_factory()
        host_ptr = app.process.malloc(64)
        with pytest.raises(GmacError, match="host pointer"):
            gmac.call(scale_kernel, data=host_ptr, n=4, factor=1.0)

    def test_scalar_arguments_pass_through(self, gmac_factory, scale_kernel):
        gmac = gmac_factory()
        ptr = gmac.alloc(64)
        completion = gmac.call(scale_kernel, data=ptr, n=4, factor=2.0)
        assert completion.label == "scale"

    def test_shared_ptr_mid_region_translates(self, gmac_factory, add_kernel):
        gmac = gmac_factory()
        buf = gmac.alloc(3 * 64)
        a = np.full(16, 1.0, dtype=np.float32)
        b = np.full(16, 2.0, dtype=np.float32)
        buf.write_array(a)
        (buf + 64).write_array(b)
        gmac.call(add_kernel, a=buf, b=buf + 64, c=buf + 128, n=16)
        gmac.sync()
        assert np.allclose((buf + 128).read_array("f4", 16), 3.0)

    def test_writes_annotation_keeps_host_copy_valid(self, gmac_factory,
                                                     add_kernel):
        gmac = gmac_factory()
        a = gmac.alloc(64, name="a")
        b = gmac.alloc(64, name="b")
        c = gmac.alloc(64, name="c")
        a.write_array(np.ones(16, dtype=np.float32))
        b.write_array(np.ones(16, dtype=np.float32))
        gmac.call(add_kernel, writes=[c], a=a, b=b, c=c, n=16)
        gmac.sync()
        fetched_before = gmac.bytes_to_host
        a.read_array("f4", 16)
        b.read_array("f4", 16)
        assert gmac.bytes_to_host == fetched_before  # no read-back needed
        c.read_array("f4", 16)
        assert gmac.bytes_to_host > fetched_before

    def test_writes_annotation_rejects_non_shared(self, gmac_factory,
                                                  scale_kernel, app):
        gmac = gmac_factory()
        ptr = gmac.alloc(64)
        with pytest.raises(GmacError):
            gmac.call(scale_kernel, writes=[app.process.malloc(64)],
                      data=ptr, n=4, factor=1.0)

    def test_release_consistency_at_boundaries(self, gmac_factory,
                                               scale_kernel):
        """Objects are released at adsmCall and acquired at adsmSync: CPU
        writes before the call are visible to the kernel, kernel writes
        are visible to the CPU after sync."""
        gmac = gmac_factory()
        ptr = gmac.alloc(64)
        ptr.write_array(np.full(16, 3.0, dtype=np.float32))
        gmac.call(scale_kernel, data=ptr, n=16, factor=2.0)
        gmac.sync()
        ptr.write_array(np.full(4, 9.0, dtype=np.float32))
        gmac.call(scale_kernel, data=ptr, n=16, factor=10.0)
        gmac.sync()
        result = ptr.read_array("f4", 16)
        assert np.allclose(result[:4], 90.0)
        assert np.allclose(result[4:], 60.0)

    def test_sync_waits_for_kernel(self, app, gmac_factory, scale_kernel):
        gmac = gmac_factory()
        ptr = gmac.alloc(1 << 20)
        completion = gmac.call(scale_kernel, data=ptr, n=1 << 18, factor=1.0)
        gmac.sync()
        assert app.machine.clock.now >= completion.finish

    def test_multiple_outstanding_calls(self, gmac_factory, scale_kernel):
        gmac = gmac_factory()
        ptr = gmac.alloc(64)
        ptr.write_array(np.full(16, 1.0, dtype=np.float32))
        gmac.call(scale_kernel, data=ptr, n=16, factor=2.0)
        gmac.call(scale_kernel, data=ptr, n=16, factor=3.0)
        gmac.sync()
        assert np.allclose(ptr.read_array("f4", 16), 6.0)
        assert gmac.kernel_calls == 2


class TestStatsAndTeardown:
    def test_counters_exposed(self, gmac_factory, scale_kernel):
        gmac = gmac_factory()
        ptr = gmac.alloc(PAGE_SIZE)
        ptr.write_bytes(b"x")
        gmac.call(scale_kernel, data=ptr, n=1, factor=1.0)
        gmac.sync()
        ptr.read_bytes(1)
        assert gmac.bytes_to_accelerator > 0
        assert gmac.bytes_to_host > 0
        assert gmac.fault_count >= 2

    def test_shutdown_releases_and_uninstalls(self, app, gmac_factory,
                                              scale_kernel):
        gmac = gmac_factory()
        ptr = gmac.alloc(PAGE_SIZE)
        gmac.call(scale_kernel, data=ptr, n=1, factor=1.0)
        gmac.shutdown()  # syncs the pending call, frees, uninstalls libc
        assert gmac.manager.block_count == 0
        assert gmac.interposer is None

    def test_memset_memcpy_without_libc(self, app):
        gmac = Gmac(app.machine, app.process, libc=None, layer="driver")
        ptr = gmac.alloc(64)
        gmac.memset(ptr, 0x33, 16)
        assert ptr.read_bytes(16) == b"\x33" * 16
        other = gmac.alloc(64)
        gmac.memcpy(other, ptr, 16)
        assert other.read_bytes(16) == b"\x33" * 16
