"""Property-based coherence testing.

A random sequence of CPU writes, CPU reads, kernel calls and syncs is run
against every protocol and checked against a flat numpy model of what the
data *should* contain.  The invariant is the ADSM contract: after adsmSync,
CPU reads observe every kernel write; at adsmCall, the kernel observes
every CPU write — regardless of protocol, block size or rolling size.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.os.paging import PAGE_SIZE
from repro.hw.machine import reference_system
from repro.workloads.base import Application
from repro.cuda.kernels import Kernel

REGION_PAGES = 6
REGION_BYTES = REGION_PAGES * PAGE_SIZE


def _negate_fn(gpu, data, n):
    view = gpu.view(data, "i4", n)
    np.negative(view, out=view)


NEGATE = Kernel("negate", _negate_fn, cost=lambda data, n: (n, 8 * n))

_operation = st.one_of(
    st.tuples(
        st.just("write"),
        st.integers(0, REGION_BYTES // 4 - 1),
        st.integers(1, 2048),
        st.integers(-1000, 1000),
    ),
    st.tuples(st.just("read"), st.integers(0, REGION_BYTES // 4 - 1),
              st.integers(1, 2048)),
    st.tuples(st.just("kernel")),
    st.tuples(st.just("memset"), st.integers(0, REGION_BYTES - 1),
              st.integers(1, 8192), st.integers(0, 255)),
)


@st.composite
def _programs(draw):
    return draw(st.lists(_operation, min_size=1, max_size=12))


class TestCoherenceAgainstModel:
    @pytest.mark.parametrize(
        "protocol, options",
        [
            ("batch", {}),
            ("lazy", {}),
            ("rolling", {"block_size": PAGE_SIZE, "rolling_size": 1}),
            ("rolling", {"block_size": PAGE_SIZE, "rolling_size": 3}),
            ("rolling", {"block_size": 2 * PAGE_SIZE}),
        ],
    )
    @given(program=_programs())
    @settings(max_examples=25, deadline=None)
    def test_random_program_matches_model(self, protocol, options, program):
        machine = reference_system()
        app = Application(machine)
        gmac = app.gmac(
            protocol=protocol,
            layer="driver",
            protocol_options=options or None,
        )
        ptr = gmac.alloc(REGION_BYTES)
        model = np.zeros(REGION_BYTES // 4, dtype=np.int32)
        n = len(model)
        pending_kernel = False

        for op in program:
            if op[0] == "write":
                _, index, count, value = op
                count = min(count, n - index)
                if pending_kernel:
                    gmac.sync()
                    pending_kernel = False
                values = np.full(count, value, dtype=np.int32)
                ptr.write_array(values, offset=4 * index)
                model[index:index + count] = values
            elif op[0] == "read":
                _, index, count = op
                count = min(count, n - index)
                if pending_kernel:
                    gmac.sync()
                    pending_kernel = False
                observed = ptr.read_array("i4", count, offset=4 * index)
                assert np.array_equal(observed, model[index:index + count])
            elif op[0] == "kernel":
                gmac.call(NEGATE, data=ptr, n=n)
                np.negative(model, out=model)
                pending_kernel = True
            elif op[0] == "memset":
                _, offset, size, value = op
                size = min(size, REGION_BYTES - offset)
                if pending_kernel:
                    gmac.sync()
                    pending_kernel = False
                app.libc.memset(int(ptr) + offset, value, size)
                raw = model.view(np.uint8)
                raw[offset:offset + size] = value

        if pending_kernel:
            gmac.sync()
        final = ptr.read_array("i4", n)
        assert np.array_equal(final, model)

    @given(
        block_pages=st.integers(1, 4),
        rolling=st.integers(1, 5),
        chunks=st.lists(st.integers(1, REGION_BYTES // 8), min_size=1,
                        max_size=8),
    )
    @settings(max_examples=25, deadline=None)
    def test_sequential_production_always_reaches_device(self, block_pages,
                                                         rolling, chunks):
        """Whatever the block/rolling geometry, data written before a call
        is what the kernel sees."""
        machine = reference_system()
        app = Application(machine)
        gmac = app.gmac(
            protocol="rolling",
            layer="driver",
            protocol_options={
                "block_size": block_pages * PAGE_SIZE,
                "rolling_size": rolling,
            },
        )
        ptr = gmac.alloc(REGION_BYTES)
        rng = np.random.default_rng(1)
        reference = np.zeros(REGION_BYTES // 4, dtype=np.int32)
        cursor = 0
        for chunk in chunks:
            count = min(chunk, len(reference) - cursor)
            if count <= 0:
                break
            values = rng.integers(-100, 100, count, dtype=np.int32)
            ptr.write_array(values, offset=4 * cursor)
            reference[cursor:cursor + count] = values
            cursor += count
        gmac.call(NEGATE, data=ptr, n=len(reference))
        gmac.sync()
        assert np.array_equal(
            ptr.read_array("i4", len(reference)), -reference
        )
