"""The Figure 6 state machines, protocol by protocol."""

import numpy as np
import pytest

from repro.util.units import KB
from repro.os.paging import PAGE_SIZE, Prot
from repro.core.blocks import BlockState


def region_of(gmac, ptr):
    return gmac.manager.region_at(int(ptr))


def states(gmac, ptr):
    return [block.state for block in region_of(gmac, ptr).blocks]


class TestBatchUpdate:
    def test_fresh_region_is_dirty_and_rw(self, gmac_factory):
        gmac = gmac_factory("batch")
        ptr = gmac.alloc(PAGE_SIZE)
        region = region_of(gmac, ptr)
        assert states(gmac, ptr) == [BlockState.DIRTY]
        mapping = gmac.process.address_space.mapping_at(int(ptr))
        assert mapping.prot_of(int(ptr)) == Prot.RW

    def test_no_faults_ever(self, app, gmac_factory, scale_kernel):
        gmac = gmac_factory("batch")
        ptr = gmac.alloc(PAGE_SIZE)
        ptr.write_bytes(b"data")
        gmac.call(scale_kernel, data=ptr, n=1, factor=1.0)
        gmac.sync()
        ptr.read_bytes(4)
        assert app.process.signals.delivered == 0

    def test_everything_moves_both_ways_per_call(self, gmac_factory,
                                                 scale_kernel):
        gmac = gmac_factory("batch")
        used = gmac.alloc(PAGE_SIZE, name="used")
        unused = gmac.alloc(3 * PAGE_SIZE, name="unused")
        gmac.call(scale_kernel, data=used, n=1, factor=1.0)
        gmac.sync()
        # Both regions crossed the bus in both directions.
        assert gmac.bytes_to_accelerator == 4 * PAGE_SIZE
        assert gmac.bytes_to_host == 4 * PAGE_SIZE

    def test_back_to_back_calls_skip_invalid_host_copy(self, gmac_factory,
                                                       scale_kernel):
        gmac = gmac_factory("batch")
        ptr = gmac.alloc(PAGE_SIZE)
        values = np.full(16, 2.0, dtype=np.float32)
        ptr.write_array(values)
        gmac.call(scale_kernel, data=ptr, n=16, factor=3.0)
        gmac.call(scale_kernel, data=ptr, n=16, factor=3.0)
        gmac.sync()
        # The second call must NOT overwrite device data with the stale
        # host copy: the result reflects both kernel executions.
        assert np.allclose(ptr.read_array("f4", 16), values * 9.0)


class TestLazyUpdate:
    def test_fresh_region_read_only(self, gmac_factory):
        gmac = gmac_factory("lazy")
        ptr = gmac.alloc(4 * PAGE_SIZE)
        assert states(gmac, ptr) == [BlockState.READ_ONLY]

    def test_read_of_fresh_region_does_not_fault(self, app, gmac_factory):
        gmac = gmac_factory("lazy")
        ptr = gmac.alloc(PAGE_SIZE)
        ptr.read_bytes(16)
        assert app.process.signals.delivered == 0

    def test_write_marks_whole_object_dirty(self, gmac_factory):
        gmac = gmac_factory("lazy")
        ptr = gmac.alloc(4 * PAGE_SIZE)
        ptr.write_bytes(b"x")  # one byte dirties the whole object
        assert states(gmac, ptr) == [BlockState.DIRTY]

    def test_only_dirty_objects_flushed_on_call(self, gmac_factory,
                                                scale_kernel):
        gmac = gmac_factory("lazy")
        dirty = gmac.alloc(PAGE_SIZE, name="dirty")
        clean = gmac.alloc(PAGE_SIZE, name="clean")
        dirty.write_bytes(b"x")
        gmac.call(scale_kernel, data=dirty, n=1, factor=1.0)
        assert gmac.bytes_to_accelerator == PAGE_SIZE  # only `dirty`

    def test_all_invalid_after_call(self, gmac_factory, scale_kernel):
        gmac = gmac_factory("lazy")
        ptr = gmac.alloc(PAGE_SIZE)
        gmac.call(scale_kernel, data=ptr, n=1, factor=1.0)
        assert states(gmac, ptr) == [BlockState.INVALID]

    def test_nothing_returns_until_touched(self, gmac_factory, scale_kernel):
        gmac = gmac_factory("lazy")
        ptr = gmac.alloc(PAGE_SIZE)
        gmac.call(scale_kernel, data=ptr, n=1, factor=1.0)
        gmac.sync()
        assert gmac.bytes_to_host == 0
        ptr.read_bytes(4)  # first touch fetches the object
        assert gmac.bytes_to_host == PAGE_SIZE

    def test_invalid_read_becomes_read_only(self, gmac_factory, scale_kernel):
        gmac = gmac_factory("lazy")
        ptr = gmac.alloc(PAGE_SIZE)
        gmac.call(scale_kernel, data=ptr, n=1, factor=1.0)
        gmac.sync()
        ptr.read_bytes(4)
        assert states(gmac, ptr) == [BlockState.READ_ONLY]

    def test_invalid_write_fetches_then_dirties(self, gmac_factory,
                                                scale_kernel):
        gmac = gmac_factory("lazy")
        ptr = gmac.alloc(PAGE_SIZE)
        values = np.arange(16, dtype=np.float32)
        ptr.write_array(values)
        gmac.call(scale_kernel, data=ptr, n=16, factor=2.0)
        gmac.sync()
        # Partial write: the rest of the object must come back first.
        ptr.write_array(np.array([100.0], dtype=np.float32))
        assert states(gmac, ptr) == [BlockState.DIRTY]
        result = ptr.read_array("f4", 16)
        assert result[0] == 100.0
        assert np.allclose(result[1:], values[1:] * 2.0)


class TestRollingUpdate:
    def make(self, gmac_factory, block_size=PAGE_SIZE, rolling_size=2):
        return gmac_factory(
            "rolling",
            protocol_options={
                "block_size": block_size, "rolling_size": rolling_size,
            },
        )

    def test_block_granularity(self, gmac_factory):
        gmac = self.make(gmac_factory)
        ptr = gmac.alloc(4 * PAGE_SIZE)
        ptr.write_bytes(b"x")  # dirties only the first block
        assert states(gmac, ptr) == [
            BlockState.DIRTY, BlockState.READ_ONLY,
            BlockState.READ_ONLY, BlockState.READ_ONLY,
        ]

    def test_eviction_when_rolling_size_exceeded(self, gmac_factory):
        gmac = self.make(gmac_factory, rolling_size=2)
        ptr = gmac.alloc(4 * PAGE_SIZE)
        for index in range(3):
            ptr.write_bytes(b"x", offset=index * PAGE_SIZE)
        # Oldest block was evicted (read-only), two newest remain dirty.
        assert states(gmac, ptr) == [
            BlockState.READ_ONLY, BlockState.DIRTY,
            BlockState.DIRTY, BlockState.READ_ONLY,
        ]
        assert gmac.protocol.evictions == 1
        assert gmac.manager.eager_bytes_to_accelerator == PAGE_SIZE

    def test_evicted_data_reaches_device(self, gmac_factory):
        gmac = self.make(gmac_factory, rolling_size=1)
        ptr = gmac.alloc(2 * PAGE_SIZE)
        ptr.write_bytes(b"evict me", offset=0)
        ptr.write_bytes(b"second", offset=PAGE_SIZE)  # evicts block 0
        region = region_of(gmac, ptr)
        assert gmac.layer.gpu.memory.read(
            region.device_start, 8
        ) == b"evict me"

    def test_rewrite_of_evicted_block_refaults(self, app, gmac_factory):
        gmac = self.make(gmac_factory, rolling_size=1)
        ptr = gmac.alloc(2 * PAGE_SIZE)
        ptr.write_bytes(b"a")            # fault 1: dirty block 0
        ptr.write_bytes(b"b", offset=PAGE_SIZE)  # fault 2: evict block 0
        before = app.process.signals.delivered
        ptr.write_bytes(b"c")            # fault 3: re-dirty block 0
        assert app.process.signals.delivered == before + 1

    def test_invalid_read_fetches_single_block(self, gmac_factory,
                                               scale_kernel):
        gmac = self.make(gmac_factory)
        ptr = gmac.alloc(4 * PAGE_SIZE)
        gmac.call(scale_kernel, data=ptr, n=1, factor=1.0)
        gmac.sync()
        ptr.read_bytes(4, offset=2 * PAGE_SIZE)
        assert gmac.bytes_to_host == PAGE_SIZE  # one block, not the object
        assert states(gmac, ptr) == [
            BlockState.INVALID, BlockState.INVALID,
            BlockState.READ_ONLY, BlockState.INVALID,
        ]

    def test_adaptive_rolling_size_grows(self, gmac_factory):
        gmac = gmac_factory("rolling", protocol_options={"block_size": PAGE_SIZE})
        assert gmac.protocol.adaptive
        assert gmac.protocol.rolling_size == 0
        gmac.alloc(PAGE_SIZE)
        assert gmac.protocol.rolling_size == 2
        gmac.alloc(PAGE_SIZE)
        assert gmac.protocol.rolling_size == 4

    def test_fixed_rolling_size_validation(self, gmac_factory):
        with pytest.raises(ValueError):
            self.make(gmac_factory, rolling_size=0)

    def test_pre_call_flushes_remaining_dirty(self, gmac_factory,
                                              scale_kernel):
        gmac = self.make(gmac_factory, rolling_size=8)
        ptr = gmac.alloc(2 * PAGE_SIZE)
        ptr.write_bytes(b"x" * (2 * PAGE_SIZE))
        gmac.call(scale_kernel, data=ptr, n=1, factor=1.0)
        assert gmac.bytes_to_accelerator == 2 * PAGE_SIZE
        assert states(gmac, ptr) == [BlockState.INVALID, BlockState.INVALID]

    def test_free_purges_dirty_cache(self, gmac_factory):
        gmac = self.make(gmac_factory, rolling_size=4)
        ptr = gmac.alloc(2 * PAGE_SIZE)
        ptr.write_bytes(b"x" * (2 * PAGE_SIZE))
        gmac.free(ptr)
        assert len(gmac.protocol._dirty) == 0

    def test_eviction_serializes_on_staging_buffer(self, app, gmac_factory):
        gmac = self.make(gmac_factory, block_size=256 * KB, rolling_size=1)
        ptr = gmac.alloc(1 << 20)
        # Dirty blocks back to back with no CPU time in between: each
        # eviction must wait for the previous DMA (single staging buffer).
        for index in range(4):
            ptr.write_bytes(b"z", offset=index * 256 * KB)
        assert gmac.protocol.evictions == 3
        assert gmac.protocol.eviction_stall_s > 0
