"""Watchdog deadlines: virtual-time arming, expiry, the never-early law."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.clock import SimClock
from repro.sim.tracing import Category, TimeAccounting
from repro.core.watchdog import Watchdog


def make_watchdog(with_accounting=True, on_trip=None):
    clock = SimClock()
    accounting = TimeAccounting(clock) if with_accounting else None
    return clock, accounting, Watchdog(
        clock, accounting=accounting, on_trip=on_trip
    )


class TestArming:
    def test_arm_sets_expiry_from_now(self):
        clock, _, watchdog = make_watchdog()
        clock.advance(2.0)
        deadline = watchdog.arm("transfer", 0.5, label="flush:a")
        assert deadline.armed_at == pytest.approx(2.0)
        assert deadline.expires_at == pytest.approx(2.5)
        assert deadline.budget_s == pytest.approx(0.5)
        assert deadline.armed

    @pytest.mark.parametrize("budget", [0.0, -1e-6])
    def test_non_positive_budget_rejected(self, budget):
        _, _, watchdog = make_watchdog()
        with pytest.raises(ValueError):
            watchdog.arm("transfer", budget)

    def test_expired_tracks_the_clock(self):
        clock, _, watchdog = make_watchdog()
        deadline = watchdog.arm("kernel-window", 1.0)
        assert not watchdog.expired(deadline)
        clock.advance(0.999)
        assert not watchdog.expired(deadline)
        clock.advance(0.001)
        assert watchdog.expired(deadline)

    def test_disarmed_deadline_never_expires(self):
        clock, _, watchdog = make_watchdog()
        deadline = watchdog.arm("transfer", 0.1)
        watchdog.disarm(deadline)
        clock.advance(1.0)
        assert not watchdog.expired(deadline)


class TestTripping:
    def test_trip_records_and_notifies(self):
        seen = []
        clock, _, watchdog = make_watchdog(on_trip=seen.append)
        deadline = watchdog.arm("transfer", 0.25, label="flush:a")
        clock.advance(0.3)
        record = watchdog.trip(deadline, "declare-device-lost")
        assert record["action"] == "declare-device-lost"
        assert record["tripped_at"] == pytest.approx(0.3)
        assert watchdog.trips == [record]
        assert seen == [record]
        assert not deadline.armed

    def test_wait_out_charges_retry_and_lands_on_expiry(self):
        clock, accounting, watchdog = make_watchdog()
        deadline = watchdog.arm("transfer", 1.0)
        clock.advance(0.25)
        now = watchdog.wait_out(deadline)
        assert now == pytest.approx(1.0)
        assert clock.now == pytest.approx(1.0)
        assert accounting.totals[Category.RETRY] == pytest.approx(0.75)

    def test_wait_out_past_expiry_is_a_no_op(self):
        clock, accounting, watchdog = make_watchdog()
        deadline = watchdog.arm("transfer", 0.1)
        clock.advance(0.5)
        watchdog.wait_out(deadline)
        assert clock.now == pytest.approx(0.5)
        assert accounting.totals[Category.RETRY] == 0.0


class TestNeverEarlyProperty:
    """The ISSUE's safety law: escalation never precedes its deadline."""

    @given(
        budget=st.floats(min_value=1e-6, max_value=10.0,
                         allow_nan=False, allow_infinity=False),
        advances=st.lists(
            st.floats(min_value=0.0, max_value=3.0,
                      allow_nan=False, allow_infinity=False),
            min_size=0, max_size=8,
        ),
        action=st.sampled_from(
            ["declare-device-lost", "abort-recovery", "observe"]
        ),
    )
    def test_trip_succeeds_iff_deadline_expired(self, budget, advances,
                                                action):
        clock, _, watchdog = make_watchdog()
        deadline = watchdog.arm("transfer", budget)
        for step in advances:
            clock.advance(step)
        if clock.now >= deadline.expires_at:
            record = watchdog.trip(deadline, action)
            assert record["tripped_at"] >= deadline.expires_at
        else:
            with pytest.raises(ValueError):
                watchdog.trip(deadline, action)
            # A refused trip records nothing and leaves the deadline armed.
            assert watchdog.trips == []
            assert deadline.armed

    @given(
        budget=st.floats(min_value=1e-6, max_value=10.0,
                         allow_nan=False, allow_infinity=False),
        start=st.floats(min_value=0.0, max_value=5.0,
                        allow_nan=False, allow_infinity=False),
    )
    def test_wait_out_then_trip_is_always_legal(self, budget, start):
        """The sanctioned escalation sequence can never fire early."""
        clock, _, watchdog = make_watchdog()
        clock.advance(start)
        deadline = watchdog.arm("transfer", budget)
        watchdog.wait_out(deadline)
        record = watchdog.trip(deadline, "declare-device-lost")
        assert record["tripped_at"] >= deadline.expires_at
