"""The kernel scheduler and its policies."""

import pytest

from repro.util.errors import CudaError
from repro.hw.machine import Machine, reference_system
from repro.hw.specs import GpuSpec, GTX280
from repro.workloads.base import Application
from repro.cuda.kernels import Kernel
from repro.core.scheduler import (
    KernelScheduler,
    RoundRobin,
    LeastLoaded,
    DataAffinity,
    Predictive,
    POLICIES,
)


def _noop(gpu, n):
    pass


def _touch(gpu, data, n):
    pass


NOOP = Kernel("noop", _noop, cost=lambda n: (n, 0))
TOUCH = Kernel("touch", _touch, cost=lambda data, n: (n, 0))


@pytest.fixture
def machine():
    return reference_system(gpu_count=3)


@pytest.fixture
def app(machine):
    return Application(machine)


class TestPolicies:
    def test_round_robin_cycles(self, machine, app):
        scheduler = KernelScheduler(machine, app.process, policy="round-robin")
        picks = [scheduler.launch(NOOP, {"n": 100})[0] for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]
        assert scheduler.launch_counts == [2, 2, 2]

    def test_least_loaded_prefers_idle(self, machine, app):
        scheduler = KernelScheduler(machine, app.process, policy="least-loaded")
        # Occupy GPU 0 with a long kernel directly.
        machine.gpus[0].launch(1.0)
        index, _ = scheduler.launch(NOOP, {"n": 100})
        assert index in (1, 2)

    def test_least_loaded_balances_queue(self, machine, app):
        scheduler = KernelScheduler(machine, app.process, policy="least-loaded")
        for _ in range(9):
            scheduler.launch(NOOP, {"n": 10_000_000})
        assert scheduler.launch_counts == [3, 3, 3]

    def test_data_affinity_follows_allocations(self, machine, app):
        scheduler = KernelScheduler(machine, app.process,
                                    policy="data-affinity")
        device = scheduler.context_for(2).mem_alloc(4096)
        # All three GPUs share an overlapping address range, but only GPU 2
        # actually holds an allocation at this address... so does GPU 0 if
        # it allocated first; here only GPU 2 allocated at all.
        index, _ = scheduler.launch(TOUCH, {"data": device, "n": 4})
        assert index == 2

    def test_data_affinity_falls_back_when_no_data(self, machine, app):
        scheduler = KernelScheduler(machine, app.process,
                                    policy="data-affinity")
        machine.gpus[0].launch(1.0)
        index, _ = scheduler.launch(NOOP, {"n": 4})
        assert index in (1, 2)

    def test_predictive_prefers_faster_gpu(self, app):
        fast = GpuSpec("fast", GTX280.memory_bytes,
                       GTX280.memory_bandwidth_bytes_per_s,
                       work_units_per_s=1e12, issue_overhead_s=8e-6)
        machine = Machine(gpu_count=1)
        machine.gpus.append(type(machine.gpus[0])(fast, machine.clock))
        application = Application(machine)
        scheduler = KernelScheduler(machine, application.process,
                                    policy="predictive")
        index, _ = scheduler.launch(NOOP, {"n": 1_000_000_000})
        assert machine.gpus[index].spec.name == "fast"

    def test_predictive_avoids_busy_gpu(self, machine, app):
        scheduler = KernelScheduler(machine, app.process, policy="predictive")
        machine.gpus[0].launch(10.0)
        index, _ = scheduler.launch(NOOP, {"n": 100})
        assert index != 0


class TestScheduler:
    def test_unknown_policy_rejected(self, machine, app):
        with pytest.raises(CudaError):
            KernelScheduler(machine, app.process, policy="random")

    def test_policy_instance_accepted(self, machine, app):
        scheduler = KernelScheduler(machine, app.process, policy=RoundRobin())
        assert scheduler.policy.name == "round-robin"

    def test_registry_covers_all_policies(self):
        assert set(POLICIES) == {
            "round-robin", "least-loaded", "data-affinity", "predictive",
        }

    def test_bad_policy_index_rejected(self, machine, app):
        class Broken(RoundRobin):
            def select(self, scheduler, kernel, args):
                return 99

        scheduler = KernelScheduler(machine, app.process, policy=Broken())
        with pytest.raises(CudaError):
            scheduler.launch(NOOP, {"n": 1})

    def test_synchronize_drains_all_gpus(self, machine, app):
        scheduler = KernelScheduler(machine, app.process, policy="round-robin")
        completions = [
            scheduler.launch(NOOP, {"n": 50_000_000})[1] for _ in range(3)
        ]
        scheduler.synchronize()
        assert machine.clock.now >= max(c.finish for c in completions)

    def test_parallel_speedup_across_gpus(self, app):
        """Three independent kernels on three GPUs finish ~3x sooner than
        on one GPU — the point of having a scheduler at all."""

        def run(gpu_count):
            machine = reference_system(gpu_count=gpu_count)
            application = Application(machine)
            scheduler = KernelScheduler(machine, application.process,
                                        policy="least-loaded")
            for _ in range(3):
                scheduler.launch(NOOP, {"n": 500_000_000})
            scheduler.synchronize()
            return machine.clock.now

        assert run(3) < run(1) / 2.5
