"""The flat block-state engine: golden equivalence + property tests.

Two layers of protection for the hot-path rewrite:

* **Golden equivalence** — the vecadd and tpacf quick specs must produce
  byte-identical outcomes (elapsed repr, per-category breakdown reprs,
  Figure 8 byte counters, fault/signal counts) to ``golden_hotpath.json``,
  captured from the pre-rewrite engine.  Any drift in virtual-time
  charging, transfer accounting or fault dispatch shows up here as a
  repr-level diff, not an approximate comparison.
* **Properties** — the :class:`~repro.core.blocks.BlockTable` and its
  run-length grouping are exercised with random traces against naive
  per-block reference models.
"""

import json
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.blocks import (
    BlockState,
    BlockTable,
    CODE_STATES,
    index_runs,
)
from repro.experiments.executor import expand

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_hotpath.json"

OUTCOME_FIELDS = (
    "bytes_to_accelerator",
    "bytes_to_host",
    "faults",
    "signals",
    "verified",
    "link_bytes_moved",
)


def _outcome_record(outcome):
    record = {
        "elapsed": repr(outcome.elapsed),
        "breakdown": {k: repr(v) for k, v in outcome.breakdown.items()},
    }
    for field in OUTCOME_FIELDS:
        record[field] = getattr(outcome, field)
    return record


class TestGoldenEquivalence:
    """The engine rewrite must not move a single output byte."""

    @pytest.fixture(scope="class")
    def golden(self):
        return {
            entry["key"]: entry
            for entry in json.loads(GOLDEN_PATH.read_text())
        }

    @pytest.fixture(scope="class")
    def specs(self, golden):
        figures = ["fig7", "fig8", "fig9", "fig10", "fig11", "fig12"]
        selected = [
            spec for spec in expand(figures, quick=True)
            if spec.key() in golden
        ]
        assert len(selected) == len(golden)
        return selected

    def test_quick_specs_match_golden_outcomes(self, golden, specs):
        mismatches = []
        for spec in specs:
            outcome = _outcome_record(spec.execute())
            reference = {k: golden[spec.key()][k] for k in outcome}
            if outcome != reference:
                mismatches.append((spec.key(), outcome, reference))
        assert not mismatches, (
            f"{len(mismatches)} specs diverged from the golden outcomes; "
            f"first: {mismatches[0]}"
        )


# -- property tests against naive reference models ---------------------------

STATES = list(BlockState)


class NaiveBlocks:
    """Per-block reference model: an explicit (start, end, state) list."""

    def __init__(self, base, size, block_size):
        self.blocks = []
        start = base
        while start < base + size:
            end = min(start + block_size, base + size)
            self.blocks.append([start, end, BlockState.READ_ONLY])
            start = end

    def index_of(self, address):
        for index, (start, end, _) in enumerate(self.blocks):
            if start <= address < end:
                return index
        raise AssertionError(f"address {address:#x} outside region")

    def set_state(self, index, state):
        self.blocks[index][2] = state

    def fill_range(self, first, last, state):
        for index in range(first, last + 1):
            self.blocks[index][2] = state

    def states(self):
        return [state for _, _, state in self.blocks]

    def indices_in(self, state):
        return [
            index for index, (_, _, s) in enumerate(self.blocks)
            if s is state
        ]


@st.composite
def table_and_trace(draw):
    block_size = draw(st.sampled_from([1, 2, 4, 8, 16, 3, 5, 12]))
    n_blocks = draw(st.integers(min_value=1, max_value=24))
    short_tail = draw(st.integers(min_value=0, max_value=block_size - 1))
    size = n_blocks * block_size - short_tail
    if size <= 0:
        size = block_size
    base = draw(st.sampled_from([0, 4096, 1 << 20]))
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("set"),
                    st.integers(min_value=0, max_value=10 ** 9),
                    st.sampled_from(STATES),
                ),
                st.tuples(
                    st.just("fill_range"),
                    st.integers(min_value=0, max_value=10 ** 9),
                    st.tuples(
                        st.integers(min_value=0, max_value=10 ** 9),
                        st.sampled_from(STATES),
                    ),
                ),
            ),
            max_size=40,
        )
    )
    return base, size, block_size, ops


@settings(max_examples=120, deadline=None)
@given(table_and_trace())
def test_block_table_matches_naive_model(params):
    base, size, block_size, ops = params
    table = BlockTable(base, size, block_size)
    naive = NaiveBlocks(base, size, block_size)
    assert table.n_blocks == len(naive.blocks)

    for op in ops:
        if op[0] == "set":
            _, raw_index, state = op
            index = raw_index % table.n_blocks
            table.set_state(index, state)
            naive.set_state(index, state)
        else:
            _, raw_first, (raw_last, state) = op
            first = raw_first % table.n_blocks
            last = first + raw_last % (table.n_blocks - first)
            table.fill_range(first, last, state)
            naive.fill_range(first, last, state)

        assert [table.state_of(i) for i in range(table.n_blocks)] == (
            naive.states()
        )
        for state in STATES:
            assert list(table.indices_in(state)) == naive.indices_in(state)
            assert table.count_in(state) == len(naive.indices_in(state))

    # Address resolution agrees with the explicit interval list for every
    # block boundary and interior byte.
    for index, (start, end, _) in enumerate(naive.blocks):
        for address in (start, (start + end) // 2, end - 1):
            assert table.index_of(address) == naive.index_of(address) == index
            assert table.start_of(index) == start
            assert table.end_of(index) == end


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.integers(min_value=0, max_value=200), max_size=50, unique=True
    ).map(sorted)
)
def test_index_runs_cover_exactly_and_maximally(indices):
    runs = index_runs(np.asarray(indices, dtype=np.int64))
    covered = [
        index for first, last in runs for index in range(first, last + 1)
    ]
    assert covered == list(indices)
    # Maximality: consecutive runs never touch.
    for (_, last), (next_first, _) in zip(runs, runs[1:]):
        assert next_first > last + 1


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=1, max_value=64),
    st.sampled_from([4096, 65536, 262144]),
    st.randoms(use_true_random=False),
)
def test_power_of_two_shift_matches_division(n_blocks, block_size, rnd):
    base = 1 << 30
    table = BlockTable(base, n_blocks * block_size, block_size)
    for _ in range(32):
        address = base + rnd.randrange(n_blocks * block_size)
        assert table.index_of(address) == (address - base) // block_size


def test_code_tables_round_trip():
    for code, state in enumerate(CODE_STATES):
        assert state.code == code
    table = BlockTable(0, 64, 16)
    for state in STATES:
        table.fill(state)
        assert table.count_in(state) == table.n_blocks
