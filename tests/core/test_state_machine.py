"""The Figure 6 transition matrix, exhaustively.

For every (protocol, initial state, access kind) combination the tests pin
down the resulting state, the protections, and whether data moved — the
full state machine as drawn in the paper.
"""

import pytest

from repro.os.paging import PAGE_SIZE, Prot, AccessKind
from repro.core.blocks import BlockState


def _force_state(gmac, region, state):
    """Drive a fresh region into a given state via real operations."""
    ptr_addr = region.host_start
    if state is BlockState.READ_ONLY:
        return  # fresh allocations start read-only for lazy/rolling
    if state is BlockState.DIRTY:
        gmac.process.write(ptr_addr, b"d")
        return
    if state is BlockState.INVALID:
        gmac.manager.release_for_call()
        return
    raise AssertionError(state)


@pytest.mark.parametrize("protocol", ["lazy", "rolling"])
class TestTransitionMatrix:
    """The fault-driven protocols share Figure 6(b)'s transitions."""

    def _setup(self, gmac_factory, protocol):
        gmac = gmac_factory(
            protocol,
            protocol_options=(
                {"block_size": PAGE_SIZE, "rolling_size": 4}
                if protocol == "rolling" else None
            ),
        )
        ptr = gmac.alloc(PAGE_SIZE)
        region = gmac.manager.region_at(int(ptr))
        return gmac, ptr, region

    def test_read_only_plus_read_stays(self, gmac_factory, protocol):
        gmac, ptr, region = self._setup(gmac_factory, protocol)
        before = gmac.bytes_to_host
        ptr.read_bytes(8)
        assert region.blocks[0].state is BlockState.READ_ONLY
        assert gmac.bytes_to_host == before  # no transfer
        assert gmac.fault_count == 0         # no fault either

    def test_read_only_plus_write_dirties_without_transfer(
            self, gmac_factory, protocol):
        gmac, ptr, region = self._setup(gmac_factory, protocol)
        ptr.write_bytes(b"w")
        block = region.blocks[0]
        assert block.state is BlockState.DIRTY
        assert gmac.bytes_to_host == 0
        mapping = gmac.process.address_space.mapping_at(int(ptr))
        assert mapping.prot_of(int(ptr)) == Prot.RW

    def test_invalid_plus_read_fetches_to_read_only(self, gmac_factory,
                                                    protocol):
        gmac, ptr, region = self._setup(gmac_factory, protocol)
        _force_state(gmac, region, BlockState.INVALID)
        ptr.read_bytes(8)
        block = region.blocks[0]
        assert block.state is BlockState.READ_ONLY
        assert gmac.bytes_to_host == block.size
        mapping = gmac.process.address_space.mapping_at(int(ptr))
        assert mapping.prot_of(int(ptr)) == Prot.READ

    def test_invalid_plus_write_fetches_to_dirty(self, gmac_factory,
                                                 protocol):
        gmac, ptr, region = self._setup(gmac_factory, protocol)
        _force_state(gmac, region, BlockState.INVALID)
        ptr.write_bytes(b"w")
        block = region.blocks[0]
        assert block.state is BlockState.DIRTY
        assert gmac.bytes_to_host == block.size  # Fig 6(b): write transfer

    def test_dirty_plus_any_access_is_silent(self, gmac_factory, protocol):
        gmac, ptr, region = self._setup(gmac_factory, protocol)
        _force_state(gmac, region, BlockState.DIRTY)
        faults = gmac.fault_count
        ptr.read_bytes(4)
        ptr.write_bytes(b"x")
        assert gmac.fault_count == faults
        assert region.blocks[0].state is BlockState.DIRTY

    def test_call_flushes_dirty_and_invalidates(self, gmac_factory, protocol):
        gmac, ptr, region = self._setup(gmac_factory, protocol)
        _force_state(gmac, region, BlockState.DIRTY)
        moved_before = gmac.bytes_to_accelerator
        gmac.manager.release_for_call()
        assert gmac.bytes_to_accelerator > moved_before
        assert region.blocks[0].state is BlockState.INVALID
        mapping = gmac.process.address_space.mapping_at(int(ptr))
        assert mapping.prot_of(int(ptr)) == Prot.NONE

    def test_call_skips_clean_blocks(self, gmac_factory, protocol):
        gmac, ptr, region = self._setup(gmac_factory, protocol)
        moved_before = gmac.bytes_to_accelerator
        gmac.manager.release_for_call()
        assert gmac.bytes_to_accelerator == moved_before

    def test_call_is_idempotent_on_invalid(self, gmac_factory, protocol):
        gmac, ptr, region = self._setup(gmac_factory, protocol)
        gmac.manager.release_for_call()
        moved = gmac.bytes_to_accelerator
        gmac.manager.release_for_call()
        assert gmac.bytes_to_accelerator == moved


class TestBatchMatrix:
    """Figure 6(a): no faults, everything moves at the boundaries."""

    def test_every_state_is_dirty_or_invalid(self, gmac_factory):
        gmac = gmac_factory("batch")
        ptr = gmac.alloc(PAGE_SIZE)
        region = gmac.manager.region_at(int(ptr))
        assert region.blocks[0].state is BlockState.DIRTY
        gmac.manager.release_for_call()
        assert region.blocks[0].state is BlockState.INVALID
        gmac.manager.acquire_after_return()
        assert region.blocks[0].state is BlockState.DIRTY

    def test_sync_moves_everything_back(self, gmac_factory):
        gmac = gmac_factory("batch")
        gmac.alloc(PAGE_SIZE)
        gmac.alloc(3 * PAGE_SIZE)
        gmac.manager.release_for_call()
        gmac.manager.acquire_after_return()
        assert gmac.bytes_to_host == 4 * PAGE_SIZE

    def test_protections_never_installed(self, gmac_factory):
        gmac = gmac_factory("batch")
        ptr = gmac.alloc(PAGE_SIZE)
        mapping = gmac.process.address_space.mapping_at(int(ptr))
        for _ in range(2):
            gmac.manager.release_for_call()
            gmac.manager.acquire_after_return()
            assert mapping.prot_of(int(ptr)) == Prot.RW
