"""The two accelerator abstraction layers (Figure 5)."""

import pytest

from repro.sim.tracing import Category
from repro.core.layers import AcceleratorLayer


class TestFlavours:
    def test_driver_layer_pays_no_init(self, app):
        layer = AcceleratorLayer(app.machine, app.process, flavour="driver")
        before = app.machine.clock.now
        layer.alloc(4096)
        assert app.machine.clock.now - before < layer.init_cost_s

    def test_runtime_layer_pays_init_once(self, app):
        layer = AcceleratorLayer(app.machine, app.process, flavour="runtime")
        layer.alloc(4096)
        assert app.machine.accounting.totals[Category.CUDA_MALLOC] >= (
            layer.init_cost_s
        )
        after_first = app.machine.clock.now
        layer.alloc(4096)
        assert app.machine.clock.now - after_first < layer.init_cost_s

    def test_unknown_flavour_rejected(self, app):
        with pytest.raises(ValueError):
            AcceleratorLayer(app.machine, app.process, flavour="hybrid")

    def test_custom_init_cost(self, app):
        layer = AcceleratorLayer(
            app.machine, app.process, flavour="runtime", init_cost_s=0.25
        )
        layer.alloc(4096)
        assert app.machine.clock.now >= 0.25


class TestOperations:
    @pytest.fixture
    def layer(self, app):
        return AcceleratorLayer(app.machine, app.process, flavour="driver")

    def test_alloc_charges_cuda_malloc(self, app, layer):
        layer.alloc(4096)
        assert app.machine.accounting.counts[Category.CUDA_MALLOC] == 1

    def test_free_charges_cuda_free(self, app, layer):
        address = layer.alloc(4096)
        layer.free(address)
        assert app.machine.accounting.counts[Category.CUDA_FREE] == 1

    def test_transfers_not_charged_by_layer(self, app, layer):
        """The manager owns Copy accounting; the layer must not charge it."""
        host = app.process.malloc(4096)
        device = layer.alloc(4096)
        layer.to_device(device, int(host), 4096)
        layer.to_host(int(host), device, 4096)
        assert app.machine.accounting.totals[Category.COPY] == 0.0

    def test_pending_h2d_tracks_queue(self, app, layer):
        host = app.process.malloc(1 << 20)
        device = layer.alloc(1 << 20)
        completion = layer.to_device(device, int(host), 1 << 20, sync=False)
        assert layer.pending_h2d() == completion.finish

    def test_launch_charges_cuda_launch(self, app, layer, scale_kernel):
        device = layer.alloc(64)
        layer.launch(scale_kernel, {"data": device, "n": 4, "factor": 1.0})
        assert app.machine.accounting.counts[Category.CUDA_LAUNCH] == 1

    def test_synchronize_drains(self, app, layer, scale_kernel):
        device = layer.alloc(1 << 20)
        completion = layer.launch(
            scale_kernel, {"data": device, "n": 1 << 18, "factor": 1.0}
        )
        layer.synchronize()
        assert app.machine.clock.now >= completion.finish

    def test_device_bulk_operations(self, layer):
        device = layer.alloc(128)
        layer.device_memset(device, 0x3C, 64)
        other = layer.alloc(128)
        layer.device_memcpy(other, device, 64)
        assert layer.gpu.memory.read(other, 4) == b"\x3c" * 4
