"""Shared regions and blocks."""

import pytest

from repro.util.intervals import Interval
from repro.os.paging import PAGE_SIZE
from repro.core.blocks import BlockState
from repro.core.region import SharedRegion


class TestSharedRegion:
    def test_blocks_cover_mapped_range(self):
        region = SharedRegion("r", 0x10000, 0x10000, 10 * PAGE_SIZE,
                              4 * PAGE_SIZE)
        assert len(region.blocks) == 3
        assert region.blocks[0].interval.start == 0x10000
        assert region.blocks[-1].interval.end == 0x10000 + 10 * PAGE_SIZE
        assert region.blocks[-1].size == 2 * PAGE_SIZE  # trailing remainder

    def test_unaligned_size_rounds_to_page(self):
        region = SharedRegion("r", 0x10000, 0x10000, 100, PAGE_SIZE)
        assert region.mapped_size == PAGE_SIZE
        assert len(region.blocks) == 1

    def test_whole_object_block(self):
        region = SharedRegion("r", 0x10000, 0x10000, 3 * PAGE_SIZE,
                              3 * PAGE_SIZE)
        assert len(region.blocks) == 1

    def test_sub_page_block_size_rounds_up(self):
        # A 4-byte "whole object" block is still one page.
        region = SharedRegion("r", 0x10000, 0x10000, 4, 4)
        assert region.block_size == PAGE_SIZE
        assert len(region.blocks) == 1

    def test_aliased_detection(self):
        assert SharedRegion("r", 0x1000, 0x1000, 16, 16).is_aliased
        assert not SharedRegion("r", 0x1000, 0x2000, 16, 16).is_aliased

    def test_device_address_translation(self):
        region = SharedRegion("r", 0x10000, 0x90000, PAGE_SIZE, PAGE_SIZE)
        assert region.device_address_of(0x10000) == 0x90000
        assert region.device_address_of(0x10010) == 0x90010
        with pytest.raises(ValueError):
            region.device_address_of(0x20000)

    def test_block_containing(self):
        region = SharedRegion("r", 0, 0, 4 * PAGE_SIZE, PAGE_SIZE)
        assert region.block_containing(0).index == 0
        assert region.block_containing(PAGE_SIZE).index == 1
        assert region.block_containing(4 * PAGE_SIZE - 1).index == 3
        with pytest.raises(ValueError):
            region.block_containing(4 * PAGE_SIZE)

    def test_blocks_overlapping(self):
        region = SharedRegion("r", 0, 0, 4 * PAGE_SIZE, PAGE_SIZE)
        hits = region.blocks_overlapping(
            Interval(PAGE_SIZE - 1, 2 * PAGE_SIZE + 1)
        )
        assert [b.index for b in hits] == [0, 1, 2]
        assert region.blocks_overlapping(Interval(0, 0)) == []

    def test_state_helpers(self):
        region = SharedRegion("r", 0, 0, 2 * PAGE_SIZE, PAGE_SIZE)
        region.set_all_states(BlockState.DIRTY)
        assert len(region.blocks_in_state(BlockState.DIRTY)) == 2
        region.blocks[0].state = BlockState.INVALID
        assert len(region.blocks_in_state(BlockState.DIRTY)) == 1

    def test_bad_block_size_rejected(self):
        with pytest.raises(ValueError):
            SharedRegion("r", 0, 0, PAGE_SIZE, 0)


class TestBlock:
    def test_device_start_offsets(self):
        region = SharedRegion("r", 0x10000, 0x90000, 2 * PAGE_SIZE, PAGE_SIZE)
        assert region.blocks[0].device_start == 0x90000
        assert region.blocks[1].device_start == 0x90000 + PAGE_SIZE

    def test_initial_state(self):
        region = SharedRegion("r", 0, 0, PAGE_SIZE, PAGE_SIZE)
        assert region.blocks[0].state is BlockState.READ_ONLY

    def test_repr(self):
        region = SharedRegion("r", 0, 0, PAGE_SIZE, PAGE_SIZE)
        assert "r" in repr(region.blocks[0])
        assert "blocks=1" in repr(region)
