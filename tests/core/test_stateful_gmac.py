"""Stateful model-based testing of the full GMAC API.

A hypothesis rule machine drives alloc/free/write/read/call/sync in random
order against a live GMAC instance, mirroring every mutation in a plain
dict-of-numpy model.  Invariants: reads always observe the model, frees
release device memory, and the block index stays consistent.
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.os.paging import PAGE_SIZE
from repro.hw.machine import reference_system
from repro.workloads.base import Application
from repro.cuda.kernels import Kernel

MAX_REGIONS = 4
REGION_PAGES = 3
REGION_BYTES = REGION_PAGES * PAGE_SIZE
WORDS = REGION_BYTES // 4


def _increment_fn(gpu, data, n):
    gpu.view(data, "i4", n)[:] += 1


INCREMENT = Kernel("increment", _increment_fn, cost=lambda data, n: (n, 8 * n))


class GmacMachine(RuleBasedStateMachine):
    @initialize(
        protocol=st.sampled_from(["batch", "lazy", "rolling"]),
        block_pages=st.integers(1, 3),
        rolling=st.integers(1, 4),
    )
    def setup(self, protocol, block_pages, rolling):
        self.machine = reference_system()
        self.app = Application(self.machine)
        options = None
        if protocol == "rolling":
            options = {
                "block_size": block_pages * PAGE_SIZE,
                "rolling_size": rolling,
            }
        self.gmac = self.app.gmac(
            protocol=protocol, layer="driver", protocol_options=options
        )
        self.regions = {}   # key -> (SharedPtr, numpy model)
        self.counter = 0
        self.pending_call = False

    # -- helpers ---------------------------------------------------------------

    def _sync_if_needed(self):
        if self.pending_call:
            self.gmac.sync()
            self.pending_call = False

    # -- rules -------------------------------------------------------------------

    @rule()
    def allocate(self):
        if len(self.regions) >= MAX_REGIONS:
            return
        self.counter += 1
        ptr = self.gmac.alloc(REGION_BYTES, name=f"r{self.counter}")
        self.regions[self.counter] = (ptr, np.zeros(WORDS, dtype=np.int32))

    @precondition(lambda self: self.regions)
    @rule(data=st.data())
    def free_one(self, data):
        self._sync_if_needed()
        key = data.draw(st.sampled_from(sorted(self.regions)))
        ptr, _ = self.regions.pop(key)
        self.gmac.free(ptr)

    @precondition(lambda self: self.regions)
    @rule(
        data=st.data(),
        offset=st.integers(0, WORDS - 1),
        count=st.integers(1, WORDS),
        value=st.integers(-999, 999),
    )
    def write(self, data, offset, count, value):
        self._sync_if_needed()
        key = data.draw(st.sampled_from(sorted(self.regions)))
        ptr, model = self.regions[key]
        count = min(count, WORDS - offset)
        values = np.full(count, value, dtype=np.int32)
        ptr.write_array(values, offset=4 * offset)
        model[offset:offset + count] = values

    @precondition(lambda self: self.regions)
    @rule(data=st.data(), offset=st.integers(0, WORDS - 1),
          count=st.integers(1, WORDS))
    def read(self, data, offset, count):
        self._sync_if_needed()
        key = data.draw(st.sampled_from(sorted(self.regions)))
        ptr, model = self.regions[key]
        count = min(count, WORDS - offset)
        observed = ptr.read_array("i4", count, offset=4 * offset)
        assert np.array_equal(observed, model[offset:offset + count])

    @precondition(lambda self: self.regions)
    @rule(data=st.data())
    def kernel_call(self, data):
        key = data.draw(st.sampled_from(sorted(self.regions)))
        ptr, model = self.regions[key]
        self.gmac.call(INCREMENT, data=ptr, n=WORDS)
        model += 1
        self.pending_call = True

    @rule()
    def sync(self):
        self._sync_if_needed()

    # -- invariants -------------------------------------------------------------------

    @invariant()
    def block_index_matches_regions(self):
        expected = sum(
            len(self.gmac.manager.region_at(int(ptr)).blocks)
            for ptr, _ in self.regions.values()
        )
        assert self.gmac.manager.block_count == expected

    @invariant()
    def device_memory_not_leaked(self):
        in_use = self.gmac.layer.gpu.memory.bytes_in_use
        assert in_use == len(self.regions) * REGION_BYTES

    @invariant()
    def clock_is_monotone(self):
        now = self.machine.clock.now
        assert now >= getattr(self, "_last_now", 0.0)
        self._last_now = now

    def teardown(self):
        if hasattr(self, "gmac"):
            self._sync_if_needed()
            for key in sorted(self.regions):
                ptr, model = self.regions[key]
                observed = ptr.read_array("i4", WORDS)
                assert np.array_equal(observed, model)
            self.gmac.shutdown()
            assert self.gmac.layer.gpu.memory.bytes_in_use == 0


GmacMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=25, deadline=None
)
TestGmacStateful = GmacMachine.TestCase
