"""Property-based invariants of the resource timelines.

Whatever the operation mix, a FIFO device never overlaps operations, never
reorders them, and its drain time equals the last completion.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.clock import SimClock
from repro.sim.resource import Resource

_operations = st.lists(
    st.tuples(
        st.sampled_from(["schedule", "execute", "cpu", "wait-last"]),
        st.floats(0.0, 1.0),
    ),
    max_size=40,
)


class TestTimelineInvariants:
    @given(_operations)
    @settings(max_examples=80, deadline=None)
    def test_fifo_no_overlap_no_regression(self, operations):
        clock = SimClock()
        resource = Resource("device", clock)
        resource.record_history()
        last = None
        for op, value in operations:
            if op == "schedule":
                last = resource.schedule(value)
            elif op == "execute":
                last = resource.execute(value)
            elif op == "cpu":
                clock.advance(value)
            elif op == "wait-last" and last is not None:
                last.wait()

        completions = resource.completions
        # FIFO: starts and finishes are non-decreasing; operations never
        # overlap on the device.
        for earlier, later in zip(completions, completions[1:]):
            assert later.start >= earlier.finish
        for completion in completions:
            assert completion.finish >= completion.start
            assert completion.start >= completion.issued_at
        # Conservation: busy time is the sum of durations.
        assert resource.busy_time == pytest.approx(
            sum(c.duration for c in completions)
        )
        # Drain lands exactly at the last completion (or now if idle).
        expected = max(
            [c.finish for c in completions] + [clock.now]
        )
        resource.drain()
        assert clock.now == pytest.approx(expected)

    @given(st.lists(st.floats(0.0, 1.0), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_makespan_equals_total_work_when_saturated(self, durations):
        clock = SimClock()
        resource = Resource("device", clock)
        for duration in durations:
            resource.schedule(duration)
        resource.drain()
        assert clock.now == pytest.approx(sum(durations))

    @given(
        st.floats(0.1, 1.0), st.floats(0.0, 2.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_overlap_pays_only_the_residual(self, transfer, cpu_work):
        clock = SimClock()
        resource = Resource("dma", clock)
        completion = resource.schedule(transfer)
        clock.advance(cpu_work)
        completion.wait()
        assert clock.now == pytest.approx(max(transfer, cpu_work))
