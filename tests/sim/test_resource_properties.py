"""Property-based invariants of the resource timelines.

Whatever the operation mix, a FIFO device never overlaps operations, never
reorders them, and its drain time equals the last completion.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.clock import SimClock
from repro.sim.resource import Resource

_operations = st.lists(
    st.tuples(
        st.sampled_from(["schedule", "execute", "cpu", "wait-last"]),
        st.floats(0.0, 1.0),
    ),
    max_size=40,
)


class TestTimelineInvariants:
    @given(_operations)
    @settings(max_examples=80, deadline=None)
    def test_fifo_no_overlap_no_regression(self, operations):
        clock = SimClock()
        resource = Resource("device", clock)
        resource.record_history()
        last = None
        for op, value in operations:
            if op == "schedule":
                last = resource.schedule(value)
            elif op == "execute":
                last = resource.execute(value)
            elif op == "cpu":
                clock.advance(value)
            elif op == "wait-last" and last is not None:
                last.wait()

        completions = resource.completions
        # FIFO: starts and finishes are non-decreasing; operations never
        # overlap on the device.
        for earlier, later in zip(completions, completions[1:]):
            assert later.start >= earlier.finish
        for completion in completions:
            assert completion.finish >= completion.start
            assert completion.start >= completion.issued_at
        # Conservation: busy time is the sum of durations.
        assert resource.busy_time == pytest.approx(
            sum(c.duration for c in completions)
        )
        # Drain lands exactly at the last completion (or now if idle).
        expected = max(
            [c.finish for c in completions] + [clock.now]
        )
        resource.drain()
        assert clock.now == pytest.approx(expected)

    @given(st.lists(st.floats(0.0, 1.0), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_makespan_equals_total_work_when_saturated(self, durations):
        clock = SimClock()
        resource = Resource("device", clock)
        for duration in durations:
            resource.schedule(duration)
        resource.drain()
        assert clock.now == pytest.approx(sum(durations))

    @given(
        st.floats(0.1, 1.0), st.floats(0.0, 2.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_overlap_pays_only_the_residual(self, transfer, cpu_work):
        clock = SimClock()
        resource = Resource("dma", clock)
        completion = resource.schedule(transfer)
        clock.advance(cpu_work)
        completion.wait()
        assert clock.now == pytest.approx(max(transfer, cpu_work))


def _completion_rows(resource):
    return [
        (c.label, c.issued_at, c.start, c.finish)
        for c in resource.completions
    ]


class TestScheduleManyEquivalence:
    """``schedule_many`` must be byte-for-byte the loop it replaces.

    Exact ``==`` on every float: the bulk path must accumulate busy time
    and compute start/finish in the same order as the loop, so even the
    last ulp of every timestamp and counter agrees.
    """

    _bursts = st.lists(st.floats(0.0, 1.0), max_size=24)
    _prefix = st.lists(st.floats(0.0, 1.0), min_size=0, max_size=4)

    @staticmethod
    def _pair(prefix_work):
        """Two resources driven to the same (possibly busy) starting state."""
        resources = []
        for _ in range(2):
            clock = SimClock()
            resource = Resource("dma", clock, trace=True)
            for duration in prefix_work:
                resource.schedule(duration, label="prefix")
            clock.advance(sum(prefix_work) / 2 if prefix_work else 0.0)
            resources.append(resource)
        return resources

    @given(bursts=_bursts, prefix=_prefix, data=st.data())
    @settings(max_examples=120, deadline=None)
    def test_matches_looped_schedule(self, bursts, prefix, data):
        looped, bulk = self._pair(prefix)
        labels = data.draw(
            st.one_of(
                st.just("op"),
                st.lists(
                    st.sampled_from(["dma", "stream", "flush"]),
                    min_size=len(bursts), max_size=len(bursts),
                ),
            )
        )
        earliest = data.draw(
            st.one_of(
                st.none(),
                st.floats(0.0, 2.0),
                st.lists(
                    st.one_of(st.none(), st.floats(0.0, 2.0)),
                    min_size=len(bursts), max_size=len(bursts),
                ),
            )
        )
        shared_label = isinstance(labels, str)
        shared_earliest = earliest is None or isinstance(earliest, float)
        for index, duration in enumerate(bursts):
            looped.schedule(
                duration,
                label=labels if shared_label else labels[index],
                earliest=earliest if shared_earliest else earliest[index],
            )
        scheduled = bulk.schedule_many(bursts, label=labels, earliest=earliest)

        assert len(scheduled) == len(bursts)
        assert _completion_rows(bulk) == _completion_rows(looped)
        assert bulk.busy_time == looped.busy_time
        assert bulk.operation_count == looped.operation_count
        assert bulk.available_at == looped.available_at

    @given(prefix=_prefix)
    @settings(max_examples=30, deadline=None)
    def test_zero_length_burst_is_a_noop(self, prefix):
        looped, bulk = self._pair(prefix)
        assert bulk.schedule_many([]) == []
        assert _completion_rows(bulk) == _completion_rows(looped)
        assert bulk.busy_time == looped.busy_time
        assert bulk.operation_count == looped.operation_count
        assert bulk.available_at == looped.available_at

    @given(
        good=st.lists(st.floats(0.0, 1.0), max_size=8),
        tail=st.lists(st.floats(0.0, 1.0), max_size=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_interrupted_burst_keeps_exactly_the_loop_prefix(
        self, good, tail
    ):
        """A mid-burst failure commits the prefix, like the loop would.

        Models a fault plan killing a transfer mid-storm: both paths
        raise on the poisoned operation and leave the resource exactly
        as far along as the operations that preceded it.
        """
        burst = good + [-0.5] + tail
        looped, bulk = self._pair([])
        with pytest.raises(ValueError):
            for duration in burst:
                looped.schedule(duration)
        with pytest.raises(ValueError):
            bulk.schedule_many(burst)
        assert _completion_rows(bulk) == _completion_rows(looped)
        assert bulk.busy_time == looped.busy_time
        assert bulk.operation_count == looped.operation_count
        assert bulk.available_at == looped.available_at
