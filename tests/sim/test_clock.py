"""The virtual clock."""

import pytest

from repro.sim.clock import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == 2.0

    def test_advance_returns_now(self):
        assert SimClock().advance(3.0) == 3.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_advance_to_future(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_past_is_noop(self):
        clock = SimClock(10.0)
        clock.advance_to(5.0)
        assert clock.now == 10.0

    def test_repr_contains_time(self):
        assert "now=" in repr(SimClock(1.0))
