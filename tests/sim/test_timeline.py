"""ASCII execution timelines."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.resource import Resource
from repro.sim.tracing import TimeAccounting, TraceLog, Category
from repro.sim.timeline import (
    TimelineRow,
    rows_from_trace,
    rows_from_resources,
    render_timeline,
    machine_timeline,
)


class TestTimelineRow:
    def test_busy_time(self):
        row = TimelineRow("cpu")
        row.add(0.0, 1.0)
        row.add(2.0, 2.5)
        assert row.busy_time == pytest.approx(1.5)

    def test_empty_intervals_dropped(self):
        row = TimelineRow("cpu")
        row.add(1.0, 1.0)
        assert row.intervals == []


class TestRowsFromSources:
    def test_rows_from_trace(self):
        clock = SimClock()
        trace = TraceLog()
        accounting = TimeAccounting(clock, trace=trace)
        accounting.charge(Category.COPY, 0.5)
        with accounting.measure(Category.CPU):
            clock.advance(1.0)
        rows = rows_from_trace(trace)
        labels = {row.label for row in rows}
        assert labels == {"Copy", "CPU"}

    def test_rows_from_resources(self):
        clock = SimClock()
        resource = Resource("pcie", clock)
        resource.record_history()
        resource.schedule(1.0)
        resource.schedule(0.5)
        rows = rows_from_resources([resource])
        assert rows[0].label == "pcie"
        assert rows[0].busy_time == pytest.approx(1.5)

    def test_unrecorded_resource_skipped(self):
        clock = SimClock()
        silent = Resource("silent", clock)
        silent.completions = None
        assert rows_from_resources([]) == []


class TestRender:
    def _row(self, label, *intervals):
        row = TimelineRow(label)
        for start, end in intervals:
            row.add(start, end)
        return row

    def test_basic_render(self):
        text = render_timeline(
            [self._row("cpu", (0.0, 0.5)), self._row("gpu", (0.5, 1.0))],
            width=20, title="run",
        )
        lines = text.splitlines()
        assert lines[0] == "run"
        assert "cpu" in lines[1] and "gpu" in lines[2]
        assert "50.0%" in lines[1]

    def test_busy_buckets_marked(self):
        text = render_timeline([self._row("cpu", (0.0, 1.0))], width=10)
        assert "##########" in text

    def test_disjoint_rows_do_not_overlap_columns(self):
        text = render_timeline(
            [self._row("a", (0.0, 0.5)), self._row("b", (0.5, 1.0))],
            width=10,
        )
        row_a, row_b = text.splitlines()[0:2]
        cells_a = row_a.split("|")[1]
        cells_b = row_b.split("|")[1]
        assert "#" in cells_a[:5] and "#" not in cells_a[5:]
        assert "#" in cells_b[5:] and "#" not in cells_b[:5]

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            render_timeline([TimelineRow("nothing")])

    def test_degenerate_window_rejected(self):
        with pytest.raises(ValueError):
            render_timeline([self._row("x", (1.0, 2.0))], start=5.0, end=5.0)

    def test_scale_line_has_times(self):
        text = render_timeline([self._row("x", (0.0, 0.002))], width=30)
        assert "0.000ms" in text and "2.000ms" in text


class TestMachineTimeline:
    def test_traced_gmac_run_renders(self, scale_kernel):
        import numpy as np
        from repro.hw.machine import reference_system
        from repro.workloads.base import Application

        machine = reference_system(trace=True)
        app = Application(machine)
        gmac = app.gmac(protocol="rolling", layer="driver")
        ptr = gmac.alloc(1 << 20)
        ptr.write_array(np.ones((1 << 20) // 4, dtype=np.float32))
        gmac.call(scale_kernel, data=ptr, n=(1 << 20) // 4, factor=2.0)
        gmac.sync()
        ptr.read_bytes(1 << 18)
        text = machine_timeline(machine, title="gmac run")
        assert "Copy" in text
        assert "GPU" in text
        assert "Signal" in text

    def test_untraced_machine_rejected(self):
        from repro.hw.machine import reference_system

        with pytest.raises(ValueError):
            machine_timeline(reference_system())
