"""Resource timelines: FIFO scheduling, overlap, data dependencies."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.resource import Resource


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def resource(clock):
    return Resource("dma", clock)


class TestScheduling:
    def test_immediate_start_when_idle(self, clock, resource):
        completion = resource.schedule(2.0)
        assert completion.start == 0.0
        assert completion.finish == 2.0
        assert clock.now == 0.0  # asynchronous: the issuer did not wait

    def test_fifo_queueing(self, resource):
        first = resource.schedule(2.0)
        second = resource.schedule(3.0)
        assert second.start == first.finish
        assert second.finish == 5.0
        assert second.queue_delay == 2.0

    def test_execute_blocks(self, clock, resource):
        resource.execute(1.5)
        assert clock.now == 1.5

    def test_wait_advances_clock(self, clock, resource):
        completion = resource.schedule(2.0)
        completion.wait()
        assert clock.now == 2.0

    def test_wait_after_finish_is_noop(self, clock, resource):
        completion = resource.schedule(1.0)
        clock.advance(5.0)
        completion.wait()
        assert clock.now == 5.0

    def test_overlap_with_cpu_work(self, clock, resource):
        completion = resource.schedule(2.0)
        clock.advance(1.5)  # CPU computes while the DMA flies
        completion.wait()
        assert clock.now == 2.0  # only the residual wait is paid

    def test_cpu_slower_than_transfer(self, clock, resource):
        completion = resource.schedule(1.0)
        clock.advance(3.0)
        completion.wait()
        assert clock.now == 3.0

    def test_earliest_dependency(self, resource):
        completion = resource.schedule(1.0, earliest=10.0)
        assert completion.start == 10.0
        assert completion.finish == 11.0

    def test_negative_duration_rejected(self, resource):
        with pytest.raises(ValueError):
            resource.schedule(-1.0)

    def test_zero_duration(self, resource):
        completion = resource.schedule(0.0)
        assert completion.duration == 0.0


class TestDrainAndStats:
    def test_drain_waits_for_everything(self, clock, resource):
        resource.schedule(1.0)
        resource.schedule(2.0)
        resource.drain()
        assert clock.now == 3.0

    def test_drain_idle_is_noop(self, clock, resource):
        resource.drain()
        assert clock.now == 0.0

    def test_busy_time_and_count(self, resource):
        resource.schedule(1.0)
        resource.schedule(2.5)
        assert resource.busy_time == 3.5
        assert resource.operation_count == 2

    def test_utilization(self, clock, resource):
        resource.execute(1.0)
        clock.advance(1.0)
        assert resource.utilization() == pytest.approx(0.5)

    def test_utilization_at_time_zero(self, resource):
        assert resource.utilization() == 0.0

    def test_history_recording(self, resource):
        resource.record_history()
        resource.schedule(1.0, label="x")
        assert len(resource.completions) == 1
        assert resource.completions[0].label == "x"
