"""Time accounting: the machinery behind the Figure 10 break-down."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.tracing import TimeAccounting, Category, TraceLog


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def accounting(clock):
    return TimeAccounting(clock)


class TestCharge:
    def test_simple_charge(self, accounting):
        accounting.charge(Category.COPY, 1.5)
        assert accounting.totals[Category.COPY] == 1.5
        assert accounting.counts[Category.COPY] == 1

    def test_negative_rejected(self, accounting):
        with pytest.raises(ValueError):
            accounting.charge(Category.CPU, -1.0)

    def test_total(self, accounting):
        accounting.charge(Category.COPY, 1.0)
        accounting.charge(Category.GPU, 2.0)
        assert accounting.total() == 3.0

    def test_fractions(self, accounting):
        accounting.charge(Category.COPY, 1.0)
        accounting.charge(Category.GPU, 3.0)
        fractions = accounting.fractions()
        assert fractions[Category.COPY] == pytest.approx(0.25)
        assert fractions[Category.GPU] == pytest.approx(0.75)

    def test_fractions_empty(self, accounting):
        assert all(v == 0.0 for v in accounting.fractions().values())


class TestMeasure:
    def test_measures_clock_delta(self, clock, accounting):
        with accounting.measure(Category.CPU):
            clock.advance(2.0)
        assert accounting.totals[Category.CPU] == 2.0

    def test_nested_measures_do_not_double_count(self, clock, accounting):
        with accounting.measure(Category.SIGNAL):
            clock.advance(1.0)
            with accounting.measure(Category.COPY):
                clock.advance(3.0)
            clock.advance(0.5)
        assert accounting.totals[Category.COPY] == 3.0
        assert accounting.totals[Category.SIGNAL] == pytest.approx(1.5)
        assert accounting.total() == pytest.approx(4.5)

    def test_charge_inside_measure_subtracts(self, clock, accounting):
        with accounting.measure(Category.SYNC):
            clock.advance(5.0)
            accounting.charge(Category.GPU, 4.0)
        assert accounting.totals[Category.GPU] == 4.0
        assert accounting.totals[Category.SYNC] == pytest.approx(1.0)

    def test_deeply_nested(self, clock, accounting):
        with accounting.measure(Category.LAUNCH):
            with accounting.measure(Category.COPY):
                with accounting.measure(Category.SIGNAL):
                    clock.advance(1.0)
                clock.advance(1.0)
            clock.advance(1.0)
        assert accounting.totals[Category.SIGNAL] == 1.0
        assert accounting.totals[Category.COPY] == pytest.approx(1.0)
        assert accounting.totals[Category.LAUNCH] == pytest.approx(1.0)

    def test_breakdown_sums_to_total(self, clock, accounting):
        with accounting.measure(Category.CPU):
            clock.advance(1.25)
        accounting.charge(Category.GPU, 2.0)
        assert sum(accounting.breakdown().values()) == pytest.approx(
            accounting.total()
        )

    def test_measure_with_no_elapsed_time(self, accounting):
        with accounting.measure(Category.FREE):
            pass
        assert accounting.totals[Category.FREE] == 0.0
        assert accounting.counts[Category.FREE] == 1


class TestTraceAndMerge:
    def test_trace_records_events(self, clock):
        trace = TraceLog()
        accounting = TimeAccounting(clock, trace=trace)
        accounting.charge(Category.COPY, 1.0, label="dma")
        with accounting.measure(Category.CPU, label="phase"):
            clock.advance(1.0)
        assert len(trace) == 2
        assert trace.by_category(Category.COPY)[0].label == "dma"

    def test_merge(self, clock, accounting):
        other = TimeAccounting(clock)
        other.charge(Category.GPU, 2.0)
        accounting.charge(Category.GPU, 1.0)
        accounting.merge(other)
        assert accounting.totals[Category.GPU] == 3.0
        assert accounting.counts[Category.GPU] == 2

    def test_category_names_match_figure10(self):
        assert str(Category.CUDA_MALLOC) == "cudaMalloc"
        assert str(Category.IO_READ) == "IORead"
        assert str(Category.COPY) == "Copy"
        assert str(Category.RETRY) == "Retry"
        # Figure 10's 12 categories + CPU + the fault-recovery Retry bucket.
        assert len(list(Category)) == 14
