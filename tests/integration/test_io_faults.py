"""Section 4.4 under fault injection: short reads meet un-restartable I/O.

The un-interposed libc reproduces the paper's failure mode — a ``read()``
into a protected multi-block shared object aborts once the kernel's copy
loop faults after partial progress.  GMAC's interposed, block-chunked
``read()`` pre-faults each chunk AND resumes short deliveries, so the same
call survives both protection boundaries and a faulty disk.
"""

import numpy as np
import pytest

from repro.util.errors import IoError
from repro.util.units import KB
from repro.faults import FaultPlan

SIZE = 1024 * KB  # four 256KB rolling blocks


def _input_file(app, path="input"):
    rng = np.random.default_rng(123)
    data = rng.integers(0, 256, SIZE, dtype=np.uint8).tobytes()
    app.fs.create(path, data)
    return data


class TestUninterposedBaseline:
    def test_read_into_shared_region_is_not_restartable(self, app,
                                                        gmac_factory):
        """No interposition: the copy crosses the first block boundary
        after 256KB of progress and the OS cannot restart the call."""
        _input_file(app)
        gmac = gmac_factory(interpose=False)
        ptr = gmac.alloc(SIZE, name="data")
        with app.fs.open("input") as handle:
            with pytest.raises(IoError, match="not restartable"):
                app.libc.read(handle, int(ptr), SIZE)

    def test_single_block_read_survives_without_interposition(self, app,
                                                              gmac_factory):
        """Inside one block the first fault happens at zero progress, where
        the call IS restartable — the hazard needs a block boundary."""
        _input_file(app)
        gmac = gmac_factory(interpose=False)
        ptr = gmac.alloc(SIZE, name="data")
        with app.fs.open("input") as handle:
            assert app.libc.read(handle, int(ptr), 256 * KB) == 256 * KB


class TestInterposedRecovery:
    def test_chunked_read_crosses_all_blocks(self, app, gmac_factory):
        data = _input_file(app)
        gmac = gmac_factory()
        ptr = gmac.alloc(SIZE, name="data")
        with app.fs.open("input") as handle:
            assert app.libc.read(handle, int(ptr), SIZE) == SIZE
        assert ptr.read_bytes(SIZE) == data

    def test_short_reads_are_resumed_to_full_data(self, app, gmac_factory):
        data = _input_file(app)
        plan = app.machine.install_faults(
            FaultPlan(seed=4, short_read_rate=0.5)
        )
        gmac = gmac_factory()
        ptr = gmac.alloc(SIZE, name="data")
        with app.fs.open("input") as handle:
            assert app.libc.read(handle, int(ptr), SIZE) == SIZE
        assert ptr.read_bytes(SIZE) == data
        assert plan.injected["disk.read"] > 0
        assert gmac.recovery.stats["short_read_resumes"] == (
            plan.injected["disk.read"]
        )

    def test_short_reads_into_plain_memory_also_resume(self, app,
                                                       gmac_factory):
        """The overload keeps full-read semantics for non-shared buffers
        too — a faulty disk must not silently truncate them."""
        data = _input_file(app)
        app.machine.install_faults(FaultPlan(seed=4, short_read_rate=0.5))
        gmac_factory()  # installs the interposer on app.libc
        buffer = app.process.malloc(SIZE)
        with app.fs.open("input") as handle:
            assert app.libc.read(handle, int(buffer), SIZE) == SIZE
        assert buffer.read_bytes(SIZE) == data

    def test_eof_still_returns_short(self, app, gmac_factory):
        """Resumption must not spin at end of file: a read past the end
        returns what exists, exactly like POSIX."""
        app.fs.create("tiny", b"abc")
        gmac = gmac_factory()
        ptr = gmac.alloc(4 * KB, name="data")
        with app.fs.open("tiny") as handle:
            assert app.libc.read(handle, int(ptr), 4 * KB) == 3
        assert ptr.read_bytes(3) == b"abc"
