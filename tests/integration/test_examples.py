"""Every example script runs end to end (imported, main() invoked)."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


def _load(name):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "coherence_protocols",
        "mri_pipeline",
        "portable_machines",
        "multi_gpu_scheduler",
        "transfer_overlap_timeline",
    ],
)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    output = capsys.readouterr().out
    assert output.strip(), f"example {name} printed nothing"


def test_examples_directory_is_covered():
    scripts = {path.stem for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == {
        "quickstart",
        "coherence_protocols",
        "mri_pipeline",
        "portable_machines",
        "multi_gpu_scheduler",
        "transfer_overlap_timeline",
    }
