"""Cross-layer integration scenarios."""

import numpy as np
import pytest

from repro.util.errors import GmacError
from repro.util.units import KB
from repro.os.paging import PAGE_SIZE
from repro.hw.machine import reference_system
from repro.workloads.base import Application
from repro.cuda.kernels import Kernel


def _sum_fn(gpu, data, out, n):
    gpu.view(out, "f8", 1)[0] = gpu.view(data, "f4", n).sum(dtype=np.float64)


SUM = Kernel("sum", _sum_fn, cost=lambda data, out, n: (n, 4 * n),
             writes=("out",))


class TestApplicationLifecycle:
    def test_alloc_free_realloc_cycles(self, gmac_factory):
        gmac = gmac_factory("rolling")
        for cycle in range(5):
            ptr = gmac.alloc(64 * KB, name=f"cycle{cycle}")
            ptr.write_bytes(bytes([cycle]) * 64)
            assert ptr.read_bytes(64) == bytes([cycle]) * 64
            gmac.free(ptr)
        assert gmac.manager.block_count == 0

    def test_many_regions_fault_dispatch(self, gmac_factory, scale_kernel):
        gmac = gmac_factory(
            "rolling", protocol_options={"block_size": PAGE_SIZE}
        )
        ptrs = [gmac.alloc(2 * PAGE_SIZE, name=f"r{i}") for i in range(8)]
        for index, ptr in enumerate(ptrs):
            ptr.write_array(np.full(8, float(index), dtype=np.float32))
        gmac.call(scale_kernel, data=ptrs[3], n=8, factor=2.0)
        gmac.sync()
        for index, ptr in enumerate(ptrs):
            expected = float(index) * (2.0 if index == 3 else 1.0)
            assert np.allclose(ptr.read_array("f4", 8), expected)

    def test_interleaved_host_and_shared_memory(self, app, gmac_factory):
        gmac = gmac_factory("rolling")
        shared = gmac.alloc(PAGE_SIZE)
        plain = app.process.malloc(PAGE_SIZE)
        shared.write_bytes(b"s" * 64)
        plain.write_bytes(b"p" * 64)
        app.libc.memcpy(int(plain), int(shared), 64)
        assert plain.read_bytes(64) == b"s" * 64

    def test_two_gmac_kernels_chained(self, gmac_factory, scale_kernel):
        gmac = gmac_factory("lazy")
        data = gmac.alloc(256)
        out = gmac.alloc(PAGE_SIZE)
        values = np.arange(64, dtype=np.float32)
        data.write_array(values)
        gmac.call(scale_kernel, data=data, n=64, factor=3.0)
        gmac.sync()
        gmac.call(SUM, data=data, out=out, n=64)
        gmac.sync()
        assert out.read_array("f8", 1)[0] == pytest.approx(
            float(values.sum()) * 3.0
        )


class TestMultiGpu:
    def test_second_gpu_collides_and_safe_alloc_recovers(self):
        machine = reference_system(gpu_count=2)
        app = Application(machine)
        first = app.gmac(protocol="rolling", layer="driver",
                         gpu=machine.gpus[0])
        second = app.gmac(protocol="rolling", layer="driver",
                          gpu=machine.gpus[1])
        ptr = first.alloc(PAGE_SIZE)
        # Both GPUs hand out the same device addresses; the second fixed
        # mapping collides in the single host address space.
        with pytest.raises(GmacError):
            second.alloc(PAGE_SIZE)
        safe = second.safe_alloc(PAGE_SIZE)
        assert int(safe) != second.safe(safe)
        safe.write_bytes(b"second gpu")
        assert safe.read_bytes(10) == b"second gpu"

    def test_fault_routing_between_instances(self):
        machine = reference_system(gpu_count=2)
        app = Application(machine)
        first = app.gmac(protocol="rolling", layer="driver",
                         gpu=machine.gpus[0], interpose=False)
        second = app.gmac(protocol="rolling", layer="driver",
                          gpu=machine.gpus[1], interpose=False)
        a = first.alloc(PAGE_SIZE)
        b = second.safe_alloc(PAGE_SIZE)
        a.write_bytes(b"one")
        b.write_bytes(b"two")
        assert first.fault_count == 1
        assert second.fault_count == 1


class TestDeviceMemoryPressure:
    def test_alloc_failure_propagates_cleanly(self, gmac_factory):
        gmac = gmac_factory("rolling")
        capacity = gmac.layer.gpu.memory.capacity
        from repro.util.errors import AllocationError

        with pytest.raises(AllocationError):
            gmac.alloc(capacity + PAGE_SIZE)
        # The failure left no partial state behind.
        assert gmac.manager.block_count == 0

    def test_fill_and_release_device_memory(self, gmac_factory):
        gmac = gmac_factory("rolling")
        chunk = 64 * 1024 * 1024
        ptrs = [gmac.alloc(chunk) for _ in range(3)]
        for ptr in ptrs:
            gmac.free(ptr)
        assert gmac.layer.gpu.memory.bytes_in_use == 0


class TestTimingConsistency:
    def test_clock_never_regresses(self, app, gmac_factory, scale_kernel):
        gmac = gmac_factory("rolling")
        timestamps = [app.machine.clock.now]
        ptr = gmac.alloc(1 << 20)
        timestamps.append(app.machine.clock.now)
        ptr.write_bytes(b"x" * (1 << 20))
        timestamps.append(app.machine.clock.now)
        gmac.call(scale_kernel, data=ptr, n=1 << 18, factor=1.0)
        timestamps.append(app.machine.clock.now)
        gmac.sync()
        timestamps.append(app.machine.clock.now)
        assert timestamps == sorted(timestamps)

    def test_eager_overlap_beats_synchronous_flush(self):
        """Rolling-update's eager eviction overlaps transfers with CPU
        production; the total must beat lazy-update's synchronous flush of
        the same data at call time when CPU production is slow."""
        results = {}
        for protocol in ("lazy", "rolling"):
            machine = reference_system()
            app = Application(machine)
            gmac = app.gmac(
                protocol=protocol, layer="driver",
                protocol_options=(
                    {"block_size": 256 * KB, "rolling_size": 2}
                    if protocol == "rolling" else None
                ),
            )
            ptr = gmac.alloc(4 << 20)
            for offset in range(0, 4 << 20, 64 * KB):
                machine.cpu.stream(64 * KB, 1.5e9)
                ptr.write_bytes(b"\x01" * (64 * KB), offset=offset)
            gmac.call(SUM, data=ptr, out=gmac.alloc(PAGE_SIZE), n=16)
            gmac.sync()
            results[protocol] = machine.clock.now
        assert results["rolling"] < results["lazy"]
