"""Property-based I/O: random files round-trip through shared memory.

Random (offset, size) read/write plans run against every protocol and
block geometry; file contents must round-trip exactly through shared
regions via the interposed libc, whatever the chunking.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.os.paging import PAGE_SIZE
from repro.hw.machine import reference_system
from repro.workloads.base import Application
from repro.cuda.kernels import Kernel

REGION_BYTES = 5 * PAGE_SIZE


def _reverse_fn(gpu, data, n):
    view = gpu.view(data, "u1", n)
    view[:] = view[::-1].copy()


REVERSE = Kernel("reverse", _reverse_fn, cost=lambda data, n: (n, 2 * n))


def _fresh(protocol, block_pages, rolling, peer_dma=False):
    machine = reference_system()
    app = Application(machine)
    options = None
    if protocol == "rolling":
        options = {"block_size": block_pages * PAGE_SIZE,
                   "rolling_size": rolling}
    gmac = app.gmac(protocol=protocol, layer="driver",
                    protocol_options=options, peer_dma=peer_dma)
    return app, gmac


class TestIoRoundTrips:
    @pytest.mark.parametrize("protocol", ["batch", "lazy", "rolling"])
    @given(
        data=st.binary(min_size=1, max_size=REGION_BYTES),
        offset=st.integers(0, REGION_BYTES - 1),
        block_pages=st.integers(1, 3),
    )
    @settings(max_examples=15, deadline=None)
    def test_file_to_region_to_file(self, protocol, data, offset,
                                    block_pages):
        app, gmac = _fresh(protocol, block_pages, rolling=2)
        size = min(len(data), REGION_BYTES - offset)
        data = data[:size]
        app.fs.create("in.bin", data)
        ptr = gmac.alloc(REGION_BYTES)
        with app.fs.open("in.bin") as handle:
            assert app.libc.read(handle, int(ptr) + offset, size) == size
        with app.fs.open("out.bin", "w") as handle:
            assert app.libc.write(handle, int(ptr) + offset, size) == size
        assert app.fs.data_of("out.bin") == data

    @pytest.mark.parametrize("peer_dma", [False, True])
    @given(seed=st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_kernel_between_read_and_write(self, peer_dma, seed):
        """disk -> shared -> kernel -> shared -> disk, byte-exact."""
        app, gmac = _fresh("rolling", block_pages=1, rolling=2,
                           peer_dma=peer_dma)
        rng = np.random.default_rng(seed)
        payload = rng.integers(0, 256, REGION_BYTES, dtype=np.uint8)
        app.fs.create("in.bin", payload.tobytes())
        ptr = gmac.alloc(REGION_BYTES)
        with app.fs.open("in.bin") as handle:
            app.libc.read(handle, int(ptr), REGION_BYTES)
        gmac.call(REVERSE, data=ptr, n=REGION_BYTES)
        gmac.sync()
        with app.fs.open("out.bin", "w") as handle:
            app.libc.write(handle, int(ptr), REGION_BYTES)
        produced = np.frombuffer(app.fs.data_of("out.bin"), dtype=np.uint8)
        assert np.array_equal(produced, payload[::-1])

    @given(
        chunks=st.lists(st.integers(1, 2 * PAGE_SIZE), min_size=1,
                        max_size=6),
    )
    @settings(max_examples=15, deadline=None)
    def test_chunked_sequential_reads(self, chunks):
        """Many sequential read() calls into one region behave like one."""
        app, gmac = _fresh("rolling", block_pages=1, rolling=1)
        total = min(sum(chunks), REGION_BYTES)
        payload = bytes(range(256)) * (-(-total // 256))
        payload = payload[:total]
        app.fs.create("in.bin", payload)
        ptr = gmac.alloc(REGION_BYTES)
        consumed = 0
        with app.fs.open("in.bin") as handle:
            for chunk in chunks:
                if consumed >= total:
                    break
                chunk = min(chunk, total - consumed)
                got = app.libc.read(handle, int(ptr) + consumed, chunk)
                consumed += got
        assert ptr.read_bytes(total) == payload
