"""Shared fixtures: machines, applications, GMAC instances, test kernels."""

import numpy as np
import pytest

from repro.hw.machine import reference_system, integrated_system
from repro.workloads.base import Application
from repro.cuda.kernels import Kernel


def pytest_addoption(parser):
    group = parser.getgroup("repro", "ADSM sanitizer")
    # benchmarks/conftest.py registers its own options with the same
    # guard; whichever conftest loads first wins, the other passes.
    try:
        group.addoption(
            "--sanitize", action="store_true",
            help=(
                "arm the coherence model checker and kernel-window race "
                "detector on every GMAC workload execution"
            ),
        )
    except ValueError:
        pass


@pytest.fixture(scope="session", autouse=True)
def _sanitize_mode(request):
    """Honor --sanitize: every Workload.execute gets the dynamic checkers."""
    from repro import analysis

    try:
        wanted = request.config.getoption("--sanitize")
    except ValueError:
        wanted = False
    if not wanted:
        yield
        return
    analysis.enable()
    yield
    analysis.disable()


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_cache(tmp_path_factory):
    """Point the persistent result cache at a session tmp dir.

    Tests must neither read stale outcomes from, nor deposit new ones
    into, the shared cache under benchmarks/results/.
    """
    from repro.experiments import common
    from repro.experiments.cache import ResultCache

    common.set_persistent_cache(
        ResultCache(tmp_path_factory.mktemp("result-cache"))
    )
    yield
    common.set_persistent_cache(None)


@pytest.fixture
def machine():
    return reference_system()


@pytest.fixture
def integrated_machine():
    return integrated_system()


@pytest.fixture
def app(machine):
    return Application(machine)


@pytest.fixture
def gmac_factory(app):
    """Build GMAC instances bound to the shared application."""

    def build(protocol="rolling", **kwargs):
        kwargs.setdefault("layer", "driver")
        return app.gmac(protocol=protocol, **kwargs)

    return build


def _scale_fn(gpu, data, n, factor):
    gpu.view(data, "f4", n)[:] *= np.float32(factor)


def _add_fn(gpu, a, b, c, n):
    np.add(gpu.view(a, "f4", n), gpu.view(b, "f4", n), out=gpu.view(c, "f4", n))


@pytest.fixture
def scale_kernel():
    """data[i] *= factor over n float32 elements."""
    return Kernel(
        "scale", _scale_fn,
        cost=lambda data, n, factor: (n, 8 * n),
        writes=("data",),
    )


@pytest.fixture
def add_kernel():
    """c = a + b over n float32 elements."""
    return Kernel(
        "add", _add_fn,
        cost=lambda a, b, c, n: (n, 12 * n),
        writes=("c",),
    )
