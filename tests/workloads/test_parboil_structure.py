"""Structural assertions per Parboil benchmark.

Figures 7/8/10 depend on each benchmark's *shape* — kernel-call counts,
I/O mix, CPU access patterns — not just on its outputs.  These tests pin
the shapes down so a refactor cannot silently change what the experiments
measure.
"""

import pytest

from repro.experiments.common import make_workload


def _run(name, protocol="rolling", **gmac_options):
    workload = make_workload(name, quick=True)
    result = workload.execute(
        mode="gmac", protocol=protocol,
        gmac_options={"layer": "driver", **gmac_options},
    )
    assert result.verified
    return workload, result


class TestCallCounts:
    def test_pns_launches_once_per_iteration(self):
        workload, result = _run("pns")
        machine = result.extra["machine"]
        assert machine.gpu.kernels_launched == workload.iterations

    def test_rpes_launches_once_per_root(self):
        workload, result = _run("rpes")
        machine = result.extra["machine"]
        # One launch per quadrature root (the memset is device-side, not a
        # kernel launch on the engine... it does occupy the engine).
        assert machine.gpu.kernels_launched == workload.n_roots

    def test_single_shot_benchmarks(self):
        for name in ("cp", "mri-fhd", "mri-q", "sad", "tpacf"):
            _, result = _run(name)
            machine = result.extra["machine"]
            assert machine.gpu.kernels_launched == 1, name


class TestIoMix:
    def test_mri_benchmarks_read_their_inputs(self):
        for name in ("mri-fhd", "mri-q"):
            workload, result = _run(name)
            machine = result.extra["machine"]
            assert machine.disk.bytes_read > 0, name
            assert result.breakdown["IORead"] > 0

    def test_pns_and_rpes_do_no_io(self):
        for name in ("pns", "rpes"):
            _, result = _run(name)
            machine = result.extra["machine"]
            assert machine.disk.bytes_read == 0
            assert machine.disk.bytes_written == 0

    def test_sad_reads_two_frames_writes_table(self):
        workload, result = _run("sad")
        machine = result.extra["machine"]
        assert machine.disk.bytes_read == 2 * workload.frame_bytes
        assert machine.disk.bytes_written == workload.sads_bytes

    def test_cp_writes_the_potential_plane(self):
        workload, result = _run("cp")
        machine = result.extra["machine"]
        assert machine.disk.bytes_written == workload.grid_bytes


class TestAccessPatterns:
    def test_pns_cpu_never_reads_the_marking_until_the_end(self):
        """Lazy-update moves only the tiny stats object during the loop;
        the big marking vector returns exactly once (the final read)."""
        workload, result = _run("pns", protocol="lazy")
        expected_final = workload.places_bytes
        samples = workload.iterations // workload.sample_interval
        stats_page = 4096
        assert result.bytes_to_host == expected_final + samples * stats_page

    def test_mriq_reads_only_a_prefix_of_q(self):
        workload, result = _run("mri-q")
        from repro.util.units import KB

        # rolling fetches ceil(prefix / 256KB) blocks of Q plus the small
        # output region, strictly less than the whole Q matrix.
        assert result.bytes_to_host < workload.q_bytes

    def test_tpacf_init_is_multi_pass(self):
        from repro.workloads.parboil.tpacf import PASSES

        workload, result = _run(
            "tpacf",
            protocol_options={"block_size": 128 * 1024, "rolling_size": 1},
        )
        # With rolling size 1, every pass re-transfers the input: the H2D
        # traffic approaches PASSES x the region size.
        assert result.bytes_to_accelerator > (
            (PASSES - 1) * workload.points_bytes
        )

    def test_stencil_sources_touch_one_block(self):
        from repro.workloads.stencil3d import Stencil3D

        workload = Stencil3D(n=32, steps=4, dump_interval=4)
        result = workload.execute(
            mode="gmac", protocol="rolling",
            gmac_options={"layer": "driver",
                          "protocol_options": {"block_size": 4096}},
        )
        assert result.verified
        # Each non-dump step moves roughly one block each way, not the
        # whole volume (the Figure 9 rolling advantage).
        volume = workload.volume_bytes
        assert result.bytes_to_accelerator < 2 * volume
