"""Golden eager-vs-deferred equivalence for the numerics engine.

The deferred engine's contract (DESIGN.md §9): deferral and batching are
*invisible* — every figure, trace, byte of device memory, and
``SpecOutcome`` must be identical to an eager engine running the same
program.  This suite pins that contract for every workload that ships a
``batched_fn``, across all three coherence protocols, and property-tests
materialization at random flush points.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.util.units import KB
from repro.hw.machine import reference_system
from repro.cuda.driver import DriverContext
from repro.cuda.kernels import Kernel
from repro.workloads.base import Application
from repro.workloads.parboil import PARBOIL
from repro.workloads.stencil3d import Stencil3D

PROTOCOLS = ("batch", "lazy", "rolling")

#: Every workload with a ``batched_fn``, at sizes that keep the full
#: (workload x protocol x 2 engines) matrix fast.
BATCHED_WORKLOADS = {
    "pns": lambda: PARBOIL["pns"](
        n_places=65536, iterations=12, sample_interval=4
    ),
    "cp": lambda: PARBOIL["cp"](grid_n=96, n_atoms=48),
    "mri-q": lambda: PARBOIL["mri-q"](n_samples=48, n_voxels=16384),
    "mri-fhd": lambda: PARBOIL["mri-fhd"](n_samples=4096, n_voxels=64),
    "tpacf": lambda: PARBOIL["tpacf"](n_points=65536),
    "stencil3d": lambda: Stencil3D(n=32, steps=8, dump_interval=4),
}


def _run(factory, protocol, defer):
    machine = reference_system(trace=True, defer_numerics=defer)
    result = factory().execute(
        mode="gmac", protocol=protocol, machine=machine,
        gmac_options={"layer": "driver"},
    )
    machine.gpu.materialize()  # drain any tail before inspecting bytes
    return result, machine


def _device_bytes(machine):
    memory = machine.gpu.memory
    return {
        start: allocation.buffer.tobytes()
        for start, allocation in memory._allocations.items()
    }


class TestGoldenEquivalence:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("name", sorted(BATCHED_WORKLOADS))
    def test_deferred_engine_is_invisible(self, name, protocol):
        factory = BATCHED_WORKLOADS[name]
        deferred, d_machine = _run(factory, protocol, defer=True)
        eager, e_machine = _run(factory, protocol, defer=False)

        assert deferred.verified and eager.verified
        # Virtual time and its Figure-10 decomposition.
        assert deferred.elapsed == eager.elapsed
        assert deferred.breakdown == eager.breakdown
        # Figure-8 traffic and fault/signal counts.
        assert deferred.bytes_to_accelerator == eager.bytes_to_accelerator
        assert deferred.bytes_to_host == eager.bytes_to_host
        assert deferred.faults == eager.faults
        assert deferred.signals == eager.signals
        # The full charged-interval trace, event for event.
        assert d_machine.trace.events == e_machine.trace.events
        # Device memory, byte for byte, allocation for allocation.
        assert _device_bytes(d_machine) == _device_bytes(e_machine)
        # Output files, byte for byte.
        assert (deferred.extra["app"].fs._files
                == eager.extra["app"].fs._files)
        # And the comparison is not vacuous: one engine deferred, the
        # other never queued a single launch.
        assert d_machine.gpu.numerics_flushes > 0
        assert e_machine.gpu.numerics_flushes == 0

    def test_pns_actually_batches(self):
        _, machine = _run(BATCHED_WORKLOADS["pns"], "rolling", defer=True)
        assert machine.gpu.batched_rounds == machine.gpu.numerics_rounds > 0
        assert machine.gpu.numerics_flushes < machine.gpu.numerics_rounds


class TestSpecOutcomeEquivalence:
    """Experiment-plane view: identical SpecOutcomes, field for field."""

    def _specs(self):
        from repro.experiments.executor import expand

        specs = expand(["fig7"], quick=True)
        picked, seen = [], set()
        for spec in specs:
            if spec.workload not in seen and spec.mode == "gmac":
                seen.add(spec.workload)
                picked.append(spec)
        return picked

    def test_outcomes_identical(self, monkeypatch):
        import repro.hw.gpu as gpu_module

        for spec in self._specs():
            monkeypatch.setattr(gpu_module, "DEFAULT_DEFER_NUMERICS", True)
            deferred = spec.execute()
            monkeypatch.setattr(gpu_module, "DEFAULT_DEFER_NUMERICS", False)
            eager = spec.execute()
            assert deferred == eager, spec.key


N_WORDS = KB // 4


def _mix_fn(gpu, data, n, step):
    gpu.view(data, "i4", n)[:] += np.int32(step)


def _mix_batched(gpu, launches):
    first = launches[0]
    total = sum(entry["step"] for entry in launches)
    gpu.view(first["data"], "i4", first["n"])[:] += np.int32(total)


#: Integer bump kernel: the batched form (one += sum) is exactly the
#: launch-by-launch result, so any divergence is an engine-ordering bug.
MIX = Kernel(
    "mix", _mix_fn,
    cost=lambda data, n, step: (n, 8 * n),
    writes=("data",),
    batched_fn=_mix_batched,
    batch_by=("step",),
)


class TestRandomFlushPoints:
    """Reads interleaved at random force flushes at arbitrary depths."""

    @staticmethod
    def _run(ops, defer):
        machine = reference_system(defer_numerics=defer)
        app = Application(machine)
        ctx = DriverContext(machine, app.process)
        dev = ctx.mem_alloc(KB)
        ctx.gpu.memory.view(dev, "i4", N_WORDS)[:] = np.arange(
            N_WORDS, dtype=np.int32
        )
        reads = []
        for op in ops:
            if op == "read":
                reads.append(bytes(ctx.gpu.memory.read(dev, 64)))
            else:
                ctx.launch(MIX, {"data": dev, "n": N_WORDS, "step": op})
        machine.gpu.materialize()
        final = bytes(ctx.gpu.memory.read(dev, KB))
        return reads, final

    @settings(max_examples=25, deadline=None)
    @given(
        ops=st.lists(
            st.one_of(
                st.integers(min_value=1, max_value=9), st.just("read")
            ),
            min_size=1,
            max_size=24,
        )
    )
    def test_reads_and_final_bytes_match_eager(self, ops):
        d_reads, d_final = self._run(ops, defer=True)
        e_reads, e_final = self._run(ops, defer=False)
        assert d_reads == e_reads
        assert d_final == e_final
