"""Every workload, every mode, verified against its numpy oracle.

These are the correctness gates behind Figures 7-12: a protocol bug shows
up here as a numerical mismatch.
"""

import pytest

from repro.util.units import KB, MB
from repro.hw.machine import reference_system, integrated_system
from repro.workloads.vecadd import VectorAdd, transfer_phase_times
from repro.workloads.stencil3d import Stencil3D
from repro.experiments.common import make_workload, QUICK_PARAMS
from repro.workloads.parboil import PARBOIL

MODES = [("cuda", None), ("gmac", "batch"), ("gmac", "lazy"),
         ("gmac", "rolling")]


@pytest.mark.parametrize("name", sorted(PARBOIL))
@pytest.mark.parametrize("mode, protocol", MODES)
class TestParboilCorrectness:
    def test_outputs_match_oracle(self, name, mode, protocol):
        workload = make_workload(name, quick=True)
        result = workload.execute(
            mode=mode, protocol=protocol or "rolling",
        )
        assert result.verified, f"{name} {mode}/{protocol} diverged"
        assert result.elapsed > 0
        assert result.mode == mode


class TestParboilShapes:
    def test_quick_params_cover_suite(self):
        assert set(QUICK_PARAMS) == set(PARBOIL)

    def test_pns_batch_is_catastrophic(self):
        workload = make_workload("pns", quick=True)
        cuda = workload.execute(mode="cuda")
        batch = make_workload("pns", quick=True).execute(
            mode="gmac", protocol="batch"
        )
        assert batch.elapsed / cuda.elapsed > 5.0

    def test_pns_lazy_matches_cuda(self):
        workload = make_workload("pns", quick=True)
        cuda = workload.execute(mode="cuda")
        lazy = make_workload("pns", quick=True).execute(
            mode="gmac", protocol="lazy"
        )
        assert lazy.elapsed / cuda.elapsed < 1.5

    def test_gmac_moves_less_data_than_batch(self):
        name = "rpes"
        batch = make_workload(name, quick=True).execute(
            mode="gmac", protocol="batch"
        )
        rolling = make_workload(name, quick=True).execute(
            mode="gmac", protocol="rolling"
        )
        assert rolling.bytes_to_accelerator < 0.5 * batch.bytes_to_accelerator
        assert rolling.bytes_to_host < 0.5 * batch.bytes_to_host

    def test_breakdown_sums_to_elapsed(self):
        result = make_workload("cp", quick=True).execute(
            mode="gmac", protocol="rolling"
        )
        total = sum(result.breakdown.values())
        # prepare() charges nothing; everything inside execute is accounted.
        assert total == pytest.approx(result.elapsed, rel=0.05)


class TestVectorAdd:
    @pytest.mark.parametrize("mode, protocol", MODES)
    def test_correct(self, mode, protocol):
        workload = VectorAdd(elements=64 * 1024)
        result = workload.execute(mode=mode, protocol=protocol or "rolling")
        assert result.verified

    def test_double_buffered_variant_correct(self):
        workload = VectorAdd(elements=256 * 1024)
        result = workload.execute(mode="cuda-db")
        assert result.verified
        assert result.mode == "cuda-db"

    def test_double_buffering_beats_synchronous_copies(self):
        workload = VectorAdd(elements=1024 * 1024)
        naive = workload.execute(mode="cuda")
        buffered = VectorAdd(elements=1024 * 1024).execute(mode="cuda-db")
        assert buffered.elapsed < naive.elapsed

    def test_gmac_overlap_matches_hand_tuned(self):
        """Section 2.2's second motivation: the overlap double buffering
        buys with extra code, rolling-update gets for free."""
        buffered = VectorAdd(elements=1024 * 1024).execute(mode="cuda-db")
        gmac = VectorAdd(elements=1024 * 1024).execute(
            mode="gmac", protocol="rolling",
            gmac_options={"protocol_options": {"block_size": 256 * KB}},
        )
        assert gmac.elapsed < buffered.elapsed * 1.15

    def test_phase_instrumentation(self):
        phases = transfer_phase_times(64 * KB, elements=128 * 1024)
        assert phases["verified"]
        assert phases["cpu_to_gpu_s"] >= 0
        assert phases["gpu_to_cpu_s"] >= 0
        assert phases["faults"] > 0

    def test_small_blocks_pay_more(self):
        small = transfer_phase_times(4 * KB, elements=256 * 1024)
        medium = transfer_phase_times(256 * KB, elements=256 * 1024)
        assert small["cpu_to_gpu_s"] > medium["cpu_to_gpu_s"]
        assert small["gpu_to_cpu_s"] > medium["gpu_to_cpu_s"]


class TestStencil3D:
    @pytest.mark.parametrize("mode, protocol", MODES)
    def test_correct(self, mode, protocol):
        workload = Stencil3D(n=24, steps=4, dump_interval=2)
        result = workload.execute(mode=mode, protocol=protocol or "rolling")
        assert result.verified

    def test_rolling_beats_lazy_on_large_volumes(self):
        workload = Stencil3D(n=64, steps=10, dump_interval=5)
        lazy = workload.execute(
            mode="gmac", protocol="lazy", gmac_options={"layer": "driver"}
        )
        rolling = workload.execute(
            mode="gmac", protocol="rolling",
            gmac_options={"layer": "driver",
                          "protocol_options": {"block_size": 256 * KB}},
        )
        assert rolling.elapsed < lazy.elapsed
        assert rolling.bytes_to_host < lazy.bytes_to_host

    def test_runs_on_integrated_machine(self):
        workload = Stencil3D(n=24, steps=4, dump_interval=2)
        result = workload.execute(
            mode="gmac", protocol="rolling", machine=integrated_system()
        )
        assert result.verified
        machine = result.extra["machine"]
        assert sum(machine.link.bytes_moved.values()) == 0

    def test_unknown_mode_rejected(self):
        from repro.util.errors import ReproError

        with pytest.raises(ReproError):
            Stencil3D(n=16, steps=2, dump_interval=2).execute(mode="opencl")
