"""The shared MRI math (mri-fhd / mri-q kernels)."""

import numpy as np
import pytest

from repro.workloads.parboil.mri_common import (
    phase_matrix,
    fhd_reference,
    q_reference,
    make_samples,
    make_voxels,
)


@pytest.fixture
def rng():
    return np.random.default_rng(9)


class TestGenerators:
    def test_samples_shape_and_range(self, rng):
        samples = make_samples(rng, 128)
        assert samples.shape == (128, 5)
        assert samples.dtype == np.float32
        assert (samples[:, :3] >= -1).all() and (samples[:, :3] <= 1).all()
        assert (samples[:, 3:] >= 0).all()

    def test_voxels_shape(self, rng):
        voxels = make_voxels(rng, 64)
        assert voxels.shape == (64, 3)
        assert (np.abs(voxels) <= 1).all()


class TestMath:
    def test_phase_matrix_shape(self, rng):
        k = make_voxels(rng, 8)
        x = make_voxels(rng, 5)
        assert phase_matrix(k, x).shape == (8, 5)

    def test_phase_matrix_is_scaled_dot_product(self):
        k = np.array([[1.0, 0.0, 0.0]], dtype=np.float32)
        x = np.array([[0.5, 9.0, 9.0]], dtype=np.float32)
        # Only the first component matters for this k.
        assert phase_matrix(k, x)[0, 0] == pytest.approx(np.pi, rel=1e-6)

    def test_fhd_single_sample_closed_form(self):
        k = np.array([[0.25, 0.0, 0.0]], dtype=np.float32)
        x = np.array([[1.0, 0.0, 0.0]], dtype=np.float32)
        phi_r = np.array([2.0], dtype=np.float32)
        phi_i = np.array([3.0], dtype=np.float32)
        arg = 2 * np.pi * 0.25
        r_fhd, i_fhd = fhd_reference(k, phi_r, phi_i, x)
        assert r_fhd[0] == pytest.approx(2 * np.cos(arg) + 3 * np.sin(arg),
                                         rel=1e-5)
        assert i_fhd[0] == pytest.approx(3 * np.cos(arg) - 2 * np.sin(arg),
                                         rel=1e-5)

    def test_q_single_sample_closed_form(self):
        k = np.array([[0.25, 0.0, 0.0]], dtype=np.float32)
        x = np.array([[0.5, 0.0, 0.0]], dtype=np.float32)
        magnitude = np.array([4.0], dtype=np.float32)
        arg = 2 * np.pi * 0.125
        r_q, i_q = q_reference(k, magnitude, x)
        assert r_q[0] == pytest.approx(4 * np.cos(arg), rel=1e-5)
        assert i_q[0] == pytest.approx(4 * np.sin(arg), rel=1e-5)

    def test_fhd_is_linear_in_phi(self, rng):
        k = make_voxels(rng, 16)
        x = make_voxels(rng, 4)
        phi_r = rng.random(16).astype(np.float32)
        phi_i = rng.random(16).astype(np.float32)
        r1, i1 = fhd_reference(k, phi_r, phi_i, x)
        r2, i2 = fhd_reference(k, 2 * phi_r, 2 * phi_i, x)
        assert np.allclose(r2, 2 * r1, rtol=1e-4)
        assert np.allclose(i2, 2 * i1, rtol=1e-4)

    def test_q_at_origin_sums_magnitudes(self, rng):
        k = make_voxels(rng, 32)
        magnitude = rng.random(32).astype(np.float32)
        origin = np.zeros((1, 3), dtype=np.float32)
        r_q, i_q = q_reference(k, magnitude, origin)
        assert r_q[0] == pytest.approx(float(magnitude.sum()), rel=1e-5)
        assert i_q[0] == pytest.approx(0.0, abs=1e-5)
