"""The simulated bandwidth wall (executable Figure 2)."""

import pytest

from repro.util.errors import ReproError
from repro.hw.specs import PCIE_2_0_X16
from repro.workloads.npb import NPB_KERNELS
from repro.workloads.npb_kernel import achieved_ipc, ipc_ceiling


class TestAchievedIpc:
    @pytest.mark.parametrize("name", sorted(NPB_KERNELS))
    def test_pcie_ceiling_matches_analytic_bound(self, name):
        simulated = achieved_ipc(name, "pcie", target_ipc=300)
        analytic = NPB_KERNELS[name].max_ipc(PCIE_2_0_X16.h2d_bytes_per_s)
        assert simulated == pytest.approx(analytic, rel=0.1)

    @pytest.mark.parametrize("name", sorted(NPB_KERNELS))
    def test_device_placement_lifts_the_wall(self, name):
        over_pcie = achieved_ipc(name, "pcie", target_ipc=300)
        on_device = achieved_ipc(name, "device", target_ipc=300)
        assert on_device > 5 * over_pcie or over_pcie > 200

    def test_paper_breakpoints_bt_and_ua(self):
        assert achieved_ipc("bt", "pcie", target_ipc=300) == pytest.approx(
            50, rel=0.2
        )
        assert achieved_ipc("ua", "pcie", target_ipc=300) == pytest.approx(
            5, rel=0.2
        )

    def test_low_target_is_not_bandwidth_bound(self):
        # At IPC 2 even ua fits through PCIe.
        assert achieved_ipc("ua", "pcie", target_ipc=2) == pytest.approx(
            2, rel=0.15
        )

    def test_achieved_never_exceeds_target(self):
        for placement in ("pcie", "device"):
            assert achieved_ipc("ep", placement, target_ipc=50) <= 50 * 1.01

    def test_bad_inputs_rejected(self):
        with pytest.raises(ReproError):
            achieved_ipc("ft", "pcie")
        with pytest.raises(ReproError):
            achieved_ipc("bt", "infiniband")

    def test_ceiling_helper(self):
        assert ipc_ceiling("mg", "pcie") == pytest.approx(
            NPB_KERNELS["mg"].max_ipc(PCIE_2_0_X16.h2d_bytes_per_s), rel=0.1
        )
