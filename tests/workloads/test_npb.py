"""The NPB trace/bandwidth model (Figure 2 + Section 2.2)."""

import pytest

from repro.util.units import GB
from repro.hw.specs import PCIE_2_0_X16, GTX295_MEMORY
from repro.workloads.npb import (
    NPB_KERNELS,
    NPB_CLOCK_HZ,
    generate_trace,
    analyze_trace,
    trace_summary,
    bandwidth_series,
)


class TestSpecs:
    def test_all_five_benchmarks_present(self):
        assert set(NPB_KERNELS) == {"bt", "ep", "lu", "mg", "ua"}

    def test_required_bandwidth_scales_linearly(self):
        spec = NPB_KERNELS["bt"]
        assert spec.required_bandwidth(20) == pytest.approx(
            2 * spec.required_bandwidth(10)
        )

    def test_negative_ipc_rejected(self):
        with pytest.raises(ValueError):
            NPB_KERNELS["bt"].required_bandwidth(-1)

    def test_paper_breakpoints(self):
        """PCIe caps bt at IPC~50 and ua at IPC~5 (Section 2.2)."""
        pcie = PCIE_2_0_X16.h2d_bytes_per_s
        assert NPB_KERNELS["bt"].max_ipc(pcie) == pytest.approx(50, rel=0.15)
        assert NPB_KERNELS["ua"].max_ipc(pcie) == pytest.approx(5, rel=0.15)

    def test_gpu_memory_sustains_far_higher_ipc(self):
        for spec in NPB_KERNELS.values():
            gpu = spec.max_ipc(GTX295_MEMORY.h2d_bytes_per_s)
            pcie = spec.max_ipc(PCIE_2_0_X16.h2d_bytes_per_s)
            assert gpu > 10 * pcie

    def test_ordering_matches_memory_intensity(self):
        ordered = sorted(
            NPB_KERNELS.values(), key=lambda s: s.bytes_per_instruction
        )
        assert [s.name for s in ordered] == ["ep", "bt", "lu", "mg", "ua"]


class TestTraces:
    def test_trace_is_deterministic(self):
        spec = NPB_KERNELS["mg"]
        first = generate_trace(spec, 10_000, seed=3)
        second = generate_trace(spec, 10_000, seed=3)
        assert (first[0] == second[0]).all()
        assert (first[1] == second[1]).all()

    def test_kernel_accesses_subset_of_memory_accesses(self):
        spec = NPB_KERNELS["ua"]
        is_memory, in_kernel = generate_trace(spec, 50_000, seed=1)
        assert (in_kernel & ~is_memory).sum() == 0

    def test_measured_bpi_near_spec(self):
        for name, spec in NPB_KERNELS.items():
            summary = trace_summary(name, instructions=300_000, seed=2)
            assert summary.bytes_per_instruction == pytest.approx(
                spec.bytes_per_instruction, rel=0.2
            )

    def test_motivation_99_percent(self):
        for name in NPB_KERNELS:
            summary = trace_summary(name, instructions=300_000, seed=4)
            assert summary.kernel_access_fraction == pytest.approx(
                0.99, abs=0.02
            )

    def test_bad_instruction_count(self):
        with pytest.raises(ValueError):
            generate_trace(NPB_KERNELS["bt"], 0)

    def test_empty_memory_fraction_summary(self):
        spec = NPB_KERNELS["bt"]
        import numpy as np

        summary = analyze_trace(
            spec, np.zeros(10, dtype=bool), np.zeros(10, dtype=bool)
        )
        assert summary.kernel_access_fraction == 0.0
        assert summary.bytes_per_instruction == 0.0


class TestSeries:
    def test_bandwidth_series_matches_pointwise(self):
        series = bandwidth_series("ua", [1, 5, 10])
        spec = NPB_KERNELS["ua"]
        assert series == [
            spec.required_bandwidth(1),
            spec.required_bandwidth(5),
            spec.required_bandwidth(10),
        ]

    def test_ua_at_ipc5_matches_pcie_scale(self):
        # ua at IPC 5 needs roughly PCIe-class bandwidth (Figure 2).
        needed = NPB_KERNELS["ua"].required_bandwidth(5)
        assert needed == pytest.approx(PCIE_2_0_X16.h2d_bytes_per_s, rel=0.2)

    def test_clock_assumption(self):
        assert NPB_CLOCK_HZ == 800e6
