"""The workload harness itself."""

import numpy as np
import pytest

from repro.util.errors import ReproError
from repro.workloads.base import Workload, WorkloadResult
from repro.workloads.vecadd import VectorAdd


class TestWorkloadResult:
    def _result(self, **overrides):
        values = dict(
            workload="demo", mode="gmac", protocol="rolling", elapsed=1.0,
            breakdown={}, bytes_to_accelerator=0, bytes_to_host=0,
            faults=0, signals=0, verified=True,
        )
        values.update(overrides)
        return WorkloadResult(**values)

    def test_gmac_label(self):
        assert self._result().label == "GMAC rolling"

    def test_cuda_label(self):
        assert self._result(mode="cuda", protocol="-").label == "CUDA"


class TestVerification:
    class Lying(Workload):
        name = "lying"

        def run_cuda(self, app):
            return {"out": np.zeros(4)}

        def run_gmac(self, app, gmac):
            return {"out": np.zeros(4)}

        def reference(self):
            return {"out": np.ones(4)}

    class Incomplete(Lying):
        name = "incomplete"

        def reference(self):
            return {"out": np.zeros(4), "missing": np.zeros(2)}

    class Misshapen(Lying):
        name = "misshapen"

        def reference(self):
            return {"out": np.zeros(8)}

    def test_wrong_values_fail_verification(self):
        assert self.Lying().execute(mode="cuda").verified is False

    def test_missing_output_fails(self):
        assert self.Incomplete().execute(mode="cuda").verified is False

    def test_shape_mismatch_fails(self):
        assert self.Misshapen().execute(mode="cuda").verified is False

    def test_unknown_mode_rejected(self):
        with pytest.raises(ReproError):
            self.Lying().execute(mode="vulkan")


class TestRepeatedExecution:
    def test_stats_over_varied_seeds(self):
        workload = VectorAdd(elements=32 * 1024)
        stats, results = workload.execute_stats(runs=3)
        assert stats.count == 3
        assert stats.mean > 0
        # Different seeds, same structure: elapsed times are near-equal.
        assert stats.relative_stdev < 0.05
        assert all(result.verified for result in results)
        seeds = {id(result) for result in results}
        assert len(seeds) == 3

    def test_repeat_params_preserve_sizes(self):
        workload = VectorAdd(elements=32 * 1024, seed=11)
        params = workload._repeat_params(2)
        assert params["elements"] == 32 * 1024
        assert params["seed"] == 13

    def test_zero_runs_rejected(self):
        with pytest.raises(ReproError):
            VectorAdd(elements=1024).execute_stats(runs=0)

    def test_failed_verification_raises(self):
        workload = TestVerification.Lying()
        with pytest.raises(ReproError):
            workload.execute_stats(runs=1, mode="cuda")
