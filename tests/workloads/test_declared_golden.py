"""Golden declared-vs-lazy equivalence: fewer transfers, identical bytes.

The ``declared`` protocol consumes each workload's verified
``@access_modes`` contract to elide transfers lazy-update performs.  The
elision must be *pure win*: on every annotated workload the outputs stay
byte-for-byte identical, both runs are sanitizer-clean, and declared
never moves more bytes in either direction — with a strict
device-to-host saving on mri-q, whose ``none``-mode staging window the
contract lets the protocol skip entirely.
"""

import numpy as np
import pytest

from repro.analysis import attach_sanitizer
from repro.hw.machine import reference_system
from repro.workloads.base import Application
from repro.workloads.stencil3d import Stencil3D
from repro.workloads.vecadd import VectorAdd
from repro.workloads.parboil.cp import CoulombicPotential
from repro.workloads.parboil.mrifhd import MriFhd
from repro.workloads.parboil.mriq import MriQ
from repro.workloads.parboil.pns import PetriNet
from repro.workloads.parboil.tpacf import Tpacf

#: (case id, fresh-workload factory) at sizes small enough for CI but
#: large enough to span several coherence blocks.
CASES = [
    ("vecadd", lambda: VectorAdd(elements=1 << 16)),
    ("3d-stencil", lambda: Stencil3D(n=32, steps=8, dump_interval=4)),
    ("cp", lambda: CoulombicPotential(grid_n=96, n_atoms=48)),
    ("mri-q", lambda: MriQ(n_samples=48, n_voxels=65536)),
    ("mri-fhd", lambda: MriFhd(n_samples=4096, n_voxels=64)),
    ("pns", lambda: PetriNet(n_places=65536, iterations=12,
                             sample_interval=4)),
    ("tpacf", lambda: Tpacf(n_points=65536)),
]


def _run(factory, protocol):
    """One sanitized run outside Workload.execute, keeping the outputs."""
    workload = factory()
    app = Application(reference_system())
    workload.prepare(app)
    options = {}
    if protocol == "declared":
        options["protocol_options"] = {
            "modes": dict(type(workload).declared_modes)
        }
    gmac = app.gmac(protocol=protocol, layer="driver", **options)
    sanitizer = attach_sanitizer(
        gmac, context=f"golden:{workload.name}:{protocol}"
    )
    outputs = workload.run_gmac(app, gmac)
    violations = sanitizer.finish(raise_on_violation=False)
    return {
        "outputs": {key: np.asarray(value) for key, value in outputs.items()},
        "to_acc": gmac.bytes_to_accelerator,
        "to_host": gmac.bytes_to_host,
        "violations": violations,
    }


@pytest.mark.parametrize("factory", [f for _, f in CASES],
                         ids=[name for name, _ in CASES])
def test_declared_matches_lazy_bytes_and_never_moves_more(factory):
    lazy = _run(factory, "lazy")
    declared = _run(factory, "declared")
    assert lazy["violations"] == [], [v.rule for v in lazy["violations"]]
    assert declared["violations"] == [], [
        f"{v.rule}: {v.message}" for v in declared["violations"]
    ]
    assert set(declared["outputs"]) == set(lazy["outputs"])
    for key, lazy_value in lazy["outputs"].items():
        assert declared["outputs"][key].tobytes() == lazy_value.tobytes(), (
            f"output {key!r} diverged under the declared protocol"
        )
    assert declared["to_acc"] <= lazy["to_acc"]
    assert declared["to_host"] <= lazy["to_host"]


def test_mriq_staging_window_is_a_strict_win():
    """mri-q's 'none'-mode write-back window never crosses the bus."""
    factory = dict(CASES)["mri-q"]
    lazy = _run(factory, "lazy")
    declared = _run(factory, "declared")
    assert declared["to_host"] < lazy["to_host"]
