"""Golden eager-vs-lazy equivalence for the transfer ledger.

The transfer ledger's contract (DESIGN.md §14): deferring the byte
movement of host<->device transfers — and flushing only dirty-subrange
deltas — is *invisible*.  Every figure, trace, byte of device memory, and
``SpecOutcome`` must be identical to an eager engine memcpying at
transfer time.  This suite pins that contract across all three coherence
protocols, mirrors ``test_deferred_equivalence.py`` for the numerics
engine, and checks the comparison is not vacuous (the lazy runs really
do elide copies).
"""

import pytest

from repro.hw.machine import reference_system
from repro.hw.memory import ledger_counters, reset_ledger_counters
from repro.workloads.parboil import PARBOIL
from repro.workloads.stencil3d import Stencil3D

PROTOCOLS = ("batch", "lazy", "rolling")

#: A transfer-heavy cross-section of the Table-2 workloads, at sizes that
#: keep the full (workload x protocol x 2 engines) matrix fast.
WORKLOADS = {
    "pns": lambda: PARBOIL["pns"](
        n_places=65536, iterations=12, sample_interval=4
    ),
    "cp": lambda: PARBOIL["cp"](grid_n=96, n_atoms=48),
    "mri-q": lambda: PARBOIL["mri-q"](n_samples=48, n_voxels=16384),
    "mri-fhd": lambda: PARBOIL["mri-fhd"](n_samples=4096, n_voxels=64),
    "tpacf": lambda: PARBOIL["tpacf"](n_points=65536),
    "stencil3d": lambda: Stencil3D(n=32, steps=8, dump_interval=4),
}


def _run(factory, protocol, defer):
    reset_ledger_counters()
    machine = reference_system(trace=True, defer_transfers=defer)
    result = factory().execute(
        mode="gmac", protocol=protocol, machine=machine,
        gmac_options={"layer": "driver"},
    )
    machine.gpu.materialize()  # drain numerics before inspecting bytes
    return result, machine, dict(ledger_counters())


def _device_bytes(machine):
    memory = machine.gpu.memory
    return {
        start: allocation.buffer.tobytes()
        for start, allocation in memory._allocations.items()
    }


class TestGoldenEquivalence:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_transfer_ledger_is_invisible(self, name, protocol):
        factory = WORKLOADS[name]
        lazy, l_machine, l_counters = _run(factory, protocol, defer=True)
        eager, e_machine, e_counters = _run(factory, protocol, defer=False)

        assert lazy.verified and eager.verified
        # Virtual time and its Figure-10 decomposition: the ledger charges
        # link cost at transfer time exactly as the eager engine does.
        assert lazy.elapsed == eager.elapsed
        assert lazy.breakdown == eager.breakdown
        # Figure-8 traffic and fault/signal counts (deferred transfers
        # still count toward bytes_moved — only deferred_bytes differs).
        assert lazy.bytes_to_accelerator == eager.bytes_to_accelerator
        assert lazy.bytes_to_host == eager.bytes_to_host
        assert lazy.faults == eager.faults
        assert lazy.signals == eager.signals
        # The full charged-interval trace, event for event.
        assert l_machine.trace.events == e_machine.trace.events
        # Device memory, byte for byte, allocation for allocation.
        assert _device_bytes(l_machine) == _device_bytes(e_machine)
        # Output files, byte for byte.
        assert (lazy.extra["app"].fs._files
                == eager.extra["app"].fs._files)
        # And the comparison is not vacuous: the lazy engine recorded or
        # skipped real bytes, the eager engine never touched the ledger.
        assert (l_counters["bytes_deferred"] > 0
                or l_counters["flush_bytes_skipped"] > 0), l_counters
        assert e_counters["bytes_deferred"] == 0
        assert e_counters["flush_bytes_skipped"] == 0
        assert e_counters["bytes_materialized"] == 0

    def test_ledger_actually_elides_under_batch(self):
        """The headline claim: batch's fetch-everything rounds become
        metadata.  (lazy/rolling only fetch what the host actually reads,
        so they have nothing to elide — their win is the delta flush.)"""
        _, _, counters = _run(WORKLOADS["pns"], "batch", defer=True)
        assert counters["elided_fraction"] > 0.5, counters
        assert counters["transfers_elided"] > 0
        assert counters["flush_bytes_skipped"] > 0


class TestSpecOutcomeEquivalence:
    """Experiment-plane view: identical SpecOutcomes, field for field."""

    def _specs(self):
        from repro.experiments.executor import expand

        specs = expand(["fig7"], quick=True)
        picked, seen = [], set()
        for spec in specs:
            if spec.workload not in seen and spec.mode == "gmac":
                seen.add(spec.workload)
                picked.append(spec)
        return picked

    def test_outcomes_identical(self, monkeypatch):
        import repro.hw.gpu as gpu_module

        for spec in self._specs():
            monkeypatch.setattr(gpu_module, "DEFAULT_DEFER_TRANSFERS", True)
            lazy = spec.execute()
            monkeypatch.setattr(gpu_module, "DEFAULT_DEFER_TRANSFERS", False)
            eager = spec.execute()
            assert lazy == eager, spec.key
            assert lazy.canonical_bytes() == eager.canonical_bytes(), spec.key
