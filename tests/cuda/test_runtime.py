"""The runtime API: lazy init, accounting, synchronization."""

import numpy as np
import pytest

from repro.sim.tracing import Category
from repro.cuda.kernels import Kernel
from repro.cuda.runtime import CudaRuntime


def _inc_fn(gpu, data, n):
    gpu.view(data, "i4", n)[:] += 1


INC = Kernel("inc", _inc_fn, cost=lambda data, n: (n, 8 * n))


@pytest.fixture
def cuda(app):
    return app.cuda()


class TestLazyInit:
    def test_first_call_pays_init(self, app, cuda):
        cuda.cuda_malloc(4096)
        assert app.machine.clock.now >= cuda.init_cost_s

    def test_init_paid_once(self, app, cuda):
        cuda.cuda_malloc(4096)
        after_first = app.machine.clock.now
        cuda.cuda_malloc(4096)
        assert app.machine.clock.now - after_first < cuda.init_cost_s

    def test_init_charged_to_cuda_malloc(self, app, cuda):
        cuda.cuda_malloc(4096)
        assert app.machine.accounting.totals[Category.CUDA_MALLOC] >= (
            cuda.init_cost_s
        )

    def test_custom_init_cost(self, app):
        cuda = app.cuda(init_cost_s=0.5)
        cuda.cuda_malloc(4096)
        assert app.machine.clock.now >= 0.5


class TestAccounting:
    def test_memcpy_charged_as_copy(self, app, cuda):
        host = app.process.malloc(1 << 20)
        dev = cuda.cuda_malloc(1 << 20)
        cuda.cuda_memcpy_h2d(dev, host, 1 << 20)
        assert app.machine.accounting.totals[Category.COPY] > 0

    def test_launch_charged_as_cuda_launch(self, app, cuda):
        dev = cuda.cuda_malloc(64)
        cuda.launch(INC, data=dev, n=4)
        assert app.machine.accounting.totals[Category.CUDA_LAUNCH] > 0

    def test_sync_wait_charged_as_gpu(self, app, cuda):
        dev = cuda.cuda_malloc(1 << 20)
        cuda.launch(INC, data=dev, n=1 << 18)
        cuda.cuda_thread_synchronize()
        assert app.machine.accounting.totals[Category.GPU] > 0

    def test_free_charged(self, app, cuda):
        dev = cuda.cuda_malloc(64)
        cuda.cuda_free(dev)
        assert app.machine.accounting.counts[Category.CUDA_FREE] == 1


class TestSemantics:
    def test_full_pipeline(self, app, cuda):
        n = 1024
        host = app.process.malloc(4 * n)
        host.write_array(np.zeros(n, dtype=np.int32))
        dev = cuda.cuda_malloc(4 * n)
        cuda.cuda_memcpy_h2d(dev, host, 4 * n)
        cuda.launch(INC, data=dev, n=n)
        cuda.cuda_thread_synchronize()
        cuda.cuda_memcpy_d2h(host, dev, 4 * n)
        assert np.array_equal(
            host.read_array("i4", n), np.ones(n, dtype=np.int32)
        )

    def test_cuda_memset(self, cuda):
        dev = cuda.cuda_malloc(64)
        cuda.cuda_memset(dev, 0x11, 64)
        assert cuda.driver.gpu.memory.read(dev, 4) == b"\x11" * 4

    def test_async_memcpy_with_stream(self, app, cuda):
        from repro.cuda.driver import Stream

        stream = Stream()
        host = app.process.malloc(1 << 20)
        dev = cuda.cuda_malloc(1 << 20)
        completion = cuda.cuda_memcpy_h2d_async(dev, host, 1 << 20, stream)
        assert completion.finish > app.machine.clock.now
        back = cuda.cuda_memcpy_d2h_async(host, dev, 1 << 20, stream)
        assert back.start >= completion.issued_at
        cuda.cuda_thread_synchronize()
        assert app.machine.clock.now >= back.finish

    def test_sync_returns_waited_time(self, cuda):
        dev = cuda.cuda_malloc(64)
        cuda.launch(INC, data=dev, n=16)
        waited = cuda.cuda_thread_synchronize()
        assert waited > 0
        # A second sync only pays the driver-call overhead, no GPU wait.
        assert cuda.cuda_thread_synchronize() == pytest.approx(
            cuda.driver.CALL_OVERHEAD_S, abs=1e-6
        )


class TestKernelObject:
    def test_bad_kernel_rejected(self):
        from repro.util.errors import CudaError

        with pytest.raises(CudaError):
            Kernel("bad", None, cost=lambda: (0, 0))

    def test_negative_cost_rejected(self, app, cuda):
        from repro.util.errors import CudaError

        bad = Kernel("neg", _inc_fn, cost=lambda data, n: (-1, 0))
        dev = cuda.cuda_malloc(64)
        with pytest.raises(CudaError):
            cuda.launch(bad, data=dev, n=4)

    def test_writes_annotation_stored(self):
        kernel = Kernel("k", _inc_fn, cost=lambda data, n: (0, 0),
                        writes=("data",))
        assert kernel.writes == frozenset({"data"})

    def test_repr(self):
        assert "inc" in repr(INC)
