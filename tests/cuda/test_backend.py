"""The kernel-numerics backend seam (``REPRO_KERNEL_BACKEND``).

Selection and graceful fallback are pure unit tests; the golden
equivalence class proves the ISSUE acceptance criterion — SpecOutcomes
are byte-identical whether the compiled backend is on or off.  The
container has no numba, so the "on" runs install a stub module whose
``njit`` is the identity decorator: the compiled code paths execute (as
pure Python) without the optional dependency.
"""

import sys
import types
from dataclasses import asdict

import pytest

from repro.cuda import backend
from repro.experiments.spec import RunSpec


@pytest.fixture(autouse=True)
def _fresh_backend():
    backend.reset()
    yield
    backend.reset()


def _stub_numba_module():
    """A minimal numba lookalike: ``njit`` returns the function unchanged."""
    module = types.ModuleType("numba")

    def njit(*args, **kwargs):
        if args and callable(args[0]):
            return args[0]
        return lambda fn: fn

    module.njit = njit
    return module


def _activate_stub(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numba")
    monkeypatch.setitem(sys.modules, "numba", _stub_numba_module())


def _clear_kernel_memos():
    """Drop cross-run kernel memoization.

    The ValueMemos are backend-agnostic byte caches; letting one
    backend's stored outputs satisfy the other's lookups would short-
    circuit exactly the code paths these tests compare.
    """
    from repro.workloads.parboil import cp, mrifhd, mriq, pns, tpacf

    for memo in (
        cp._POTENTIAL_MEMO, mrifhd._FHD_MEMO, mriq._Q_MEMO,
        pns._SWEEP_MEMO, tpacf._HISTOGRAM_MEMO,
    ):
        memo.clear()


class TestSelection:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        assert backend.requested_backend() == "numpy"
        assert backend.active_backend() == "numpy"
        assert backend.compiled("anything", lambda numba: 1) is None

    def test_unknown_backend_is_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "cython")
        with pytest.raises(KeyError):
            backend.requested_backend()

    def test_numba_absent_falls_back_to_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numba")
        # A None sys.modules entry makes ``import numba`` raise
        # ImportError even if the package were installed.
        monkeypatch.setitem(sys.modules, "numba", None)
        assert backend.requested_backend() == "numba"
        assert backend.active_backend() == "numpy"
        assert backend.compiled("anything", lambda numba: 1) is None

    def test_stub_numba_activates_and_builds_once(self, monkeypatch):
        _activate_stub(monkeypatch)
        assert backend.active_backend() == "numba"
        built = []

        def builder(numba):
            built.append(numba)
            return lambda: "routine"

        first = backend.compiled("routine", builder)
        second = backend.compiled("routine", builder)
        assert first is second
        assert callable(first)
        assert len(built) == 1

    def test_failing_builder_demotes_that_routine_only(self, monkeypatch):
        _activate_stub(monkeypatch)
        attempts = []

        def broken(numba):
            attempts.append(1)
            raise RuntimeError("no compiler today")

        assert backend.compiled("broken", broken) is None
        assert backend.compiled("broken", broken) is None
        assert len(attempts) == 1  # recorded, not retried
        assert backend.compiled("fine", lambda numba: min) is min


class TestSpecKey:
    def test_numpy_backend_stays_out_of_the_key(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        spec = RunSpec.make(workload="vecadd", params={"elements": 4096})
        assert spec.backend == "numpy"
        assert '"backend"' not in spec.key()

    def test_numba_backend_joins_the_key(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        numpy_key = RunSpec.make(
            workload="vecadd", params={"elements": 4096}
        ).key()
        _activate_stub(monkeypatch)
        backend.reset()
        spec = RunSpec.make(workload="vecadd", params={"elements": 4096})
        assert spec.backend == "numba"
        assert '"backend": "numba"' in spec.key()
        assert spec.key() != numpy_key


#: Every workload with a registered compiled routine, sized so the stub
#: backend's pure-Python loops stay fast.
COMPILED_WORKLOADS = [
    ("cp", dict(grid_n=64, n_atoms=32)),
    ("mri-q", dict(n_samples=16, n_voxels=8192)),
    ("tpacf", dict(n_points=65536)),
    ("pns", dict(n_places=16384, iterations=16, sample_interval=8)),
]


def _outcome_fields(outcome):
    fields = asdict(outcome)
    # The spec itself names the backend, which differs by construction;
    # everything the experiment tables read must not.
    del fields["spec"]
    return fields


class TestGoldenEquivalence:
    @pytest.mark.parametrize("workload,params", COMPILED_WORKLOADS)
    def test_outcomes_identical_across_backends(
        self, workload, params, monkeypatch
    ):
        def run(expected_backend):
            backend.reset()
            _clear_kernel_memos()
            spec = RunSpec.make(
                workload=workload, params=params,
                protocol="rolling", layer="driver",
            )
            assert spec.backend == expected_backend
            return _outcome_fields(spec.execute())

        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        plain = run("numpy")
        _activate_stub(monkeypatch)
        compiled = run("numba")
        _clear_kernel_memos()
        assert plain["verified"] is True
        assert compiled == plain
