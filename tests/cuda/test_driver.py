"""The driver API: memory, copies, streams, launches."""

import numpy as np
import pytest

from repro.util.errors import CudaError
from repro.util.units import MB
from repro.cuda.driver import DriverContext, Stream
from repro.cuda.kernels import Kernel
from repro.hw.interconnect import Direction


@pytest.fixture
def ctx(app):
    return DriverContext(app.machine, app.process)


def _double_fn(gpu, data, n):
    gpu.view(data, "f4", n)[:] *= np.float32(2.0)


DOUBLE = Kernel("double", _double_fn, cost=lambda data, n: (n, 8 * n))


class TestMemory:
    def test_alloc_free(self, ctx):
        addr = ctx.mem_alloc(4096)
        assert addr in ctx.allocations
        ctx.mem_free(addr)
        assert addr not in ctx.allocations

    def test_free_unknown_rejected(self, ctx):
        with pytest.raises(CudaError):
            ctx.mem_free(0x123)

    def test_driver_calls_cost_cpu_time(self, app, ctx):
        before = app.machine.clock.now
        ctx.mem_alloc(4096)
        assert app.machine.clock.now == pytest.approx(
            before + DriverContext.CALL_OVERHEAD_S
        )


class TestCopies:
    def test_h2d_d2h_roundtrip(self, app, ctx):
        host = app.process.malloc(64)
        host.write_bytes(b"round trip data!")
        dev = ctx.mem_alloc(64)
        ctx.memcpy_h2d(dev, int(host), 16)
        back = app.process.malloc(64)
        ctx.memcpy_d2h(int(back), dev, 16)
        assert back.read_bytes(16) == b"round trip data!"

    def test_sync_copy_blocks_for_transfer_time(self, app, ctx):
        host = app.process.malloc(MB)
        dev = ctx.mem_alloc(MB)
        before = app.machine.clock.now
        ctx.memcpy_h2d(dev, int(host), MB)
        elapsed = app.machine.clock.now - before
        assert elapsed >= app.machine.link.spec.transfer_seconds(MB)

    def test_async_copy_returns_immediately(self, app, ctx):
        host = app.process.malloc(MB)
        dev = ctx.mem_alloc(MB)
        before = app.machine.clock.now
        completion = ctx.memcpy_h2d(dev, int(host), MB, sync=False)
        issue_time = app.machine.clock.now - before
        assert issue_time < app.machine.link.spec.transfer_seconds(MB)
        assert completion.finish > app.machine.clock.now

    def test_async_copy_data_is_snapshot(self, app, ctx):
        """Data moves at issue time: mutating the source afterwards must
        not affect what the device sees (the staging-buffer semantics)."""
        host = app.process.malloc(64)
        host.write_bytes(b"original")
        dev = ctx.mem_alloc(64)
        ctx.memcpy_h2d(dev, int(host), 8, sync=False)
        host.write_bytes(b"mutated!")
        assert ctx.gpu.memory.read(dev, 8) == b"original"

    def test_d2h_ignores_host_protections(self, app, ctx):
        from repro.os.paging import Prot

        mapping = app.process.address_space.mmap(4096, prot=Prot.NONE)
        dev = ctx.mem_alloc(4096)
        ctx.gpu.memory.write(dev, b"dma!")
        ctx.memcpy_d2h(mapping.start, dev, 4)
        assert app.process.address_space.peek(mapping.start, 4) == b"dma!"

    def test_memset_d8(self, ctx):
        dev = ctx.mem_alloc(64)
        ctx.memset_d8(dev, 0xEE, 64)
        assert ctx.gpu.memory.read(dev, 64) == b"\xee" * 64

    def test_memcpy_d2d(self, ctx):
        a = ctx.mem_alloc(64)
        b = ctx.mem_alloc(64)
        ctx.gpu.memory.write(a, b"device-side")
        ctx.memcpy_d2d(b, a, 11)
        assert ctx.gpu.memory.read(b, 11) == b"device-side"

    def test_link_byte_counters(self, app, ctx):
        host = app.process.malloc(4096)
        dev = ctx.mem_alloc(4096)
        ctx.memcpy_h2d(dev, int(host), 4096)
        assert app.machine.link.bytes_moved[Direction.H2D] == 4096


class TestStreamsAndLaunch:
    def test_stream_orders_operations(self, app, ctx):
        stream = Stream("s")
        host = app.process.malloc(MB)
        dev = ctx.mem_alloc(MB)
        first = ctx.memcpy_h2d(dev, int(host), MB, stream=stream, sync=False)
        kernel_completion = ctx.launch(DOUBLE, {"data": dev, "n": 4},
                                       stream=stream)
        assert kernel_completion.start >= first.finish

    def test_launch_executes_numerics_eagerly(self, ctx):
        dev = ctx.mem_alloc(16)
        ctx.gpu.memory.view(dev, "f4", 4)[:] = [1, 2, 3, 4]
        ctx.launch(DOUBLE, {"data": dev, "n": 4})
        assert ctx.gpu.memory.view(dev, "f4", 4).tolist() == [2, 4, 6, 8]

    def test_launch_respects_earliest(self, ctx):
        dev = ctx.mem_alloc(16)
        completion = ctx.launch(DOUBLE, {"data": dev, "n": 4}, earliest=0.5)
        assert completion.start >= 0.5

    def test_synchronize_waits_for_kernels_and_copies(self, app, ctx):
        host = app.process.malloc(MB)
        dev = ctx.mem_alloc(MB)
        copy = ctx.memcpy_h2d(dev, int(host), MB, sync=False)
        kernel = ctx.launch(DOUBLE, {"data": dev, "n": 4})
        ctx.synchronize()
        assert app.machine.clock.now >= max(copy.finish, kernel.finish)

    def test_integrated_machine_transfers_are_free(self, integrated_machine):
        from repro.workloads.base import Application

        app = Application(integrated_machine)
        ctx = DriverContext(integrated_machine, app.process)
        host = app.process.malloc(MB)
        dev = ctx.mem_alloc(MB)
        completion = ctx.memcpy_h2d(dev, int(host), MB)
        assert completion.duration == 0.0
        assert integrated_machine.link.bytes_moved[Direction.H2D] == 0


class TestErrorHygiene:
    """Driver misuse raises precise CudaError subclasses, never bare
    KeyError/AssertionError leaking from the bookkeeping."""

    def test_double_free_raises_invalid_address(self, ctx):
        from repro.util.errors import InvalidDeviceAddressError

        addr = ctx.mem_alloc(4096)
        ctx.mem_free(addr)
        with pytest.raises(InvalidDeviceAddressError) as excinfo:
            ctx.mem_free(addr)
        assert excinfo.value.address == addr
        assert isinstance(excinfo.value, CudaError)

    def test_free_of_unknown_address_raises_invalid_address(self, ctx):
        from repro.util.errors import InvalidDeviceAddressError

        with pytest.raises(InvalidDeviceAddressError):
            ctx.mem_free(0xDEAD000)

    def test_real_oom_is_cuda_and_allocation_error(self, ctx):
        from repro.util.errors import AllocationError, CudaOutOfMemoryError

        with pytest.raises(CudaOutOfMemoryError) as excinfo:
            ctx.mem_alloc(ctx.gpu.spec.memory_bytes + 1)
        assert isinstance(excinfo.value, AllocationError)
        assert isinstance(excinfo.value, CudaError)
        assert not excinfo.value.transient

    def test_every_operation_on_dead_context_raises_device_lost(self, app,
                                                                ctx):
        from repro.util.errors import DeviceLostError

        dev = ctx.mem_alloc(64)
        host = app.process.malloc(64)
        ctx.alive = False
        for operation in (
            lambda: ctx.mem_alloc(64),
            lambda: ctx.mem_alloc_at(0x1000, 64),
            lambda: ctx.memcpy_h2d(dev, int(host), 64),
            lambda: ctx.memcpy_d2h(int(host), dev, 64),
            lambda: ctx.memcpy_d2d(dev, dev, 64),
            lambda: ctx.memset_d8(dev, 0, 64),
            lambda: ctx.launch(DOUBLE, {"data": dev, "n": 4}),
            lambda: ctx.restore_allocation(dev, 64),
        ):
            with pytest.raises(DeviceLostError):
                operation()
