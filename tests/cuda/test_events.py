"""CUDA-style timing events."""

import pytest

from repro.util.errors import CudaError
from repro.cuda.driver import DriverContext, Stream, Event
from repro.cuda.kernels import Kernel


def _spin(gpu, n):
    pass


SPIN = Kernel("spin", _spin, cost=lambda n: (n, 0))


@pytest.fixture
def ctx(app):
    return DriverContext(app.machine, app.process)


class TestEvents:
    def test_record_without_stream_captures_now(self, app):
        event = Event()
        app.machine.clock.advance(1.5)
        assert event.record(app.machine.clock) == 1.5
        assert event.recorded

    def test_record_into_stream_captures_completion(self, app, ctx):
        stream = Stream()
        ctx.launch(SPIN, {"n": 500_000_000}, stream=stream)
        event = Event()
        event.record(app.machine.clock, stream)
        assert event.timestamp == stream.last.finish
        assert event.timestamp > app.machine.clock.now

    def test_synchronize_blocks_until_event(self, app, ctx):
        stream = Stream()
        ctx.launch(SPIN, {"n": 500_000_000}, stream=stream)
        event = Event()
        event.record(app.machine.clock, stream)
        event.synchronize(app.machine.clock)
        assert app.machine.clock.now == event.timestamp

    def test_elapsed_between_events(self, app, ctx):
        stream = Stream()
        start = Event("start")
        start.record(app.machine.clock, stream)
        completion = ctx.launch(SPIN, {"n": 500_000_000}, stream=stream)
        stop = Event("stop")
        stop.record(app.machine.clock, stream)
        elapsed_ms = stop.elapsed_since(start)
        assert elapsed_ms == pytest.approx(
            (completion.finish - start.timestamp) * 1e3
        )
        assert elapsed_ms > 0

    def test_unrecorded_event_errors(self, app):
        event = Event()
        with pytest.raises(CudaError):
            event.synchronize(app.machine.clock)
        other = Event()
        other.record(app.machine.clock)
        with pytest.raises(CudaError):
            other.elapsed_since(event)

    def test_event_pairs_time_gpu_phases(self, app, ctx):
        """The canonical pattern: event - work - event - elapsed."""
        stream = Stream()
        phases = []
        previous = Event()
        previous.record(app.machine.clock, stream)
        for _ in range(3):
            ctx.launch(SPIN, {"n": 100_000_000}, stream=stream)
            marker = Event()
            marker.record(app.machine.clock, stream)
            phases.append(marker.elapsed_since(previous))
            previous = marker
        assert all(p > 0 for p in phases)
        assert phases[1] == pytest.approx(phases[2], rel=0.01)
