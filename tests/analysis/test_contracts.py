"""Static access-mode contracts: inference, cross-check, launch monitor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.contracts import (
    MODES,
    RULE,
    ContractMonitor,
    access_modes,
    check_workload,
    infer_kernel_contract,
    infer_workload_contract,
    join_modes,
    workload_bindings,
)
from repro.cuda.kernels import Kernel
from repro.workloads.vecadd import VECADD, VectorAdd
from repro.workloads.stencil3d import Stencil3D
from repro.workloads.parboil.cp import CoulombicPotential
from repro.workloads.parboil.mrifhd import MriFhd
from repro.workloads.parboil.mriq import MriQ
from repro.workloads.parboil.pns import PetriNet
from repro.workloads.parboil.tpacf import Tpacf

ANNOTATED = [
    VectorAdd, Stencil3D, CoulombicPotential, MriFhd, MriQ, PetriNet, Tpacf,
]


# -- the mode lattice -------------------------------------------------------------


def test_join_identity_and_commutativity():
    for a in MODES:
        assert join_modes(a, a) == a
        assert join_modes("none", a) == a
        assert join_modes(a, "none") == a
        for b in MODES:
            assert join_modes(a, b) == join_modes(b, a)


def test_join_ro_wo_is_rw():
    assert join_modes("ro", "wo") == "rw"
    assert join_modes("rw", "ro") == "rw"


# -- kernel-level inference -------------------------------------------------------


def test_vecadd_kernel_contract():
    contract = infer_kernel_contract(VECADD)
    assert contract.complete
    assert set(contract.params) == {"a", "b", "c"}
    # ``np.add(va, vb, out=vc)`` lets all three views escape into the
    # call, so the inputs stay possible-reads and the output — written
    # per the signature, possibly read per the escape — infers rw.  The
    # workload's stronger ``wo`` declaration survives the cross-check
    # because an escape is not a *proven* read.
    assert contract.modes == {"a": "ro", "b": "ro", "c": "rw"}
    assert contract.escapes == frozenset({"a", "b", "c"})
    assert contract.proven_reads == frozenset()
    assert contract.signature_gaps == frozenset()


def test_augassign_counts_as_read_write():
    def _fn(gpu, accum, n):
        view = gpu.view(accum, "f4", n)
        view[0] += 1.0

    kernel = Kernel("accum", _fn, cost=lambda accum, n: (n, n),
                    writes=("accum",))
    contract = infer_kernel_contract(kernel)
    assert contract.modes == {"accum": "rw"}
    assert "accum" in contract.proven_reads
    assert "accum" in contract.proven_writes


def test_escaping_view_is_treated_as_read():
    def _fn(gpu, data, n):
        view = gpu.view(data, "f4", n)
        float(np.sum(view))

    kernel = Kernel("escape", _fn, cost=lambda data, n: (n, n))
    contract = infer_kernel_contract(kernel)
    # The view flowed into np.sum: possibly read, not provably written.
    assert contract.modes == {"data": "ro"}
    assert "data" in contract.escapes


def test_sourceless_kernel_degrades_to_signature():
    fn = eval("lambda gpu, out, n: None")  # no retrievable source
    kernel = Kernel("opaque", fn, cost=lambda out, n: (n, n), writes=("out",))
    contract = infer_kernel_contract(kernel)
    assert not contract.complete
    assert contract.mode_of("out") == "rw"  # conservative
    assert contract.writes == frozenset({"out"})


# -- workload-level inference and the cross-check ---------------------------------


def test_vecadd_workload_contract():
    assert infer_workload_contract(VectorAdd) == {
        "a": "ro", "b": "ro", "c": "rw",
    }


def test_mriq_staging_buffer_infers_none():
    # mri-q's "out" region is a CPU-side write-back window no kernel ever
    # binds: the strongest claim the declared protocol exploits.
    contract = infer_workload_contract(MriQ)
    assert contract["out"] == "none"
    assert contract["Q"] == "wo"
    assert contract["k-coords"] == "ro"


def test_workload_bindings_resolve_kernel_parameters():
    alloc_names, bindings = workload_bindings(VectorAdd)
    assert set(alloc_names) == {"a", "b", "c"}
    assert {(b.region, b.param) for b in bindings} == {
        ("a", "a"), ("b", "b"), ("c", "c"),
    }
    assert all(b.kernel is VECADD for b in bindings)


@pytest.mark.parametrize("workload_cls", ANNOTATED,
                         ids=lambda cls: cls.name)
def test_every_declared_workload_passes_the_cross_check(workload_cls):
    violations = check_workload(workload_cls)
    assert violations == [], [v.message for v in violations]


@pytest.mark.parametrize("workload_cls", ANNOTATED,
                         ids=lambda cls: cls.name)
def test_declarations_are_sound_against_inference(workload_cls):
    """A declaration may be *stronger* than inference only when inference
    proves the extra freedom (e.g. inferred ro, declared rw is fine; the
    reverse — declaring ro where a kernel writes — must be refuted)."""
    inferred = infer_workload_contract(workload_cls)
    for region, declared in workload_cls.declared_modes.items():
        assert region in inferred
        if declared in ("ro", "none"):
            assert inferred[region] in ("ro", "none"), (
                region, declared, inferred[region]
            )


def test_wrong_declaration_is_refuted_statically():
    @access_modes(a="ro", b="ro", c="ro")  # c is kernel-written!
    class _BadVecadd(VectorAdd):
        pass

    violations = check_workload(_BadVecadd)
    assert any(v.rule == RULE and v.region == "c" for v in violations)


def test_unknown_region_declaration_is_flagged():
    @access_modes(nonexistent="ro")
    class _Phantom(VectorAdd):
        pass

    violations = check_workload(_Phantom)
    assert any(v.region == "nonexistent" for v in violations)


def test_invalid_mode_is_rejected_at_decoration_time():
    from repro.util.errors import ReproError

    with pytest.raises(ReproError):
        access_modes(a="read-only")


# -- the launch-time monitor ------------------------------------------------------


class _FakeClock:
    now = 0.0


class _FakeRegion:
    def __init__(self, name):
        self.name = name


def test_monitor_flags_wrong_launch_and_dedups():
    monitor = ContractMonitor({"c": "ro"}, _FakeClock())
    bindings = {"a": _FakeRegion("a"), "c": _FakeRegion("c")}
    monitor.on_launch(VECADD, bindings)
    monitor.on_launch(VECADD, bindings)  # same launch: no duplicate
    assert len(monitor.violations) == 1
    violation = monitor.violations[0]
    assert violation.rule == RULE
    assert violation.region == "c"
    assert monitor.stats() == {"launches_checked": 2, "violations": 1}


def test_monitor_accepts_correct_declarations():
    monitor = ContractMonitor(dict(VectorAdd.declared_modes), _FakeClock())
    monitor.on_launch(VECADD, {
        "a": _FakeRegion("a"), "b": _FakeRegion("b"), "c": _FakeRegion("c"),
    })
    assert monitor.violations == []


# -- the superset property --------------------------------------------------------
#
# The load-bearing guarantee behind the ``declared`` protocol's transfer
# elision: the *inferred* write set over-approximates what the kernel
# actually mutates, for any input.  Run the real kernel functions against
# an in-memory device model and diff the buffers.


class _ArrayGpu:
    """Minimal device model: ``view`` returns slices of named buffers."""

    def __init__(self, buffers):
        self.buffers = buffers

    def view(self, ptr, dtype, n):
        return self.buffers[ptr].view(dtype)[:n]


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=64),
    data=st.data(),
)
def test_inferred_writes_superset_of_actual_writes(n, data):
    floats = st.floats(min_value=-1e3, max_value=1e3, width=32)
    buffers = {
        name: np.array(
            data.draw(st.lists(floats, min_size=n, max_size=n)),
            dtype=np.float32,
        )
        for name in ("a", "b", "c")
    }
    before = {name: array.copy() for name, array in buffers.items()}
    VECADD.fn(_ArrayGpu(buffers), a="a", b="b", c="c", n=n)
    mutated = {
        name for name, array in buffers.items()
        if not np.array_equal(array, before[name], equal_nan=True)
    }
    contract = infer_kernel_contract(VECADD)
    assert mutated <= set(contract.writes)
    # And the read-only claim really held: inputs are bit-identical.
    for name in ("a", "b"):
        assert np.array_equal(buffers[name], before[name], equal_nan=True)
