"""Seeded-bug harness: every mutation is caught, no clean run flags."""

import pytest

from repro.analysis.mutations import (
    MUTATIONS,
    _scenario_annotated_lazy,
    _scenario_batch,
    _scenario_declared,
    _scenario_lazy,
    _scenario_modelcheck,
    _scenario_rolling,
    run_mutation,
)


@pytest.mark.parametrize(
    "scenario",
    [_scenario_rolling, _scenario_lazy, _scenario_batch,
     _scenario_annotated_lazy, _scenario_declared, _scenario_modelcheck],
    ids=lambda fn: fn.__name__.lstrip("_"),
)
def test_unmutated_scenarios_are_clean(scenario):
    violations = scenario()
    assert violations == [], [
        f"{v.rule}: {v.message}" for v in violations
    ]


@pytest.mark.parametrize(
    "mutation", MUTATIONS, ids=lambda mutation: mutation.name
)
def test_seeded_bug_is_caught_with_the_expected_rule(mutation):
    outcome = run_mutation(mutation)
    assert outcome.caught, (
        f"{mutation.name} escaped: expected one of {mutation.expected}, "
        f"saw {outcome.rules or '()'} {outcome.detail}"
    )


def test_mutations_cover_both_sanitizer_sources():
    """The harness exercises the model checker AND the race detector."""
    race_rules = {"window-access", "window-io", "window-device-observe"}
    expected = {rule for mutation in MUTATIONS for rule in mutation.expected}
    assert expected & race_rules
    assert expected - race_rules  # checker-side rules too


def test_patches_restore_cleanly():
    """After a mutation run the patched classes are back to stock."""
    from repro.core.protocols.rolling import RollingUpdate

    original = RollingUpdate.__dict__["_evict"]
    run_mutation(MUTATIONS[0])
    assert RollingUpdate.__dict__["_evict"] is original
