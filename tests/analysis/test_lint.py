"""Repo-specific lint: every rule fires, every suppression suppresses."""

import os
import textwrap

import repro
from repro.analysis.lint import Finding, lint_file, lint_paths, main


def check(tmp_path, source, relative="module.py"):
    path = tmp_path / os.path.basename(relative)
    path.write_text(textwrap.dedent(source))
    return lint_file(str(path), relative)


def rules(findings):
    return [finding.rule for finding in findings]


class TestRepoIsClean:
    def test_whole_package_lints_clean(self):
        package_root = os.path.dirname(repro.__file__)
        findings = lint_paths([package_root])
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_main_exit_codes(self, tmp_path, capsys):
        package_root = os.path.dirname(repro.__file__)
        assert main([package_root]) == 0
        assert "clean" in capsys.readouterr().out
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "[R003]" in out and "1 finding(s)" in out


class TestR001DeviceInternals:
    def test_locate_outside_hw_flags(self, tmp_path):
        findings = check(tmp_path, "block = gpu.memory._locate(address)\n")
        assert rules(findings) == ["R001"]
        assert "_locate" in findings[0].message

    def test_on_observe_assignment_outside_hw_flags(self, tmp_path):
        findings = check(tmp_path, "memory.on_observe = callback\n")
        assert rules(findings) == ["R001"]

    def test_inside_hw_is_the_implementation(self, tmp_path):
        findings = check(
            tmp_path,
            "block = self._locate(address)\nself.on_observe = hook\n",
            relative="hw/memory.py",
        )
        assert findings == []


class TestR002BytesCopies:
    def test_bytes_of_subscript_flags(self, tmp_path):
        findings = check(tmp_path, "chunk = bytes(view[lo:hi])\n")
        assert rules(findings) == ["R002"]

    def test_plain_bytes_constructor_is_fine(self, tmp_path):
        assert check(tmp_path, "zeros = bytes(64)\n") == []

    def test_bytes_of_whole_view_is_fine(self, tmp_path):
        # Only the subscript form reintroduces the partial copy.
        assert check(tmp_path, "frozen = bytes(view)\n") == []


class TestR003Nondeterminism:
    def test_unseeded_default_rng_flags(self, tmp_path):
        findings = check(tmp_path, "rng = np.random.default_rng()\n")
        assert rules(findings) == ["R003"]

    def test_seeded_default_rng_is_fine(self, tmp_path):
        assert check(tmp_path, "rng = np.random.default_rng(seed)\n") == []

    def test_wall_clock_reads_flag(self, tmp_path):
        source = """\
        start = time.perf_counter()
        stamp = datetime.now()
        """
        assert rules(check(tmp_path, source)) == ["R003", "R003"]

    def test_global_random_state_flags(self, tmp_path):
        findings = check(tmp_path, "jitter = random.uniform(0.0, 1.0)\n")
        assert rules(findings) == ["R003"]

    def test_seeded_random_instance_is_fine(self, tmp_path):
        assert check(tmp_path, "rng = random.Random(17)\n") == []


class TestR004StateBypass:
    def test_state_assignment_outside_core_flags(self, tmp_path):
        findings = check(tmp_path, "block.state = BlockState.DIRTY\n")
        assert rules(findings) == ["R004"]

    def test_states_subscript_write_flags(self, tmp_path):
        findings = check(tmp_path, "table.states[lo:hi] = DIRTY_CODE\n")
        assert rules(findings) == ["R004"]

    def test_table_fill_flags(self, tmp_path):
        findings = check(tmp_path, "region.table.fill(READ_ONLY_CODE)\n")
        assert rules(findings) == ["R004"]

    def test_coherence_core_owns_state(self, tmp_path):
        source = """\
        block.state = BlockState.DIRTY
        self.table.states[lo:hi] = DIRTY_CODE
        table.fill(READ_ONLY_CODE)
        """
        assert check(tmp_path, source,
                     relative="core/protocols/rolling.py") == []

    def test_reading_states_is_not_a_mutation(self, tmp_path):
        assert check(tmp_path, "dirty = table.states[index] == 1\n") == []


class TestR005AdHocPools:
    def test_multiprocessing_pool_flags(self, tmp_path):
        findings = check(tmp_path, "pool = multiprocessing.Pool(4)\n")
        assert rules(findings) == ["R005"]
        assert "ExperimentExecutor" in findings[0].message

    def test_context_pool_flags(self, tmp_path):
        source = 'pool = multiprocessing.get_context("fork").Pool(2)\n'
        assert rules(check(tmp_path, source)) == ["R005"]

    def test_bare_pool_call_flags(self, tmp_path):
        assert rules(check(tmp_path, "with Pool(2) as p:\n    pass\n")) == [
            "R005"
        ]

    def test_executor_engine_owns_pools(self, tmp_path):
        source = "pool = context.Pool(processes=2)\n"
        assert check(
            tmp_path, source, relative="experiments/executor.py"
        ) == []
        assert check(tmp_path, source, relative="experiments/pool.py") == []

    def test_reading_a_pool_attribute_is_fine(self, tmp_path):
        assert check(tmp_path, "size = engine.Pool\n") == []


class TestR006DirectCopies:
    def test_view_pair_copy_flags(self, tmp_path):
        # The pre-ledger salvage idiom: device view into host view.
        source = (
            'space.view(host, "u1", n)[:] = '
            'gpu.memory.view(dev, "u1", n)\n'
        )
        findings = check(tmp_path, source)
        assert rules(findings) == ["R006"]
        assert "copy_h2d/copy_d2h" in findings[0].message

    def test_poke_of_device_read_flags(self, tmp_path):
        source = "space.poke(host, ctx.gpu.memory.read(dev, n))\n"
        assert rules(check(tmp_path, source)) == ["R006"]

    def test_device_write_from_backing_flags(self, tmp_path):
        source = "gpu.memory.write(dev, mapping.backing[lo:hi])\n"
        assert rules(check(tmp_path, source)) == ["R006"]

    def test_peek_view_into_device_fill_flags(self, tmp_path):
        source = (
            "ctx.gpu.memory.write(dev, space.peek_view(host, n))\n"
        )
        assert rules(check(tmp_path, source)) == ["R006"]

    def test_ledger_core_owns_the_copies(self, tmp_path):
        source = "gpu.memory.write(dev, mapping.backing[lo:hi])\n"
        assert check(tmp_path, source, relative="hw/memory.py") == []

    def test_single_plane_statements_are_fine(self, tmp_path):
        assert check(tmp_path, "data = gpu.memory.read(dev, n)\n") == []
        assert check(tmp_path, "space.poke(host, data)\n") == []
        assert check(
            tmp_path, "chunk = mapping.backing[lo:hi].copy()\n"
        ) == []

    def test_numpy_view_casts_are_fine(self, tmp_path):
        # ``array.view("u1")`` on the device side alone is not a copy.
        assert check(
            tmp_path, 'words = gpu.memory.view(dev, "i4", n)\n'
        ) == []


class TestSuppression:
    def test_allow_comment_suppresses_exactly_that_rule(self, tmp_path):
        findings = check(
            tmp_path,
            "chunk = bytes(view[lo:hi])  # sanitizer: allow[R002]\n",
        )
        assert findings == []

    def test_allow_comment_for_another_rule_does_not(self, tmp_path):
        findings = check(
            tmp_path,
            "chunk = bytes(view[lo:hi])  # sanitizer: allow[R003]\n",
        )
        assert rules(findings) == ["R002"]

    def test_syntax_errors_are_reported_not_swallowed(self, tmp_path):
        findings = check(tmp_path, "def broken(:\n")
        assert rules(findings) == ["R000"]

    def test_finding_renders_with_location(self):
        finding = Finding("core/api.py", 12, "R004", "bypass")
        assert str(finding) == "core/api.py:12: [R004] bypass"
