"""Exhaustive protocol model checking: coverage, verdicts, replay."""

import pytest

from repro.analysis.modelcheck import (
    CHECKER_RULES,
    CONFIGS,
    ModelConfig,
    explore,
    main,
    run_all,
    selfcheck,
)

#: Per-configuration floors measured at the saturated default depths;
#: regressions in reachable-state coverage fail here before CI's
#: aggregate --min-states/--min-transitions gate does.
_FLOORS = {
    "batch": (3, 12),
    "lazy": (13, 80),
    "rolling": (28, 196),
    "declared": (8, 52),
    "lazy-2dev": (32, 146),
}


def test_selfcheck_proves_every_rule_fires():
    assert selfcheck() == []


def test_selfcheck_covers_the_full_rule_list():
    # 16 rules, one synthetic minimal stream each — adding a checker rule
    # without a self-check stream fails here, not silently in CI.
    assert len(CHECKER_RULES) == 16
    assert len(set(CHECKER_RULES)) == len(CHECKER_RULES)


def test_configs_cover_all_four_protocols():
    assert {config.protocol for config in CONFIGS} == {
        "batch", "lazy", "rolling", "declared",
    }
    assert any(config.devices > 1 for config in CONFIGS)


@pytest.mark.parametrize("config", CONFIGS, ids=lambda config: config.name)
def test_exploration_is_clean_and_covers_the_floor(config):
    result = explore(config)
    assert result.ok, "\n\n".join(
        counterexample.render()
        for counterexample in result.counterexamples
    )
    min_states, min_transitions = _FLOORS[config.name]
    assert result.states >= min_states
    assert result.transitions >= min_transitions


def test_depth_override_caps_the_search():
    base = CONFIGS[0]
    shallow = explore(ModelConfig(
        base.name, base.protocol, base.actions,
        base.protocol_options, base.devices, depth=1,
    ))
    assert shallow.ok
    assert shallow.transitions <= len(base.actions)


def test_run_all_explores_every_config():
    results = run_all(depth=2)
    assert [r.config.name for r in results] == [c.name for c in CONFIGS]
    assert all(r.ok for r in results)


def test_counterexamples_replay_from_the_event_stream():
    """A seeded protocol bug yields counterexamples that replay exactly."""
    from repro.core.blocks import BlockState
    from repro.core.protocols.lazy import LazyUpdate
    from repro.os.paging import Prot

    saved = LazyUpdate.pre_call

    def _pre_call_skip_flush(self, regions, written=None):
        # The lazy-lost-update seeded bug: release drops dirty blocks.
        for region in regions:
            self.manager.set_region_blocks(
                region, BlockState.INVALID, Prot.NONE
            )

    LazyUpdate.pre_call = _pre_call_skip_flush
    try:
        lazy = next(c for c in CONFIGS if c.name == "lazy")
        result = explore(ModelConfig(
            lazy.name, lazy.protocol, lazy.actions,
            lazy.protocol_options, lazy.devices, depth=3,
        ))
    finally:
        LazyUpdate.pre_call = saved
    assert not result.ok
    counterexample = result.counterexamples[0]
    assert counterexample.violations
    replayed = counterexample.replay()
    assert {v.rule for v in replayed} == {
        v.rule for v in counterexample.violations
    }
    rendered = counterexample.render()
    assert "counterexample [lazy]" in rendered
    assert "event stream:" in rendered


def test_main_enforces_floors(capsys):
    assert main(["--depth", "2", "--min-states", "10"]) == 0
    assert main(["--depth", "2", "--min-states", "1000000"]) == 1
    capsys.readouterr()
