"""Model checker coverage of every chaos scenario.

Fault injection stresses exactly the paths the checker models — retried
DMA, forced evictions, device loss and re-materialisation, protocol
degradation — so each of the five scenarios must run sanitizer-clean:
recovery is only correct if it restores *legal* coherence state, not
merely state that happens to validate.
"""

import os

import pytest

from repro import analysis
from repro.experiments.chaos import SCENARIOS, _spec
from repro.workloads.vecadd import VectorAdd

QUICK_VECADD = dict(elements=256 * 1024)


@pytest.fixture(autouse=True)
def _sanitized():
    previous = os.environ.get(analysis.ENABLE_ENV)
    analysis.enable()
    yield
    if previous is None:
        analysis.disable()
    else:
        os.environ[analysis.ENABLE_ENV] = previous


def test_sanitizer_is_armed_under_the_env_toggle():
    result = VectorAdd(elements=64 * 1024).execute(
        mode="gmac", protocol="rolling",
        gmac_options={"layer": "driver"},
    )
    stats = result.extra["sanitizer"]
    assert stats["events_checked"] > 0
    assert stats["race_faults_screened"] > 0
    assert stats["violations"] == 0 and stats["race_violations"] == 0


@pytest.mark.parametrize(
    "scenario,plan_kwargs,recovery_kwargs", SCENARIOS,
    ids=[scenario for scenario, _, _ in SCENARIOS],
)
def test_chaos_scenario_runs_sanitizer_clean(
    scenario, plan_kwargs, recovery_kwargs
):
    # .execute() directly (not run_spec) so no cached, unsanitized outcome
    # can stand in for the checked run.  SanitizerViolation would
    # propagate out of execute() and fail the test on its own.
    outcome = _spec(
        "vecadd", QUICK_VECADD, plan_kwargs, recovery_kwargs
    ).execute()
    assert outcome.verified
    # Probabilistic scenarios may legitimately inject nothing on a quick
    # run; only device loss is deterministic (device_lost_at_launch=1).
    if plan_kwargs is not None and "device_lost_at_launch" in plan_kwargs:
        assert outcome.injected_faults > 0
        assert outcome.recovery_stats["device_recoveries"] > 0
