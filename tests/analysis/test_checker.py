"""Coherence model checker unit tests: synthetic event streams."""

import pytest

from repro.sim.tracing import CoherenceEvent
from repro.analysis.checker import CoherenceModelChecker


def feed(checker, *events):
    for event in events:
        checker.record(event)
    return [violation.rule for violation in checker.violations]


def ev(kind, region="r", first=0, last=0, state="", detail="", time=0.0):
    return CoherenceEvent(
        kind, time, region=region, first=first, last=last,
        state=state, detail=detail,
    )


def alloc(region="r", blocks=4):
    return ev("alloc", region=region, last=blocks - 1, detail="size=16384")


def transition(state, first=0, last=0, region="r"):
    return ev("transition", region=region, first=first, last=last,
              state=state)


class TestLegalTraces:
    def test_batch_lifecycle_is_clean(self):
        checker = CoherenceModelChecker()
        checker.configure("batch")
        rules = feed(
            checker,
            alloc(blocks=2),
            transition("dirty", last=1),          # on_alloc: CPU owns
            ev("flush", first=0, detail="sync"),  # pre_call flushes...
            ev("flush", first=1, detail="sync"),
            transition("invalid", last=1),        # ...then invalidates
            ev("call", region="", detail="*"),
            ev("fetch", first=0, detail="pending=0"),
            ev("fetch", first=1, detail="pending=0"),
            transition("dirty", last=1),          # post_sync: host owns
            ev("sync", region=""),
            ev("free", region="r", last=1),
        )
        assert rules == []
        assert checker.events_checked == 11

    def test_lazy_fault_driven_readback_is_clean(self):
        checker = CoherenceModelChecker()
        checker.configure("lazy")
        rules = feed(
            checker,
            alloc(blocks=1),
            transition("dirty"),                   # CPU write fault
            ev("flush", first=0, detail="sync"),   # release flushes
            transition("read-only"),
            transition("invalid"),                 # written by the kernel
            ev("call", region="", detail="*"),
            ev("sync", region=""),
            ev("fetch", first=0, detail="pending=0"),  # CPU read fault
            transition("read-only"),
        )
        assert rules == []


class TestTransitionRules:
    def test_dirty_with_stale_host_flags(self):
        checker = CoherenceModelChecker()
        rules = feed(
            checker,
            alloc(blocks=1),
            transition("invalid"),       # kernel output lives on the device
            transition("dirty"),         # claimed dirty without any fetch
        )
        assert rules == ["dirty-stale-host"]

    def test_read_only_with_stale_host_flags(self):
        checker = CoherenceModelChecker()
        rules = feed(
            checker,
            alloc(blocks=1),
            transition("invalid"),
            transition("read-only"),     # promoted without fetching
        )
        assert rules == ["ro-stale-host"]

    def test_read_only_with_stale_device_flags(self):
        checker = CoherenceModelChecker()
        rules = feed(
            checker,
            alloc(blocks=1),
            transition("dirty"),
            transition("read-only"),     # demoted without flushing
        )
        assert rules == ["ro-stale-device"]

    def test_invalidating_unflushed_dirty_block_loses_the_update(self):
        checker = CoherenceModelChecker()
        rules = feed(
            checker,
            alloc(blocks=1),
            transition("dirty"),
            transition("invalid"),       # host writes silently dropped
        )
        assert rules == ["invalid-lost-update"]

    def test_flush_then_invalidate_is_legal(self):
        checker = CoherenceModelChecker()
        rules = feed(
            checker,
            alloc(blocks=1),
            transition("dirty"),
            ev("flush", first=0, detail="sync"),
            transition("invalid"),
        )
        assert rules == []

    def test_adoption_prevents_cascades(self):
        """One bug, one violation: the checker adopts the claim after
        flagging, so downstream legal traffic stays quiet."""
        checker = CoherenceModelChecker()
        rules = feed(
            checker,
            alloc(blocks=1),
            transition("invalid"),
            transition("read-only"),           # BUG: flagged once
            transition("dirty"),               # would re-flag without adopt
            ev("flush", first=0, detail="sync"),
            transition("read-only"),
        )
        assert rules == ["ro-stale-host"]


class TestDataMovement:
    def test_flush_of_stale_host_copy_flags(self):
        checker = CoherenceModelChecker()
        rules = feed(
            checker,
            alloc(blocks=1),
            transition("invalid"),
            ev("flush", first=0, detail="sync"),  # sends stale bytes
        )
        assert rules == ["flush-stale-host"]

    def test_fetch_with_pending_kernels_is_a_barrier_bypass(self):
        checker = CoherenceModelChecker()
        rules = feed(
            checker,
            alloc(blocks=1),
            transition("invalid"),
            ev("fetch", first=0, detail="pending=2"),
        )
        assert rules == ["barrier-bypass"]

    def test_fetch_while_dirty_clobbers_host_writes(self):
        checker = CoherenceModelChecker()
        rules = feed(
            checker,
            alloc(blocks=1),
            transition("dirty"),
            ev("flush", first=0, detail="sync"),
            ev("fetch", first=0, detail="pending=0"),
        )
        assert rules == ["fetch-clobber"]

    def test_bulk_device_op_then_fetch_is_legal(self):
        checker = CoherenceModelChecker()
        rules = feed(
            checker,
            alloc(blocks=1),
            ev("bulk", first=0, detail="memset"),
            ev("fetch", first=0, detail="pending=0"),
            transition("read-only"),
        )
        assert rules == []


class TestRollingRules:
    def test_fifo_eviction_order_enforced(self):
        checker = CoherenceModelChecker()
        checker.configure("rolling")
        rules = feed(
            checker,
            alloc(blocks=4),
            ev("limit", region="", detail="2"),
            transition("dirty", first=0, last=0),
            transition("dirty", first=1, last=1),
            ev("evict", first=1),              # newest first: wrong end
        )
        assert rules == ["evict-order"]

    def test_fifo_head_eviction_is_clean(self):
        checker = CoherenceModelChecker()
        checker.configure("rolling")
        rules = feed(
            checker,
            alloc(blocks=4),
            ev("limit", region="", detail="2"),
            transition("dirty", first=0, last=0),
            transition("dirty", first=1, last=1),
            ev("evict", first=0),
            ev("flush", first=0, detail="eager"),
            transition("read-only", first=0, last=0),
        )
        assert rules == []

    def test_forced_eviction_may_break_fifo_order(self):
        checker = CoherenceModelChecker()
        checker.configure("rolling")
        rules = feed(
            checker,
            alloc(blocks=4),
            ev("limit", region="", detail="2"),
            transition("dirty", first=0, last=0),
            transition("dirty", first=1, last=1),
            ev("evict", first=1, detail="forced"),  # OOM relief: any order
        )
        assert rules == []

    def test_unbounded_dirty_cache_flags(self):
        checker = CoherenceModelChecker()
        checker.configure("rolling")
        events = [alloc(blocks=8), ev("limit", region="", detail="1")]
        events += [
            transition("dirty", first=i, last=i) for i in range(4)
        ]
        rules = feed(checker, *events)
        assert "rolling-bound" in rules


class TestSynchronizationPoints:
    def test_dirty_block_at_call_flags(self):
        checker = CoherenceModelChecker()
        rules = feed(
            checker,
            alloc(blocks=1),
            transition("dirty"),
            ev("call", region="", detail="*"),
        )
        assert rules == ["call-dirty"]

    def test_written_region_left_valid_flags(self):
        checker = CoherenceModelChecker()
        rules = feed(
            checker,
            alloc(region="out", blocks=1),
            ev("call", region="", detail="out"),  # kernel writes "out"
        )
        assert rules == ["call-written-valid"]

    def test_unwritten_region_staying_valid_is_legal(self):
        checker = CoherenceModelChecker()
        rules = feed(
            checker,
            alloc(region="in", blocks=1),
            alloc(region="out", blocks=1),
            transition("invalid", region="out"),
            ev("call", region="", detail="out"),
            ev("fetch", first=0, region="out", detail="pending=0"),
            transition("read-only", region="out"),
        )
        assert rules == []

    def test_batch_sync_with_missing_fetch_flags(self):
        checker = CoherenceModelChecker()
        checker.configure("batch")
        rules = feed(
            checker,
            alloc(blocks=1),
            ev("flush", first=0, detail="sync"),
            transition("invalid"),
            ev("call", region="", detail="*"),
            ev("sync", region=""),          # batch never fetched back
        )
        assert rules == ["sync-missing-fetch"]

    def test_lazy_sync_defers_fetches_legally(self):
        checker = CoherenceModelChecker()
        checker.configure("lazy")
        rules = feed(
            checker,
            alloc(blocks=1),
            ev("flush", first=0, detail="sync"),
            transition("invalid"),
            ev("call", region="", detail="*"),
            ev("sync", region=""),          # lazy faults back on demand
        )
        assert rules == []


class TestRecoveryEvents:
    def test_device_recovery_requires_reflush(self):
        checker = CoherenceModelChecker()
        rules = feed(
            checker,
            alloc(blocks=2),
            ev("protocol", region="", detail="device-recovery"),
            ev("flush", first=0, detail="sync"),
            ev("flush", first=1, detail="sync"),
            transition("read-only", last=1),
        )
        assert rules == []

    def test_skipping_recovery_flush_flags(self):
        checker = CoherenceModelChecker()
        rules = feed(
            checker,
            alloc(blocks=2),
            ev("protocol", region="", detail="device-recovery"),
            transition("read-only", last=1),   # device copies are gone
        )
        assert rules == ["ro-stale-device"]

    def test_protocol_switch_reconfigures(self):
        checker = CoherenceModelChecker()
        checker.configure("rolling")
        feed(checker, ev("protocol", region="", detail="batch"))
        assert checker.protocol == "batch"
        assert len(checker.fifo) == 0


class TestViolationShape:
    def test_violation_carries_location_and_diff(self):
        checker = CoherenceModelChecker()
        feed(
            checker,
            alloc(blocks=8),
            transition("invalid", last=7),
            transition("read-only", first=2, last=6),
        )
        violation = checker.violations[0]
        assert violation.source == "checker"
        assert violation.region == "r"
        assert "2..6 (5 blocks)" in violation.message

    def test_max_violations_caps_the_list(self):
        checker = CoherenceModelChecker(max_violations=3)
        events = [alloc(blocks=1)]
        for _ in range(10):
            events += [transition("invalid"), transition("dirty")]
        feed(checker, *events)
        assert len(checker.violations) == 3
