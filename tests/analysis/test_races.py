"""Kernel-window race detector tests against a live GMAC instance."""

import numpy as np
import pytest

from repro.os.paging import AccessKind
from repro.util.intervals import Interval
from repro.analysis import attach_sanitizer
from repro.analysis.races import HANDLER_NAME, RaceDetector


def fill(ptr, nbytes, value=1.0):
    data = np.full(nbytes // 4, value, dtype=np.float32)
    ptr.write_bytes(memoryview(data).cast("B"))


class TestWindows:
    def test_clean_call_sync_cycle_has_no_violations(
        self, app, gmac_factory, scale_kernel
    ):
        gmac = gmac_factory("lazy")
        sanitizer = attach_sanitizer(gmac, "test")
        data = gmac.alloc(8 * 4096, name="data")
        fill(data, 8 * 4096)
        gmac.call(scale_kernel, data=data, n=8 * 1024, factor=2.0)
        gmac.sync()
        out = np.empty(8 * 4096, dtype=np.uint8)
        data.read_into(out)
        assert sanitizer.finish() == []

    def test_cpu_access_inside_window_flags(
        self, app, gmac_factory, scale_kernel
    ):
        gmac = gmac_factory("lazy")
        sanitizer = attach_sanitizer(gmac, "test")
        data = gmac.alloc(8 * 4096, name="data")
        fill(data, 8 * 4096)
        gmac.call(scale_kernel, data=data, n=8 * 1024, factor=2.0)
        # The racing access: the object is released to the kernel.
        app.process.touch(int(data), 64, AccessKind.WRITE)
        gmac.sync()
        violations = sanitizer.finish(raise_on_violation=False)
        rules = {violation.rule for violation in violations}
        assert "window-access" in rules
        [race] = [v for v in violations if v.rule == "window-access"]
        assert race.region == "data"
        assert "scale" in race.message  # names the in-flight kernel

    def test_window_closes_at_sync(self, app, gmac_factory, scale_kernel):
        gmac = gmac_factory("lazy")
        sanitizer = attach_sanitizer(gmac, "test")
        data = gmac.alloc(8 * 4096, name="data")
        fill(data, 8 * 4096)
        gmac.call(scale_kernel, data=data, n=8 * 1024, factor=2.0)
        gmac.sync()
        # Same access as the racing test, but after the barrier: legal.
        app.process.touch(int(data), 64, AccessKind.WRITE)
        assert sanitizer.finish() == []

    def test_duplicate_flags_are_deduplicated(self, machine):
        detector = RaceDetector(machine.clock)

        class FakeRegion:
            name = "r"
            interval = Interval(0x1000, 0x2000)

        detector.on_call([FakeRegion()], None, "k")
        span = Interval(0x1000, 0x1040)
        detector.notify_io("read", AccessKind.WRITE, span)
        detector.notify_io("read", AccessKind.WRITE, span)
        assert len(detector.violations) == 1  # same rule, region, window

    def test_read_of_kernel_read_object_is_benign(self, machine):
        detector = RaceDetector(machine.clock)

        class In:
            name = "in"
            interval = Interval(0x1000, 0x2000)

        class Out:
            name = "out"
            interval = Interval(0x3000, 0x4000)

        incoming, outgoing = In(), Out()
        detector.on_call([incoming, outgoing], [outgoing], "k")
        # Host READ of an object the kernel only reads: no race.
        detector.notify_io("write", AccessKind.READ, Interval(0x1000, 0x1040))
        assert detector.violations == []
        # Host READ of the kernel's output: torn data.
        detector.notify_io("write", AccessKind.READ, Interval(0x3000, 0x3040))
        assert [v.rule for v in detector.violations] == ["window-io"]

    def test_write_escalation_on_back_to_back_calls(self, machine):
        detector = RaceDetector(machine.clock)

        class Region:
            name = "r"
            interval = Interval(0x1000, 0x2000)

        region = Region()
        detector.on_call([region], [region], "k1")   # written
        detector.on_call([region], [], "k2")         # read-only for k2
        # The stronger claim survives: a host read still races.
        detector.notify_io("write", AccessKind.READ, Interval(0x1000, 0x1010))
        assert [v.rule for v in detector.violations] == ["window-io"]


class TestMediatedPaths:
    def test_internal_paths_suppress_device_observe(self, machine):
        detector = RaceDetector(machine.clock)

        class Region:
            name = "r"
            interval = Interval(0x1000, 0x2000)

        detector.on_call([Region()], None, "k")
        detector.enter_internal()
        detector._observed()
        detector.exit_internal()
        assert detector.violations == []
        detector._observed()  # unmediated: flagged
        assert [v.rule for v in detector.violations] == ["window-device-observe"]

    def test_observe_outside_window_is_legal(self, machine):
        detector = RaceDetector(machine.clock)
        detector._observed()
        assert detector.violations == []


class TestAttachment:
    def test_attach_registers_named_handler_and_detach_releases(
        self, app, gmac_factory
    ):
        gmac = gmac_factory("lazy")
        detector = RaceDetector(app.machine.clock)
        detector.attach(gmac)
        assert gmac.monitor is detector
        assert app.process.signals._names[HANDLER_NAME] == detector._on_signal
        detector.detach()
        assert gmac.monitor is None
        assert HANDLER_NAME not in app.process.signals._names

    def test_second_monitor_collides_on_the_handler_name(
        self, app, gmac_factory
    ):
        gmac = gmac_factory("lazy")
        first = RaceDetector(app.machine.clock)
        first.attach(gmac)
        second = RaceDetector(app.machine.clock)
        with pytest.raises(ValueError, match=HANDLER_NAME):
            second.attach(gmac)
        first.detach()

    def test_monitor_screens_faults_without_claiming(
        self, app, gmac_factory, scale_kernel
    ):
        gmac = gmac_factory("rolling")
        sanitizer = attach_sanitizer(gmac, "test")
        data = gmac.alloc(8 * 4096, name="data")
        fill(data, 8 * 4096)  # write faults flow through the monitor
        assert sanitizer.races.faults_screened > 0
        gmac.call(scale_kernel, data=data, n=8 * 1024, factor=3.0)
        gmac.sync()
        assert sanitizer.finish() == []
