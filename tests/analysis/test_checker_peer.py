"""Model-checker rules for ``peer`` events (cross-device migration)."""

from repro.sim.tracing import CoherenceEvent
from repro.analysis.checker import CoherenceModelChecker


def feed(checker, *events):
    for event in events:
        checker.record(event)
    return [violation.rule for violation in checker.violations]


def ev(kind, region="r", first=0, last=0, state="", detail="", time=0.0):
    return CoherenceEvent(
        kind, time, region=region, first=first, last=last,
        state=state, detail=detail,
    )


def alloc(region="r", blocks=4):
    return ev("alloc", region=region, last=blocks - 1, detail="size=16384")


def transition(state, first=0, last=0, region="r"):
    return ev("transition", region=region, first=first, last=last,
              state=state)


class TestPeerDma:
    def test_dma_migration_of_valid_device_copies_is_clean(self):
        checker = CoherenceModelChecker()
        checker.configure("rolling")
        rules = feed(
            checker,
            alloc(blocks=2),
            transition("invalid", last=1),       # device copy canonical
            ev("peer", first=0, last=1, detail="dma:0->1"),
        )
        assert rules == []

    def test_dma_from_a_recovered_device_loses_data(self):
        """After device-recovery every device copy is gone by fiat; a DMA
        migration of an INVALID (device-canonical) block moves garbage."""
        checker = CoherenceModelChecker()
        checker.configure("rolling")
        rules = feed(
            checker,
            alloc(blocks=2),
            transition("invalid", last=1),
            ev("protocol", region="", detail="device-recovery"),
            ev("peer", first=0, last=1, detail="dma:0->1"),
        )
        assert rules == ["peer-lost-data"]

    def test_dma_adopts_the_device_copy_for_invalid_blocks(self):
        checker = CoherenceModelChecker()
        checker.configure("rolling")
        feed(
            checker,
            alloc(blocks=1),
            transition("invalid"),
            ev("protocol", region="", detail="device-recovery"),
            ev("peer", detail="dma:0->1"),
        )
        # Adoption: a later fetch of the migrated block is legal again.
        rules_after = feed(checker, ev("fetch", first=0, detail="pending=0"))
        assert "fetch-stale-device" not in rules_after[1:]


class TestPeerHostReroute:
    def test_host_reroute_of_host_canonical_region_is_clean(self):
        checker = CoherenceModelChecker()
        checker.configure("rolling")
        rules = feed(
            checker,
            alloc(blocks=2),
            transition("dirty", last=1),          # host copy canonical
            ev("peer", first=0, last=1, detail="host:0->2"),
            transition("read-only", last=1),      # both copies now valid
        )
        assert rules == []

    def test_host_reroute_with_stale_host_copy_is_flagged(self):
        checker = CoherenceModelChecker()
        checker.configure("rolling")
        rules = feed(
            checker,
            alloc(blocks=2),
            transition("invalid", last=1),        # host copy is stale
            ev("peer", first=0, last=1, detail="host:1->2"),
        )
        assert rules == ["peer-stale-host"]

    def test_unknown_region_is_ignored(self):
        checker = CoherenceModelChecker()
        checker.configure("rolling")
        rules = feed(
            checker,
            ev("peer", region="ghost", detail="dma:0->1"),
        )
        assert rules == []
