"""Exception hierarchy for the reproduction.

Every error raised by the simulated hardware, OS, CUDA layer or GMAC is a
subclass of :class:`ReproError`, so callers can catch the whole family with
one clause while tests can assert on precise subclasses.
"""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class AddressError(ReproError):
    """An address is outside any mapping or otherwise malformed."""


class AllocationError(ReproError):
    """An allocator could not satisfy a request (OOM, bad size, collision)."""


class ProtectionError(ReproError):
    """An mprotect-style request was malformed (unaligned, unmapped)."""


class SegmentationFault(ReproError):
    """An unhandled access violation.

    Raised when the simulated MMU detects an access that violates page
    protections and no signal handler is registered (or the handler did not
    repair the protections, so the retried access faults again).
    """

    def __init__(self, address, access, message=""):
        self.address = address
        self.access = access
        detail = message or f"{access} access to {address:#x}"
        super().__init__(f"segmentation fault: {detail}")


class IoError(ReproError):
    """A simulated filesystem or libc I/O operation failed."""


class CudaError(ReproError):
    """An error from the simulated CUDA driver or runtime."""


class GmacError(ReproError):
    """An error from the GMAC library itself (bad pointer, double free...)."""


class FaultedError:
    """Mixin for errors produced at a fault-injection point.

    Carries the virtual timestamp at which the fault surfaced and the name
    of the resource involved (a link direction, a GPU, a disk), so recovery
    code and tests can reason about *when* and *where* things failed.  Not
    a :class:`ReproError` itself — concrete classes mix it into the
    existing family so current ``except`` clauses keep working.
    """

    def _stamp(self, timestamp, resource):
        self.timestamp = timestamp
        self.resource = resource


class TransferError(FaultedError, CudaError):
    """A DMA attempt over the CPU<->accelerator link failed.

    Transient by default: the failed attempt occupied the link for its full
    duration (the engine aborts at completion), and a retry may succeed.
    """

    def __init__(self, message, direction=None, size=None, timestamp=None,
                 resource=None, transient=True):
        super().__init__(message)
        self.direction = direction
        self.size = size
        self.transient = transient
        self._stamp(timestamp, resource)


class LaunchError(FaultedError, CudaError):
    """A kernel launch was rejected by the driver (transient)."""

    def __init__(self, message, kernel=None, timestamp=None, resource=None):
        super().__init__(message)
        self.kernel = kernel
        self._stamp(timestamp, resource)


class DeviceLostError(FaultedError, CudaError):
    """The accelerator fell off the bus; its context and memory are gone.

    Every later operation on the dead context raises this too, until the
    driver context is revived (a device reset).  Recovery is possible in
    ADSM precisely because the CPU side holds all coherence state: the
    host-canonical blocks can be replayed into a fresh context.
    """

    def __init__(self, message, timestamp=None, resource=None, device=None):
        super().__init__(message)
        #: Index of the lost device on its machine (None on single-device
        #: configurations that predate multi-accelerator support).
        self.device = device
        self._stamp(timestamp, resource)


class CudaOutOfMemoryError(FaultedError, CudaError, AllocationError):
    """cudaMalloc failed (device memory exhausted, or an injected OOM).

    Subclasses both :class:`CudaError` and :class:`AllocationError` so
    callers catching either family keep working.
    """

    def __init__(self, message, size=None, timestamp=None, resource=None,
                 transient=False):
        super().__init__(message)
        self.size = size
        self.transient = transient
        self._stamp(timestamp, resource)


class InvalidDeviceAddressError(CudaError):
    """cuMemFree of an address that is unknown or already freed."""

    def __init__(self, message, address=None, timestamp=None, resource=None):
        super().__init__(message)
        self.address = address
        self.timestamp = timestamp
        self.resource = resource


class RetryExhaustedError(FaultedError, ReproError):
    """Bounded retry gave up: the underlying fault kept recurring."""

    def __init__(self, message, attempts=None, last_error=None,
                 timestamp=None, resource=None):
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error
        self._stamp(timestamp, resource)


class RecoveryExhausted(RetryExhaustedError):
    """The recovery machinery itself gave up (device losses, failovers).

    Subclasses :class:`RetryExhaustedError` so existing ``except`` clauses
    keep working, but is pickle-safe by construction: experiment workers
    run in fork pools, and chaos/failover reports surface this error
    across the pool boundary, so reduction drops the (possibly live,
    unpicklable) ``last_error`` chain and keeps only plain data.
    """

    def __reduce__(self):
        return (
            _rebuild_recovery_exhausted,
            (self.args[0] if self.args else "", self.attempts,
             self.timestamp, self.resource),
        )


def _rebuild_recovery_exhausted(message, attempts, timestamp, resource):
    return RecoveryExhausted(
        message, attempts=attempts, timestamp=timestamp, resource=resource
    )
