"""Exception hierarchy for the reproduction.

Every error raised by the simulated hardware, OS, CUDA layer or GMAC is a
subclass of :class:`ReproError`, so callers can catch the whole family with
one clause while tests can assert on precise subclasses.
"""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class AddressError(ReproError):
    """An address is outside any mapping or otherwise malformed."""


class AllocationError(ReproError):
    """An allocator could not satisfy a request (OOM, bad size, collision)."""


class ProtectionError(ReproError):
    """An mprotect-style request was malformed (unaligned, unmapped)."""


class SegmentationFault(ReproError):
    """An unhandled access violation.

    Raised when the simulated MMU detects an access that violates page
    protections and no signal handler is registered (or the handler did not
    repair the protections, so the retried access faults again).
    """

    def __init__(self, address, access, message=""):
        self.address = address
        self.access = access
        detail = message or f"{access} access to {address:#x}"
        super().__init__(f"segmentation fault: {detail}")


class IoError(ReproError):
    """A simulated filesystem or libc I/O operation failed."""


class CudaError(ReproError):
    """An error from the simulated CUDA driver or runtime."""


class GmacError(ReproError):
    """An error from the GMAC library itself (bad pointer, double free...)."""
