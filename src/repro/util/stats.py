"""Summary statistics over repeated experiment runs.

The paper runs each benchmark 16 times and reports averages; our virtual-time
simulator is deterministic per seed, so experiments run a small number of
seeded repetitions and report the same aggregate shape.
"""

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class RunStats:
    """Mean / stdev / extrema of a sequence of measurements."""

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float

    @property
    def relative_stdev(self):
        if self.mean == 0:
            return 0.0
        return self.stdev / abs(self.mean)

    def __str__(self):
        return (
            f"mean={self.mean:.6g} stdev={self.stdev:.3g} "
            f"min={self.minimum:.6g} max={self.maximum:.6g} n={self.count}"
        )


def summarize(values):
    """Compute :class:`RunStats` for a non-empty sequence of numbers."""
    values = list(values)
    if not values:
        raise ValueError("cannot summarize an empty sequence")
    count = len(values)
    mean = sum(values) / count
    if count > 1:
        variance = sum((v - mean) ** 2 for v in values) / (count - 1)
    else:
        variance = 0.0
    return RunStats(
        count=count,
        mean=mean,
        stdev=math.sqrt(variance),
        minimum=min(values),
        maximum=max(values),
    )


def geometric_mean(values):
    """Geometric mean, the conventional aggregate for slow-down ratios."""
    values = list(values)
    if not values:
        raise ValueError("cannot take the geometric mean of nothing")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    log_sum = sum(math.log(v) for v in values)
    return math.exp(log_sum / len(values))
