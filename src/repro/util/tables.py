"""ASCII rendering of experiment output.

Every experiment module produces rows of labelled series; these helpers
render them as aligned tables so ``python -m repro.experiments figN``
prints something directly comparable to the paper's figure/table.
"""


def render_table(headers, rows, title=None):
    """Render a list-of-rows table with aligned columns.

    ``rows`` may contain any objects; they are str()-ed.  Numeric cells are
    right-aligned, text cells left-aligned.
    """
    rendered_rows = [[_render_cell(cell) for cell in row] for row in rows]
    columns = len(headers)
    for row in rendered_rows:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells, expected {columns}: {row}"
            )
    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells, alignments):
        parts = []
        for cell, width, align in zip(cells, widths, alignments):
            parts.append(cell.rjust(width) if align == ">" else cell.ljust(width))
        return "  ".join(parts).rstrip()

    alignments = _column_alignments(rows, columns)
    lines = []
    if title:
        lines.append(title)
    lines.append(format_row([str(h) for h in headers], ["<"] * columns))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(format_row(row, alignments))
    return "\n".join(lines)


def _column_alignments(rows, columns):
    alignments = []
    for col in range(columns):
        numeric = all(
            isinstance(row[col], (int, float)) for row in rows if col < len(row)
        ) and bool(rows)
        alignments.append(">" if numeric else "<")
    return alignments


def _render_cell(cell):
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.001:
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)


def render_series(name, xs, ys, x_label="x", y_label="y"):
    """Render one (x, y) series as a two-column table."""
    rows = list(zip(xs, ys))
    return render_table([x_label, y_label], rows, title=name)
