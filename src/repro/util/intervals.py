"""Half-open address intervals and an ordered, non-overlapping range map.

Addresses in the simulated machine are plain integers.  ``Interval(a, b)``
covers ``[a, b)``; the :class:`RangeMap` keeps disjoint intervals sorted by
start address and answers "which mapping contains address X" queries, which
is what the simulated OS needs for its region table and what GMAC needs for
its shared-object list.
"""

import bisect
from dataclasses import dataclass

from repro.util.errors import AddressError


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open interval ``[start, end)`` of integer addresses."""

    start: int
    end: int

    def __post_init__(self):
        if self.end < self.start:
            raise ValueError(f"interval end {self.end:#x} < start {self.start:#x}")

    @classmethod
    def sized(cls, start, size):
        """Build an interval from a start address and a byte size."""
        return cls(start, start + size)

    @property
    def size(self):
        return self.end - self.start

    def __bool__(self):
        return self.end > self.start

    def contains(self, address):
        return self.start <= address < self.end

    def contains_interval(self, other):
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other):
        return self.start < other.end and other.start < self.end

    def intersection(self, other):
        """The overlapping part of two intervals, or an empty interval."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if end <= start:
            return Interval(start, start)
        return Interval(start, end)

    def split_chunks(self, chunk_size):
        """Yield consecutive sub-intervals of at most ``chunk_size`` bytes.

        This is the access pattern GMAC's I/O interposition uses: an
        operation over a shared object proceeds in block-sized pieces.
        """
        if chunk_size <= 0:
            raise ValueError(f"chunk size must be positive, got {chunk_size}")
        cursor = self.start
        while cursor < self.end:
            upper = min(cursor + chunk_size, self.end)
            yield Interval(cursor, upper)
            cursor = upper

    def aligned_chunks(self, chunk_size):
        """Yield sub-intervals cut at ``chunk_size``-aligned boundaries.

        Unlike :meth:`split_chunks`, cuts happen at absolute multiples of
        ``chunk_size`` so the pieces line up with memory-block boundaries
        even when the interval itself starts mid-block.
        """
        if chunk_size <= 0:
            raise ValueError(f"chunk size must be positive, got {chunk_size}")
        cursor = self.start
        while cursor < self.end:
            boundary = (cursor // chunk_size + 1) * chunk_size
            upper = min(boundary, self.end)
            yield Interval(cursor, upper)
            cursor = upper

    def __str__(self):
        return f"[{self.start:#x}, {self.end:#x})"


class RangeMap:
    """Disjoint intervals sorted by start address, each carrying a value.

    Supports O(log n) insertion, deletion and containing-interval lookup.
    Raises :class:`AddressError` on overlapping insertions so bugs in the
    allocators surface immediately instead of silently corrupting state.
    """

    def __init__(self):
        self._starts = []
        self._entries = []  # parallel list of (Interval, value)

    def __len__(self):
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def intervals(self):
        return [interval for interval, _ in self._entries]

    def values(self):
        return [value for _, value in self._entries]

    def add(self, interval, value):
        """Insert ``interval -> value``; the interval must not overlap."""
        if not interval:
            raise ValueError("cannot add an empty interval")
        index = bisect.bisect_right(self._starts, interval.start)
        if index > 0 and self._entries[index - 1][0].overlaps(interval):
            raise AddressError(
                f"interval {interval} overlaps {self._entries[index - 1][0]}"
            )
        if index < len(self._entries) and self._entries[index][0].overlaps(interval):
            raise AddressError(
                f"interval {interval} overlaps {self._entries[index][0]}"
            )
        self._starts.insert(index, interval.start)
        self._entries.insert(index, (interval, value))

    def remove(self, start):
        """Remove and return the (interval, value) starting at ``start``."""
        index = bisect.bisect_left(self._starts, start)
        if index == len(self._starts) or self._starts[index] != start:
            raise AddressError(f"no interval starts at {start:#x}")
        self._starts.pop(index)
        return self._entries.pop(index)

    def find(self, address):
        """Return the (interval, value) containing ``address`` or None."""
        index = bisect.bisect_right(self._starts, address)
        if index == 0:
            return None
        interval, value = self._entries[index - 1]
        if interval.contains(address):
            return (interval, value)
        return None

    def find_exact(self, start):
        """Return the (interval, value) starting exactly at ``start``."""
        index = bisect.bisect_left(self._starts, start)
        if index == len(self._starts) or self._starts[index] != start:
            return None
        return self._entries[index]

    def overlapping(self, interval):
        """Return all (interval, value) pairs overlapping ``interval``."""
        if not interval:
            return []
        index = bisect.bisect_right(self._starts, interval.start)
        if index > 0:
            index -= 1
        result = []
        while index < len(self._entries):
            candidate, value = self._entries[index]
            if candidate.start >= interval.end:
                break
            if candidate.overlaps(interval):
                result.append((candidate, value))
            index += 1
        return result

    def find_gap(self, size, low, high, alignment=1):
        """Find the lowest aligned free range of ``size`` inside [low, high).

        Used by the simulated OS to place non-fixed mmaps and by the device
        memory allocator tests as an oracle.
        """
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")

        def align_up(value):
            return (value + alignment - 1) // alignment * alignment

        cursor = align_up(low)
        for interval, _ in self._entries:
            if interval.end <= cursor:
                continue
            if interval.start >= high:
                break
            if interval.start - cursor >= size:
                return Interval.sized(cursor, size)
            cursor = max(cursor, align_up(interval.end))
        if high - cursor >= size:
            return Interval.sized(cursor, size)
        return None
