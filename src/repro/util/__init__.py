"""Shared utility substrate for the GMAC/ADSM reproduction.

This package holds the pieces that every other subsystem leans on:

* :mod:`repro.util.errors` -- the exception hierarchy,
* :mod:`repro.util.units` -- byte/time unit helpers (``KB``, ``MB``, ...),
* :mod:`repro.util.intervals` -- half-open address intervals and range maps,
* :mod:`repro.util.avltree` -- the balanced binary tree the paper uses as
  the shared-memory manager's block index,
* :mod:`repro.util.stats` -- summary statistics over repeated runs,
* :mod:`repro.util.tables` -- ASCII rendering of experiment tables/series.
"""

from repro.util.errors import (
    ReproError,
    AddressError,
    AllocationError,
    ProtectionError,
    SegmentationFault,
    IoError,
    CudaError,
    GmacError,
)
from repro.util.units import KB, MB, GB, parse_size, format_size, format_time
from repro.util.intervals import Interval, RangeMap
from repro.util.avltree import AvlTree
from repro.util.stats import RunStats, summarize

__all__ = [
    "ReproError",
    "AddressError",
    "AllocationError",
    "ProtectionError",
    "SegmentationFault",
    "IoError",
    "CudaError",
    "GmacError",
    "KB",
    "MB",
    "GB",
    "parse_size",
    "format_size",
    "format_time",
    "Interval",
    "RangeMap",
    "AvlTree",
    "RunStats",
    "summarize",
]
