"""A self-balancing (AVL) binary search tree keyed by integer address.

The paper (Section 5.2) states that GMAC "keeps memory blocks in a balanced
binary tree, which requires O(log2(n)) operations to locate a given block",
and that with small block sizes this search time becomes the dominant
page-fault overhead.  The shared-memory manager uses this tree as its block
index, and the fault cost model charges ``t_base + t_node * height`` per
lookup so Figure 11's small-block penalty is reproduced from the same data
structure the paper used.
"""


class _Node:
    __slots__ = ("key", "value", "left", "right", "height")

    def __init__(self, key, value):
        self.key = key
        self.value = value
        self.left = None
        self.right = None
        self.height = 1


def _height(node):
    return node.height if node is not None else 0


def _update(node):
    node.height = 1 + max(_height(node.left), _height(node.right))


def _balance_factor(node):
    return _height(node.left) - _height(node.right)


def _rotate_right(node):
    pivot = node.left
    node.left = pivot.right
    pivot.right = node
    _update(node)
    _update(pivot)
    return pivot


def _rotate_left(node):
    pivot = node.right
    node.right = pivot.left
    pivot.left = node
    _update(node)
    _update(pivot)
    return pivot


def _rebalance(node):
    _update(node)
    balance = _balance_factor(node)
    if balance > 1:
        if _balance_factor(node.left) < 0:
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if balance < -1:
        if _balance_factor(node.right) > 0:
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


class AvlTree:
    """Map from integer keys to values with ordered floor/ceiling queries.

    The tree counts comparisons performed by lookups (``search_steps``) so
    the GMAC fault handler can convert tree work into virtual time.
    """

    def __init__(self):
        self._root = None
        self._size = 0
        self.search_steps = 0

    def __len__(self):
        return self._size

    def __contains__(self, key):
        return self.get(key, default=None) is not None or self._has_key(key)

    @property
    def height(self):
        return _height(self._root)

    def clear(self):
        self._root = None
        self._size = 0

    def insert(self, key, value):
        """Insert or replace ``key -> value``."""
        self._root, added = self._insert(self._root, key, value)
        if added:
            self._size += 1

    def _insert(self, node, key, value):
        if node is None:
            return _Node(key, value), True
        if key == node.key:
            node.value = value
            return node, False
        if key < node.key:
            node.left, added = self._insert(node.left, key, value)
        else:
            node.right, added = self._insert(node.right, key, value)
        return _rebalance(node), added

    def delete(self, key):
        """Remove ``key``; raise KeyError if absent."""
        self._root, removed = self._delete(self._root, key)
        if not removed:
            raise KeyError(key)
        self._size -= 1

    def _delete(self, node, key):
        if node is None:
            return None, False
        if key < node.key:
            node.left, removed = self._delete(node.left, key)
        elif key > node.key:
            node.right, removed = self._delete(node.right, key)
        else:
            removed = True
            if node.left is None:
                return node.right, True
            if node.right is None:
                return node.left, True
            successor = node.right
            while successor.left is not None:
                successor = successor.left
            node.key = successor.key
            node.value = successor.value
            node.right, _ = self._delete(node.right, successor.key)
        return _rebalance(node), removed

    def get(self, key, default=None):
        """Exact lookup, counting comparison steps."""
        node = self._root
        while node is not None:
            self.search_steps += 1
            if key == node.key:
                return node.value
            node = node.left if key < node.key else node.right
        return default

    def _has_key(self, key):
        node = self._root
        while node is not None:
            if key == node.key:
                return True
            node = node.left if key < node.key else node.right
        return False

    def floor(self, key):
        """Return (k, v) with the largest k <= key, or None.

        This is the lookup the fault handler performs: blocks are keyed by
        start address, and the block containing a faulting address is the
        floor entry.
        """
        node = self._root
        best = None
        while node is not None:
            self.search_steps += 1
            if node.key == key:
                return (node.key, node.value)
            if node.key < key:
                best = (node.key, node.value)
                node = node.right
            else:
                node = node.left
        return best

    def floor_steps(self, key):
        """Like :meth:`floor`, but returns ``((k, v) or None, steps)``
        without touching the shared ``search_steps`` counter.

        The GMAC manager uses this to *sample* the Section 5.2 search cost
        of the balanced tree — the step counts are cached in flat per-region
        arrays, so the fault hot path charges the exact tree cost without
        re-walking the tree (see ``Manager._fault_steps_for``).
        """
        node = self._root
        best = None
        steps = 0
        while node is not None:
            steps += 1
            if node.key == key:
                return (node.key, node.value), steps
            if node.key < key:
                best = (node.key, node.value)
                node = node.right
            else:
                node = node.left
        return best, steps

    def ceiling(self, key):
        """Return (k, v) with the smallest k >= key, or None."""
        node = self._root
        best = None
        while node is not None:
            self.search_steps += 1
            if node.key == key:
                return (node.key, node.value)
            if node.key > key:
                best = (node.key, node.value)
                node = node.left
            else:
                node = node.right
        return best

    def min_item(self):
        node = self._root
        if node is None:
            return None
        while node.left is not None:
            node = node.left
        return (node.key, node.value)

    def max_item(self):
        node = self._root
        if node is None:
            return None
        while node.right is not None:
            node = node.right
        return (node.key, node.value)

    def items(self):
        """Yield (key, value) in ascending key order."""
        stack = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield (node.key, node.value)
            node = node.right

    def keys(self):
        for key, _ in self.items():
            yield key

    def values(self):
        for _, value in self.items():
            yield value

    def check_invariants(self):
        """Validate BST ordering and AVL balance; used by property tests."""
        def walk(node, low, high):
            if node is None:
                return 0
            if not (low < node.key < high):
                raise AssertionError(f"BST order violated at key {node.key}")
            left = walk(node.left, low, node.key)
            right = walk(node.right, node.key, high)
            if abs(left - right) > 1:
                raise AssertionError(f"AVL balance violated at key {node.key}")
            height = 1 + max(left, right)
            if node.height != height:
                raise AssertionError(f"stale height at key {node.key}")
            return height

        walk(self._root, float("-inf"), float("inf"))
