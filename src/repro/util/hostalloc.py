"""Host allocator tuning for repeated simulation runs.

Every simulated machine allocates tens of megabytes of numpy backing
stores (mapping backings, device heaps, staging buffers) and frees them
when the run ends.  glibc serves buffers this large via ``mmap`` and
returns them to the kernel on ``free``, so every run re-pays minor page
faults for its whole working set — measured at ~20 ms per vector-add
run, the single largest host-time cost in the hot-path benchmark.

:func:`retain_arena` flips the allocator to keep those pages resident:
``mallopt(M_MMAP_MAX, 0)`` routes large allocations through the main
arena and ``mallopt(M_TRIM_THRESHOLD, INT_MAX)`` stops the arena top
from being trimmed back.  After the first run warms the arena, repeat
runs touch only warm pages.  The switch is process-wide, idempotent,
inherited by forked workers, and silently unavailable off glibc;
``REPRO_RETAIN_ARENA=0`` disables it.
"""

import ctypes
import os

# glibc mallopt parameter numbers (malloc.h).
_M_TRIM_THRESHOLD = -1
_M_MMAP_MAX = -4

_applied = False


def arena_retained():
    """Whether the retained-arena tuning is in effect in this process.

    Forked pool workers inherit the parent's already-tuned allocator (the
    mallopt switches are process state), so this reads True there without
    a further call; spawned workers start cold and must call
    :func:`retain_arena` themselves.  Benchmark environment stamps record
    this so timings are comparable only against like configurations.
    """
    return _applied


def retain_arena():
    """Keep freed large buffers in the malloc arena (glibc only).

    Returns True when the tuning is (already) in effect, False when it
    is disabled via ``REPRO_RETAIN_ARENA=0`` or unavailable on this
    platform.  Safe to call any number of times.
    """
    global _applied
    if _applied:
        return True
    if os.environ.get("REPRO_RETAIN_ARENA", "1") == "0":
        return False
    try:
        libc = ctypes.CDLL(None)
        ok_trim = libc.mallopt(_M_TRIM_THRESHOLD, ctypes.c_int(2**31 - 1))
        ok_mmap = libc.mallopt(_M_MMAP_MAX, 0)
    except (OSError, AttributeError):
        return False
    _applied = bool(ok_trim) and bool(ok_mmap)
    return _applied
