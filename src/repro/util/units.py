"""Byte-size and time helpers.

The paper quotes sizes as 4KB..32MB memory blocks and volumes such as
384x384x384 floats; experiments sweep over human-readable size strings.
"""

import re

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

_SUFFIXES = {
    "": 1,
    "B": 1,
    "KB": KB,
    "MB": MB,
    "GB": GB,
}

_SIZE_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*([KMG]?B?)\s*$", re.IGNORECASE)


def parse_size(text):
    """Parse a human-readable size ("256KB", "4 MB", "32mb") into bytes.

    Integers pass through unchanged so APIs can accept either form.
    """
    if isinstance(text, (int,)):
        if text < 0:
            raise ValueError(f"negative size: {text}")
        return text
    match = _SIZE_RE.match(str(text))
    if not match:
        raise ValueError(f"unparseable size: {text!r}")
    value, suffix = match.groups()
    factor = _SUFFIXES[suffix.upper()]
    result = float(value) * factor
    if not result.is_integer():
        raise ValueError(f"size {text!r} is not a whole number of bytes")
    return int(result)


def format_size(nbytes):
    """Render a byte count the way the paper labels its axes (4KB, 32MB)."""
    if nbytes < 0:
        raise ValueError(f"negative size: {nbytes}")
    for factor, suffix in ((GB, "GB"), (MB, "MB"), (KB, "KB")):
        if nbytes >= factor and nbytes % factor == 0:
            return f"{nbytes // factor}{suffix}"
        if nbytes >= factor:
            return f"{nbytes / factor:.1f}{suffix}"
    return f"{nbytes}B"


def format_time(seconds):
    """Render a virtual-time duration with a sensible unit."""
    if seconds < 0:
        raise ValueError(f"negative time: {seconds}")
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f}ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.3f}us"
    return f"{seconds * 1e9:.1f}ns"


def format_bandwidth(bytes_per_second):
    """Render a bandwidth in the GBps/MBps style used by Figures 2 and 11."""
    if bytes_per_second >= GB:
        return f"{bytes_per_second / GB:.2f}GBps"
    if bytes_per_second >= MB:
        return f"{bytes_per_second / MB:.2f}MBps"
    if bytes_per_second >= KB:
        return f"{bytes_per_second / KB:.2f}KBps"
    return f"{bytes_per_second:.1f}Bps"
