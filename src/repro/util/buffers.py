"""Zero-copy buffer helpers for the data plane.

Every bulk data path in the simulator (process accesses, device memory,
file I/O) accepts "bytes-like" payloads.  Accepting only ``bytes`` forces
callers to materialize copies (``array.tobytes()``, ``bytes(view)``); the
helpers here normalize any buffer-protocol object — ``bytes``,
``bytearray``, ``memoryview``, contiguous numpy arrays — into a flat byte
view without copying, so data flows from workload arrays into simulated
memory and back through views end to end.
"""

import numpy as np


def as_byte_view(data):
    """A flat byte-typed :class:`memoryview` of any buffer, without copying.

    The buffer must be C-contiguous (``memoryview.cast`` enforces this);
    callers holding strided arrays must make them contiguous first.
    """
    view = data if isinstance(data, memoryview) else memoryview(data)
    if view.format != "B" or view.ndim != 1:
        view = view.cast("B")
    return view


def copy_into(dst, data, offset=0):
    """Copy ``data``'s bytes into ``dst`` at ``offset``, view to view.

    Both sides are normalized through :func:`as_byte_view`, so the bytes
    move in one slice assignment with no staging copy — this is how the
    worker-pool result plane deposits pickled outcomes into its
    shared-memory slab.  Returns the number of bytes written.
    """
    src = as_byte_view(data)
    as_byte_view(dst)[offset:offset + len(src)] = src
    return len(src)


def as_byte_array(data):
    """A flat ``uint8`` numpy view of any buffer, without copying.

    Like :func:`as_byte_view` but returns a numpy array, for callers that
    assign into numpy backing stores.  Read-only buffers yield read-only
    arrays (sources are never written through this view).
    """
    if isinstance(data, np.ndarray):
        if data.dtype == np.uint8 and data.ndim == 1:
            return data
        return data.view(np.uint8).reshape(-1)
    return np.frombuffer(as_byte_view(data), dtype=np.uint8)
