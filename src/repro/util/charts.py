"""ASCII line charts for figure-shaped experiment output.

The paper's Figures 9, 11 and 12 are log-scale line plots; the experiment
CLI can render the regenerated series the same way (``--chart``).  The
renderer is deterministic (no terminal queries), so tests can assert on
its output.
"""

import math

#: Glyphs assigned to series, in order.
MARKERS = "o*x+#@%&"


def _log_positions(values, height):
    finite = [v for v in values if v > 0]
    if not finite:
        return lambda value: 0
    low = min(finite)
    high = max(finite)
    span = math.log10(high / low) if high > low else 1.0

    def position(value):
        if value <= 0:
            return 0
        return round((math.log10(value / low) / span) * (height - 1))

    return position


def render_chart(x_labels, series, height=12, title=None, y_label=""):
    """Render named series over shared x labels as a log-scale ASCII chart.

    ``series`` is a dict name -> list of y values (same length as
    ``x_labels``).  Values must be positive (log scale); zeros plot on the
    bottom row.
    """
    if not series:
        raise ValueError("need at least one series")
    points = len(x_labels)
    for name, values in series.items():
        if len(values) != points:
            raise ValueError(
                f"series {name!r} has {len(values)} points, expected {points}"
            )
    all_values = [v for values in series.values() for v in values]
    position = _log_positions(all_values, height)

    grid = [[" "] * points for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        marker = MARKERS[index % len(MARKERS)]
        for x, value in enumerate(values):
            y = min(height - 1, max(0, position(value)))
            row = height - 1 - y
            grid[row][x] = marker if grid[row][x] == " " else "!"

    finite = [v for v in all_values if v > 0]
    top = max(finite) if finite else 1.0
    bottom = min(finite) if finite else 1.0

    lines = []
    if title:
        lines.append(title)
    column_width = max(max(len(str(label)) for label in x_labels), 3) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = f"{top:10.4g} |"
        elif row_index == height - 1:
            prefix = f"{bottom:10.4g} |"
        else:
            prefix = " " * 10 + " |"
        cells = "".join(cell.center(column_width) for cell in row)
        lines.append(prefix + cells)
    axis = " " * 10 + " +" + "-" * (column_width * points)
    lines.append(axis)
    labels = " " * 12 + "".join(
        str(label).center(column_width) for label in x_labels
    )
    lines.append(labels)
    legend = "  ".join(
        f"{MARKERS[i % len(MARKERS)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend + (f"   [log scale, {y_label}]" if y_label else "   [log scale]"))
    return "\n".join(lines)


def chart_from_result(result, x_header, y_headers, height=12):
    """Build a chart straight from an ExperimentResult's columns."""
    x_labels = result.column(x_header)
    series = {}
    for header in y_headers:
        series[header] = [float(v) for v in result.column(header)]
    return render_chart(
        x_labels, series, height=height,
        title=f"{result.experiment_id}: {result.title}",
    )
