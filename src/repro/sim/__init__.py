"""Virtual-time simulation substrate.

The paper measures wall-clock time on real hardware; this reproduction runs
on a virtual clock.  The substrate has three pieces:

* :class:`~repro.sim.clock.SimClock` -- monotonically advancing virtual time,
* :class:`~repro.sim.resource.Resource` -- a serialized device timeline
  (a PCIe direction, the GPU, the disk) on which synchronous and
  asynchronous operations are scheduled; asynchronous operations return
  :class:`~repro.sim.resource.Completion` handles, which is how DMA/compute
  overlap (rolling-update's eager eviction) is modelled,
* :class:`~repro.sim.tracing.TimeAccounting` -- per-category accounting that
  regenerates the Figure 10 execution-time break-down.
"""

from repro.sim.clock import SimClock
from repro.sim.resource import Resource, Completion
from repro.sim.tracing import TimeAccounting, Category, TraceLog

__all__ = [
    "SimClock",
    "Resource",
    "Completion",
    "TimeAccounting",
    "Category",
    "TraceLog",
]
