"""Serialized device timelines.

A :class:`Resource` models a device that processes one operation at a time
in FIFO order: one direction of the PCIe link, the GPU execution engine, or
the disk.  Scheduling an operation returns a :class:`Completion` carrying
the operation's start and finish timestamps; the issuing CPU thread decides
whether to block (synchronous transfer) or continue (asynchronous eager
eviction, kernel launch) and only pays the wait when it synchronizes.

This is the mechanism behind every overlap effect in the paper's
evaluation: rolling-update's eager transfers (Figure 11's 64KB anomaly),
kernel launch asynchrony, and double-buffering behaviour.
"""

class Completion:
    """The outcome of an operation scheduled on a resource.

    A plain ``__slots__`` class rather than a frozen dataclass: one is
    created for every scheduled operation (millions per sweep), and the
    frozen-dataclass ``__init__`` (five ``object.__setattr__`` calls) was
    a measurable slice of schedule time.
    """

    __slots__ = ("resource", "label", "issued_at", "start", "finish")

    def __init__(self, resource, label, issued_at, start, finish):
        self.resource = resource
        self.label = label
        self.issued_at = issued_at
        self.start = start
        self.finish = finish

    @property
    def duration(self):
        return self.finish - self.start

    @property
    def queue_delay(self):
        """Time the operation waited behind earlier work on the resource."""
        return self.start - self.issued_at

    def wait(self):
        """Block the issuing thread (advance the clock) until completion."""
        self.resource.clock.advance_to(self.finish)
        return self.finish


class Resource:
    """A FIFO device timeline attached to a :class:`SimClock`."""

    __slots__ = (
        "name", "clock", "_available_at", "busy_time", "operation_count",
        "completions",
    )

    def __init__(self, name, clock, trace=False):
        self.name = name
        self.clock = clock
        self._available_at = clock.now
        self.busy_time = 0.0
        self.operation_count = 0
        #: Per-operation history.  ``None`` (the default) records nothing:
        #: a long experiment sweep schedules millions of operations, and an
        #: always-on list grows without bound.  Traced machines (and tests,
        #: via :meth:`record_history`) opt in.
        self.completions = [] if trace else None

    @property
    def available_at(self):
        return self._available_at

    def record_history(self):
        """Start recording every completion (used by tests/experiments)."""
        self.completions = []

    def schedule(self, duration, label="op", earliest=None):
        """Schedule an operation of ``duration`` seconds; do not block.

        ``earliest`` lets callers express data dependencies: a kernel cannot
        start before the transfers it depends on have finished, even if the
        GPU itself is idle.
        """
        if duration < 0:
            raise ValueError(f"negative duration {duration} for {label}")
        issued_at = self.clock.now
        start = max(issued_at, self._available_at)
        if earliest is not None:
            start = max(start, earliest)
        finish = start + duration
        self._available_at = finish
        self.busy_time += duration
        self.operation_count += 1
        completion = Completion(
            resource=self,
            label=label,
            issued_at=issued_at,
            start=start,
            finish=finish,
        )
        if self.completions is not None:
            self.completions.append(completion)
        return completion

    def schedule_many(self, durations, label="op", earliest=None):
        """Schedule a burst of back-to-back operations; do not block.

        Completion-for-completion equivalent to calling :meth:`schedule`
        in a loop with no intervening clock movement — same timestamps,
        ``busy_time`` accumulation order, ``operation_count`` and trace
        rows — while paying the clock lookup and history append once per
        burst instead of once per operation.  ``label`` and ``earliest``
        may be scalars (shared by every operation) or sequences indexed
        per operation.  A negative duration raises after the preceding
        prefix has been applied, exactly as the loop would leave the
        resource (a burst interrupted by a fault keeps its prefix).
        """
        issued_at = self.clock.now
        available_at = self._available_at
        busy_time = self.busy_time
        shared_label = isinstance(label, str) or label is None
        shared_earliest = earliest is None or not hasattr(earliest, "__len__")
        scheduled = []
        bad = None
        for index, duration in enumerate(durations):
            if duration < 0:
                bad = duration
                break
            start = max(issued_at, available_at)
            bound = earliest if shared_earliest else earliest[index]
            if bound is not None:
                start = max(start, bound)
            finish = start + duration
            available_at = finish
            busy_time += duration
            scheduled.append(Completion(
                resource=self,
                label=label if shared_label else label[index],
                issued_at=issued_at,
                start=start,
                finish=finish,
            ))
        self._available_at = available_at
        self.busy_time = busy_time
        self.operation_count += len(scheduled)
        if self.completions is not None:
            self.completions.extend(scheduled)
        if bad is not None:
            raise ValueError(f"negative duration {bad} for {label}")
        return scheduled

    def execute(self, duration, label="op", earliest=None):
        """Schedule an operation and block until it finishes."""
        completion = self.schedule(duration, label=label, earliest=earliest)
        completion.wait()
        return completion

    def drain(self):
        """Block until every scheduled operation has finished."""
        self.clock.advance_to(self._available_at)
        return self.clock.now

    def utilization(self):
        """Fraction of elapsed virtual time this resource was busy."""
        elapsed = self.clock.now
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def __repr__(self):
        return (
            f"Resource({self.name!r}, available_at={self._available_at:.9f}, "
            f"ops={self.operation_count})"
        )
