"""ASCII execution timelines.

Renders what the virtual machine actually did — CPU category activity from
the :class:`~repro.sim.tracing.TraceLog` and device occupancy from resource
histories — as a Gantt-style ASCII chart.  This is the visual counterpart
of the Figure 11 discussion: eager evictions visibly overlapping CPU
production, kernels starting only after the H2D queue drains.
"""

from repro.sim.tracing import Category


class TimelineRow:
    """One labelled row of busy intervals."""

    def __init__(self, label):
        self.label = label
        self.intervals = []  # (start, end)

    def add(self, start, end):
        if end > start:
            self.intervals.append((start, end))

    @property
    def busy_time(self):
        return sum(end - start for start, end in self.intervals)


def rows_from_trace(trace, categories=None):
    """One row per accounting category present in a TraceLog."""
    wanted = categories or list(Category)
    rows = []
    for category in wanted:
        events = trace.by_category(category)
        if not events:
            continue
        row = TimelineRow(str(category))
        for event in events:
            row.add(event.start, event.start + event.duration)
        rows.append(row)
    return rows


def rows_from_resources(resources):
    """One row per resource, from recorded completion histories."""
    rows = []
    for resource in resources:
        if not resource.completions:
            continue
        row = TimelineRow(resource.name)
        for completion in resource.completions:
            row.add(completion.start, completion.finish)
        rows.append(row)
    return rows


def render_timeline(rows, width=72, start=None, end=None, title=None):
    """Render rows of intervals as an ASCII Gantt chart.

    Each column is one time bucket; ``#`` marks a bucket in which the row
    was busy for more than half the bucket, ``-`` for a touched bucket.
    """
    rows = [row for row in rows if row.intervals]
    if not rows:
        raise ValueError("nothing to render: no busy intervals")
    if start is None:
        start = min(interval[0] for row in rows for interval in row.intervals)
    if end is None:
        end = max(interval[1] for row in rows for interval in row.intervals)
    if end <= start:
        raise ValueError(f"empty time window [{start}, {end}]")
    bucket = (end - start) / width
    label_width = max(len(row.label) for row in rows) + 1

    lines = []
    if title:
        lines.append(title)
    for row in rows:
        cells = [" "] * width
        for interval_start, interval_end in row.intervals:
            first = int((interval_start - start) / bucket)
            last = int((interval_end - start) / bucket - 1e-12)
            for index in range(max(0, first), min(width - 1, last) + 1):
                bucket_start = start + index * bucket
                bucket_end = bucket_start + bucket
                overlap = min(interval_end, bucket_end) - max(
                    interval_start, bucket_start
                )
                if overlap > 0.5 * bucket:
                    cells[index] = "#"
                elif cells[index] == " ":
                    cells[index] = "-"
        busy_percent = 100.0 * row.busy_time / (end - start)
        lines.append(
            f"{row.label.rjust(label_width)} |{''.join(cells)}| "
            f"{busy_percent:5.1f}%"
        )
    scale = (
        " " * label_width
        + f"  {start * 1e3:.3f}ms"
        + " " * max(1, width - 24)
        + f"{end * 1e3:.3f}ms"
    )
    lines.append(scale)
    return "\n".join(lines)


def machine_timeline(machine, width=72, title=None):
    """Convenience: timeline of a traced machine's CPU-side categories.

    Requires the machine to have been built with ``trace=True``.
    """
    if machine.trace is None:
        raise ValueError("machine was not built with trace=True")
    rows = rows_from_trace(machine.trace)
    return render_timeline(rows, width=width, title=title)
