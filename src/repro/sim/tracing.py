"""Per-category time accounting and event tracing.

Figure 10 of the paper breaks application execution time down into thirteen
categories (Copy, Malloc, Free, Launch, Sync, Signal, cudaMalloc, cudaFree,
cudaLaunch, GPU, IORead, IOWrite, CPU).  :class:`TimeAccounting` charges
virtual-time intervals to those categories; GMAC, the CUDA layer, the OS
and the workloads all charge into the same accounting object so the
break-down is regenerated from actual execution rather than estimated.
"""

import enum
from contextlib import contextmanager
from dataclasses import dataclass


class Category(enum.Enum):
    """Execution-time categories, named after Figure 10's legend."""

    COPY = "Copy"                  # GMAC-initiated data transfers
    MALLOC = "Malloc"              # adsmAlloc bookkeeping (incl. mmap)
    FREE = "Free"                  # adsmFree bookkeeping
    LAUNCH = "Launch"              # adsmCall (minus the cudaLaunch part)
    SYNC = "Sync"                  # adsmSync wait time
    SIGNAL = "Signal"              # page-fault signal handling
    CUDA_MALLOC = "cudaMalloc"
    CUDA_FREE = "cudaFree"
    CUDA_LAUNCH = "cudaLaunch"
    GPU = "GPU"                    # kernel execution the CPU waits for
    IO_READ = "IORead"
    IO_WRITE = "IOWrite"
    CPU = "CPU"                    # application compute on the CPU
    RETRY = "Retry"                # fault-recovery backoff + device resets

    def __str__(self):
        return self.value


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event: a charged interval with a label."""

    category: Category
    label: str
    start: float
    duration: float


class TraceLog:
    """An optional append-only log of charged intervals."""

    def __init__(self):
        self.events = []

    def record(self, event):
        self.events.append(event)

    def by_category(self, category):
        return [event for event in self.events if event.category is category]

    def __len__(self):
        return len(self.events)


class TimeAccounting:
    """Charges virtual-time durations to Figure 10 categories.

    Two charging styles exist:

    * ``charge(category, seconds)`` for durations known a priori (a resource
      completion's duration, an async transfer the CPU never waits for),
    * ``measure(category)`` as a context manager that charges the clock
      delta across a code region (fault handlers, bookkeeping).

    ``measure`` regions may nest; inner regions subtract their time from the
    enclosing region so each virtual second is charged exactly once, which
    keeps the break-down summing to total execution time.
    """

    def __init__(self, clock, trace=None):
        self.clock = clock
        self.totals = {category: 0.0 for category in Category}
        self.counts = {category: 0 for category in Category}
        self.trace = trace
        self._stack = []

    def charge(self, category, seconds, label=""):
        if seconds < 0:
            raise ValueError(f"cannot charge negative time {seconds}")
        self.totals[category] += seconds
        self.counts[category] += 1
        if self._stack:
            # Time explicitly charged inside a measured region should not be
            # double counted against the enclosing category.
            self._stack[-1][1] += seconds
        if self.trace is not None:
            self.trace.record(
                TraceEvent(category, label, self.clock.now, seconds)
            )

    @contextmanager
    def measure(self, category, label=""):
        frame = [self.clock.now, 0.0]  # [start, time claimed by inner scopes]
        self._stack.append(frame)
        try:
            yield
        finally:
            self._stack.pop()
            elapsed = self.clock.now - frame[0]
            charged = max(0.0, elapsed - frame[1])
            self.totals[category] += charged
            self.counts[category] += 1
            if self._stack:
                self._stack[-1][1] += elapsed
            if self.trace is not None:
                self.trace.record(
                    TraceEvent(category, label, frame[0], charged)
                )

    def total(self):
        return sum(self.totals.values())

    def fractions(self):
        """Per-category fraction of the accounted time (Figure 10's y-axis)."""
        total = self.total()
        if total <= 0:
            return {category: 0.0 for category in Category}
        return {
            category: value / total for category, value in self.totals.items()
        }

    def breakdown(self):
        """A plain dict (category-name -> seconds) for reports and tests."""
        return {str(category): value for category, value in self.totals.items()}

    def merge(self, other):
        """Accumulate another accounting into this one (for aggregates)."""
        for category in Category:
            self.totals[category] += other.totals[category]
            self.counts[category] += other.counts[category]
