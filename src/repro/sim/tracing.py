"""Per-category time accounting and event tracing.

Figure 10 of the paper breaks application execution time down into thirteen
categories (Copy, Malloc, Free, Launch, Sync, Signal, cudaMalloc, cudaFree,
cudaLaunch, GPU, IORead, IOWrite, CPU).  :class:`TimeAccounting` charges
virtual-time intervals to those categories; GMAC, the CUDA layer, the OS
and the workloads all charge into the same accounting object so the
break-down is regenerated from actual execution rather than estimated.
"""

import enum
import time
from dataclasses import dataclass


class Category(enum.Enum):
    """Execution-time categories, named after Figure 10's legend."""

    COPY = "Copy"                  # GMAC-initiated data transfers
    MALLOC = "Malloc"              # adsmAlloc bookkeeping (incl. mmap)
    FREE = "Free"                  # adsmFree bookkeeping
    LAUNCH = "Launch"              # adsmCall (minus the cudaLaunch part)
    SYNC = "Sync"                  # adsmSync wait time
    SIGNAL = "Signal"              # page-fault signal handling
    CUDA_MALLOC = "cudaMalloc"
    CUDA_FREE = "cudaFree"
    CUDA_LAUNCH = "cudaLaunch"
    GPU = "GPU"                    # kernel execution the CPU waits for
    IO_READ = "IORead"
    IO_WRITE = "IOWrite"
    CPU = "CPU"                    # application compute on the CPU
    RETRY = "Retry"                # fault-recovery backoff + device resets

    # Identity hash: every charge/measure indexes totals and counts by
    # category, and Enum's name-based hash was visible in profiles.
    __hash__ = object.__hash__

    def __str__(self):
        return self.value


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event: a charged interval with a label."""

    category: Category
    label: str
    start: float
    duration: float


@dataclass(frozen=True)
class CoherenceEvent:
    """One structured coherence-protocol event.

    The manager, the protocols and the GMAC API emit these into the
    accounting's optional ``coherence`` sink (see
    :class:`~repro.analysis.checker.CoherenceModelChecker`), forming an
    ordered stream from which the whole Figure 6 state machine can be
    replayed and checked.  ``kind`` is one of:

    * ``alloc`` / ``free`` — region lifetime (``first``/``last`` span all
      blocks at alloc time);
    * ``transition`` — blocks ``first..last`` of ``region`` entered
      ``state`` (the Figure 6 edge itself);
    * ``flush`` / ``fetch`` — per-block data movement (``detail`` carries
      ``sync``/``eager`` for flushes and the pending deferred-numerics
      count for fetches);
    * ``evict`` — rolling-update eagerly evicted block ``first``;
    * ``limit`` — the rolling size changed (``detail`` = new limit);
    * ``bulk`` — a device-side memset/memcpy/peer-DMA made the device
      copy of blocks ``first..last`` canonical;
    * ``call`` / ``sync`` — the release/acquire boundaries (``detail`` on
      ``call`` is ``*`` for unannotated launches or the comma-joined
      written region names);
    * ``protocol`` — the active protocol changed (recovery degradation);
    * ``peer`` — a region migrated between devices (``detail`` is
      ``dma:src->dst`` for a device-to-device copy or ``host:src->dst``
      for a re-route from host-canonical bytes after a device loss).
    """

    kind: str
    time: float
    region: str = ""
    first: int = -1
    last: int = -1
    state: str = ""
    detail: str = ""


class TraceLog:
    """An optional append-only log of charged intervals."""

    def __init__(self):
        self.events = []

    def record(self, event):
        self.events.append(event)

    def by_category(self, category):
        return [event for event in self.events if event.category is category]

    def __len__(self):
        return len(self.events)


class HostCounters:
    """Named host-side event counters for engine diagnostics.

    The executor's worker-pool engine counts what the *host* machinery did
    — specs dispatched, control messages exchanged, bytes through the
    shared-memory result plane, crashed workers respawned — the same way
    :class:`TimeAccounting` keeps its host-side throughput counters: these
    values never feed virtual time and never become part of an experiment
    outcome, so a pooled sweep stays byte-identical to a serial one.  They
    surface in ``BENCH_sweep.json`` for regression tracking.
    """

    def __init__(self):
        self._counts = {}

    def increment(self, name, n=1):
        self._counts[name] = self._counts.get(name, 0) + n

    def get(self, name, default=0):
        return self._counts.get(name, default)

    def snapshot(self):
        """A plain sorted dict copy (for JSON artifacts and assertions)."""
        return {name: self._counts[name] for name in sorted(self._counts)}

    def merge(self, other):
        for name, value in other._counts.items():
            self.increment(name, value)

    def reset(self):
        self._counts.clear()


class TimeAccounting:
    """Charges virtual-time durations to Figure 10 categories.

    Two charging styles exist:

    * ``charge(category, seconds)`` for durations known a priori (a resource
      completion's duration, an async transfer the CPU never waits for),
    * ``measure(category)`` as a context manager that charges the clock
      delta across a code region (fault handlers, bookkeeping).

    ``measure`` regions may nest; inner regions subtract their time from the
    enclosing region so each virtual second is charged exactly once, which
    keeps the break-down summing to total execution time.
    """

    def __init__(self, clock, trace=None):
        self.clock = clock
        self.totals = {category: 0.0 for category in Category}
        self.counts = {category: 0 for category in Category}
        self.trace = trace
        #: Optional sink for :class:`CoherenceEvent` values (an object with
        #: a ``record(event)`` method).  None — the default — keeps every
        #: emission site a single attribute test; the sanitizer installs
        #: its model checker here.
        self.coherence = None
        self._stack = []
        # Host-side throughput counters (never charged to virtual time, and
        # never part of an experiment outcome): how much simulator work this
        # accounting observed, and how long the host took to simulate it.
        self.fault_events = 0
        self.block_transitions = 0
        self._host_started = time.perf_counter()  # sanitizer: allow[R003]

    def charge(self, category, seconds, label=""):
        if seconds < 0:
            raise ValueError(f"cannot charge negative time {seconds}")
        self.totals[category] += seconds
        self.counts[category] += 1
        if self._stack:
            # Time explicitly charged inside a measured region should not be
            # double counted against the enclosing category.
            self._stack[-1][1] += seconds
        if self.trace is not None:
            self.trace.record(
                TraceEvent(category, label, self.clock.now, seconds)
            )

    def measure(self, category, label=""):
        """Context manager charging the clock delta across a code region.

        A plain object with ``__enter__``/``__exit__`` rather than a
        generator-based ``@contextmanager``: this runs on every fault,
        transfer and API call, and the generator machinery was a measurable
        slice of hot-path host time.
        """
        return _Measure(self, category, label)

    # -- throughput counters (host-side only) ---------------------------------

    def count_fault(self):
        self.fault_events += 1

    def count_transitions(self, n):
        self.block_transitions += n

    def throughput(self):
        """Simulator throughput: events per *host* second, plus the
        host-seconds each virtual second costs.  Diagnostic only — host
        wall-clock never feeds virtual time or experiment outcomes."""
        host_s = max(time.perf_counter() - self._host_started, 1e-9)  # sanitizer: allow[R003]
        virtual_s = self.clock.now
        return {
            "host_s": host_s,
            "virtual_s": virtual_s,
            "faults_per_host_s": self.fault_events / host_s,
            "block_transitions_per_host_s": self.block_transitions / host_s,
            "host_s_per_virtual_s": (
                host_s / virtual_s if virtual_s > 0 else None
            ),
        }

    def total(self):
        return sum(self.totals.values())

    def fractions(self):
        """Per-category fraction of the accounted time (Figure 10's y-axis)."""
        total = self.total()
        if total <= 0:
            return {category: 0.0 for category in Category}
        return {
            category: value / total for category, value in self.totals.items()
        }

    def breakdown(self):
        """A plain dict (category-name -> seconds) for reports and tests."""
        return {str(category): value for category, value in self.totals.items()}

    def merge(self, other):
        """Accumulate another accounting into this one (for aggregates)."""
        for category in Category:
            self.totals[category] += other.totals[category]
            self.counts[category] += other.counts[category]
        self.fault_events += other.fault_events
        self.block_transitions += other.block_transitions


class _Measure:
    """One measured region; see :meth:`TimeAccounting.measure`."""

    __slots__ = ("accounting", "category", "label", "frame")

    def __init__(self, accounting, category, label):
        self.accounting = accounting
        self.category = category
        self.label = label

    def __enter__(self):
        # [start, time claimed by inner scopes]
        self.frame = [self.accounting.clock.now, 0.0]
        self.accounting._stack.append(self.frame)
        return self

    def __exit__(self, exc_type, exc, tb):
        accounting = self.accounting
        frame = self.frame
        accounting._stack.pop()
        elapsed = accounting.clock.now - frame[0]
        inner = frame[1]
        charged = elapsed - inner if elapsed > inner else 0.0
        accounting.totals[self.category] += charged
        accounting.counts[self.category] += 1
        if accounting._stack:
            accounting._stack[-1][1] += elapsed
        if accounting.trace is not None:
            accounting.trace.record(
                TraceEvent(self.category, self.label, frame[0], charged)
            )
        return False
