"""The virtual clock.

All timing in the reproduction is virtual: CPU phases, GPU kernels, PCIe
transfers, disk I/O and fault handling advance or occupy this clock.  The
evaluation compares ratios of virtual times, which is what survives the
paper's move from a real testbed to a simulator (see DESIGN.md section 2).
"""


class SimClock:
    """Monotonically advancing virtual time in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start=0.0):
        if start < 0:
            raise ValueError(f"clock cannot start at negative time {start}")
        self._now = float(start)

    @property
    def now(self):
        return self._now

    def advance(self, seconds):
        """Advance the clock by a non-negative duration."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp):
        """Advance the clock to ``timestamp`` if it is in the future.

        Waiting for an asynchronous completion that already finished is a
        no-op, exactly like a wait on an already-signalled event.
        """
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def __repr__(self):
        return f"SimClock(now={self._now:.9f})"
