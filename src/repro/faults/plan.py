"""Seeded, deterministic fault-injection plans.

A :class:`FaultPlan` is consulted by the hardware, CUDA-driver and OS
layers at their injection points (:data:`SITES`).  Every decision comes
from a per-site ``random.Random`` stream seeded from ``(seed, site)``, so

* a given plan replays identically on every run (the simulator itself is
  deterministic, so the sequence of consultations is too), and
* decisions at one site never perturb another site's stream.

The plan only *decides*; the layers raise the typed errors
(:class:`~repro.util.errors.TransferError`,
:class:`~repro.util.errors.LaunchError`, ...) and the recovery machinery
in :mod:`repro.core.recovery` reacts.  With :meth:`FaultPlan.none` (or no
plan installed at all) every injection point is a zero-cost no-op: not
even the RNG streams are advanced, so fault-free runs are byte-identical
to a build without the hooks.

Device-lost events are injected at the *kernel-launch* site only.  That
window — after GMAC has released (flushed) shared objects, before the
kernel has produced anything the host has not seen — is exactly where the
host-resident coherence state of ADSM is a complete checkpoint, so
recovery by re-materialisation is sound.  Losing the device while results
exist only in accelerator memory would require kernel re-execution logs,
which is out of scope.
"""

import random

#: Injection-point identifiers, also the keys of the per-plan counters.
SITE_TRANSFER_H2D = "transfer.h2d"
SITE_TRANSFER_D2H = "transfer.d2h"
SITE_MALLOC = "cuda.malloc"
SITE_LAUNCH = "cuda.launch"
SITE_DISK_READ = "disk.read"

SITES = (
    SITE_TRANSFER_H2D,
    SITE_TRANSFER_D2H,
    SITE_MALLOC,
    SITE_LAUNCH,
    SITE_DISK_READ,
)

#: Outcomes returned by the decision methods.
TRANSIENT = "transient"
DEVICE_LOST = "device-lost"


class FaultPlan:
    """A deterministic schedule of faults for one simulated run.

    Rates are per-attempt probabilities in ``[0, 1]``; scheduled events
    use 1-based attempt indices (``device_lost_at_launch=1`` kills the
    device at the first launch).  ``attempts`` and ``injected`` count, per
    site, how often the plan was consulted and how often it injected —
    tests reconcile these against the recovery layer's retry counters.
    """

    def __init__(self, seed=0, transfer_fault_rate=0.0,
                 launch_fault_rate=0.0, malloc_fault_rate=0.0,
                 short_read_rate=0.0, oom_at_mallocs=(),
                 device_lost_at_launch=None):
        for name, rate in (("transfer_fault_rate", transfer_fault_rate),
                           ("launch_fault_rate", launch_fault_rate),
                           ("malloc_fault_rate", malloc_fault_rate),
                           ("short_read_rate", short_read_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        self.seed = seed
        self.transfer_fault_rate = transfer_fault_rate
        self.launch_fault_rate = launch_fault_rate
        self.malloc_fault_rate = malloc_fault_rate
        self.short_read_rate = short_read_rate
        self.oom_at_mallocs = frozenset(oom_at_mallocs)
        if any(index < 1 for index in self.oom_at_mallocs):
            raise ValueError(
                "oom_at_mallocs uses 1-based attempt indices, got "
                f"{sorted(self.oom_at_mallocs)}"
            )
        if device_lost_at_launch is not None and device_lost_at_launch < 1:
            raise ValueError(
                "device_lost_at_launch uses 1-based attempt indices, got "
                f"{device_lost_at_launch}"
            )
        self.device_lost_at_launch = device_lost_at_launch
        self._rngs = {site: random.Random(f"{seed}/{site}") for site in SITES}
        self.attempts = {site: 0 for site in SITES}
        self.injected = {site: 0 for site in SITES}
        self.device_losses = 0

    @classmethod
    def none(cls, seed=0):
        """A plan that injects nothing (all injection points stay no-ops)."""
        return cls(seed=seed)

    @property
    def enabled(self):
        """False when no fault can ever fire; layers then skip all hooks."""
        return bool(
            self.transfer_fault_rate or self.launch_fault_rate
            or self.malloc_fault_rate or self.short_read_rate
            or self.oom_at_mallocs or self.device_lost_at_launch is not None
        )

    # -- decisions ----------------------------------------------------------

    def transfer_fault(self, d2h=False):
        """Outcome for one DMA attempt: None, or :data:`TRANSIENT`."""
        site = SITE_TRANSFER_D2H if d2h else SITE_TRANSFER_H2D
        self.attempts[site] += 1
        if self._rngs[site].random() < self.transfer_fault_rate:
            self.injected[site] += 1
            return TRANSIENT
        return None

    def malloc_fault(self):
        """Whether this cudaMalloc attempt fails with a (transient) OOM."""
        self.attempts[SITE_MALLOC] += 1
        if self.attempts[SITE_MALLOC] in self.oom_at_mallocs or (
            self._rngs[SITE_MALLOC].random() < self.malloc_fault_rate
        ):
            self.injected[SITE_MALLOC] += 1
            return True
        return False

    def launch_fault(self):
        """Outcome for one launch: None, :data:`TRANSIENT`, or
        :data:`DEVICE_LOST` (scheduled, fires at most once per plan)."""
        self.attempts[SITE_LAUNCH] += 1
        if (self.device_lost_at_launch is not None
                and self.attempts[SITE_LAUNCH] == self.device_lost_at_launch):
            self.injected[SITE_LAUNCH] += 1
            self.device_losses += 1
            return DEVICE_LOST
        if self._rngs[SITE_LAUNCH].random() < self.launch_fault_rate:
            self.injected[SITE_LAUNCH] += 1
            return TRANSIENT
        return None

    def short_read(self, size):
        """Bytes the disk actually delivers for a ``size``-byte read.

        POSIX permits short reads; an injected one delivers a uniformly
        chosen strict prefix (at least one byte, so callers always make
        progress and the retried remainder terminates).
        """
        self.attempts[SITE_DISK_READ] += 1
        rng = self._rngs[SITE_DISK_READ]
        if size > 1 and rng.random() < self.short_read_rate:
            self.injected[SITE_DISK_READ] += 1
            return rng.randrange(1, size)
        return size

    # -- reporting ----------------------------------------------------------

    @property
    def injected_total(self):
        return sum(self.injected.values())

    def summary(self):
        """Per-site ``injected/attempts`` counts (for experiment tables)."""
        return {
            site: (self.injected[site], self.attempts[site])
            for site in SITES
        }

    def __repr__(self):
        parts = [f"seed={self.seed}"]
        if self.transfer_fault_rate:
            parts.append(f"transfer={self.transfer_fault_rate}")
        if self.launch_fault_rate:
            parts.append(f"launch={self.launch_fault_rate}")
        if self.malloc_fault_rate:
            parts.append(f"malloc={self.malloc_fault_rate}")
        if self.short_read_rate:
            parts.append(f"short_read={self.short_read_rate}")
        if self.oom_at_mallocs:
            parts.append(f"oom_at={sorted(self.oom_at_mallocs)}")
        if self.device_lost_at_launch is not None:
            parts.append(f"device_lost_at_launch={self.device_lost_at_launch}")
        return f"FaultPlan({', '.join(parts)})"
