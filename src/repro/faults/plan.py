"""Seeded, deterministic fault-injection plans.

A :class:`FaultPlan` is consulted by the hardware, CUDA-driver and OS
layers at their injection points (:data:`SITES`).  Every decision comes
from a per-site ``random.Random`` stream seeded from ``(seed, site)``, so

* a given plan replays identically on every run (the simulator itself is
  deterministic, so the sequence of consultations is too), and
* decisions at one site never perturb another site's stream.

The plan only *decides*; the layers raise the typed errors
(:class:`~repro.util.errors.TransferError`,
:class:`~repro.util.errors.LaunchError`, ...) and the recovery machinery
in :mod:`repro.core.recovery` reacts.  With :meth:`FaultPlan.none` (or no
plan installed at all) every injection point is a zero-cost no-op: not
even the RNG streams are advanced, so fault-free runs are byte-identical
to a build without the hooks.

Transfer faults fire at *charge* time: the driver consults the plan
before any bytes — or, under the transfer ledger (DESIGN.md §14), any
deferred-extent metadata — change, so a faulted DMA looks identical in
both engines and the per-site streams stay in lockstep between them
(the fault-storm parity suite pins this).

Device-lost events are injected at the *kernel-launch* site only.  That
window — after GMAC has released (flushed) shared objects, before the
kernel has produced anything the host has not seen — is exactly where the
host-resident coherence state of ADSM is a complete checkpoint, so
recovery by re-materialisation is sound.  Losing the device while results
exist only in accelerator memory would require kernel re-execution logs,
which is out of scope.
"""

import random

#: Injection-point identifiers, also the keys of the per-plan counters.
SITE_TRANSFER_H2D = "transfer.h2d"
SITE_TRANSFER_D2H = "transfer.d2h"
SITE_MALLOC = "cuda.malloc"
SITE_LAUNCH = "cuda.launch"
SITE_DISK_READ = "disk.read"

SITES = (
    SITE_TRANSFER_H2D,
    SITE_TRANSFER_D2H,
    SITE_MALLOC,
    SITE_LAUNCH,
    SITE_DISK_READ,
)

#: Outcomes returned by the decision methods.
TRANSIENT = "transient"
DEVICE_LOST = "device-lost"


class FaultPlan:
    """A deterministic schedule of faults for one simulated run.

    Rates are per-attempt probabilities in ``[0, 1]``; scheduled events
    use 1-based attempt indices (``device_lost_at_launch=1`` kills the
    device at the first launch).  ``attempts`` and ``injected`` count, per
    site, how often the plan was consulted and how often it injected —
    tests reconcile these against the recovery layer's retry counters.
    """

    def __init__(self, seed=0, transfer_fault_rate=0.0,
                 launch_fault_rate=0.0, malloc_fault_rate=0.0,
                 short_read_rate=0.0, oom_at_mallocs=(),
                 device_lost_at_launch=None,
                 device_lost_at_launches=(),
                 transfer_burst=None):
        for name, rate in (("transfer_fault_rate", transfer_fault_rate),
                           ("launch_fault_rate", launch_fault_rate),
                           ("malloc_fault_rate", malloc_fault_rate),
                           ("short_read_rate", short_read_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        self.seed = seed
        self.transfer_fault_rate = transfer_fault_rate
        self.launch_fault_rate = launch_fault_rate
        self.malloc_fault_rate = malloc_fault_rate
        self.short_read_rate = short_read_rate
        self.oom_at_mallocs = frozenset(oom_at_mallocs)
        if any(index < 1 for index in self.oom_at_mallocs):
            raise ValueError(
                "oom_at_mallocs uses 1-based attempt indices, got "
                f"{sorted(self.oom_at_mallocs)}"
            )
        if device_lost_at_launch is not None and device_lost_at_launch < 1:
            raise ValueError(
                "device_lost_at_launch uses 1-based attempt indices, got "
                f"{device_lost_at_launch}"
            )
        self.device_lost_at_launch = device_lost_at_launch
        # The single-loss and multi-loss (flapping) schedules merge into
        # one frozenset of 1-based launch-attempt indices.
        losses = set(device_lost_at_launches)
        if device_lost_at_launch is not None:
            losses.add(device_lost_at_launch)
        if any(index < 1 for index in losses):
            raise ValueError(
                "device_lost_at_launches uses 1-based attempt indices, got "
                f"{sorted(losses)}"
            )
        self.device_lost_at_launches = frozenset(losses)
        if transfer_burst is not None:
            start, length = transfer_burst
            if start < 1 or length < 1:
                raise ValueError(
                    "transfer_burst is (1-based start attempt, length >= 1), "
                    f"got {transfer_burst!r}"
                )
            transfer_burst = (int(start), int(length))
        #: Correlated burst: every transfer attempt (H2D and D2H pooled, in
        #: consultation order) inside the window faults — the "cable went
        #: bad for a while" failure mode that independent per-attempt rates
        #: cannot express.
        self.transfer_burst = transfer_burst
        self._rngs = {site: random.Random(f"{seed}/{site}") for site in SITES}
        self.attempts = {site: 0 for site in SITES}
        self.injected = {site: 0 for site in SITES}
        #: Transfer attempts pooled over both directions, driving the
        #: burst window.
        self.transfer_attempt_total = 0
        self.device_losses = 0

    @classmethod
    def none(cls, seed=0):
        """A plan that injects nothing (all injection points stay no-ops)."""
        return cls(seed=seed)

    @property
    def enabled(self):
        """False when no fault can ever fire; layers then skip all hooks."""
        return bool(
            self.transfer_fault_rate or self.launch_fault_rate
            or self.malloc_fault_rate or self.short_read_rate
            or self.oom_at_mallocs or self.device_lost_at_launches
            or self.transfer_burst is not None
        )

    @property
    def scheduled_device_losses(self):
        """How many device-lost events this plan will inject in total."""
        return len(self.device_lost_at_launches)

    # -- decisions ----------------------------------------------------------

    def transfer_fault(self, d2h=False):
        """Outcome for one DMA attempt: None, or :data:`TRANSIENT`."""
        site = SITE_TRANSFER_D2H if d2h else SITE_TRANSFER_H2D
        self.attempts[site] += 1
        self.transfer_attempt_total += 1
        if self.transfer_burst is not None:
            start, length = self.transfer_burst
            # The window check precedes the rate draw and does not advance
            # the per-site RNG: the burst is a deterministic overlay and
            # the streams around it stay exactly where a burst-free plan
            # would have them.
            if start <= self.transfer_attempt_total < start + length:
                self.injected[site] += 1
                return TRANSIENT
        if self._rngs[site].random() < self.transfer_fault_rate:
            self.injected[site] += 1
            return TRANSIENT
        return None

    def malloc_fault(self):
        """Whether this cudaMalloc attempt fails with a (transient) OOM."""
        self.attempts[SITE_MALLOC] += 1
        if self.attempts[SITE_MALLOC] in self.oom_at_mallocs or (
            self._rngs[SITE_MALLOC].random() < self.malloc_fault_rate
        ):
            self.injected[SITE_MALLOC] += 1
            return True
        return False

    def launch_fault(self):
        """Outcome for one launch: None, :data:`TRANSIENT`, or
        :data:`DEVICE_LOST` (scheduled; flapping plans list several
        launch-attempt indices and fire once at each)."""
        self.attempts[SITE_LAUNCH] += 1
        if self.attempts[SITE_LAUNCH] in self.device_lost_at_launches:
            self.injected[SITE_LAUNCH] += 1
            self.device_losses += 1
            return DEVICE_LOST
        if self._rngs[SITE_LAUNCH].random() < self.launch_fault_rate:
            self.injected[SITE_LAUNCH] += 1
            return TRANSIENT
        return None

    def short_read(self, size):
        """Bytes the disk actually delivers for a ``size``-byte read.

        POSIX permits short reads; an injected one delivers a uniformly
        chosen strict prefix (at least one byte, so callers always make
        progress and the retried remainder terminates).
        """
        self.attempts[SITE_DISK_READ] += 1
        rng = self._rngs[SITE_DISK_READ]
        if size > 1 and rng.random() < self.short_read_rate:
            self.injected[SITE_DISK_READ] += 1
            return rng.randrange(1, size)
        return size

    # -- reporting ----------------------------------------------------------

    @property
    def injected_total(self):
        return sum(self.injected.values())

    def summary(self):
        """Per-site ``injected/attempts`` counts (for experiment tables)."""
        return {
            site: (self.injected[site], self.attempts[site])
            for site in SITES
        }

    def __repr__(self):
        parts = [f"seed={self.seed}"]
        if self.transfer_fault_rate:
            parts.append(f"transfer={self.transfer_fault_rate}")
        if self.launch_fault_rate:
            parts.append(f"launch={self.launch_fault_rate}")
        if self.malloc_fault_rate:
            parts.append(f"malloc={self.malloc_fault_rate}")
        if self.short_read_rate:
            parts.append(f"short_read={self.short_read_rate}")
        if self.oom_at_mallocs:
            parts.append(f"oom_at={sorted(self.oom_at_mallocs)}")
        if len(self.device_lost_at_launches) == 1:
            only = next(iter(self.device_lost_at_launches))
            parts.append(f"device_lost_at_launch={only}")
        elif self.device_lost_at_launches:
            parts.append(
                f"device_lost_at_launches={sorted(self.device_lost_at_launches)}"
            )
        if self.transfer_burst is not None:
            parts.append(f"burst={self.transfer_burst}")
        return f"FaultPlan({', '.join(parts)})"
