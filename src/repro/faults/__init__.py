"""Deterministic fault injection for the simulated accelerator stack.

The package provides :class:`~repro.faults.plan.FaultPlan` — a seeded,
replayable schedule of transient PCIe transfer failures, cudaMalloc OOMs,
kernel-launch failures, device-lost events and disk short-reads.  Install
one on a machine with :meth:`repro.hw.machine.Machine.install_faults`; the
recovery machinery lives in :mod:`repro.core.recovery`.
"""

from repro.faults.plan import (
    FaultPlan,
    DEVICE_LOST,
    TRANSIENT,
    SITE_TRANSFER_H2D,
    SITE_TRANSFER_D2H,
    SITE_MALLOC,
    SITE_LAUNCH,
    SITE_DISK_READ,
    SITES,
)

__all__ = [
    "FaultPlan",
    "DEVICE_LOST",
    "TRANSIENT",
    "SITE_TRANSFER_H2D",
    "SITE_TRANSFER_D2H",
    "SITE_MALLOC",
    "SITE_LAUNCH",
    "SITE_DISK_READ",
    "SITES",
]
