"""The kernel scheduler (the remaining Figure 5 box).

"The kernel scheduler selects the most appropriate accelerator for
execution of a given kernel, and implements different scheduling policies
depending on the execution environment" (Section 4.1; the paper defers the
analysis to Jimenez et al. [29], *Predictive runtime code scheduling for
heterogeneous architectures*).

This module implements that component for multi-accelerator machines:
a :class:`KernelScheduler` owns one driver context per GPU and routes each
launch through a pluggable policy —

* :class:`RoundRobin` — cycle through accelerators,
* :class:`LeastLoaded` — the accelerator whose execution engine frees up
  first,
* :class:`DataAffinity` — the accelerator already hosting the kernel's
  device-pointer arguments (transfers dominate kernel launches on PCIe
  systems, so following the data is usually right),
* :class:`Predictive` — minimise predicted completion time using each
  accelerator's cost model and current queue (the [29] approach).
"""

import abc
import itertools

from repro.util.errors import CudaError
from repro.cuda.driver import DriverContext


class SchedulingPolicy(abc.ABC):
    """Chooses an accelerator index for one kernel launch."""

    name = "abstract"

    @abc.abstractmethod
    def select(self, scheduler, kernel, args):
        """Return the index of the GPU that should run this launch."""


class RoundRobin(SchedulingPolicy):
    name = "round-robin"

    def __init__(self):
        self._counter = itertools.count()

    def select(self, scheduler, kernel, args):
        return next(self._counter) % len(scheduler.gpus)


class LeastLoaded(SchedulingPolicy):
    name = "least-loaded"

    def select(self, scheduler, kernel, args):
        availabilities = [gpu.engine.available_at for gpu in scheduler.gpus]
        return availabilities.index(min(availabilities))


class DataAffinity(SchedulingPolicy):
    """Run where the data lives; fall back to least-loaded."""

    name = "data-affinity"

    def __init__(self):
        self._fallback = LeastLoaded()

    def select(self, scheduler, kernel, args):
        for value in args.values():
            if not isinstance(value, int):
                continue
            for index, gpu in enumerate(scheduler.gpus):
                if gpu.memory.allocation_at(value) is not None:
                    return index
        return self._fallback.select(scheduler, kernel, args)


class Predictive(SchedulingPolicy):
    """Minimise predicted completion: queue wait + modelled kernel time."""

    name = "predictive"

    def select(self, scheduler, kernel, args):
        now = scheduler.machine.clock.now
        best_index = 0
        best_finish = None
        for index, gpu in enumerate(scheduler.gpus):
            start = max(now, gpu.engine.available_at)
            finish = start + kernel.duration_on(gpu, args)
            if best_finish is None or finish < best_finish:
                best_finish = finish
                best_index = index
        return best_index


#: Load-time policy selection, like the coherence-protocol registry.
POLICIES = {
    policy.name: policy
    for policy in (RoundRobin, LeastLoaded, DataAffinity, Predictive)
}


class KernelScheduler:
    """Routes kernel launches across a machine's accelerators."""

    def __init__(self, machine, process, policy="least-loaded"):
        if isinstance(policy, str):
            if policy not in POLICIES:
                raise CudaError(
                    f"unknown scheduling policy {policy!r}; "
                    f"known: {sorted(POLICIES)}"
                )
            policy = POLICIES[policy]()
        self.machine = machine
        self.policy = policy
        self.contexts = [
            DriverContext(machine, process, gpu=gpu) for gpu in machine.gpus
        ]
        self.launch_counts = [0] * len(machine.gpus)

    @property
    def gpus(self):
        return self.machine.gpus

    def context_for(self, index):
        return self.contexts[index]

    def launch(self, kernel, args, earliest=None):
        """Schedule one kernel on the policy-selected accelerator.

        Returns ``(gpu_index, completion)`` so callers can keep affinity
        for follow-up work.
        """
        index = self.policy.select(self, kernel, args)
        if not 0 <= index < len(self.gpus):
            raise CudaError(
                f"policy {self.policy.name!r} selected bad GPU index {index}"
            )
        self.launch_counts[index] += 1
        completion = self.contexts[index].launch(
            kernel, args, earliest=earliest
        )
        return index, completion

    def synchronize(self):
        """Wait for every accelerator's queue to drain."""
        for gpu in self.gpus:
            gpu.synchronize()
        return self.machine.clock.now
