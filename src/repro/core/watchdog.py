"""Virtual-time deadline supervision for transfers, kernels and recovery.

A :class:`Watchdog` arms :class:`Deadline` objects around operations that
could wedge on a failing device — a DMA retry loop, a kernel in flight, a
recovery sequence — and escalates when the virtual clock passes the
budget.  Everything is deterministic: deadlines are plain comparisons
against :attr:`SimClock.now`, there are no threads and no wall-clock
timers, so a supervised run replays identically.

The escalation ladder itself lives in
:class:`~repro.core.recovery.RecoveryPolicy` (retry with backoff →
re-route via host → declare the device lost); the watchdog only answers
"has this operation exceeded its budget?" and records every trip.  Time
spent waiting out a deadline is charged to the ``Retry`` category, like
all other recovery overhead.
"""

from repro.sim.tracing import Category


class Deadline:
    """One armed virtual-time budget."""

    __slots__ = ("kind", "label", "armed_at", "expires_at", "armed")

    def __init__(self, kind, label, armed_at, expires_at):
        self.kind = kind
        self.label = label
        self.armed_at = armed_at
        self.expires_at = expires_at
        self.armed = True

    @property
    def budget_s(self):
        return self.expires_at - self.armed_at

    def __repr__(self):
        state = "armed" if self.armed else "disarmed"
        return (
            f"Deadline({self.kind} {self.label!r} {state}, "
            f"expires={self.expires_at:.6f})"
        )


class Watchdog:
    """Arms, checks and records virtual-time deadlines."""

    def __init__(self, clock, accounting=None, on_trip=None):
        self.clock = clock
        self.accounting = accounting
        self.on_trip = on_trip
        #: Every escalation, in trip order: dicts with kind/label/armed_at/
        #: expires_at/tripped_at/action.  Chaos reports surface these.
        self.trips = []

    def arm(self, kind, budget_s, label=""):
        """Arm a deadline ``budget_s`` virtual seconds from now."""
        if budget_s <= 0:
            raise ValueError(
                f"watchdog budget must be positive, got {budget_s}"
            )
        now = self.clock.now
        return Deadline(kind, label, now, now + budget_s)

    def disarm(self, deadline):
        """The supervised operation completed in time."""
        deadline.armed = False

    def expired(self, deadline):
        """True when the armed deadline's budget has elapsed."""
        return deadline.armed and self.clock.now >= deadline.expires_at

    def wait_out(self, deadline):
        """Advance the clock to the deadline's expiry, charged as Retry.

        Used when escalation must not act early (the invariant
        :meth:`trip` enforces) but the supervised operation is already
        known dead — e.g. declaring a wedged transfer's device lost.
        """
        remaining = deadline.expires_at - self.clock.now
        if remaining > 0:
            self.accounting_charge(remaining)
            self.clock.advance(remaining)
        return self.clock.now

    def accounting_charge(self, duration):
        if self.accounting is not None:
            self.accounting.charge(
                Category.RETRY, duration, label="watchdog-wait"
            )

    def trip(self, deadline, action):
        """Record an escalation.  Never legal before the deadline expires.

        Raising here (rather than silently clamping) turns any "watchdog
        fired early" bug into a loud failure — the property the hypothesis
        suite pins down.
        """
        now = self.clock.now
        if now < deadline.expires_at:
            raise ValueError(
                f"watchdog trip at {now:.9f} before deadline "
                f"{deadline.expires_at:.9f} ({deadline.kind} "
                f"{deadline.label!r})"
            )
        deadline.armed = False
        record = {
            "kind": deadline.kind,
            "label": deadline.label,
            "armed_at": deadline.armed_at,
            "expires_at": deadline.expires_at,
            "tripped_at": now,
            "action": action,
        }
        self.trips.append(record)
        if self.on_trip is not None:
            self.on_trip(record)
        return record
