"""Memory blocks, their coherence states, and the flat block-state table.

Figure 6 of the paper defines three states for a shared memory range, all
maintained by the CPU (the asymmetry: accelerators perform no coherence
actions):

* **INVALID** -- the up-to-date copy lives only in accelerator memory; any
  CPU access must transfer it back first,
* **DIRTY** -- the CPU holds an updated copy that must be flushed to the
  accelerator before the next kernel call,
* **READ_ONLY** -- both copies match; no transfer is needed either way.

Batch- and lazy-update track whole objects (one block per region);
rolling-update divides objects into fixed-size blocks.

Since blocks within a region are fixed-size, per-region state lives in a
flat numpy ``uint8`` array (:class:`BlockTable`): address-to-index is
shift/mask arithmetic (or one integer division for non-power-of-two block
sizes) and bulk state transitions are single vectorized stores.  The
:class:`Block` class remains as a thin façade over one table slot so
reprs, tests and protocol single-block transitions keep their object view.
"""

import enum

import numpy as np


class BlockState(enum.Enum):
    INVALID = "invalid"
    DIRTY = "dirty"
    READ_ONLY = "read-only"

    def __str__(self):
        return self.value


#: Stable uint8 codes for the flat state arrays.
INVALID_CODE = 0
DIRTY_CODE = 1
READ_ONLY_CODE = 2

#: code -> BlockState (index with an int code).
CODE_STATES = (BlockState.INVALID, BlockState.DIRTY, BlockState.READ_ONLY)

# Attach the code to each member so hot paths avoid a dict lookup.
BlockState.INVALID.code = INVALID_CODE
BlockState.DIRTY.code = DIRTY_CODE
BlockState.READ_ONLY.code = READ_ONLY_CODE


class BlockTable:
    """Flat array-backed block bookkeeping for one region.

    One ``uint8`` per block holds the Figure 6 state; a parallel boolean
    array marks membership in rolling-update's dirty FIFO (so membership
    tests are O(1) bitmap reads instead of list scans).  Blocks are
    fixed-size within a region, so locating the block for an address is
    a shift (power-of-two block sizes) or one integer division — the
    Section 5.2 balanced tree is only needed to locate the *region*.
    """

    __slots__ = (
        "base", "size", "block_size", "n_blocks", "states", "dirty_bits",
        "owners", "_shift",
    )

    def __init__(self, base, size, block_size):
        if block_size <= 0:
            raise ValueError(f"block size must be positive, got {block_size}")
        self.base = base
        self.size = size
        self.block_size = block_size
        self.n_blocks = -(-size // block_size)
        self.states = np.full(self.n_blocks, READ_ONLY_CODE, dtype=np.uint8)
        self.dirty_bits = np.zeros(self.n_blocks, dtype=bool)
        # Owner-device column: which accelerator holds each block's device
        # copy.  Regions migrate whole (blocks share one device range), so
        # the column is bulk-filled at placement/rehome time and dispatch
        # stays O(1) — no per-block owner search ever happens.
        self.owners = np.zeros(self.n_blocks, dtype=np.int16)
        # Power-of-two block sizes (the common case: pages, 256KB rolling
        # blocks, every Figure 11 sweep point) resolve by shift instead of
        # division.
        self._shift = (
            block_size.bit_length() - 1
            if block_size & (block_size - 1) == 0 else None
        )

    def index_of(self, address):
        """Block index containing ``address`` (no bounds check)."""
        offset = address - self.base
        if self._shift is not None:
            return offset >> self._shift
        return offset // self.block_size

    def start_of(self, index):
        return self.base + index * self.block_size

    def end_of(self, index):
        """Exclusive end of block ``index`` (last block may be short)."""
        return min(self.base + (index + 1) * self.block_size,
                   self.base + self.size)

    def range_of(self, start, end):
        """Inclusive (first, last) block indices overlapping [start, end)."""
        return self.index_of(start), self.index_of(end - 1)

    def state_of(self, index):
        return CODE_STATES[self.states[index]]

    def set_state(self, index, state):
        self.states[index] = state.code

    def fill(self, state):
        """Vectorized whole-table transition."""
        self.states[:] = state.code

    def fill_range(self, first, last, state):
        """Vectorized transition over the inclusive index run [first, last]."""
        self.states[first:last + 1] = state.code

    def indices_in(self, state, first=0, last=None):
        """Ascending indices in ``state`` within the inclusive run."""
        if last is None:
            last = self.n_blocks - 1
        window = self.states[first:last + 1]
        return np.flatnonzero(window == state.code) + first

    def indices_not_in(self, state):
        """Ascending indices whose state differs from ``state``."""
        return np.flatnonzero(self.states != state.code)

    def count_in(self, state):
        return int(np.count_nonzero(self.states == state.code))

    def run_length(self, first, last, code):
        """Length of the run of blocks in state ``code`` starting at
        ``first``, clipped to the inclusive window [first, last]."""
        window = self.states[first:last + 1]
        breaks = np.flatnonzero(window != code)
        return int(breaks[0]) if len(breaks) else len(window)


def index_runs(indices):
    """Group an ascending index array into inclusive (first, last) runs.

    Run-length grouping turns per-block transitions into contiguous range
    operations: n adjacent blocks demote or re-protect with one mprotect
    instead of n.
    """
    if len(indices) == 0:
        return []
    breaks = np.flatnonzero(np.diff(indices) > 1)
    firsts = np.concatenate(([0], breaks + 1))
    lasts = np.concatenate((breaks, [len(indices) - 1]))
    return [
        (int(indices[f]), int(indices[l])) for f, l in zip(firsts, lasts)
    ]


class Block:
    """One coherence unit of a shared region — a façade over a table slot.

    State reads/writes delegate to the region's :class:`BlockTable`, so a
    façade is never stale; two façades for the same slot compare equal.
    """

    __slots__ = ("region", "index")

    def __init__(self, region, index, interval=None, state=None):
        self.region = region
        self.index = index
        if state is not None:
            region.table.set_state(index, state)

    @property
    def interval(self):
        from repro.util.intervals import Interval

        table = self.region.table
        return Interval(table.start_of(self.index), table.end_of(self.index))

    @property
    def state(self):
        return CODE_STATES[self.region.table.states[self.index]]

    @state.setter
    def state(self, value):
        self.region.table.states[self.index] = value.code

    @property
    def host_start(self):
        return self.region.table.start_of(self.index)

    @property
    def size(self):
        table = self.region.table
        return table.end_of(self.index) - table.start_of(self.index)

    @property
    def device_start(self):
        """Where this block's bytes live in accelerator memory."""
        return self.region.device_start + (
            self.host_start - self.region.host_start
        )

    def __eq__(self, other):
        return (
            isinstance(other, Block)
            and other.region is self.region
            and other.index == self.index
        )

    def __hash__(self):
        return hash((id(self.region), self.index))

    def __repr__(self):
        return (
            f"Block(#{self.index} {self.interval} {self.state} "
            f"of {self.region.name})"
        )
