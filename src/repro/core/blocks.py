"""Memory blocks and their coherence states.

Figure 6 of the paper defines three states for a shared memory range, all
maintained by the CPU (the asymmetry: accelerators perform no coherence
actions):

* **INVALID** -- the up-to-date copy lives only in accelerator memory; any
  CPU access must transfer it back first,
* **DIRTY** -- the CPU holds an updated copy that must be flushed to the
  accelerator before the next kernel call,
* **READ_ONLY** -- both copies match; no transfer is needed either way.

Batch- and lazy-update track whole objects (one block per region);
rolling-update divides objects into fixed-size blocks.
"""

import enum


class BlockState(enum.Enum):
    INVALID = "invalid"
    DIRTY = "dirty"
    READ_ONLY = "read-only"

    def __str__(self):
        return self.value


class Block:
    """One coherence unit of a shared region."""

    __slots__ = ("region", "index", "interval", "state")

    def __init__(self, region, index, interval, state=BlockState.READ_ONLY):
        self.region = region
        self.index = index
        self.interval = interval
        self.state = state

    @property
    def host_start(self):
        return self.interval.start

    @property
    def size(self):
        return self.interval.size

    @property
    def device_start(self):
        """Where this block's bytes live in accelerator memory."""
        return self.region.device_start + (
            self.interval.start - self.region.host_start
        )

    def __repr__(self):
        return (
            f"Block(#{self.index} {self.interval} {self.state} "
            f"of {self.region.name})"
        )
