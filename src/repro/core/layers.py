"""The accelerator abstraction layers of Figure 5.

GMAC talks to the accelerator through one of two layers, selected at
construction time (the paper selects at application load time):

* the **runtime layer** mirrors going through the CUDA run-time: it pays
  the lazy context-initialisation cost, which is the configuration the
  paper uses when comparing GMAC against CUDA (both sides pay it);
* the **driver layer** mirrors the low-level CUDA driver API: full control
  and no initialisation cost, the configuration used to extract the
  Figure 10 execution-time break-downs.

Both layers charge the Figure 10 ``cudaMalloc``/``cudaFree``/``cudaLaunch``
categories.  Data transfers are *not* charged here — the shared-memory
manager accounts them as ``Copy`` (or leaves them overlapped when
asynchronous), so no virtual second is counted twice.
"""

from repro.sim.tracing import Category
from repro.hw.interconnect import Direction
from repro.cuda.driver import DriverContext


class AcceleratorLayer:
    """GMAC's view of the accelerator: allocation, DMA, launch, sync."""

    RUNTIME_INIT_COST_S = 1.0e-3

    def __init__(self, machine, process, gpu=None, flavour="driver",
                 init_cost_s=None):
        if flavour not in ("driver", "runtime"):
            raise ValueError(f"unknown abstraction layer flavour {flavour!r}")
        self.machine = machine
        self.flavour = flavour
        self.accounting = machine.accounting
        self.driver = DriverContext(machine, process, gpu=gpu)
        #: One context per device on multi-device machines; every owner
        #: routes through :meth:`context_for`.  Legacy machines keep the
        #: single primary context, so owner-less calls are byte-identical
        #: to the pre-multi-device layer.
        if getattr(machine, "multi_device", False):
            self.contexts = [
                self.driver if candidate is self.driver.gpu
                else DriverContext(machine, process, gpu=candidate)
                for candidate in machine.gpus
            ]
        else:
            self.contexts = [self.driver]
        self.init_cost_s = (
            self.RUNTIME_INIT_COST_S if init_cost_s is None else init_cost_s
        )
        self._initialized = flavour == "driver"

    @property
    def gpu(self):
        return self.driver.gpu

    def context_for(self, owner):
        """The driver context owning device ``owner`` (None = primary)."""
        if owner is None:
            return self.driver
        contexts = self.contexts
        if owner >= len(contexts):
            return self.driver
        return contexts[owner]

    def gpu_for(self, owner):
        return self.context_for(owner).gpu

    def _ensure_initialized(self):
        if not self._initialized:
            self._initialized = True
            self.machine.clock.advance(self.init_cost_s)
            self.accounting.charge(
                Category.CUDA_MALLOC, self.init_cost_s, label="cuda-init"
            )

    # -- memory ---------------------------------------------------------------

    def alloc(self, size, owner=None):
        self._ensure_initialized()
        with self.accounting.measure(Category.CUDA_MALLOC, label="cudaMalloc"):
            return self.context_for(owner).mem_alloc(size)

    def alloc_at(self, address, size, owner=None):
        """Placement allocation for virtual-memory accelerators."""
        self._ensure_initialized()
        with self.accounting.measure(Category.CUDA_MALLOC, label="cudaMalloc"):
            return self.context_for(owner).mem_alloc_at(address, size)

    def free(self, address, owner=None):
        with self.accounting.measure(Category.CUDA_FREE, label="cudaFree"):
            self.context_for(owner).mem_free(address)

    # -- DMA (un-accounted; the manager charges Copy where appropriate) --------

    def to_device(self, device, host, size, sync=True, owner=None):
        return self.context_for(owner).memcpy_h2d(device, host, size, sync=sync)

    def to_host(self, host, device, size, sync=True, owner=None):
        return self.context_for(owner).memcpy_d2h(host, device, size, sync=sync)

    def device_memset(self, device, value, size, owner=None):
        return self.context_for(owner).memset_d8(device, value, size)

    def device_memcpy(self, destination, source, size, owner=None):
        return self.context_for(owner).memcpy_d2d(destination, source, size)

    def pending_h2d(self):
        """When the last queued host-to-device transfer will finish."""
        if len(self.contexts) == 1:
            return self.machine.link.resource(Direction.H2D).available_at
        return max(
            context.link.resource(Direction.H2D).available_at
            for context in self.contexts
        )

    # -- execution ---------------------------------------------------------------

    def launch(self, kernel, args, earliest=None, owner=None):
        self._ensure_initialized()
        with self.accounting.measure(Category.CUDA_LAUNCH, label=kernel.name):
            return self.context_for(owner).launch(
                kernel, args, earliest=earliest
            )

    def synchronize(self):
        """Drain the GPU/link timelines (virtual time only).

        Deferred kernel numerics survive a synchronize — adsmSync observes
        completions, not device bytes.  They replay on the next byte
        access (a coherence fetch, a DMA, a memset, or a kernel view).
        """
        now = self.driver.synchronize()
        for context in self.contexts:
            if context is not self.driver and context.alive:
                now = context.synchronize()
        return now

    def materialize_numerics(self):
        """Force pending deferred kernel numerics to execute now.

        Recovery uses this to pin down device bytes at a known point;
        normal coherence traffic never needs it (every byte observer
        flushes through the device memory's observation barrier).
        """
        for context in self.contexts:
            context.gpu.materialize()
