"""Shared regions: one ``adsmAlloc`` allocation each.

A region records the host virtual range, the device range backing it, and
the list of blocks it is divided into.  In the common case the host and
device start addresses are *equal* — the Section 4.2 trick of mmap-ing
system memory at the exact range ``cudaMalloc`` returned, so one pointer
works on both processors.  Regions created by ``adsmSafeAlloc`` (the
multi-accelerator fallback) carry different addresses, and ``adsmSafe()``
performs the translation.
"""

from repro.util.intervals import Interval
from repro.os.paging import page_ceil
from repro.core.blocks import Block


class SharedRegion:
    """One shared data object and its coherence blocks."""

    def __init__(self, name, host_start, device_start, size, block_size):
        if block_size <= 0:
            raise ValueError(f"block size must be positive, got {block_size}")
        self.name = name
        self.host_start = host_start
        self.device_start = device_start
        self.size = size
        #: Blocks cover the whole *mapped* (page-rounded) range so that
        #: protection changes are always page aligned; block sizes are
        #: rounded up to pages for the same reason (a "whole object" block
        #: for a 4-byte region is still one page).
        self.mapped_size = page_ceil(size)
        self.block_size = min(page_ceil(block_size), self.mapped_size)
        self.interval = Interval.sized(host_start, self.mapped_size)
        self.blocks = self._build_blocks()

    def _build_blocks(self):
        blocks = []
        for index, chunk in enumerate(self.interval.split_chunks(self.block_size)):
            blocks.append(Block(self, index, chunk))
        return blocks

    @property
    def is_aliased(self):
        """True when host and device use the same numeric addresses."""
        return self.host_start == self.device_start

    def device_address_of(self, host_address):
        """Translate a host address inside this region to its device twin."""
        if not self.interval.contains(host_address) and host_address != self.interval.end:
            raise ValueError(
                f"address {host_address:#x} not inside region {self.name}"
            )
        return self.device_start + (host_address - self.host_start)

    def block_containing(self, host_address):
        """The block holding ``host_address`` (regions are contiguous)."""
        index = (host_address - self.host_start) // self.block_size
        if index < 0 or index >= len(self.blocks):
            raise ValueError(
                f"address {host_address:#x} not inside region {self.name}"
            )
        return self.blocks[index]

    def blocks_overlapping(self, interval):
        """All blocks intersecting ``interval`` (host addressing)."""
        span = self.interval.intersection(interval)
        if not span:
            return []
        first = (span.start - self.host_start) // self.block_size
        last = (span.end - 1 - self.host_start) // self.block_size
        return self.blocks[first:last + 1]

    def blocks_in_state(self, state):
        return [block for block in self.blocks if block.state is state]

    def set_all_states(self, state):
        for block in self.blocks:
            block.state = state

    def __repr__(self):
        return (
            f"SharedRegion({self.name!r}, host={self.host_start:#x}, "
            f"device={self.device_start:#x}, size={self.size}, "
            f"blocks={len(self.blocks)})"
        )
