"""Shared regions: one ``adsmAlloc`` allocation each.

A region records the host virtual range, the device range backing it, and
the flat :class:`~repro.core.blocks.BlockTable` it is divided into.  In the
common case the host and device start addresses are *equal* — the Section
4.2 trick of mmap-ing system memory at the exact range ``cudaMalloc``
returned, so one pointer works on both processors.  Regions created by
``adsmSafeAlloc`` (the multi-accelerator fallback) carry different
addresses, and ``adsmSafe()`` performs the translation.
"""

from repro.util.intervals import Interval
from repro.os.paging import page_ceil
from repro.core.blocks import Block, BlockTable, CODE_STATES


class SharedRegion:
    """One shared data object and its coherence blocks."""

    def __init__(self, name, host_start, device_start, size, block_size):
        if block_size <= 0:
            raise ValueError(f"block size must be positive, got {block_size}")
        self.name = name
        self.host_start = host_start
        self.device_start = device_start
        self.size = size
        #: Blocks cover the whole *mapped* (page-rounded) range so that
        #: protection changes are always page aligned; block sizes are
        #: rounded up to pages for the same reason (a "whole object" block
        #: for a 4-byte region is still one page).
        self.mapped_size = page_ceil(size)
        self.block_size = min(page_ceil(block_size), self.mapped_size)
        self.interval = Interval.sized(host_start, self.mapped_size)
        self.table = BlockTable(host_start, self.mapped_size, self.block_size)
        #: Owning device index: where the region's device range lives.
        #: Always 0 on single-device machines; multi-device placement (and
        #: failover rehoming) keeps this and the table's owner column in
        #: sync via :meth:`set_owner`/:meth:`rehome`.
        self.owner = 0
        self._blocks = None
        #: Cached (epoch, eq_steps, in_steps) fault-cost arrays; owned by
        #: the manager (see Manager._fault_steps_for).
        self.fault_steps = None
        #: Transfer trace labels, prebuilt once: the manager attaches one to
        #: every copy, and the f-string showed up in fault-heavy profiles.
        self.flush_label = f"flush:{name}"
        self.eager_label = f"eager:{name}"
        self.fetch_label = f"fetch:{name}"
        self.peer_label = f"peer:{name}"

    def set_owner(self, owner):
        """Record the owning device (attribute + table column together)."""
        self.owner = owner
        self.table.owners[:] = owner

    def rehome(self, device_start, owner):
        """Move the region's device residence (migration or failover).

        The host range never moves — only the device twin does, so a
        rehomed region simply stops being address-aliased, exactly like a
        region born via ``adsmSafeAlloc``.
        """
        self.device_start = device_start
        self.set_owner(owner)

    @property
    def blocks(self):
        """Block façades, built lazily: hot paths work on the table arrays
        and never materialize these."""
        if self._blocks is None:
            self._blocks = [
                Block(self, index) for index in range(self.table.n_blocks)
            ]
        return self._blocks

    @property
    def n_blocks(self):
        return self.table.n_blocks

    @property
    def is_aliased(self):
        """True when host and device use the same numeric addresses."""
        return self.host_start == self.device_start

    def device_address_of(self, host_address):
        """Translate a host address inside this region to its device twin."""
        if not self.interval.contains(host_address) and host_address != self.interval.end:
            raise ValueError(
                f"address {host_address:#x} not inside region {self.name}"
            )
        return self.device_start + (host_address - self.host_start)

    def block_containing(self, host_address):
        """The block holding ``host_address`` (regions are contiguous)."""
        index = self.table.index_of(host_address)
        if index < 0 or index >= self.table.n_blocks:
            raise ValueError(
                f"address {host_address:#x} not inside region {self.name}"
            )
        return self.blocks[index]

    def block_range(self, interval):
        """Inclusive (first, last) block indices under ``interval``, or
        None when the intersection with the region is empty."""
        span = self.interval.intersection(interval)
        if not span:
            return None
        return self.table.range_of(span.start, span.end)

    def blocks_overlapping(self, interval):
        """All blocks intersecting ``interval`` (host addressing)."""
        indices = self.block_range(interval)
        if indices is None:
            return []
        first, last = indices
        return self.blocks[first:last + 1]

    def blocks_in_state(self, state):
        blocks = self.blocks
        return [blocks[int(i)] for i in self.table.indices_in(state)]

    def set_all_states(self, state):
        self.table.fill(state)

    def __repr__(self):
        return (
            f"SharedRegion({self.name!r}, host={self.host_start:#x}, "
            f"device={self.device_start:#x}, size={self.size}, "
            f"blocks={self.table.n_blocks})"
        )
