"""Library interposition of I/O and bulk memory operations (Section 4.4).

Two problems, two fixes:

* **I/O.**  ``read()`` into a shared object faults block by block as the
  kernel's copy loop crosses protection boundaries, and once any bytes have
  moved the call cannot be restarted.  GMAC therefore "overloads I/O calls
  to perform any I/O read and write operations affecting shared data
  objects in block sized memory chunks": each chunk is pre-faulted (so its
  block is accessible) before the un-restartable copy touches it.

* **Bulk memory.**  ``memset``/``memcpy`` over shared objects are routed to
  accelerator-specific calls (``cudaMemset``/``cudaMemcpy``) for the fully
  covered blocks — avoiding page faults and intermediate host copies — and
  fall back to the protection-checked host path for partial block edges and
  non-shared ranges.

The overloads receive the default libc implementation and forward
non-shared ranges to it unchanged, like an ``LD_PRELOAD`` shim calling
``dlsym(RTLD_NEXT)``.
"""

import numpy as np

from repro.util.intervals import Interval
from repro.core.blocks import BlockState
from repro.os.paging import AccessKind


def split_shared(manager, interval):
    """Cut ``interval`` into (piece, region-or-None) segments, in order."""
    segments = []
    cursor = interval.start
    for region_interval, region in manager.shared_overlaps(interval):
        piece = region_interval.intersection(interval)
        if cursor < piece.start:
            segments.append((Interval(cursor, piece.start), None))
        segments.append((piece, region))
        cursor = piece.end
    if cursor < interval.end:
        segments.append((Interval(cursor, interval.end), None))
    return segments


def block_pieces(region, interval):
    """Yield (block, piece, fully_covered) for blocks under ``interval``."""
    for block in region.blocks_overlapping(interval):
        piece = block.interval.intersection(interval)
        yield block, piece, piece == block.interval


class GmacInterposer:
    """Installs GMAC's overloads into a process's libc."""

    def __init__(self, gmac):
        self.gmac = gmac
        self._installed = []

    @property
    def manager(self):
        return self.gmac.manager

    @property
    def process(self):
        return self.gmac.process

    def _guard(self, kind, access, address, size, extra=None):
        """Race-monitor bookkeeping for one interposed libc call.

        Judges the application-visible access against any open kernel
        windows *before* the work happens, then marks the call internal so
        the coherence traffic it triggers (pre-faults, device-side bulk
        ops, peer DMA) is not misattributed.  Returns a context token for
        :meth:`_unguard`, or None when no monitor is attached.
        """
        monitor = self.gmac.monitor
        if monitor is None:
            return None
        monitor.notify_io(kind, access, Interval.sized(address, size))
        if extra is not None:
            monitor.notify_io(kind, extra[0], extra[1])
        monitor.enter_internal()
        return monitor

    @staticmethod
    def _unguard(monitor):
        if monitor is not None:
            monitor.exit_internal()

    def _note_bulk(self, region, index, detail):
        self.manager.note_coherence("bulk", region.name, index, index,
                                    detail=detail)

    def install(self, libc):
        """Interpose read/write/memset/memcpy on ``libc``."""
        for name, factory in (
            ("read", self._make_read),
            ("write", self._make_write),
            ("memset", self._make_memset),
            ("memcpy", self._make_memcpy),
        ):
            previous = libc.interpose(name, factory)
            self._installed.append((libc, name, previous))

    def uninstall(self):
        for libc, name, previous in reversed(self._installed):
            libc.restore(name, previous)
        self._installed.clear()

    # -- I/O ----------------------------------------------------------------------

    def _make_read(self, default):
        def read(handle, address, size):
            token = self._guard("read", AccessKind.WRITE, address, size)
            try:
                return self._read(default, handle, address, size)
            finally:
                self._unguard(token)

        return read

    def _read(self, default, handle, address, size):
        total = 0
        for piece, region in split_shared(
            self.manager, Interval.sized(address, size)
        ):
            if region is None:
                # Plain memory cannot fault, but a faulty disk can still
                # deliver short; keep the POSIX resume loop here too.
                total += self._read_fully(
                    default, handle, piece.start, piece.size
                )
                continue
            for block, chunk, full in block_pieces(region, piece):
                if full and self.gmac.peer_dma:
                    total += self._peer_read(handle, block)
                    continue
                # Pre-fault the chunk's block so the (un-restartable)
                # copy below cannot trip over a protection boundary.
                self.process.touch(chunk.start, chunk.size, AccessKind.WRITE)
                total += self._read_fully(
                    default, handle, chunk.start, chunk.size
                )
        return total

    def _read_fully(self, default, handle, start, size):
        """Resume short reads until the chunk is full or EOF.

        POSIX read() may deliver a prefix (and a faulty disk will); because
        the chunk's block is already pre-faulted, re-issuing the call for
        the remainder is safe — unlike the un-interposed path, where a
        partial read that then faults is not restartable (Section 4.4).
        """
        total = int(default(handle, start, size))
        while 0 < total < size:
            got = int(default(handle, start + total, size - total))
            if got == 0:
                break  # genuine end of file, not a short delivery
            total += got
            recovery = self.gmac.manager.recovery
            if recovery is not None:
                recovery.note_short_read_resume()
        return total

    def _peer_read(self, handle, block):
        """Hardware peer DMA: file data lands straight in device memory.

        No intermediate system-memory copy, no page fault, no later flush;
        the accelerator copy becomes canonical.  This is the Section 7
        "hardware supported peer DMA" the paper argues for; GMAC's
        software-only implementation "still requires intermediate copies".

        ``memory.write`` runs the device-write hook (DESIGN.md §14):
        outstanding ledger extents sourced from the overwritten range are
        COW-snapshotted and any synced-run claims over it drop, so a
        later flush knows the device bytes changed underneath it.
        """
        from repro.sim.tracing import Category
        from repro.hw.interconnect import Direction

        with self.gmac.accounting.measure(Category.IO_READ, label="peer-dma"):
            data = handle.read(block.size)
            if not data:
                return 0
            context = self.gmac.layer.context_for(block.region.owner)
            context.gpu.memory.write(block.device_start, data)
            self.manager.bytes_to_accelerator += len(data)
            context.link.transfer(
                len(data), Direction.H2D, label="peer-dma"
            )
            self._note_bulk(block.region, block.index, "peer-dma")
            self.gmac.protocol.discard_block(block)
            return len(data)

    def _make_write(self, default):
        def write(handle, address, size):
            token = self._guard("write", AccessKind.READ, address, size)
            try:
                return self._write(default, handle, address, size)
            finally:
                self._unguard(token)

        return write

    def _write(self, default, handle, address, size):
        total = 0
        for piece, region in split_shared(
            self.manager, Interval.sized(address, size)
        ):
            if region is None:
                total += default(handle, piece.start, piece.size)
                continue
            for block, chunk, full in block_pieces(region, piece):
                if (full and self.gmac.peer_dma
                        and block.state is BlockState.INVALID):
                    total += self._peer_write(handle, block)
                    continue
                # Reading invalid data faults it back one block at a
                # time; pre-faulting keeps the write() copy whole.
                self.process.touch(chunk.start, chunk.size, AccessKind.READ)
                total += default(handle, chunk.start, chunk.size)
        return total

    def _peer_write(self, handle, block):
        """Peer DMA outbound: device memory streams straight to the file,
        without faulting the block back into system memory."""
        from repro.sim.tracing import Category
        from repro.hw.interconnect import Direction

        with self.gmac.accounting.measure(Category.IO_WRITE, label="peer-dma"):
            # Borrow the device bytes; the file write is the only copy.
            context = self.gmac.layer.context_for(block.region.owner)
            data = context.gpu.memory.view(
                block.device_start, np.uint8, block.size
            )
            context.link.transfer(
                len(data), Direction.D2H, label="peer-dma"
            )
            return handle.write(data)

    # -- bulk memory -----------------------------------------------------------------

    def _make_memset(self, default):
        def memset(address, value, size):
            token = self._guard("memset", AccessKind.WRITE, address, size)
            try:
                return self._memset(default, address, value, size)
            finally:
                self._unguard(token)

        return memset

    def _memset(self, default, address, value, size):
        protocol = self.gmac.protocol
        for piece, region in split_shared(
            self.manager, Interval.sized(address, size)
        ):
            if region is None or not protocol.supports_device_bulk:
                default(piece.start, value, piece.size)
                continue
            for block, chunk, full in block_pieces(region, piece):
                if full:
                    # Device-side fill; the device copy becomes
                    # canonical and the host copy is discarded.
                    self.gmac.layer.device_memset(
                        block.device_start, value, block.size,
                        owner=region.owner,
                    )
                    self._note_bulk(region, block.index, "memset")
                    protocol.discard_block(block)
                else:
                    default(chunk.start, value, chunk.size)
        return address

    def _make_memcpy(self, default):
        def memcpy(destination, source, size):
            token = self._guard(
                "memcpy", AccessKind.WRITE, destination, size,
                extra=(AccessKind.READ, Interval.sized(source, size)),
            )
            try:
                return self._memcpy(default, destination, source, size)
            finally:
                self._unguard(token)

        return memcpy

    def _memcpy(self, default, destination, source, size):
        protocol = self.gmac.protocol
        if not protocol.supports_device_bulk:
            return default(destination, source, size)
        for piece, dst_region in split_shared(
            self.manager, Interval.sized(destination, size)
        ):
            src_start = source + (piece.start - destination)
            if dst_region is None:
                self._copy_to_plain(piece, src_start, default)
            else:
                self._copy_to_shared(
                    dst_region, piece, src_start, default
                )
        return destination

    def _copy_to_plain(self, dst_piece, src_start, default):
        """Destination is ordinary memory; source may still be shared."""
        manager = self.manager
        for src_piece, src_region in split_shared(
            manager, Interval.sized(src_start, dst_piece.size)
        ):
            dst_start = dst_piece.start + (src_piece.start - src_start)
            if src_region is None:
                default(dst_start, src_piece.start, src_piece.size)
                continue
            for block, chunk, _ in block_pieces(src_region, src_piece):
                if block.state is BlockState.INVALID:
                    # Stream straight from accelerator memory into the
                    # destination buffer, never faulting the block in.
                    device = src_region.device_address_of(chunk.start)
                    manager.bytes_to_host += chunk.size
                    host = dst_start + (chunk.start - src_piece.start)
                    manager._attempt_transfer(
                        lambda: self.gmac.layer.to_host(
                            host, device, chunk.size, sync=True,
                            owner=src_region.owner,
                        ),
                        label="memcpy:d2h",
                        device=src_region.owner,
                    )
                else:
                    default(
                        dst_start + (chunk.start - src_piece.start),
                        chunk.start,
                        chunk.size,
                    )

    def _copy_to_shared(self, dst_region, dst_piece, src_start, default):
        """Destination is shared; route full blocks through the device."""
        manager = self.manager
        protocol = self.gmac.protocol
        for block, chunk, full in block_pieces(dst_region, dst_piece):
            chunk_src = src_start + (chunk.start - dst_piece.start)
            if not full:
                default(chunk.start, chunk_src, chunk.size)
                continue
            src_region = manager.region_at(chunk_src)
            device_dst = dst_region.device_address_of(chunk.start)
            if src_region is not None and manager.region_at(
                chunk_src + chunk.size - 1
            ) is src_region:
                if src_region.owner != dst_region.owner:
                    # Cross-device shared -> shared: the d2d fast path only
                    # exists within one device's memory; stage via host.
                    default(chunk.start, chunk_src, chunk.size)
                    continue
                # Shared -> shared: flush the source, then device-to-device.
                src_span = Interval.sized(chunk_src, chunk.size)
                manager.ensure_device_canonical(src_region, src_span)
                self.gmac.layer.device_memcpy(
                    device_dst,
                    src_region.device_address_of(chunk_src),
                    chunk.size,
                    owner=dst_region.owner,
                )
            elif src_region is None:
                # Plain -> shared: one DMA instead of fault-by-fault writes.
                manager.bytes_to_accelerator += chunk.size
                manager._attempt_transfer(
                    lambda: self.gmac.layer.to_device(
                        device_dst, chunk_src, chunk.size, sync=True,
                        owner=dst_region.owner,
                    ),
                    label="memcpy:h2d",
                    device=dst_region.owner,
                )
            else:
                # The source straddles a shared boundary; keep it simple.
                default(chunk.start, chunk_src, chunk.size)
                continue
            self._note_bulk(dst_region, block.index, "memcpy")
            protocol.discard_block(block)
