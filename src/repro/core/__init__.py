"""GMAC: the paper's contribution — a user-level ADSM run-time.

The public entry point is :class:`~repro.core.api.Gmac`, which implements
the Table 1 API (``adsmAlloc``, ``adsmFree``, ``adsmCall``, ``adsmSync``)
plus the Section 4.2 safe variants (``adsmSafeAlloc``, ``adsmSafe``), over
a pluggable coherence protocol (batch-, lazy- or rolling-update; Figure 6)
and one of two accelerator abstraction layers (runtime or driver;
Figure 5).  Library interposition of I/O and bulk-memory calls
(Section 4.4) is installed automatically.
"""

from repro.core.api import Gmac, SharedPtr
from repro.core.blocks import Block, BlockState
from repro.core.region import SharedRegion
from repro.core.costs import GmacCostModel
from repro.core.manager import Manager
from repro.core.protocols import (
    Protocol,
    BatchUpdate,
    LazyUpdate,
    RollingUpdate,
    PROTOCOLS,
)

__all__ = [
    "Gmac",
    "SharedPtr",
    "Block",
    "BlockState",
    "SharedRegion",
    "GmacCostModel",
    "Manager",
    "Protocol",
    "BatchUpdate",
    "LazyUpdate",
    "RollingUpdate",
    "PROTOCOLS",
]
