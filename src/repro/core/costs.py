"""GMAC's CPU-side cost model.

Section 5.2 identifies the dominant software overheads: the page-fault
signal path and the O(log2 n) balanced-tree search that locates the
faulting block ("the overhead due to the search time becomes the dominant
overhead" for small blocks).  These constants convert bookkeeping work into
virtual time; they are sized so that signal handling stays below 2% of
execution time for the Parboil workloads (Figure 10) while dominating the
4KB-block end of the Figure 11 micro-benchmark — the same balance the
paper measured.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class GmacCostModel:
    """Per-operation CPU costs of the GMAC library."""

    #: Fixed user-level cost of entering/leaving the fault handler, on top
    #: of the kernel's delivery overhead.
    signal_base_s: float = 0.3e-6

    #: Cost per balanced-tree comparison while locating the faulting block.
    signal_per_step_s: float = 0.04e-6

    #: Cost of an anonymous mmap/munmap call.
    mmap_s: float = 3.0e-6

    #: Cost of one mprotect call (GMAC batches protection changes per
    #: contiguous range, never per page).
    mprotect_s: float = 0.4e-6

    #: Bookkeeping cost of creating one block descriptor at adsmAlloc time
    #: (list node + tree insertion).
    block_setup_s: float = 0.15e-6

    #: Fixed cost of any GMAC API entry point.
    api_call_s: float = 0.5e-6
