"""The GMAC public API: Table 1 plus the Section 4.2 safe variants.

=================  ==========================================================
Call               Paper description
=================  ==========================================================
``adsmAlloc``      allocate shared memory, return one pointer for CPU + GPU
``adsmFree``       release a shared region
``adsmCall``       launch a kernel on the accelerator (releases objects)
``adsmSync``       wait for the accelerator (re-acquires objects)
``adsmSafeAlloc``  collision-safe allocation: the pointer is CPU-only
``adsmSafe``       translate a CPU pointer to its accelerator twin
=================  ==========================================================

The consistency model is release consistency with implicit primitives:
objects are released at ``adsmCall`` and acquired at ``adsmSync``
(Section 3.3) — no explicit ``cudaMemcpy`` anywhere in application code.
"""

from repro.util.errors import GmacError
from repro.sim.tracing import Category
from repro.os.process import Ptr
from repro.core.costs import GmacCostModel
from repro.core.layers import AcceleratorLayer
from repro.core.manager import Manager
from repro.core.protocols import PROTOCOLS
from repro.core.interpose import GmacInterposer
from repro.core.placement import PLACEMENTS, PlacementPolicy
from repro.core.recovery import RecoveryPolicy


class SharedPtr(Ptr):
    """A pointer into a shared region, usable by CPU code and kernels.

    CPU-side reads/writes go through the protection-checked process path
    (driving the coherence protocol); passing it to :meth:`Gmac.call`
    hands the kernel the accelerator-side address.
    """

    __slots__ = ("gmac",)

    def __init__(self, gmac, addr):
        super().__init__(gmac.process, addr)
        self.gmac = gmac

    def __add__(self, offset):
        return SharedPtr(self.gmac, self.addr + offset)

    @property
    def device_addr(self):
        return self.gmac.manager.translate(self.addr)

    @property
    def region(self):
        return self.gmac.manager.region_at(self.addr)


class Gmac:
    """One GMAC instance: a protocol, an abstraction layer, a manager.

    ``protocol`` is one of ``"batch"``, ``"lazy"``, ``"rolling"`` —
    selected at construction, as the paper selects at application load
    time.  ``layer`` is ``"runtime"`` (pays CUDA initialisation; used when
    comparing against CUDA) or ``"driver"`` (no init; used for
    break-downs).  ``protocol_options`` forwards to the protocol, e.g.
    ``{"block_size": 1 << 20, "rolling_size": 4}`` for rolling-update.
    """

    def __init__(
        self,
        machine,
        process,
        libc=None,
        protocol="rolling",
        layer="runtime",
        protocol_options=None,
        cost_model=None,
        interpose=True,
        gpu=None,
        peer_dma=False,
        recovery=None,
        placement=None,
    ):
        if protocol not in PROTOCOLS:
            raise GmacError(
                f"unknown protocol {protocol!r}; pick one of {sorted(PROTOCOLS)}"
            )
        self.machine = machine
        self.process = process
        self.accounting = machine.accounting
        self.costs = cost_model or GmacCostModel()
        self.layer = AcceleratorLayer(machine, process, gpu=gpu, flavour=layer)
        self.manager = Manager(
            machine, process, self.layer, cost_model=self.costs
        )
        self.protocol = PROTOCOLS[protocol](
            self.manager, **(protocol_options or {})
        )
        self.manager.protocol = self.protocol
        #: Placement policy: only meaningful on multi-device machines,
        #: where regions spread over devices and kernels chase their
        #: operands.  Accepts a PLACEMENTS name or a PlacementPolicy
        #: instance; single-device machines ignore it entirely.
        self.placement = None
        if getattr(machine, "multi_device", False):
            if placement is None:
                placement = "round-robin"
            if isinstance(placement, str):
                if placement not in PLACEMENTS:
                    raise GmacError(
                        f"unknown placement policy {placement!r}; "
                        f"pick one of {sorted(PLACEMENTS)}"
                    )
                placement = PLACEMENTS[placement](machine)
            elif not isinstance(placement, PlacementPolicy):
                raise GmacError(
                    "placement must be a policy name or a PlacementPolicy"
                )
            self.placement = placement
            self.manager.placement = placement
        elif placement is not None and not isinstance(placement, str):
            raise GmacError(
                "placement policies need a multi-device machine"
            )
        #: Fault recovery: armed explicitly via ``recovery=`` or
        #: automatically when the machine carries an enabled fault plan.
        #: Stays None on fault-free machines, so every hot path below is
        #: byte-identical to a build without fault injection.
        if recovery is None and machine.faults is not None and machine.faults.enabled:
            recovery = RecoveryPolicy()
        self.recovery = recovery
        if self.recovery is not None:
            self.recovery.attach(self)
            self.manager.recovery = self.recovery
        #: Hardware peer DMA (the paper's Section 7 suggestion): I/O moves
        #: directly between the device and accelerator memory, skipping the
        #: intermediate system-memory copy the software-only GMAC needs.
        self.peer_dma = peer_dma
        self.libc = libc
        self.interposer = None
        if interpose and libc is not None:
            self.interposer = GmacInterposer(self)
            self.interposer.install(libc)
        self._pending = []
        self.kernel_calls = 0
        #: Optional kernel-window race monitor (see
        #: :class:`repro.analysis.races.RaceDetector`); None — the default —
        #: keeps every boundary below a single attribute test.
        self.monitor = None
        #: Optional launch-time declaration checker (see
        #: :class:`repro.analysis.contracts.ContractMonitor`), armed by the
        #: sanitizer when the active protocol carries declared modes.
        self.contract_monitor = None

    # -- Table 1 -------------------------------------------------------------------

    def alloc(self, size, name=None):
        """adsmAlloc: one pointer valid on both processors."""
        region = self.manager.alloc(size, name=name, safe=False)
        return SharedPtr(self, region.host_start)

    def free(self, ptr):
        """adsmFree."""
        self.manager.free(int(ptr))

    def call(self, kernel, writes=None, **args):
        """adsmCall: release shared objects and launch ``kernel``.

        Keyword arguments are passed to the kernel; :class:`SharedPtr`
        values are translated to accelerator addresses.  Ordinary host
        pointers are rejected — accelerators cannot reach host memory
        (the ADSM asymmetry).  ``writes`` optionally lists the shared
        pointers the kernel writes (the Section 4.3 annotation hook);
        unlisted objects then stay valid on the host.

        With recovery armed (faulty machine), the launch runs under
        :meth:`RecoveryPolicy.run_call`: transient launch rejections are
        retried with backoff, and a device-lost event re-materialises
        accelerator memory from the host-canonical copies before the call
        sequence is re-issued.
        """
        written = None
        if writes is not None:
            written = {self.manager.region_at(int(ptr)) for ptr in writes}
            if None in written:
                raise GmacError("writes annotation names a non-shared pointer")
        # Declaration-driven protocols resolve an unannotated launch from
        # their per-object modes (a no-op for the Figure 6 protocols).
        written = self.protocol.call_written(written)
        if self.recovery is not None:
            return self.recovery.run_call(self, kernel, written, args)
        return self._issue_call(kernel, written, args)

    def _issue_call(self, kernel, written, args):
        """One attempt at the release+launch sequence (no recovery)."""
        contract_monitor = self.contract_monitor
        if contract_monitor is not None:
            contract_monitor.on_launch(kernel, {
                key: value.region
                for key, value in args.items()
                if isinstance(value, SharedPtr)
            })
        monitor = self.monitor
        if monitor is not None:
            monitor.enter_internal()
        try:
            with self.accounting.measure(Category.LAUNCH, label=kernel.name):
                self.machine.clock.advance(self.costs.api_call_s)
                # Multi-device: pick the executing device and migrate any
                # operand owned elsewhere onto it (peer DMA) BEFORE the
                # release, so dirty host blocks flush to the right device.
                owner = self._select_exec_device(written, args)
                earliest = self.manager.release_for_call(written=written)
                device_args = {}
                for key, value in args.items():
                    if isinstance(value, SharedPtr):
                        device_args[key] = value.device_addr
                    elif isinstance(value, Ptr):
                        raise GmacError(
                            f"kernel argument {key!r} is a host pointer; "
                            "accelerators cannot access host memory"
                        )
                    else:
                        device_args[key] = value
                completion = self.layer.launch(
                    kernel, device_args, earliest=earliest, owner=owner
                )
                self._pending.append(completion)
                self.kernel_calls += 1
        finally:
            if monitor is not None:
                monitor.exit_internal()
        # Only a *successful* launch releases objects to an in-flight
        # kernel: failed launches raise above, enqueue no numerics, and
        # open no race window.
        self.manager.note_coherence(
            "call", detail="*" if written is None else ",".join(
                sorted(region.name for region in written)
            ),
        )
        if monitor is not None:
            monitor.on_call(self.manager.regions(), written, kernel.name)
        return completion

    def _select_exec_device(self, written, args):
        """The device a call executes on (None = primary, single-device).

        The kernel runs where its first operand lives (written regions
        first, name-sorted for determinism, then pointer arguments in
        keyword order); every other operand owned elsewhere migrates to
        that device over peer DMA first, so a kernel never reads remote
        accelerator memory.
        """
        if self.placement is None:
            return None
        ordered = []
        if written:
            ordered.extend(sorted(written, key=lambda region: region.name))
        for value in args.values():
            if isinstance(value, SharedPtr):
                region = value.region
                if region is not None:
                    ordered.append(region)
        regions = []
        seen = set()
        for region in ordered:
            if id(region) not in seen:
                seen.add(id(region))
                regions.append(region)
        if not regions:
            return None
        target = regions[0].owner
        if target in self.placement.dead:
            # The anchor operand sits on a lost device (possible between
            # the loss and its recovery); re-place it first.
            target = self.placement.place(regions[0].size)
            self.manager.migrate_region(regions[0], target)
        for region in regions[1:]:
            self.manager.migrate_region(region, target)
        return target

    def sync(self):
        """adsmSync: wait for the accelerator and re-acquire objects.

        Re-acquisition is a *protection/state* action: batch-update
        fetches whole objects here (a device-byte read, which flushes any
        deferred kernel numerics), while lazy/rolling merely invalidate
        mappings and defer the fetch to the first host fault.  The sync
        wait itself observes only completions — virtual time — so with
        lazy/rolling a call/sync loop accumulates a batchable queue of
        kernel numerics (see DESIGN.md §9).
        """
        monitor = self.monitor
        if monitor is not None:
            monitor.enter_internal()
        try:
            with self.accounting.measure(Category.SYNC, label="adsmSync"):
                self.machine.clock.advance(self.costs.api_call_s)
                wait_start = self.machine.clock.now
                for completion in self._pending:
                    completion.wait()
                self._pending.clear()
                waited = self.machine.clock.now - wait_start
                if waited > 0:
                    self.accounting.charge(
                        Category.GPU, waited, label="kernel-wait"
                    )
                self.manager.acquire_after_return()
        finally:
            if monitor is not None:
                monitor.exit_internal()
        self.manager.note_coherence("sync")
        if self.recovery is not None:
            self.recovery.note_sync()
        if monitor is not None:
            monitor.on_sync()

    # -- Section 4.2 safe variants ------------------------------------------------------

    def safe_alloc(self, size, name=None):
        """adsmSafeAlloc: CPU-only pointer, safe under address collisions."""
        region = self.manager.alloc(size, name=name, safe=True)
        return SharedPtr(self, region.host_start)

    def safe(self, ptr):
        """adsmSafe: CPU pointer -> accelerator pointer."""
        return self.manager.translate(int(ptr))

    # -- bulk memory convenience (interposed when a libc is attached) ---------------------

    def memset(self, ptr, value, size):
        """memset over (possibly shared) memory, via the interposed libc."""
        if self.libc is not None:
            return self.libc.memset(int(ptr), value, size)
        self.process.fill(int(ptr), value, size)
        return int(ptr)

    def memcpy(self, destination, source, size):
        """memcpy over (possibly shared) memory, via the interposed libc."""
        if self.libc is not None:
            return self.libc.memcpy(int(destination), int(source), size)
        self.process.write(int(destination), self.process.read(int(source), size))
        return int(destination)

    # -- paper-style aliases --------------------------------------------------------------

    adsmAlloc = alloc
    adsmFree = free
    adsmCall = call
    adsmSync = sync
    adsmSafeAlloc = safe_alloc
    adsmSafe = safe

    # -- statistics --------------------------------------------------------------------------

    @property
    def bytes_to_accelerator(self):
        return self.manager.bytes_to_accelerator

    @property
    def bytes_to_host(self):
        return self.manager.bytes_to_host

    @property
    def fault_count(self):
        return self.manager.fault_count

    def shutdown(self):
        """Free all regions and uninstall interposition (teardown helper)."""
        if self._pending:
            self.sync()
        self.manager.free_all()
        if self.interposer is not None:
            self.interposer.uninstall()
            self.interposer = None
