"""Rolling-update: the hybrid write-update/write-invalidate protocol.

Figure 6(b) with the dotted eager-eviction edge.  Shared objects are
divided into fixed-size memory blocks; at most *rolling size* blocks may be
dirty on the CPU at once.  When a write fault would exceed the limit, the
oldest dirty block is **asynchronously** transferred to the accelerator and
demoted to read-only — eagerly overlapping data transfer with the CPU code
that is still producing the remaining input (Section 4.3).  Reads of
invalid data fetch only the faulting block, so scattered output reads stop
paying for whole objects.

The rolling size is adaptive by default: "every time a new memory structure
is allocated (adsmAlloc()), the rolling size is increased by a fixed factor
(with a default value of 2 blocks)".  Figure 12's experiments pin it to
fixed values (1, 2, 4) instead, which is supported via ``rolling_size``.

Eager evictions flush through the same manager path as lazy's release,
so the transfer ledger's delta tracker (DESIGN.md §14) trims each evicted
block to its host-dirty runs; the virtual transfer still charges the full
block (the paper's staging-buffer DMA moves whole blocks), keeping the
Figure 11/12 timelines byte-identical to the eager engine.
"""

from collections import deque

from repro.util.units import KB
from repro.sim.tracing import Category
from repro.os.paging import Prot, AccessKind, PAGE_SIZE, page_ceil
from repro.core.blocks import BlockState, INVALID_CODE, index_runs
from repro.core.protocols.base import Protocol

#: Default memory-block size.  Figure 11 finds the PCIe bandwidth sweet
#: spot in the 256KB-1MB range; GMAC defaults to the lower end of it.
DEFAULT_BLOCK_SIZE = 256 * KB

#: "the rolling size is increased by a fixed factor (with a default value
#: of 2 blocks)"
DEFAULT_ADAPT_INCREMENT = 2


class RollingUpdate(Protocol):
    name = "rolling"

    def __init__(self, manager, block_size=DEFAULT_BLOCK_SIZE,
                 rolling_size=None, adapt_increment=DEFAULT_ADAPT_INCREMENT):
        super().__init__(manager)
        block_size = page_ceil(max(int(block_size), PAGE_SIZE))
        self.block_size = block_size
        self.adaptive = rolling_size is None
        self.rolling_size = 0 if self.adaptive else int(rolling_size)
        if not self.adaptive and self.rolling_size < 1:
            raise ValueError("a fixed rolling size must be at least 1 block")
        self.adapt_increment = adapt_increment
        #: FIFO of dirty blocks, oldest first (the "memory block cache").
        #: Ordering lives here; *membership* is the per-region
        #: ``table.dirty_bits`` index bitmap, so the is-it-queued checks on
        #: demote/discard are O(1) bitmap reads instead of list scans.
        self._dirty = deque()
        #: The in-flight eager transfer; evictions stage through a single
        #: host buffer, so issuing a new one waits for the previous DMA.
        self._last_eviction = None
        self.evictions = 0
        self.eviction_stall_s = 0.0

    def block_size_for(self, region_size):
        return self.block_size

    # -- state machine -------------------------------------------------------------

    def on_alloc(self, region):
        self.manager.set_region_blocks(region, BlockState.READ_ONLY, Prot.READ)
        if self.adaptive:
            # Tie the dirty-block budget to the number of live objects so
            # every object can keep at least one block dirty (Section 4.3).
            self.rolling_size += self.adapt_increment
        self.manager.note_coherence("limit", detail=str(self.rolling_size))

    def on_free(self, region):
        region.table.dirty_bits[:] = False
        self._dirty = deque(
            block for block in self._dirty if block.region is not region
        )

    def on_fault(self, block, access):
        manager = self.manager
        if block.state is BlockState.READ_ONLY:
            if access is not AccessKind.WRITE:
                raise AssertionError(f"read fault on readable block {block!r}")
            self._mark_dirty(block)
        elif block.state is BlockState.INVALID:
            # Fetch only the faulting block (the scattered-read win).
            manager.fetch_to_host(block)
            if access is AccessKind.WRITE:
                self._mark_dirty(block)
            else:
                manager.set_block(block, BlockState.READ_ONLY, Prot.READ)
        else:
            raise AssertionError(f"fault on dirty (RW) block {block!r}")

    def storm_extent(self, block, access, max_blocks):
        """Absorb a contiguous run, but never past the dirty-FIFO headroom.

        A write storm dirties one block per absorbed fault; capping the
        run at the remaining rolling-size headroom guarantees no eager
        eviction fires mid-storm, so eviction ordering (and the staged
        bytes it flushes) is identical to per-block fault delivery.  Read
        storms fetch without dirtying and are uncapped.
        """
        if access is AccessKind.WRITE:
            headroom = max(self.rolling_size, 1) - len(self._dirty)
            return max(1, min(max_blocks, headroom))
        return max_blocks

    def _mark_dirty(self, block):
        self.manager.set_block(block, BlockState.DIRTY, Prot.RW)
        block.region.table.dirty_bits[block.index] = True
        self._dirty.append(block)
        while len(self._dirty) > max(self.rolling_size, 1):
            self._evict(self._dirty.popleft())

    def _evict(self, block):
        """Eagerly push the oldest dirty block to the accelerator.

        The transfer is asynchronous (the dotted edge in Figure 6(b)): the
        CPU pays only the issue cost and keeps computing while the DMA is
        in flight, which is the overlap Figure 11's 64KB anomaly comes
        from.  The block is demoted to read-only; a later write re-dirties
        it (and re-transfers it — the Figure 12 pathology when the rolling
        size is too small for multi-pass initialisation).
        """
        self.evictions += 1
        block.region.table.dirty_bits[block.index] = False
        self.manager.note_coherence(
            "evict", block.region.name, block.index, block.index
        )
        self._await_staging_buffer()
        self._last_eviction = self.manager.flush_to_device(block, sync=False)
        self.manager.set_block(block, BlockState.READ_ONLY, Prot.READ)

    def _await_staging_buffer(self):
        """Wait for the previous eager transfer's staging buffer.

        GMAC stages each eviction through one bounce buffer, so back-to-back
        evictions serialize on the DMA: when a block's transfer time exceeds
        the CPU time to produce the next block, "evictions must wait for the
        previous transfer to finish" — the Figure 11 64KB->128KB anomaly.
        """
        last = self._last_eviction
        clock = self.manager.clock
        if last is not None and last.finish > clock.now:
            stall = last.finish - clock.now
            clock.advance_to(last.finish)
            self.eviction_stall_s += stall
            self.manager.accounting.charge(
                Category.COPY, stall, label="eviction-stall"
            )

    # -- call/return boundaries -------------------------------------------------------

    def pre_call(self, regions, written=None):
        # Flush the remaining dirty blocks asynchronously; the kernel's
        # start time already waits for the H2D queue to drain (the manager
        # threads link.pending through to the launch).
        while self._dirty:
            block = self._dirty.popleft()
            block.region.table.dirty_bits[block.index] = False
            self.manager.flush_to_device(block, sync=False)
            self.manager.mark_state(
                block.region, block.index, BlockState.READ_ONLY
            )
        for region in regions:
            if written is not None and region not in written:
                # Kernel-output annotation (Section 4.3's interprocedural
                # pointer analysis hook): objects the kernel does not write
                # stay valid on the host, avoiding the needless read-back.
                # Blocks still invalid from an earlier kernel must *stay*
                # invalid — their host bytes are stale, and promoting them
                # would let the CPU silently read pre-kernel data.
                table = region.table
                for first, last in index_runs(
                    table.indices_not_in(BlockState.INVALID)
                ):
                    self.manager.set_index_range(
                        region, int(first), int(last),
                        BlockState.READ_ONLY, Prot.READ,
                    )
            else:
                self.manager.set_region_blocks(
                    region, BlockState.INVALID, Prot.NONE
                )

    def post_sync(self, regions):
        # Blocks return on demand, one fault and one block at a time.
        pass

    def _unqueue(self, block):
        """Drop ``block`` from the dirty FIFO if queued (O(1) bitmap test)."""
        bits = block.region.table.dirty_bits
        if bits[block.index]:
            bits[block.index] = False
            self._dirty.remove(block)

    def demote_clean(self, block):
        self._unqueue(block)
        super().demote_clean(block)

    def demote_clean_range(self, blocks):
        for block in blocks:
            self._unqueue(block)
        super().demote_clean_range(blocks)

    def discard_block(self, block):
        self._unqueue(block)
        super().discard_block(block)

    def invalidate_region(self, region):
        self.on_free(region)  # drop cache entries; states reset below
        super().invalidate_region(region)

    # -- fault recovery hooks ---------------------------------------------------

    def force_evict(self):
        """OOM relief: flush the whole dirty FIFO synchronously and halve
        the rolling size, so fewer blocks are staged toward the device at
        once while memory stays scarce."""
        evicted = 0
        while self._dirty:
            block = self._dirty.popleft()
            block.region.table.dirty_bits[block.index] = False
            self.manager.note_coherence(
                "evict", block.region.name, block.index, block.index,
                detail="forced",
            )
            self.manager.flush_to_device(block, sync=True)
            self.manager.set_block(block, BlockState.READ_ONLY, Prot.READ)
            evicted += 1
        self.rolling_size = max(1, self.rolling_size // 2)
        self.manager.note_coherence("limit", detail=str(self.rolling_size))
        return evicted

    def after_device_recovery(self, regions):
        # The eviction pipeline died with the device: every staged block
        # was re-flushed by the recovery replay, so the FIFO starts empty.
        for block in self._dirty:
            block.region.table.dirty_bits[block.index] = False
        self._dirty.clear()
        self._last_eviction = None
        super().after_device_recovery(regions)
