"""Declared-modes: declaration-driven coherence (ROADMAP item 5).

A fourth protocol exploiting per-object access declarations — the
Section 4.3 "compiler analysis or programmer annotations" hook promoted
from a per-call ``writes=`` hint to a load-time contract.  Each shared
region carries one mode for every kernel window:

``rw``
    the default: full lazy-update behaviour (flush dirty at release,
    invalidate, fault back on demand).
``ro``
    kernels only read the object: release flushes dirty host blocks but
    *keeps* the host mapping read-only valid, so post-kernel CPU reads
    never fault or fetch.
``wo``
    kernels overwrite the whole object without reading it: release skips
    the flush entirely (host writes never need to reach the device) and
    invalidates, so the first post-kernel read fetches fresh output.
``none``
    no kernel ever touches the object (a host-side staging buffer living
    in shared space): release leaves it completely alone — no flush, no
    invalidation, no faults, no transfers, ever.

Soundness rests on the declarations being *verified*: statically by
:func:`repro.analysis.contracts.check_workload` and at every launch by
the sanitizer's :class:`~repro.analysis.contracts.ContractMonitor` (armed
automatically whenever this protocol runs sanitized).  Each release also
tags its transitions (``detail="wo-release"``) and announces modes as
``mode`` coherence events, so the dynamic checker knows which invariants
the declarations legitimately relax.
"""

from repro.util.errors import GmacError
from repro.os.paging import Prot
from repro.core.blocks import BlockState, INVALID_CODE
from repro.core.protocols.lazy import LazyUpdate

#: Modes this protocol accepts (mirrors analysis.contracts.MODES without
#: importing the analysis package into the core).
_VALID_MODES = ("none", "ro", "wo", "rw")


class DeclaredModes(LazyUpdate):
    name = "declared"

    def __init__(self, manager, modes=()):
        super().__init__(manager)
        #: Region name -> declared mode; accepts a dict or a (sorted)
        #: tuple of pairs (the picklable spec form).  Unknown regions
        #: default to "rw", which is always sound.
        self.modes = dict(modes)
        for region_name, mode in self.modes.items():
            if mode not in _VALID_MODES:
                raise GmacError(
                    f"declared mode for {region_name!r} must be one of "
                    f"{_VALID_MODES}, got {mode!r}"
                )

    def mode_of(self, region):
        return self.modes.get(region.name, "rw")

    def on_alloc(self, region):
        super().on_alloc(region)
        # Teach the coherence checker this region's declared mode, so it
        # exempts exactly the invariants the declaration relaxes.
        self.manager.note_coherence(
            "mode", region.name, 0, region.table.n_blocks - 1,
            detail=self.mode_of(region),
        )

    def call_written(self, written):
        # An unannotated launch resolves through the declarations: only
        # regions whose kernels may write (rw/wo) count as written, so
        # the race detector, the checker's call event and the release all
        # see the same effective set.
        if written is not None:
            return written
        return {
            region for region in self.manager.regions()
            if self.mode_of(region) in ("rw", "wo")
        }

    def pre_call(self, regions, written=None):
        for region in regions:
            mode = self.mode_of(region)
            if mode == "none":
                # No kernel touches it: dirty host blocks are legal
                # across the window and nothing needs to move, ever.
                continue
            if mode == "wo":
                # The kernel overwrites every byte: flushing dirty host
                # blocks would move data the kernel immediately clobbers.
                # The tagged transition lets the checker exempt its
                # lost-update rule for exactly this (verified) case.
                self.manager.set_region_blocks(
                    region, BlockState.INVALID, Prot.NONE,
                    detail="wo-release",
                )
                continue
            for index in region.table.indices_in(BlockState.DIRTY):
                self.manager.flush_index(region, int(index), sync=True)
            if mode == "ro":
                # Kernels only read: the just-flushed host copy stays
                # valid, so post-kernel CPU reads are free.  Invalid
                # objects stay invalid (their host bytes predate an
                # earlier kernel).
                if region.table.states[0] != INVALID_CODE:
                    self.manager.set_region_blocks(
                        region, BlockState.READ_ONLY, Prot.READ
                    )
            else:
                self.manager.set_region_blocks(
                    region, BlockState.INVALID, Prot.NONE
                )
