"""The coherence-protocol interface.

GMAC's layered architecture "allows multiple memory coherence protocols to
coexist and enables programmers to select the most appropriate protocol at
application load time" (Section 4.3).  A protocol owns the per-block state
machine; the manager owns the data structures and the transfers.  Protocols
are defined from the CPU's perspective only.
"""

import abc


class Protocol(abc.ABC):
    """State-machine policy for one :class:`~repro.core.manager.Manager`."""

    #: Load-time selection key (see PROTOCOLS in the package __init__).
    name = "abstract"

    def __init__(self, manager):
        self.manager = manager

    @abc.abstractmethod
    def block_size_for(self, region_size):
        """The coherence granularity for a new region of ``region_size``."""

    @abc.abstractmethod
    def on_alloc(self, region):
        """Initialise block states and protections for a fresh region."""

    def on_free(self, region):
        """Forget any protocol-private state about ``region``."""

    @abc.abstractmethod
    def on_fault(self, block, access):
        """Apply the Figure 6 transition for a CPU access fault."""

    @abc.abstractmethod
    def pre_call(self, regions, written=None):
        """Release shared objects before a kernel call (adsmCall).

        ``written``, when given, is the set of regions the kernel is
        annotated to write (Section 4.3's pointer-analysis hook); regions
        outside it may stay host-valid.  ``None`` means no annotation: all
        regions must be treated as potentially written.
        """

    @abc.abstractmethod
    def post_sync(self, regions):
        """Re-acquire shared objects after kernel return (adsmSync)."""

    def call_written(self, written):
        """Resolve the effective written-region set for one launch.

        ``written`` is the caller's ``writes=`` annotation (None when
        unannotated).  Declaration-driven protocols refine an unannotated
        launch from their per-object modes so the release, the coherence
        event stream and the race detector all agree on what the kernel
        may write; the default trusts the caller's annotation as-is.
        """
        return written

    #: Whether bulk memory operations on shared data may be routed to
    #: device-side calls (cudaMemset/cudaMemcpy).  Requires fault-driven
    #: refetching, so batch-update opts out.
    supports_device_bulk = True

    def storm_extent(self, block, access, max_blocks):
        """How many same-state blocks one fault delivery may repair.

        When a bulk access faults, the manager knows how far the access
        still reaches (``SegvInfo.span``) and how many consecutive blocks
        share the faulting block's state (``max_blocks``).  A protocol
        that can absorb the whole run in one delivery returns a count
        greater than one; the default keeps the strict one-fault-per-block
        behaviour.  Protocols with capacity constraints (rolling-update's
        dirty FIFO) clamp the run so no mid-storm eviction can occur.
        """
        return 1

    def demote_clean(self, block):
        """A dirty block was flushed outside the call boundary: both copies
        now match, so it becomes read-only."""
        from repro.core.blocks import BlockState
        from repro.os.paging import Prot

        self.manager.set_block(block, BlockState.READ_ONLY, Prot.READ)

    def demote_clean_range(self, blocks):
        """A contiguous run of flushed dirty blocks demotes together: one
        range mprotect instead of one per block."""
        from repro.core.blocks import BlockState
        from repro.os.paging import Prot

        self.manager.set_blocks_range(blocks, BlockState.READ_ONLY, Prot.READ)

    def discard_block(self, block):
        """Drop the host copy of one block: the device copy just became
        canonical (after a device-side memset/memcpy)."""
        from repro.core.blocks import BlockState
        from repro.os.paging import Prot

        self.manager.set_block(block, BlockState.INVALID, Prot.NONE)

    def invalidate_region(self, region):
        """Discard the host copy of a region (used by bulk-op interposition
        after device-side memset/memcpy made the accelerator canonical)."""
        from repro.core.blocks import BlockState
        from repro.os.paging import Prot

        self.manager.set_region_blocks(region, BlockState.INVALID, Prot.NONE)

    # -- fault recovery hooks (see repro.core.recovery) --------------------------

    def force_evict(self):
        """Relieve device-memory pressure after a cudaMalloc OOM.

        Protocols with device-side staging state override this (rolling:
        drain the dirty FIFO, shrink the rolling size).  Returns the number
        of blocks evicted; the stateless default has nothing to give back.
        """
        return 0

    def after_device_recovery(self, regions):
        """Reset resting states after device loss re-materialisation.

        Every block was just flushed, so both copies match: READ_ONLY with
        read protection lets fault-driven protocols resume precisely.
        Batch-update overrides (it runs without protections).
        """
        from repro.core.blocks import BlockState
        from repro.os.paging import Prot

        for region in regions:
            self.manager.set_region_blocks(region, BlockState.READ_ONLY, Prot.READ)
