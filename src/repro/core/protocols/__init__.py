"""The Figure 6 coherence protocols.

All three protocols run entirely on the CPU; the accelerator performs no
coherence actions (the ADSM asymmetry).  Each refines the previous one:

* :class:`~repro.core.protocols.batch.BatchUpdate` — transfer everything at
  every call/return boundary (what novice programmers hand-write),
* :class:`~repro.core.protocols.lazy.LazyUpdate` — fault-driven tracking at
  whole-object granularity,
* :class:`~repro.core.protocols.rolling.RollingUpdate` — fault-driven
  tracking at block granularity with a bounded dirty-block cache and eager
  asynchronous eviction.

A fourth protocol goes beyond the paper's Figure 6:

* :class:`~repro.core.protocols.declared.DeclaredModes` — lazy-update
  refined by verified per-object access-mode declarations (the Section
  4.3 annotation hook promoted to a load-time contract).
"""

from repro.core.protocols.base import Protocol
from repro.core.protocols.batch import BatchUpdate
from repro.core.protocols.declared import DeclaredModes
from repro.core.protocols.lazy import LazyUpdate
from repro.core.protocols.rolling import RollingUpdate

#: Name -> class registry, the load-time protocol selection of Section 4.3.
PROTOCOLS = {
    BatchUpdate.name: BatchUpdate,
    LazyUpdate.name: LazyUpdate,
    RollingUpdate.name: RollingUpdate,
    DeclaredModes.name: DeclaredModes,
}

__all__ = [
    "Protocol", "BatchUpdate", "DeclaredModes", "LazyUpdate",
    "RollingUpdate", "PROTOCOLS",
]
