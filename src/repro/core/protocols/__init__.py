"""The Figure 6 coherence protocols.

All three protocols run entirely on the CPU; the accelerator performs no
coherence actions (the ADSM asymmetry).  Each refines the previous one:

* :class:`~repro.core.protocols.batch.BatchUpdate` — transfer everything at
  every call/return boundary (what novice programmers hand-write),
* :class:`~repro.core.protocols.lazy.LazyUpdate` — fault-driven tracking at
  whole-object granularity,
* :class:`~repro.core.protocols.rolling.RollingUpdate` — fault-driven
  tracking at block granularity with a bounded dirty-block cache and eager
  asynchronous eviction.
"""

from repro.core.protocols.base import Protocol
from repro.core.protocols.batch import BatchUpdate
from repro.core.protocols.lazy import LazyUpdate
from repro.core.protocols.rolling import RollingUpdate

#: Name -> class registry, the load-time protocol selection of Section 4.3.
PROTOCOLS = {
    BatchUpdate.name: BatchUpdate,
    LazyUpdate.name: LazyUpdate,
    RollingUpdate.name: RollingUpdate,
}

__all__ = ["Protocol", "BatchUpdate", "LazyUpdate", "RollingUpdate", "PROTOCOLS"]
