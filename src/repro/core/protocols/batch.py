"""Batch-update: the pure write-invalidate baseline.

Figure 6(a).  "On a kernel invocation (adsmCall()) the CPU invalidates all
shared objects, whether or not they are accessed by the accelerator.  On
method return (adsmSync()), all shared objects are transferred from
accelerator memory to system memory and marked as dirty."  No fault
detection is used at all — pages stay read/write and every object crosses
the bus twice per kernel call.  This mimics what programmers tend to
hand-write first, and is the protocol behind the 65.18x (pns) and 18.61x
(rpes) slow-downs in Figure 7.
"""

from repro.os.paging import Prot
from repro.core.blocks import BlockState
from repro.core.protocols.base import Protocol


class BatchUpdate(Protocol):
    name = "batch"

    # Without fault detection a discarded host copy could never be
    # refetched on demand, so bulk ops must stay on the host path.
    supports_device_bulk = False

    def block_size_for(self, region_size):
        # Whole-object granularity: one block per region.
        return max(region_size, 1)

    def on_alloc(self, region):
        # The CPU owns fresh objects; no access detection is installed.
        self.manager.set_region_blocks(region, BlockState.DIRTY, Prot.RW)

    def on_fault(self, block, access):
        raise AssertionError(
            "batch-update installs no protections; a fault here is a bug"
        )

    def pre_call(self, regions, written=None):
        # Everything to the accelerator, needed or not; batch-update is the
        # naive baseline, so the annotation is deliberately ignored.  The
        # only exception is a host copy already invalidated by an earlier
        # back-to-back call: there is nothing newer to transfer.  The
        # non-invalid set comes from one vectorized table scan.
        for region in regions:
            table = region.table
            for index in table.indices_not_in(BlockState.INVALID):
                self.manager.flush_index(region, int(index), sync=True)
            self.manager.set_states_only(region, BlockState.INVALID)

    def post_sync(self, regions):
        # Everything back, implicitly invalidating the accelerator copy.
        # The fetch-all is announced to the transfer ledger first: every
        # outstanding entry from the previous round is about to be
        # superseded, so killing them up front keeps the first fetch's
        # numerics replay from COW-snapshotting doomed bytes.
        for region in regions:
            table = region.table
            self.manager.discard_host_blocks(region, 0, table.n_blocks - 1)
            for index in range(table.n_blocks):
                self.manager.fetch_index(region, index)
            self.manager.set_states_only(region, BlockState.DIRTY)

    def invalidate_region(self, region):
        # Without fault detection the host copy must be refreshed eagerly.
        table = region.table
        self.manager.discard_host_blocks(region, 0, table.n_blocks - 1)
        for index in range(table.n_blocks):
            self.manager.fetch_index(region, index)
        self.manager.set_states_only(region, BlockState.DIRTY)

    def after_device_recovery(self, regions):
        # Batch runs unprotected with host copies always writable; the
        # recovery flush made both sides match, so DIRTY/RW is the resting
        # state (a redundant re-flush at the next call is batch's nature).
        for region in regions:
            self.manager.set_region_blocks(region, BlockState.DIRTY, Prot.RW)
