"""Lazy-update: fault-driven coherence at whole-object granularity.

Figure 6(b), without the rolling refinement.  Protection hardware detects
CPU writes to read-only objects and any access to invalid objects; on a
kernel call only *dirty* objects travel to the accelerator, and after
return objects come back *on demand*, when (and only when) the CPU touches
them.  The two benefits named in Section 4.3: only CPU-modified data moves
host-to-accelerator, and only CPU-read data moves back.

Flushes and fetches go through the manager to the transfer ledger
(DESIGN.md §14): a flush of a dirty object copies only the host-dirty /
unsynced delta, and a fetch records a versioned extent instead of moving
bytes.  Because lazy fetches happen on an actual CPU access, the faulting
bytes materialize almost immediately — lazy's win is the delta flush, not
elision, and that is expected (see the transfer-equivalence suite).
"""

from repro.os.paging import Prot, AccessKind
from repro.core.blocks import BlockState, INVALID_CODE
from repro.core.protocols.base import Protocol


class LazyUpdate(Protocol):
    name = "lazy"

    def block_size_for(self, region_size):
        # Whole-object granularity: one block per region.
        return max(region_size, 1)

    def on_alloc(self, region):
        # "Shared data structures are initialized to a read-only state when
        # they are allocated, so read accesses do not trigger a page fault."
        self.manager.set_region_blocks(region, BlockState.READ_ONLY, Prot.READ)

    def on_fault(self, block, access):
        manager = self.manager
        if block.state is BlockState.READ_ONLY:
            if access is not AccessKind.WRITE:
                raise AssertionError(
                    f"read fault on readable block {block!r}"
                )
            manager.set_block(block, BlockState.DIRTY, Prot.RW)
        elif block.state is BlockState.INVALID:
            # Transfer the whole object back before the access proceeds.
            manager.fetch_to_host(block)
            if access is AccessKind.WRITE:
                manager.set_block(block, BlockState.DIRTY, Prot.RW)
            else:
                manager.set_block(block, BlockState.READ_ONLY, Prot.READ)
        else:
            raise AssertionError(f"fault on dirty (RW) block {block!r}")

    def pre_call(self, regions, written=None):
        # Dirty objects travel; then everything is invalidated and fenced.
        # The dirty set comes from one vectorized scan of the state table
        # rather than a per-block Python loop.
        for region in regions:
            for index in region.table.indices_in(BlockState.DIRTY):
                self.manager.flush_index(region, int(index), sync=True)
            if written is not None and region not in written:
                # Annotated as read-only for the kernel: a just-flushed (or
                # already matching) host copy stays valid, avoiding the
                # read-back later.  An *invalid* object must stay invalid —
                # its host bytes are stale from an earlier kernel, and
                # promoting them to READ_ONLY would let the CPU silently
                # read pre-kernel data (caught by the coherence checker).
                if region.table.states[0] != INVALID_CODE:
                    self.manager.set_region_blocks(
                        region, BlockState.READ_ONLY, Prot.READ
                    )
            else:
                self.manager.set_region_blocks(
                    region, BlockState.INVALID, Prot.NONE
                )

    def post_sync(self, regions):
        # Nothing moves at return time; objects fault back on first use.
        pass
