"""Fault recovery on top of ADSM's host-resident coherence state.

The paper's central asymmetry — all coherence state and actions live on
the CPU — makes the host side a natural recovery point: GMAC always knows
which blocks are host-canonical (DIRTY / READ_ONLY) and can re-create the
accelerator's entire memory image from them.  :class:`RecoveryPolicy`
exploits that in four ways:

* **transient transfer faults** — bounded retry with virtual-time
  exponential backoff; the failed attempts occupy the PCIe timeline (see
  :meth:`repro.hw.interconnect.Link.faulted_transfer`) and the backoff
  waits are charged to the ``Retry`` accounting category, so the chaos
  experiment can report recovery overhead as its own break-down column;
* **device OOM** — ``cudaMalloc`` failures trigger forced eager eviction
  of the protocol's dirty blocks plus a rolling-size shrink (relieving
  device-side staging pressure) before the allocation is retried;
* **device loss** — the context is revived (device reset), every region's
  allocation is replayed at its old address, and all blocks are flushed
  from host-canonical state.  This is sound because device loss is only
  injected at kernel-launch time (see :mod:`repro.faults.plan`): at that
  point the host has just released — i.e. fully flushed — the shared
  objects, so accelerator memory holds nothing the host has not seen;
* **protocol degradation** — when the observed fault rate crosses a
  threshold the coherence protocol is downgraded rolling -> lazy -> batch
  at a call boundary: fewer, larger, synchronous transfers are easier to
  retry than a deep asynchronous eviction pipeline.

A ``RecoveryPolicy`` is armed automatically by :class:`repro.core.api.Gmac`
whenever the machine has an *enabled* fault plan installed; without one,
every hook below stays un-entered and fault-free runs are byte-identical
to the pre-fault-injection library.
"""

from repro.util.errors import (
    CudaOutOfMemoryError,
    DeviceLostError,
    LaunchError,
    RecoveryExhausted,
    TransferError,
)
from repro.sim.tracing import Category
from repro.hw.interconnect import Direction
from repro.hw.memory import copy_d2h
from repro.core.blocks import BlockState
from repro.core.watchdog import Watchdog


class RecoveryPolicy:
    """Retry, re-materialisation and degradation decisions for one Gmac."""

    def __init__(self,
                 max_transfer_retries=8,
                 max_launch_retries=5,
                 max_oom_retries=4,
                 max_device_recoveries=3,
                 backoff_base_s=20e-6,
                 backoff_factor=2.0,
                 max_backoff_s=5e-3,
                 device_reset_s=20e-3,
                 degrade_threshold=0.15,
                 degrade_min_attempts=24,
                 checkpoint_before_call="auto",
                 transfer_deadline_s=2e-3,
                 kernel_deadline_s=1.0,
                 recovery_deadline_s=1.0,
                 readmit_after_s=60e-3,
                 rebalance_on_readmit=True):
        self.max_transfer_retries = max_transfer_retries
        self.max_launch_retries = max_launch_retries
        self.max_oom_retries = max_oom_retries
        self.max_device_recoveries = max_device_recoveries
        self.backoff_base_s = backoff_base_s
        self.backoff_factor = backoff_factor
        self.max_backoff_s = max_backoff_s
        self.device_reset_s = device_reset_s
        self.degrade_threshold = degrade_threshold
        self.degrade_min_attempts = degrade_min_attempts
        self.checkpoint_before_call = checkpoint_before_call
        self.transfer_deadline_s = transfer_deadline_s
        self.kernel_deadline_s = kernel_deadline_s
        self.recovery_deadline_s = recovery_deadline_s
        self.readmit_after_s = readmit_after_s
        self.rebalance_on_readmit = rebalance_on_readmit
        self.gmac = None
        #: Virtual-time deadline supervision; built at attach time on
        #: multi-device machines, None elsewhere (zero cost).
        self.watchdog = None
        #: device index -> virtual time at which it may be readmitted.
        self._lost = {}
        self._kernel_guard = None
        # Observed (not plan-side) fault pressure, driving degradation.
        self.transfer_attempts = 0
        self.transfer_faults = 0
        self.stats = {
            "transfer_retries": 0,
            "launch_retries": 0,
            "oom_retries": 0,
            "device_recoveries": 0,
            "failovers": 0,
            "readmissions": 0,
            "rebalances": 0,
            "blocks_rematerialized": 0,
            "blocks_salvaged": 0,
            "short_read_resumes": 0,
            "backoff_s": 0.0,
            "checkpoint_s": 0.0,
            "rematerialize_s": 0.0,
            "degradations": [],
            "watchdog_trips": [],
        }

    def attach(self, gmac):
        self.gmac = gmac
        if getattr(gmac.machine, "multi_device", False):
            self.watchdog = Watchdog(
                gmac.machine.clock,
                accounting=gmac.machine.accounting,
                on_trip=self.stats["watchdog_trips"].append,
            )
        return self

    # -- shared plumbing ------------------------------------------------------

    @property
    def _clock(self):
        return self.gmac.machine.clock

    def _internal(self):
        """Mark the start of recovery-internal data movement.

        Recovery fetches and flushes touch device bytes on GMAC's behalf;
        marking them internal keeps the kernel-window race detector from
        attributing that traffic to the application.  Returns the monitor
        token for :meth:`_internal_done` (None when no monitor is armed).
        """
        monitor = self.gmac.monitor
        if monitor is not None:
            monitor.enter_internal()
        return monitor

    @staticmethod
    def _internal_done(monitor):
        if monitor is not None:
            monitor.exit_internal()

    def _backoff(self, delay, label):
        """Exponential-backoff wait on the virtual clock, charged to Retry."""
        self._clock.advance(delay)
        self.gmac.accounting.charge(Category.RETRY, delay, label=label)
        self.stats["backoff_s"] += delay

    @property
    def observed_fault_rate(self):
        if self.transfer_attempts == 0:
            return 0.0
        return self.transfer_faults / self.transfer_attempts

    # -- transient transfer faults -------------------------------------------

    def retry_transfer(self, attempt, label="transfer", device=None):
        """Run one DMA thunk with bounded retry + exponential backoff.

        ``attempt`` performs a single transfer attempt (sync or async
        issue) and raises :class:`TransferError` on an injected fault.

        With the watchdog armed (multi-device machines), the escalation
        ladder applies: retry with backoff while the transfer deadline
        holds, then declare ``device`` lost — after salvaging its
        device-only bytes over the still-intact memory (the link wedged,
        not the die) so the host stays a complete checkpoint.  The raised
        :class:`DeviceLostError` reaches :meth:`run_call`, which fails the
        region set over onto survivors.
        """
        watchdog = self.watchdog
        guard = None
        if watchdog is not None:
            guard = watchdog.arm(
                "transfer", self.transfer_deadline_s, label=label
            )
        delay = self.backoff_base_s
        failures = 0
        while True:
            self.transfer_attempts += 1
            try:
                result = attempt()
            except TransferError as error:
                self.transfer_faults += 1
                failures += 1
                if guard is not None and watchdog.expired(guard):
                    raise self._declare_device_lost(
                        guard, device, error
                    ) from error
                if failures > self.max_transfer_retries:
                    if guard is not None:
                        watchdog.disarm(guard)
                    raise RecoveryExhausted(
                        f"{label}: still failing after {failures} attempts",
                        attempts=failures, last_error=error,
                        timestamp=self._clock.now, resource=error.resource,
                    ) from error
                self.stats["transfer_retries"] += 1
                self._backoff(delay, label=f"backoff:{label}")
                delay = min(delay * self.backoff_factor, self.max_backoff_s)
            else:
                if guard is not None:
                    watchdog.disarm(guard)
                return result

    def _declare_device_lost(self, guard, device, error):
        """Final rung of the transfer escalation ladder."""
        self.watchdog.trip(guard, "declare-device-lost")
        context = self.gmac.layer.context_for(device)
        self._salvage(context)
        context.alive = False
        return DeviceLostError(
            f"{context.gpu.spec.name} declared lost by watchdog "
            f"after a wedged transfer: {error}",
            timestamp=self._clock.now, resource=context.gpu.spec.name,
            device=context.device_index,
        )

    def _salvage(self, context):
        """Pull device-only bytes home before abandoning a wedged device.

        A watchdog-declared loss means the *path* to the device wedged;
        its memory is still intact, so INVALID blocks (kernel outputs the
        CPU never read) are fetched back first.  This keeps the ADSM
        invariant — the host is a complete checkpoint — true at the moment
        the device is marked dead, which is what makes the subsequent
        host-sourced re-materialisation byte-exact.
        """
        manager = self.gmac.manager
        device = context.device_index
        context.gpu.materialize()
        space = self.gmac.process.address_space
        for region in manager.regions():
            if region.owner != device:
                continue
            table = region.table
            for index in table.indices_in(BlockState.INVALID):
                host_start = table.start_of(index)
                size = table.end_of(index) - host_start
                device_start = region.device_start + (
                    host_start - region.host_start
                )
                # DMA ignores host page protections, like memcpy_d2h.
                # Routed through the ledger entry point (always eager —
                # salvage runs because the device is about to be declared
                # lost, so deferring against its memory would be useless).
                mapping = space.resolve(host_start, size)
                copy_d2h(
                    context.gpu.memory, device_start, mapping,
                    host_start, size, deferred=False,
                )
                context.link.transfer(
                    size, Direction.D2H, label="salvage"
                ).wait()
                self.stats["blocks_salvaged"] += 1

    # -- device OOM ----------------------------------------------------------

    def retry_alloc(self, attempt, protocol, label="cudaMalloc"):
        """Allocate with OOM relief: evict, shrink, back off, retry."""
        delay = self.backoff_base_s
        failures = 0
        while True:
            try:
                return attempt()
            except CudaOutOfMemoryError as error:
                failures += 1
                if failures > self.max_oom_retries:
                    raise RecoveryExhausted(
                        f"{label}: device OOM persisted after {failures} "
                        "attempts (eviction and rolling-size shrink did "
                        "not help)",
                        attempts=failures, last_error=error,
                        timestamp=self._clock.now, resource=error.resource,
                    ) from error
                self.stats["oom_retries"] += 1
                protocol.force_evict()
                self._backoff(delay, label="backoff:oom")
                delay = min(delay * self.backoff_factor, self.max_backoff_s)

    # -- kernel calls: launch faults and device loss ---------------------------

    def run_call(self, gmac, kernel, written, args):
        """Issue one adsmCall with full recovery around it.

        Retries transient launch rejections with backoff; on device loss,
        re-materialises all regions from host-canonical state and
        re-issues the whole release+launch sequence (the re-issued
        ``pre_call`` re-applies the protocol's invalidations).
        """
        self.maybe_readmit()
        self.maybe_degrade()
        if self._should_checkpoint():
            self.checkpoint()
        delay = self.backoff_base_s
        launch_failures = 0
        while True:
            try:
                completion = gmac._issue_call(kernel, written, args)
            except DeviceLostError as error:
                self.recover_device_loss(error)
            except LaunchError as error:
                launch_failures += 1
                if launch_failures > self.max_launch_retries:
                    raise RecoveryExhausted(
                        f"launch of {kernel.name!r}: still rejected after "
                        f"{launch_failures} attempts",
                        attempts=launch_failures, last_error=error,
                        timestamp=self._clock.now, resource=error.resource,
                    ) from error
                self.stats["launch_retries"] += 1
                self._backoff(delay, label="backoff:launch")
                delay = min(delay * self.backoff_factor, self.max_backoff_s)
            else:
                if self.watchdog is not None:
                    self._kernel_guard = self.watchdog.arm(
                        "kernel-window", self.kernel_deadline_s,
                        label=kernel.name,
                    )
                return completion

    def note_sync(self):
        """adsmSync reached: close the kernel-window deadline.

        The kernel-window guard is observational — a kernel that outlives
        its budget has already produced (deferred) results by the time the
        sync observes it, so the trip is recorded for the chaos report
        rather than escalated.
        """
        guard = self._kernel_guard
        if guard is None or self.watchdog is None:
            return
        self._kernel_guard = None
        if self.watchdog.expired(guard):
            self.watchdog.trip(guard, "observe")
        else:
            self.watchdog.disarm(guard)

    # -- device loss: failover, readmission, rebalance --------------------------

    def maybe_readmit(self):
        """Readmit flapped devices whose quarantine has elapsed.

        Checked at call boundaries (the same safe point as degradation).
        A readmitted device comes back empty and is immediately eligible
        for placement again; when ``rebalance_on_readmit`` is set, one
        region migrates onto it right away so a recovered device starts
        absorbing load without waiting for new allocations.
        """
        if not self._lost:
            return
        now = self._clock.now
        due = sorted(
            device for device, at in self._lost.items() if now >= at
        )
        for device in due:
            del self._lost[device]
            context = self.gmac.layer.context_for(device)
            context.revive()
            self._backoff(self.device_reset_s, label="readmit")
            if self.gmac.placement is not None:
                self.gmac.placement.mark_alive(device)
            self.stats["readmissions"] += 1
            if self.rebalance_on_readmit:
                self._rebalance_onto(device)

    def _rebalance_onto(self, device):
        """Migrate one region from the most-loaded survivor to ``device``."""
        manager = self.gmac.manager
        loads = {}
        for region in manager.regions():
            loads.setdefault(region.owner, []).append(region)
        donors = sorted(
            (owner for owner, regions in loads.items()
             if owner != device and len(regions) > 1),
            key=lambda owner: (-len(loads[owner]), owner),
        )
        if not donors:
            return
        donor = donors[0]
        region = min(loads[donor], key=lambda candidate: candidate.name)
        monitor = self._internal()
        try:
            manager.migrate_region(region, device, reason="rebalance")
        finally:
            self._internal_done(monitor)
        self.stats["rebalances"] += 1

    def _should_checkpoint(self):
        """Whether to pay the checkpoint premium before this call.

        ``checkpoint_before_call`` is a policy knob: ``True`` insures every
        call, ``False`` none.  The default ``"auto"`` checkpoints only
        while the installed plan declares a device-loss hazard that has
        not fired yet — the simulation's stand-in for a deployment flag
        saying "this accelerator is known to fall off the bus" — so purely
        transient fault plans do not pay per-call fetches they never need.
        """
        if self.checkpoint_before_call != "auto":
            return bool(self.checkpoint_before_call)
        plan = self.gmac.machine.faults
        if plan is None:
            return False
        scheduled = plan.scheduled_device_losses
        return scheduled > 0 and plan.device_losses < scheduled

    def checkpoint(self):
        """Make every block host-canonical at the call boundary.

        Fetches INVALID blocks (outputs of earlier kernels not yet read by
        the CPU) so that, should the device die during the upcoming
        release/launch window, nothing exists only in accelerator memory.
        The cost is part of the reported recovery overhead.
        """
        manager = self.gmac.manager
        start = self._clock.now
        monitor = self._internal()
        try:
            for region in manager.regions():
                manager.ensure_host_canonical(region, region.interval)
        finally:
            self._internal_done(monitor)
        self.stats["checkpoint_s"] += self._clock.now - start

    def recover_device_loss(self, error):
        """Re-materialise the accelerator after a device-lost event.

        Valid precisely because the CPU side holds all coherence state in
        ADSM — the paper's asymmetry is what makes the host a complete
        checkpoint.  Two strategies:

        * **failover** (multi-device machines with a placement policy):
          the lost device's regions re-home onto survivors chosen by the
          policy and the system continues degraded; the device becomes
          eligible for readmission after a quarantine;
        * **revive in place** (single-device machines, or when no survivor
          exists): the context is revived (device reset) and every
          region's allocation is replayed at its old device address.

        Either way, all blocks then flush from the host-canonical copies.
        """
        if self.stats["device_recoveries"] >= self.max_device_recoveries:
            raise RecoveryExhausted(
                f"device lost {self.stats['device_recoveries'] + 1} times; "
                "giving up",
                attempts=self.stats["device_recoveries"] + 1,
                last_error=error, timestamp=self._clock.now,
                resource=error.resource,
            ) from error
        self.stats["device_recoveries"] += 1
        device = getattr(error, "device", None)
        placement = self.gmac.placement
        if placement is not None and device is not None:
            placement.mark_dead(device)
            if placement.alive_devices():
                return self._failover(device, error)
            # Sole device (or last survivor) lost: nothing to fail over
            # onto, so reset it in place like the single-device path.
            placement.mark_alive(device)
        return self._revive_in_place(error)

    def _failover(self, device, error):
        """Re-home the lost device's regions onto survivors."""
        gmac = self.gmac
        manager = gmac.manager
        placement = gmac.placement
        self.stats["failovers"] += 1
        guard = None
        if self.watchdog is not None:
            guard = self.watchdog.arm(
                "recovery", self.recovery_deadline_s,
                label=f"failover:{device}",
            )
        start = self._clock.now
        monitor = self._internal()
        try:
            gmac.layer.materialize_numerics()
            self._backoff(self.device_reset_s, label="failover")
            regions = sorted(manager.regions(), key=lambda r: r.device_start)
            manager.note_coherence("protocol", detail="device-recovery")
            for region in regions:
                if region.owner != device:
                    continue
                target = placement.pick_survivor(device, region.size)
                new_start = self.retry_alloc(
                    lambda: gmac.layer.alloc(region.size, owner=target),
                    gmac.protocol,
                )
                region.rehome(new_start, target)
            # Everything re-materialises from the host checkpoint — also
            # the survivors' regions, matching the device-recovery fiat
            # the model checker applies to the whole address space.
            for region in regions:
                for block in region.blocks:
                    manager.flush_to_device(block, sync=True)
                    self.stats["blocks_rematerialized"] += 1
            gmac.protocol.after_device_recovery(regions)
        finally:
            self._internal_done(monitor)
        self.stats["rematerialize_s"] += self._clock.now - start
        self._lost[device] = self._clock.now + self.readmit_after_s
        if guard is not None:
            if self.watchdog.expired(guard):
                self.watchdog.trip(guard, "abort-recovery")
                raise RecoveryExhausted(
                    f"failover of device {device} blew its "
                    f"{self.recovery_deadline_s:g}s recovery deadline",
                    attempts=self.stats["device_recoveries"],
                    last_error=error, timestamp=self._clock.now,
                    resource=error.resource,
                ) from error
            self.watchdog.disarm(guard)

    def _revive_in_place(self, error):
        """Reset the lost device and replay its allocations in place."""
        gmac = self.gmac
        manager = gmac.manager
        start = self._clock.now
        # Pin down device bytes first: numerics launched before the loss
        # replay against the dying memory image (in the eager engine they
        # had already run), so recovery is engine-mode independent.
        # ``Gpu.reset`` would do this implicitly; being explicit keeps the
        # recovery sequence readable.
        monitor = self._internal()
        try:
            gmac.layer.materialize_numerics()
            driver = gmac.layer.context_for(getattr(error, "device", None))
            driver.revive()
            self._backoff(self.device_reset_s, label="device-reset")
            regions = sorted(manager.regions(), key=lambda r: r.device_start)
            manager.note_coherence("protocol", detail="device-recovery")
            for region in regions:
                driver.restore_allocation(region.device_start, region.size)
                for block in region.blocks:
                    manager.flush_to_device(block, sync=True)
                    self.stats["blocks_rematerialized"] += 1
            gmac.protocol.after_device_recovery(regions)
        finally:
            self._internal_done(monitor)
        self.stats["rematerialize_s"] += self._clock.now - start

    # -- degradation -----------------------------------------------------------

    #: rolling -> lazy -> batch; each step trades performance for fewer,
    #: simpler (synchronous, whole-object) transfers under fault pressure.
    DEGRADATION_ORDER = ("rolling", "lazy", "batch")

    def maybe_degrade(self, at_rate=None):
        """Downgrade the protocol when the observed fault rate is too high.

        Called at call boundaries (a safe point: no fault handler or
        transfer is mid-flight).  After a switch the observation window
        resets, so each protocol stage is judged on its own traffic.
        """
        if self.transfer_attempts < self.degrade_min_attempts:
            return None
        rate = self.observed_fault_rate if at_rate is None else at_rate
        if rate <= self.degrade_threshold:
            return None
        current = self.gmac.protocol.name
        try:
            position = self.DEGRADATION_ORDER.index(current)
        except ValueError:
            return None
        if position + 1 >= len(self.DEGRADATION_ORDER):
            return None
        target = self.DEGRADATION_ORDER[position + 1]
        self._switch_protocol(current, target, rate)
        self.transfer_attempts = 0
        self.transfer_faults = 0
        return target

    def _switch_protocol(self, current, target, rate):
        from repro.core.protocols import PROTOCOLS
        from repro.core.blocks import BlockState
        from repro.os.paging import Prot

        gmac = self.gmac
        manager = gmac.manager
        replacement = PROTOCOLS[target](manager)
        monitor = self._internal()
        try:
            if target == "batch":
                # Batch-update runs without protections and treats host copies
                # as always-canonical, so the host must be made whole first.
                for region in manager.regions():
                    manager.ensure_host_canonical(region, region.interval)
                    manager.set_region_blocks(region, BlockState.DIRTY, Prot.RW)
        finally:
            self._internal_done(monitor)
        gmac.protocol = replacement
        manager.protocol = replacement
        manager.note_coherence("protocol", detail=target)
        self.stats["degradations"].append(
            {"at": self._clock.now, "from": current, "to": target,
             "observed_rate": round(rate, 4)}
        )

    # -- I/O -------------------------------------------------------------------

    def note_short_read_resume(self):
        self.stats["short_read_resumes"] += 1
