"""Fault recovery on top of ADSM's host-resident coherence state.

The paper's central asymmetry — all coherence state and actions live on
the CPU — makes the host side a natural recovery point: GMAC always knows
which blocks are host-canonical (DIRTY / READ_ONLY) and can re-create the
accelerator's entire memory image from them.  :class:`RecoveryPolicy`
exploits that in four ways:

* **transient transfer faults** — bounded retry with virtual-time
  exponential backoff; the failed attempts occupy the PCIe timeline (see
  :meth:`repro.hw.interconnect.Link.faulted_transfer`) and the backoff
  waits are charged to the ``Retry`` accounting category, so the chaos
  experiment can report recovery overhead as its own break-down column;
* **device OOM** — ``cudaMalloc`` failures trigger forced eager eviction
  of the protocol's dirty blocks plus a rolling-size shrink (relieving
  device-side staging pressure) before the allocation is retried;
* **device loss** — the context is revived (device reset), every region's
  allocation is replayed at its old address, and all blocks are flushed
  from host-canonical state.  This is sound because device loss is only
  injected at kernel-launch time (see :mod:`repro.faults.plan`): at that
  point the host has just released — i.e. fully flushed — the shared
  objects, so accelerator memory holds nothing the host has not seen;
* **protocol degradation** — when the observed fault rate crosses a
  threshold the coherence protocol is downgraded rolling -> lazy -> batch
  at a call boundary: fewer, larger, synchronous transfers are easier to
  retry than a deep asynchronous eviction pipeline.

A ``RecoveryPolicy`` is armed automatically by :class:`repro.core.api.Gmac`
whenever the machine has an *enabled* fault plan installed; without one,
every hook below stays un-entered and fault-free runs are byte-identical
to the pre-fault-injection library.
"""

from repro.util.errors import (
    CudaOutOfMemoryError,
    DeviceLostError,
    LaunchError,
    RetryExhaustedError,
    TransferError,
)
from repro.sim.tracing import Category


class RecoveryPolicy:
    """Retry, re-materialisation and degradation decisions for one Gmac."""

    def __init__(self,
                 max_transfer_retries=8,
                 max_launch_retries=5,
                 max_oom_retries=4,
                 max_device_recoveries=3,
                 backoff_base_s=20e-6,
                 backoff_factor=2.0,
                 max_backoff_s=5e-3,
                 device_reset_s=20e-3,
                 degrade_threshold=0.15,
                 degrade_min_attempts=24,
                 checkpoint_before_call="auto"):
        self.max_transfer_retries = max_transfer_retries
        self.max_launch_retries = max_launch_retries
        self.max_oom_retries = max_oom_retries
        self.max_device_recoveries = max_device_recoveries
        self.backoff_base_s = backoff_base_s
        self.backoff_factor = backoff_factor
        self.max_backoff_s = max_backoff_s
        self.device_reset_s = device_reset_s
        self.degrade_threshold = degrade_threshold
        self.degrade_min_attempts = degrade_min_attempts
        self.checkpoint_before_call = checkpoint_before_call
        self.gmac = None
        # Observed (not plan-side) fault pressure, driving degradation.
        self.transfer_attempts = 0
        self.transfer_faults = 0
        self.stats = {
            "transfer_retries": 0,
            "launch_retries": 0,
            "oom_retries": 0,
            "device_recoveries": 0,
            "blocks_rematerialized": 0,
            "short_read_resumes": 0,
            "backoff_s": 0.0,
            "checkpoint_s": 0.0,
            "rematerialize_s": 0.0,
            "degradations": [],
        }

    def attach(self, gmac):
        self.gmac = gmac
        return self

    # -- shared plumbing ------------------------------------------------------

    @property
    def _clock(self):
        return self.gmac.machine.clock

    def _internal(self):
        """Mark the start of recovery-internal data movement.

        Recovery fetches and flushes touch device bytes on GMAC's behalf;
        marking them internal keeps the kernel-window race detector from
        attributing that traffic to the application.  Returns the monitor
        token for :meth:`_internal_done` (None when no monitor is armed).
        """
        monitor = self.gmac.monitor
        if monitor is not None:
            monitor.enter_internal()
        return monitor

    @staticmethod
    def _internal_done(monitor):
        if monitor is not None:
            monitor.exit_internal()

    def _backoff(self, delay, label):
        """Exponential-backoff wait on the virtual clock, charged to Retry."""
        self._clock.advance(delay)
        self.gmac.accounting.charge(Category.RETRY, delay, label=label)
        self.stats["backoff_s"] += delay

    @property
    def observed_fault_rate(self):
        if self.transfer_attempts == 0:
            return 0.0
        return self.transfer_faults / self.transfer_attempts

    # -- transient transfer faults -------------------------------------------

    def retry_transfer(self, attempt, label="transfer"):
        """Run one DMA thunk with bounded retry + exponential backoff.

        ``attempt`` performs a single transfer attempt (sync or async
        issue) and raises :class:`TransferError` on an injected fault.
        """
        delay = self.backoff_base_s
        failures = 0
        while True:
            self.transfer_attempts += 1
            try:
                return attempt()
            except TransferError as error:
                self.transfer_faults += 1
                failures += 1
                if failures > self.max_transfer_retries:
                    raise RetryExhaustedError(
                        f"{label}: still failing after {failures} attempts",
                        attempts=failures, last_error=error,
                        timestamp=self._clock.now, resource=error.resource,
                    ) from error
                self.stats["transfer_retries"] += 1
                self._backoff(delay, label=f"backoff:{label}")
                delay = min(delay * self.backoff_factor, self.max_backoff_s)

    # -- device OOM ----------------------------------------------------------

    def retry_alloc(self, attempt, protocol, label="cudaMalloc"):
        """Allocate with OOM relief: evict, shrink, back off, retry."""
        delay = self.backoff_base_s
        failures = 0
        while True:
            try:
                return attempt()
            except CudaOutOfMemoryError as error:
                failures += 1
                if failures > self.max_oom_retries:
                    raise RetryExhaustedError(
                        f"{label}: device OOM persisted after {failures} "
                        "attempts (eviction and rolling-size shrink did "
                        "not help)",
                        attempts=failures, last_error=error,
                        timestamp=self._clock.now, resource=error.resource,
                    ) from error
                self.stats["oom_retries"] += 1
                protocol.force_evict()
                self._backoff(delay, label="backoff:oom")
                delay = min(delay * self.backoff_factor, self.max_backoff_s)

    # -- kernel calls: launch faults and device loss ---------------------------

    def run_call(self, gmac, kernel, written, args):
        """Issue one adsmCall with full recovery around it.

        Retries transient launch rejections with backoff; on device loss,
        re-materialises all regions from host-canonical state and
        re-issues the whole release+launch sequence (the re-issued
        ``pre_call`` re-applies the protocol's invalidations).
        """
        self.maybe_degrade()
        if self._should_checkpoint():
            self.checkpoint()
        delay = self.backoff_base_s
        launch_failures = 0
        while True:
            try:
                return gmac._issue_call(kernel, written, args)
            except DeviceLostError as error:
                self.recover_device_loss(error)
            except LaunchError as error:
                launch_failures += 1
                if launch_failures > self.max_launch_retries:
                    raise RetryExhaustedError(
                        f"launch of {kernel.name!r}: still rejected after "
                        f"{launch_failures} attempts",
                        attempts=launch_failures, last_error=error,
                        timestamp=self._clock.now, resource=error.resource,
                    ) from error
                self.stats["launch_retries"] += 1
                self._backoff(delay, label="backoff:launch")
                delay = min(delay * self.backoff_factor, self.max_backoff_s)

    def _should_checkpoint(self):
        """Whether to pay the checkpoint premium before this call.

        ``checkpoint_before_call`` is a policy knob: ``True`` insures every
        call, ``False`` none.  The default ``"auto"`` checkpoints only
        while the installed plan declares a device-loss hazard that has
        not fired yet — the simulation's stand-in for a deployment flag
        saying "this accelerator is known to fall off the bus" — so purely
        transient fault plans do not pay per-call fetches they never need.
        """
        if self.checkpoint_before_call != "auto":
            return bool(self.checkpoint_before_call)
        plan = self.gmac.machine.faults
        return (plan is not None
                and plan.device_lost_at_launch is not None
                and plan.device_losses == 0)

    def checkpoint(self):
        """Make every block host-canonical at the call boundary.

        Fetches INVALID blocks (outputs of earlier kernels not yet read by
        the CPU) so that, should the device die during the upcoming
        release/launch window, nothing exists only in accelerator memory.
        The cost is part of the reported recovery overhead.
        """
        manager = self.gmac.manager
        start = self._clock.now
        monitor = self._internal()
        try:
            for region in manager.regions():
                manager.ensure_host_canonical(region, region.interval)
        finally:
            self._internal_done(monitor)
        self.stats["checkpoint_s"] += self._clock.now - start

    def recover_device_loss(self, error):
        """Re-materialise the accelerator after a device-lost event.

        Revive the context (device reset), replay every region's
        allocation at its old device address, flush all blocks from the
        host-canonical copies, then let the protocol reset its resting
        states.  Valid precisely because the CPU side holds all coherence
        state in ADSM — the paper's asymmetry is what makes the host a
        complete checkpoint.
        """
        if self.stats["device_recoveries"] >= self.max_device_recoveries:
            raise RetryExhaustedError(
                f"device lost {self.stats['device_recoveries'] + 1} times; "
                "giving up",
                attempts=self.stats["device_recoveries"] + 1,
                last_error=error, timestamp=self._clock.now,
                resource=error.resource,
            ) from error
        self.stats["device_recoveries"] += 1
        gmac = self.gmac
        manager = gmac.manager
        start = self._clock.now
        # Pin down device bytes first: numerics launched before the loss
        # replay against the dying memory image (in the eager engine they
        # had already run), so recovery is engine-mode independent.
        # ``Gpu.reset`` would do this implicitly; being explicit keeps the
        # recovery sequence readable.
        monitor = self._internal()
        try:
            gmac.layer.materialize_numerics()
            driver = gmac.layer.driver
            driver.revive()
            self._backoff(self.device_reset_s, label="device-reset")
            regions = sorted(manager.regions(), key=lambda r: r.device_start)
            manager.note_coherence("protocol", detail="device-recovery")
            for region in regions:
                driver.restore_allocation(region.device_start, region.size)
                for block in region.blocks:
                    manager.flush_to_device(block, sync=True)
                    self.stats["blocks_rematerialized"] += 1
            gmac.protocol.after_device_recovery(regions)
        finally:
            self._internal_done(monitor)
        self.stats["rematerialize_s"] += self._clock.now - start

    # -- degradation -----------------------------------------------------------

    #: rolling -> lazy -> batch; each step trades performance for fewer,
    #: simpler (synchronous, whole-object) transfers under fault pressure.
    DEGRADATION_ORDER = ("rolling", "lazy", "batch")

    def maybe_degrade(self, at_rate=None):
        """Downgrade the protocol when the observed fault rate is too high.

        Called at call boundaries (a safe point: no fault handler or
        transfer is mid-flight).  After a switch the observation window
        resets, so each protocol stage is judged on its own traffic.
        """
        if self.transfer_attempts < self.degrade_min_attempts:
            return None
        rate = self.observed_fault_rate if at_rate is None else at_rate
        if rate <= self.degrade_threshold:
            return None
        current = self.gmac.protocol.name
        try:
            position = self.DEGRADATION_ORDER.index(current)
        except ValueError:
            return None
        if position + 1 >= len(self.DEGRADATION_ORDER):
            return None
        target = self.DEGRADATION_ORDER[position + 1]
        self._switch_protocol(current, target, rate)
        self.transfer_attempts = 0
        self.transfer_faults = 0
        return target

    def _switch_protocol(self, current, target, rate):
        from repro.core.protocols import PROTOCOLS
        from repro.core.blocks import BlockState
        from repro.os.paging import Prot

        gmac = self.gmac
        manager = gmac.manager
        replacement = PROTOCOLS[target](manager)
        monitor = self._internal()
        try:
            if target == "batch":
                # Batch-update runs without protections and treats host copies
                # as always-canonical, so the host must be made whole first.
                for region in manager.regions():
                    manager.ensure_host_canonical(region, region.interval)
                    manager.set_region_blocks(region, BlockState.DIRTY, Prot.RW)
        finally:
            self._internal_done(monitor)
        gmac.protocol = replacement
        manager.protocol = replacement
        manager.note_coherence("protocol", detail=target)
        self.stats["degradations"].append(
            {"at": self._clock.now, "from": current, "to": target,
             "observed_rate": round(rate, 4)}
        )

    # -- I/O -------------------------------------------------------------------

    def note_short_read_resume(self):
        self.stats["short_read_resumes"] += 1
