"""Placement policies for multi-accelerator machines.

On a :func:`~repro.hw.machine.multi_device_system` every ``adsmAlloc``
must pick an owning device; the policy is pluggable (the Gmac constructor
accepts a name or an instance).  Policies also pick failover *survivors*
when a device is lost, and track device liveness so neither placement nor
failover ever targets a dead device.

All decisions are deterministic functions of allocation order and device
state — no wall clock, no RNG — so multi-device runs replay identically.
"""

from repro.util.errors import GmacError


class PlacementPolicy:
    """Chooses owning devices for new regions and failover survivors."""

    name = "abstract"

    def __init__(self, machine):
        self.machine = machine
        self.dead = set()

    @property
    def device_count(self):
        return len(self.machine.gpus)

    def alive_devices(self):
        return [
            index for index in range(self.device_count)
            if index not in self.dead
        ]

    def mark_dead(self, device):
        self.dead.add(device)

    def mark_alive(self, device):
        self.dead.discard(device)

    def place(self, size):
        """Owning device for a new ``size``-byte region."""
        alive = self.alive_devices()
        if not alive:
            raise GmacError("no alive device to place a shared region on")
        return self._choose(alive, size)

    def pick_survivor(self, lost, size):
        """Survivor device to re-home a ``size``-byte region onto, or None."""
        candidates = [
            index for index in self.alive_devices() if index != lost
        ]
        if not candidates:
            return None
        return self._choose(candidates, size)

    def _choose(self, candidates, size):
        raise NotImplementedError


class RoundRobin(PlacementPolicy):
    """Cycle allocations over the alive devices in index order."""

    name = "round-robin"

    def __init__(self, machine):
        super().__init__(machine)
        self._next = 0

    def _choose(self, candidates, size):
        choice = candidates[self._next % len(candidates)]
        self._next += 1
        return choice


class CapacityAware(PlacementPolicy):
    """Place on the device with the most free memory (ties: lowest index)."""

    name = "capacity"

    def _choose(self, candidates, size):
        return max(
            candidates,
            key=lambda index: (self.machine.gpus[index].memory.bytes_free,
                               -index),
        )


PLACEMENTS = {
    RoundRobin.name: RoundRobin,
    CapacityAware.name: CapacityAware,
}
