"""The shared memory manager (Figure 5's central box).

The manager owns every shared region, builds the shared address space
(Section 4.2), dispatches page-fault signals to the active coherence
protocol, and performs every data transfer — all on the CPU, never on the
accelerator: the asymmetry that gives ADSM its name.

Fault dispatch is flat: the faulting *region* comes from the ordered region
map (one bisect), and the faulting block index is shift/mask arithmetic on
the region's :class:`~repro.core.blocks.BlockTable` — blocks are fixed-size
inside a region, so no per-block search structure is consulted.  The paper's
Section 5.2 balanced tree ("GMAC keeps memory blocks in a balanced binary
tree, which requires O(log2(n)) operations to locate a given block") is
retained purely as the *cost oracle*: it is maintained at alloc/free time
and its exact per-lookup comparison counts are sampled into flat per-region
arrays, so every fault charges the identical virtual time the tree search
would have cost while the dispatch itself is O(1).
"""

import os

import numpy as np

from repro.util.errors import AllocationError, GmacError
from repro.util.intervals import Interval, RangeMap
from repro.hw.interconnect import Direction
from repro.hw.memory import (
    discard_host_range,
    ledger_bind,
    ledger_release,
    ledger_unbind,
)
from repro.util.avltree import AvlTree
from repro.sim.tracing import Category, CoherenceEvent
from repro.os.paging import Prot
from repro.core.blocks import (
    Block, BlockState, DIRTY_CODE, INVALID_CODE, index_runs,
)
from repro.core.region import SharedRegion
from repro.core.costs import GmacCostModel


class Manager:
    """Bookkeeping, fault dispatch and data movement for shared regions."""

    def __init__(self, machine, process, layer, cost_model=None):
        self.machine = machine
        self.process = process
        self.layer = layer
        self.costs = cost_model or GmacCostModel()
        self.accounting = machine.accounting
        self.clock = machine.clock
        self.protocol = None  # installed by Gmac after construction
        #: Optional RecoveryPolicy (installed by Gmac when the machine has
        #: an enabled fault plan).  None keeps every path unchanged.
        self.recovery = None
        #: Optional PlacementPolicy (installed by Gmac on multi-device
        #: machines).  None places every region on device 0, which is the
        #: entire legacy behaviour.
        self.placement = None
        #: Optional kernel-window race monitor (shared with the owning
        #: Gmac); used only to mark fault-driven coherence work as
        #: GMAC-internal so its device-byte traffic is not misattributed
        #: to the application.
        self.monitor = None
        self._regions = RangeMap()
        #: The Section 5.2 balanced tree, kept as the fault-cost oracle:
        #: mutated only at alloc/free, never searched on the fault path.
        self._cost_tree = AvlTree()
        #: Bumped on every cost-tree mutation; invalidates the per-region
        #: fault-step caches.
        self._steps_epoch = 0
        self._allocation_counter = 0
        # Figure 8's byte counters, split by direction and by cause.
        self.bytes_to_accelerator = 0
        self.bytes_to_host = 0
        self.eager_bytes_to_accelerator = 0
        #: Bytes moved device-to-device over peer DMA (region migrations).
        self.peer_bytes = 0
        self.fault_count = 0
        #: Fault-storm batching: one physical SIGSEGV delivery may repair a
        #: contiguous same-state run of blocks, replaying the per-block
        #: virtual-time charges the individual deliveries would have made
        #: (``REPRO_FAULT_STORMS=0`` restores per-block dispatch).
        self._storms = os.environ.get("REPRO_FAULT_STORMS", "1") != "0"
        self.process.signals.register(self._on_segv)

    # -- shared address space (Section 4.2) -------------------------------------

    def alloc(self, size, name=None, safe=False):
        """Allocate a shared region; the core of adsmAlloc/adsmSafeAlloc.

        The normal path allocates accelerator memory first and then asks
        the OS for an anonymous mapping at the *same* virtual range, so a
        single pointer serves both processors.  When that mapping collides
        (multi-accelerator systems) the normal path raises; the ``safe``
        path instead places the host mapping anywhere and records the
        translation for ``adsmSafe()``.
        """
        if size <= 0:
            raise GmacError(f"adsmAlloc size must be positive, got {size}")
        if name is None:
            name = f"region{self._allocation_counter}"
        self._allocation_counter += 1
        owner = (
            self.placement.place(size) if self.placement is not None else 0
        )
        with self.accounting.measure(Category.MALLOC, label=name):
            self.clock.advance(self.costs.api_call_s)
            if safe:
                device_start = self._device_alloc(
                    lambda: self.layer.alloc(size, owner=owner)
                )
                self.clock.advance(self.costs.mmap_s)
                mapping = self.process.address_space.mmap(size, Prot.RW)
                host_start = mapping.start
            elif self.layer.gpu_for(owner).spec.virtual_memory:
                # Section 4.2's collision-free path: with accelerator
                # virtual memory, negotiate one virtual range free on BOTH
                # processors and map it on each side.
                device_start = self._device_alloc(
                    lambda: self._alloc_common_range(name, size, owner)
                )
                self.clock.advance(self.costs.mmap_s)
                self.process.address_space.mmap(
                    size, Prot.RW, fixed_address=device_start
                )
                host_start = device_start
            else:
                device_start = self._device_alloc(
                    lambda: self.layer.alloc(size, owner=owner)
                )
                self.clock.advance(self.costs.mmap_s)
                try:
                    self.process.address_space.mmap(
                        size, Prot.RW, fixed_address=device_start
                    )
                except AllocationError as exc:
                    self.layer.free(device_start, owner=owner)
                    raise GmacError(
                        f"shared mapping collision for {name}: {exc}; "
                        "use adsmSafeAlloc on this system"
                    ) from exc
                host_start = device_start
            region = SharedRegion(
                name,
                host_start,
                device_start,
                size,
                self.protocol.block_size_for(size),
            )
            region.set_owner(owner)
            self._regions.add(region.interval, region)
            table = region.table
            for index in range(table.n_blocks):
                self._cost_tree.insert(table.start_of(index), None)
            self._steps_epoch += 1
            self.clock.advance(self.costs.block_setup_s * table.n_blocks)
            self.note_coherence(
                "alloc", region.name, 0, table.n_blocks - 1,
                detail=f"size={size}",
            )
            self._bind_transfer_plane(region)
            self.protocol.on_alloc(region)
        return region

    def _device_alloc(self, thunk):
        """One device allocation; device OOM triggers forced eviction and a
        bounded retry when recovery is armed (see RecoveryPolicy.retry_alloc)."""
        if self.recovery is not None:
            return self.recovery.retry_alloc(thunk, self.protocol)
        return thunk()

    def _alloc_common_range(self, name, size, owner=0):
        """Find and claim a virtual range free on the host AND the device.

        Walks the accelerator's free holes; inside each, skips past any
        conflicting host mappings page by mapping until a window of
        ``size`` bytes is free on both sides, then performs the placement
        allocation.  With 47-bit address spaces this effectively always
        succeeds — the point of accelerator virtual memory.
        """
        from repro.os.paging import page_ceil

        space = self.process.address_space
        padded = page_ceil(size)
        for hole in self.layer.gpu_for(owner).memory.free_holes():
            candidate = page_ceil(hole.start)
            while candidate + padded <= hole.end:
                conflict = space.conflict_at(candidate, padded)
                if conflict is None:
                    return self.layer.alloc_at(candidate, padded, owner=owner)
                candidate = page_ceil(conflict.end)
        raise GmacError(
            f"no common free virtual range of {size} bytes for {name}"
        )

    def free(self, host_start):
        """Release a shared region; the core of adsmFree."""
        found = self._regions.find_exact(host_start)
        if found is None:
            raise GmacError(f"adsmFree of unknown pointer {host_start:#x}")
        region = found[1]
        with self.accounting.measure(Category.FREE, label=region.name):
            self.clock.advance(self.costs.api_call_s)
            self.note_coherence(
                "free", region.name, 0, region.table.n_blocks - 1
            )
            self.protocol.on_free(region)
            table = region.table
            for index in range(table.n_blocks):
                self._cost_tree.delete(table.start_of(index))
            self._steps_epoch += 1
            self._regions.remove(host_start)
            self.clock.advance(self.costs.mmap_s)
            self._unbind_transfer_plane(region)
            self.process.address_space.munmap(region.host_start)
            self.layer.free(region.device_start, owner=region.owner)
        return region

    def free_all(self):
        """Release every region (used at application teardown)."""
        for start in [region.host_start for region in self.regions()]:
            self.free(start)

    # -- lookups ------------------------------------------------------------------

    def regions(self):
        return list(self._regions.values())

    def region_at(self, host_address):
        found = self._regions.find(host_address)
        return found[1] if found else None

    def region_starting_at(self, host_start):
        found = self._regions.find_exact(host_start)
        return found[1] if found else None

    def translate(self, host_address):
        """Host pointer -> device pointer; the core of adsmSafe()."""
        region = self.region_at(host_address)
        if region is None:
            raise GmacError(f"{host_address:#x} is not a shared address")
        return region.device_address_of(host_address)

    def shared_overlaps(self, interval):
        """(interval, region) pairs of shared memory overlapping a range."""
        return self._regions.overlapping(interval)

    @property
    def block_count(self):
        return len(self._cost_tree)

    # -- coherence event stream (consumed by repro.analysis) ----------------------

    def note_coherence(self, kind, region="", first=-1, last=-1, state="",
                       detail=""):
        """Emit one :class:`~repro.sim.tracing.CoherenceEvent`.

        A no-op (one attribute test) unless a sink is installed on the
        accounting — the sanitizer's model checker consumes the stream.
        """
        sink = self.accounting.coherence
        if sink is not None:
            sink.record(CoherenceEvent(
                kind, self.clock.now, region=region, first=first, last=last,
                state=state, detail=detail,
            ))

    def _note_transition(self, region, first, last, state, detail=""):
        sink = self.accounting.coherence
        if sink is not None:
            sink.record(CoherenceEvent(
                "transition", self.clock.now, region=region.name,
                first=first, last=last, state=state.value, detail=detail,
            ))

    # -- protection and state ---------------------------------------------------------

    def set_prot(self, interval, prot):
        """One mprotect call over a contiguous range (charged once)."""
        self.clock.advance(self.costs.mprotect_s)
        self.process.address_space.mprotect(interval.start, interval.size, prot)

    def set_block(self, block, state, prot):
        table = block.region.table
        index = block.index
        table.states[index] = state.code
        self.accounting.count_transitions(1)
        self._note_transition(block.region, index, index, state)
        start = table.start_of(index)
        self.clock.advance(self.costs.mprotect_s)
        self.process.address_space.mprotect(
            start, table.end_of(index) - start, prot
        )

    def set_region_blocks(self, region, state, prot, detail=""):
        """Bulk state+protection change for a whole region (one mprotect).

        ``detail`` tags the transition event (e.g. ``wo-release`` for a
        declared write-only release, which the checker treats specially).
        """
        region.table.fill(state)
        self.accounting.count_transitions(region.table.n_blocks)
        self._note_transition(
            region, 0, region.table.n_blocks - 1, state, detail
        )
        self.set_prot(region.interval, prot)

    def set_blocks_range(self, blocks, state, prot):
        """Bulk state+protection change for a contiguous run of blocks.

        The run must be address-adjacent (as produced by walking a region
        in order); the whole span is re-protected with a single mprotect,
        so n adjacent transitions charge one syscall instead of n.
        """
        self.set_index_range(
            blocks[0].region, blocks[0].index, blocks[-1].index, state, prot
        )

    def set_index_range(self, region, first, last, state, prot):
        """Vectorized state+protection change over an inclusive index run."""
        table = region.table
        table.fill_range(first, last, state)
        self.accounting.count_transitions(last - first + 1)
        self._note_transition(region, first, last, state)
        self.set_prot(
            Interval(table.start_of(first), table.end_of(last)), prot
        )

    def set_states_only(self, region, state):
        """Whole-region state bookkeeping with no protection change.

        The batch protocol runs with no memory protections, so its bulk
        transitions are pure table fills; routing them here keeps the
        transition counters and the coherence event stream complete.
        """
        region.table.fill(state)
        self.accounting.count_transitions(region.table.n_blocks)
        self._note_transition(region, 0, region.table.n_blocks - 1, state)

    def mark_state(self, region, index, state):
        """Single-block state bookkeeping with no protection change.

        Used by protocols for transitions whose protection was already
        established (e.g. rolling-update's call-time demotion of blocks
        its eager eviction left read-protected).
        """
        region.table.states[index] = state.code
        self.accounting.count_transitions(1)
        self._note_transition(region, index, index, state)

    # -- data movement ------------------------------------------------------------------

    def _attempt_transfer(self, thunk, label, device=None):
        """One logical transfer; retried with backoff under a fault plan.

        Runs inside the caller's Copy measurement, so backoff time (an
        inner Retry charge) is subtracted from Copy and the break-down
        keeps recovery overhead as its own category.  ``device`` names the
        device the transfer targets so watchdog escalation can declare the
        right context lost.
        """
        if self.recovery is not None:
            return self.recovery.retry_transfer(
                thunk, label=label, device=device
            )
        return thunk()

    def flush_to_device(self, block, sync=True):
        """Copy a block's host bytes to accelerator memory.

        Synchronous flushes (lazy-update on adsmCall, batch-update) charge
        Copy; asynchronous ones (rolling-update's eager eviction) cost the
        CPU only the issue overhead and overlap with whatever it does next.
        """
        return self.flush_index(
            block.region, block.index, sync=sync
        )

    def flush_index(self, region, index, sync=True):
        """Flush one block by (region, index) — no façade materialized."""
        table = region.table
        host_start = table.start_of(index)
        size = table.end_of(index) - host_start
        device_start = region.device_start + (host_start - region.host_start)
        self.bytes_to_accelerator += size
        self.note_coherence(
            "flush", region.name, index, index,
            detail="sync" if sync else "eager",
        )
        if sync:
            with self.accounting.measure(Category.COPY, label=region.flush_label):
                if self.recovery is None:
                    return self.layer.to_device(
                        device_start, host_start, size, sync=True,
                        owner=region.owner,
                    )
                return self._attempt_transfer(
                    lambda: self.layer.to_device(
                        device_start, host_start, size, sync=True,
                        owner=region.owner,
                    ),
                    label=region.flush_label,
                    device=region.owner,
                )
        self.eager_bytes_to_accelerator += size
        with self.accounting.measure(Category.COPY, label=region.eager_label):
            # Only the issue cost lands on the CPU; the DMA itself overlaps.
            if self.recovery is None:
                return self.layer.to_device(
                    device_start, host_start, size, sync=False,
                    owner=region.owner,
                )
            return self._attempt_transfer(
                lambda: self.layer.to_device(
                    device_start, host_start, size, sync=False,
                    owner=region.owner,
                ),
                label=region.eager_label,
                device=region.owner,
            )

    def fetch_to_host(self, block):
        """Copy a block's accelerator bytes back to the host (synchronous)."""
        return self.fetch_index(block.region, block.index)

    def fetch_index(self, region, index):
        """Fetch one block by (region, index) — no façade materialized.

        This is the coherence-side materialization barrier for deferred
        kernel numerics: the D2H copy reads device bytes, so the device
        memory's observation hook replays any queued kernels first.  A
        host fault that lands here therefore always sees post-kernel data,
        exactly as with the old eager engine.
        """
        table = region.table
        host_start = table.start_of(index)
        size = table.end_of(index) - host_start
        device_start = region.device_start + (host_start - region.host_start)
        self.bytes_to_host += size
        with self.accounting.measure(Category.COPY, label=region.fetch_label):
            if self.recovery is None:
                result = self.layer.to_host(
                    host_start, device_start, size, sync=True,
                    owner=region.owner,
                )
            else:
                result = self._attempt_transfer(
                    lambda: self.layer.to_host(
                        host_start, device_start, size, sync=True,
                        owner=region.owner,
                    ),
                    label=region.fetch_label,
                    device=region.owner,
                )
        # Sampled *after* the transfer: the D2H read is a materialization
        # barrier, so a non-zero pending count here means deferred kernel
        # numerics were NOT replayed before host bytes were produced.
        self.note_coherence(
            "fetch", region.name, index, index,
            detail=f"pending={self.layer.gpu_for(region.owner).pending_numerics}",
        )
        return result

    def _bind_transfer_plane(self, region):
        """Bind the region's mapping to its device range for the transfer
        ledger (DESIGN.md §14); a no-op in eager-transfer mode, where no
        plane is ever created.  A fresh pairing is synced by construction —
        the device buffer and the anonymous mapping are both zeros — so the
        first flush of an untouched block already collapses to an empty
        delta.  Rebinding after migration or device recovery is
        self-healing inside the copy entry points, so this is only needed
        here at birth."""
        gpu = self.layer.gpu_for(region.owner)
        if not gpu.defer_transfers:
            return
        mapping = self.process.address_space.mapping_at(region.host_start)
        if mapping is None:
            return
        ledger_bind(
            gpu.memory, region.device_start, mapping, region.host_start,
            region.mapped_size, synced=True,
        )

    def _unbind_transfer_plane(self, region):
        """Drop ledger state before the region's mapping is unmapped.
        Outstanding entries die unread (their host bytes become
        unobservable), which counts them as fully elided transfers."""
        mapping = self.process.address_space.mapping_at(region.host_start)
        if mapping is None or mapping.plane is None:
            return
        gpu = self.layer.gpu_for(region.owner)
        ledger_unbind(gpu.memory, region.device_start, mapping)
        ledger_release(mapping)

    def discard_host_blocks(self, region, first, last):
        """Pre-fetch hint to the transfer ledger: blocks ``[first, last]``
        are about to be overwritten by device fetches, so outstanding
        entries over them are dead weight — killing them now avoids the
        COW snapshots the fetch's own numerics replay would otherwise take
        for bytes nobody will ever read.  Safe because callers fetch the
        whole span immediately, with no host access in between."""
        mapping = self.process.address_space.mapping_at(region.host_start)
        if mapping is None or mapping.plane is None:
            return
        table = region.table
        start = table.start_of(first)
        discard_host_range(mapping, start, table.end_of(last) - start)

    def ensure_device_canonical(self, region, interval):
        """Make the accelerator copy of ``interval`` valid.

        Dirty blocks are flushed (and demoted to read-only); read-only
        blocks already match; invalid blocks are device-canonical by
        definition.  Used by bulk-operation interposition before
        device-side copies.  Dirty blocks are found with one vectorized
        scan and demote as contiguous runs — one mprotect per run, not
        per block.
        """
        span = region.block_range(interval)
        if span is None:
            return
        first, last = span
        window = region.table.states[first:last + 1]
        dirty = np.flatnonzero(window == DIRTY_CODE) + first
        for run_first, run_last in index_runs(dirty):
            for index in range(run_first, run_last + 1):
                self.flush_index(region, index, sync=True)
            self.protocol.demote_clean_range(
                region.blocks[run_first:run_last + 1]
            )

    def ensure_host_canonical(self, region, interval):
        """Make the host copy of ``interval`` valid (fetch invalid blocks).

        Each invalid block still fetches individually (transfers are
        per-block), but the invalid set is found with one vectorized scan
        and adjacent fetched blocks re-protect with a single range
        mprotect per run.
        """
        span = region.block_range(interval)
        if span is None:
            return
        first, last = span
        window = region.table.states[first:last + 1]
        invalid = np.flatnonzero(window == INVALID_CODE) + first
        for run_first, run_last in index_runs(invalid):
            self.discard_host_blocks(region, run_first, run_last)
            for index in range(run_first, run_last + 1):
                self.fetch_index(region, index)
            self.set_index_range(
                region, run_first, run_last, BlockState.READ_ONLY, Prot.READ
            )

    def migrate_region(self, region, target, reason="kernel"):
        """Move a region's device residence to ``target`` (peer DMA).

        Used when a kernel executes on a device that does not own one of
        its operands, and when readmission rebalances load back onto a
        recovered device.  The fast path is a device-to-device peer copy
        timed on BOTH links (D2H on the source's, H2D on the target's — a
        host-staged peer DMA, the conservative non-P2P model); when the
        source context is dead the host copy is canonical (the ADSM
        invariant) and the region re-materializes from host bytes instead.
        """
        source = region.owner
        if source == target:
            return
        with self.accounting.measure(Category.COPY, label=region.peer_label):
            size = region.size
            new_start = self._device_alloc(
                lambda: self.layer.alloc(size, owner=target)
            )
            src_ctx = self.layer.context_for(source)
            dst_ctx = self.layer.context_for(target)
            if src_ctx.alive:
                # The views are observation barriers: any deferred kernel
                # numerics on either device replay before bytes move.
                data = src_ctx.gpu.memory.view(
                    region.device_start, "u1", region.mapped_size
                )
                dst_ctx.gpu.memory.view(
                    new_start, "u1", region.mapped_size
                )[:] = data
                d2h = src_ctx.link.transfer(
                    size, Direction.D2H, label=region.peer_label
                )
                h2d = dst_ctx.link.transfer(
                    size, Direction.H2D, label=region.peer_label
                )
                d2h.wait()
                h2d.wait()
                self.peer_bytes += size
                src_ctx.mem_free(region.device_start)
                region.rehome(new_start, target)
                detail = f"dma:{source}->{target}"
            else:
                # Dead source: every block's canonical bytes live on the
                # host (ADSM keeps the directory and the data there), so
                # re-route through host memory and reset coherence state.
                region.rehome(new_start, target)
                for index in range(region.table.n_blocks):
                    self.flush_index(region, index, sync=True)
                self.protocol.after_device_recovery([region])
                detail = f"host:{source}->{target}"
            self.note_coherence(
                "peer", region.name, 0, region.table.n_blocks - 1,
                detail=detail,
            )

    # -- fault dispatch -----------------------------------------------------------------

    def _fault_steps_for(self, region):
        """Per-block fault search costs, sampled from the cost oracle.

        For any address inside a block, the Section 5.2 tree search visits
        a fixed node path that depends only on whether the address *is* the
        block's start key or lies strictly inside the block.  Both step
        counts are sampled once per (region, tree epoch) into flat int32
        arrays, so the fault path charges the exact tree cost with one
        array read.
        """
        cached = region.fault_steps
        if cached is not None and cached[0] == self._steps_epoch:
            return cached
        table = region.table
        n = table.n_blocks
        eq_steps = np.zeros(n, dtype=np.int32)
        in_steps = np.zeros(n, dtype=np.int32)
        for index in range(n):
            key = table.start_of(index)
            eq_steps[index] = self._cost_tree.floor_steps(key)[1]
            in_steps[index] = self._cost_tree.floor_steps(key + 1)[1]
        cached = (self._steps_epoch, eq_steps, in_steps)
        region.fault_steps = cached
        return cached

    def _on_segv(self, info):
        """The SIGSEGV handler GMAC registers (Section 4.3).

        Locates the faulting region via the ordered region map and the
        faulting block by shift/mask arithmetic, charging the paper's
        O(log n) balanced-tree search cost from the sampled cost oracle,
        then lets the protocol apply the Figure 6 state transition.
        Returns False for addresses outside any shared region so unrelated
        faults still crash the application.

        When the interrupted access reaches past the faulting block
        (``info.span``) and the following blocks share its state, the
        protocol may absorb the whole run in this one delivery (a fault
        storm): the remaining blocks' faults are *replayed* after the
        first one — each paying its own delivery overhead, tree-search
        cost, fault count and Figure 6 transition in exactly the order
        the individual deliveries would have — so every virtual-time
        figure is unchanged while the host-side fault loop collapses to
        one delivery per run.
        """
        extent = 1
        with self.accounting.measure(Category.SIGNAL, label="segv"):
            address = info.address
            found = self._regions.find(address)
            if found is None:
                # Miss: charge exactly what the tree search for a
                # non-shared address would have cost, then decline.
                _, steps = self._cost_tree.floor_steps(address)
                self.clock.advance(
                    self.costs.signal_base_s
                    + steps * self.costs.signal_per_step_s
                )
                return False
            region = found[1]
            table = region.table
            index = table.index_of(address)
            _, eq_steps, in_steps = self._fault_steps_for(region)
            # Plain int: a numpy scalar here would poison the virtual clock
            # (np.float64 reprs leak into every downstream figure).
            steps = int(
                eq_steps[index] if address == table.start_of(index)
                else in_steps[index]
            )
            self.clock.advance(
                self.costs.signal_base_s + steps * self.costs.signal_per_step_s
            )
            self.fault_count += 1
            self.accounting.count_fault()
            monitor = self.monitor
            if (monitor is None and self._storms
                    and address + info.span > table.end_of(index)):
                last_wanted = min(
                    table.index_of(address + info.span - 1),
                    table.n_blocks - 1,
                )
                run = table.run_length(
                    index, last_wanted, table.states[index]
                )
                extent = self.protocol.storm_extent(
                    region.blocks[index], info.access, run
                )
            if monitor is None:
                self.protocol.on_fault(region.blocks[index], info.access)
            else:
                # The fault itself was already judged by the race monitor's
                # own signal handler (it runs first); the coherence work it
                # triggers is GMAC-internal data movement.  Storms stay off
                # while it is armed — it observes per-delivery.
                monitor.enter_internal()
                try:
                    self.protocol.on_fault(region.blocks[index], info.access)
                finally:
                    monitor.exit_internal()
        if extent > 1:
            self._replay_storm(region, index + 1, index + extent - 1,
                               info.access)
        return True

    def _replay_storm(self, region, first, last, access):
        """Charge and transition blocks [first, last] as-if faulted.

        Each block replays the full per-delivery sequence — the kernel
        delivery overhead, then its own SIGNAL measure frame charging the
        tree-search cost (the resumed access faults exactly at the block
        start, so the ``eq_steps`` column applies) and running the Figure 6
        transition.  The frames are opened *after* the triggering fault's
        frame closed: nesting them inside it would change the outer frame's
        self-time arithmetic and drift the breakdown figures.
        """
        signals = self.process.signals
        accounting = self.accounting
        costs = self.costs
        _, eq_steps, _ = self._fault_steps_for(region)
        blocks = region.blocks
        for index in range(first, last + 1):
            signals.delivered += 1
            self.clock.advance(signals.overhead_s)
            accounting.charge(
                Category.SIGNAL, signals.overhead_s, label="signal-delivery"
            )
            with accounting.measure(Category.SIGNAL, label="segv"):
                self.clock.advance(
                    costs.signal_base_s
                    + int(eq_steps[index]) * costs.signal_per_step_s
                )
                self.fault_count += 1
                accounting.count_fault()
                self.protocol.on_fault(blocks[index], access)

    # -- call/return boundaries (the consistency model, Section 3.3) ---------------------

    def release_for_call(self, written=None):
        """Release shared objects to the accelerator; returns the earliest
        time a kernel may start (after all pending flushes)."""
        self.protocol.pre_call(self.regions(), written=written)
        return self.layer.pending_h2d()

    def acquire_after_return(self):
        """Re-acquire shared objects for the CPU after kernel return."""
        self.protocol.post_sync(self.regions())

    def reset_counters(self):
        self.bytes_to_accelerator = 0
        self.bytes_to_host = 0
        self.eager_bytes_to_accelerator = 0
        self.peer_bytes = 0
        self.fault_count = 0
