"""Sanitizer violations: the value type, the error, and report files.

Every check in :mod:`repro.analysis` produces :class:`Violation` values —
one per broken invariant, carrying the virtual time, the rule id and a
precise human-readable diff of what the reference model expected versus
what the implementation claimed.  :func:`write_report` persists them as
JSON when the ``REPRO_SANITIZE_REPORT`` environment variable names a
directory (CI uploads that directory as a build artifact), and
:class:`SanitizerViolation` is the error a sanitized run dies with.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import asdict, dataclass
from typing import Any, Optional, Sequence

from repro.util.errors import ReproError

#: Directory for JSON violation reports; unset means no files are written.
REPORT_DIR_ENV = "REPRO_SANITIZE_REPORT"

#: Writer identity inside report file names.  Unset, a process writes as
#: ``pid<os.getpid()>`` — fine for solo runs, but under the persistent
#: worker pool a respawned worker can recycle a predecessor's pid and
#: silently clobber its reports.  The pool therefore stamps each worker
#: incarnation with a unique ``w<id>-<spawn-serial>`` token at startup.
REPORT_TOKEN_ENV = "REPRO_SANITIZE_TOKEN"

#: Name of the aggregated report the pool parent writes at shutdown.
MERGED_REPORT = "violations-merged.json"

#: Per-process report counter, so one process writing several reports
#: never needs wall-clock entropy for unique file names.
_report_seq = 0


def writer_token() -> str:
    """This process's identity inside report file names."""
    return os.environ.get(REPORT_TOKEN_ENV) or f"pid{os.getpid()}"


@dataclass(frozen=True)
class Violation:
    """One broken invariant, precisely located.

    ``source`` is the subsystem that found it (``checker`` for the
    coherence model checker, ``races`` for the kernel-window race
    detector), ``rule`` a stable short identifier, ``time`` the virtual
    time of the offending event, and ``message`` the expected-vs-claimed
    diff.
    """

    source: str
    rule: str
    time: float
    message: str
    region: str = ""


class SanitizerViolation(ReproError):
    """A sanitized run observed at least one illegal transition or race."""

    def __init__(self, context: str, violations: Sequence[Violation],
                 report: Optional[str] = None) -> None:
        self.context = context
        self.violations = list(violations)
        self.report = report
        shown = [
            f"  [{v.source}:{v.rule}] t={v.time:.9f} "
            + (f"{v.region}: " if v.region else "")
            + v.message
            for v in self.violations[:16]
        ]
        if len(self.violations) > len(shown):
            shown.append(f"  ... and {len(self.violations) - len(shown)} more")
        trailer = f"\n  (full report: {report})" if report else ""
        super().__init__(
            f"sanitizer: {len(self.violations)} violation(s) in {context}:\n"
            + "\n".join(shown) + trailer
        )

    def __reduce__(self) -> Any:
        # BaseException's default reduce replays self.args (the formatted
        # message) into __init__, which breaks crossing a multiprocessing
        # pool; rebuild from the real constructor arguments instead.
        return (self.__class__, (self.context, self.violations, self.report))


def write_report(context: str, violations: Sequence[Violation],
                 stats: Optional[dict[str, Any]] = None) -> Optional[str]:
    """Persist violations as JSON under ``$REPRO_SANITIZE_REPORT``.

    Returns the file path, or None when reporting is not configured or
    there is nothing to report.
    """
    global _report_seq
    directory = os.environ.get(REPORT_DIR_ENV)
    if not directory or not violations:
        return None
    os.makedirs(directory, exist_ok=True)
    slug = re.sub(r"[^A-Za-z0-9._-]+", "_", context).strip("_") or "run"
    payload = {
        "context": context,
        "writer": writer_token(),
        "violations": [asdict(violation) for violation in violations],
        "stats": dict(stats or {}),
    }
    # O_EXCL creation: even if two writers ever share a token (a stale
    # environment, a recycled pid), the loser advances its sequence
    # instead of overwriting the winner's report.
    while True:
        _report_seq += 1
        path = os.path.join(
            directory,
            f"violations-{writer_token()}-{_report_seq}-{slug}.json",
        )
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            continue
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        return path


def merge_reports(directory: Optional[str] = None) -> Optional[str]:
    """Aggregate every per-writer report into one ``violations-merged.json``.

    The persistent worker pool calls this at shutdown so CI uploads one
    artifact summarizing all workers.  Individual reports are left in
    place (the merge is an index, not a replacement).  Returns the merged
    path, or None when the directory is unset/empty of reports.
    """
    directory = directory or os.environ.get(REPORT_DIR_ENV)
    if not directory or not os.path.isdir(directory):
        return None
    reports = []
    for name in sorted(os.listdir(directory)):
        if not name.startswith("violations-") or name == MERGED_REPORT:
            continue
        if not name.endswith(".json"):
            continue
        path = os.path.join(directory, name)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            continue
        payload["file"] = name
        reports.append(payload)
    if not reports:
        return None
    by_rule: dict[str, int] = {}
    for payload in reports:
        for violation in payload.get("violations", ()):
            rule = violation.get("rule", "?")
            by_rule[rule] = by_rule.get(rule, 0) + 1
    merged_path = os.path.join(directory, MERGED_REPORT)
    merged = {
        "reports": reports,
        "report_count": len(reports),
        "violation_count": sum(by_rule.values()),
        "violations_by_rule": by_rule,
        "writers": sorted({p.get("writer", "?") for p in reports}),
    }
    with open(merged_path, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
    return merged_path
