"""Repo-specific static lint (run as ``python -m repro.analysis.lint``).

Six rules, each encoding an invariant the simulator depends on but no
general-purpose linter knows about:

``R001``
    Device-memory internals (``_locate``, ``_allocations``,
    ``_alloc_starts``, assignment to ``on_observe``) must not be touched
    outside :mod:`repro.hw`.  Every device-byte access must flow through
    the public accessors so the ``on_observe`` hook — which the lazy
    materialization engine and the race detector both rely on — always
    fires.

``R002``
    No ``bytes(view[...])`` copies.  :mod:`repro.util.buffers` exists so
    bulk data moves by view; a ``bytes()`` of a subscript silently
    reintroduces the copy the zero-copy data path removed.

``R003``
    No unseeded randomness (``np.random.default_rng()`` or
    module-level ``random.*``) and no wall-clock reads (``time.time``,
    ``perf_counter``, ``datetime.now`` ...) in simulation code.  Results
    must be reproducible from the seed, and simulated time comes from
    :class:`~repro.sim.clock.VirtualClock`.

``R004``
    Protocol block-state mutation (``.state =``, ``.states[...] =``,
    ``.dirty_bits[...] =``, ``table.fill(...)``) is allowed only in the
    coherence core (``core/protocols``, ``core/manager.py``,
    ``core/blocks.py``, ``core/region.py``).  Everywhere else must go
    through the manager so transitions are counted and the coherence
    event stream stays complete — a bypassed mutation is invisible to
    the model checker.

``R005``
    No ``multiprocessing.Pool`` construction outside the executor engine
    (``experiments/executor.py``, ``experiments/pool.py``).  Ad-hoc pools
    fork before the parent pre-warm, dodge the persistent engine's
    shared-memory plane and crash supervision, and their sweeps never
    reach the result caches deterministically — all fan-out goes through
    :class:`~repro.experiments.executor.ExperimentExecutor`.

``R006``
    No direct byte copies between host mappings and device backing
    stores outside :mod:`repro.hw.memory`'s two ledger entry points
    (``copy_h2d`` / ``copy_d2h``).  A statement that both calls a
    device-memory byte accessor (``*.memory.read/write/fill/view``) and
    touches the host plane (``peek``/``peek_view``/``poke``/
    ``poke_fill``, a ``.backing`` store, or an address-space ``view``)
    is moving bytes around the transfer ledger: the copy dodges
    deferred-extent materialization, dirty-run recording and the COW
    shield, silently diverging the lazy engine from the eager one.

A finding is suppressed by a trailing ``# sanitizer: allow[R00X]``
comment on the offending line; every suppression is deliberate and
greppable.
"""

from __future__ import annotations

import ast
import os
import re
import sys
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set

RULES: Dict[str, str] = {
    "R001": "device-memory internals accessed outside repro.hw",
    "R002": "bytes() copy where a buffer view would do",
    "R003": "unseeded randomness or wall-clock in simulation code",
    "R004": "protocol block-state mutation outside the coherence core",
    "R005": "multiprocessing pool constructed outside the executor engine",
    "R006": "host<->device byte copy outside the ledger entry points",
}

_ALLOW_RE = re.compile(r"#\s*sanitizer:\s*allow\[(R\d{3})\]")

_HW_INTERNALS = {"_locate", "_allocations", "_alloc_starts"}
_WALL_CLOCK = {
    ("time", "time"), ("time", "perf_counter"), ("time", "monotonic"),
    ("time", "process_time"), ("datetime", "now"), ("datetime", "utcnow"),
    ("datetime", "today"), ("date", "today"),
}
#: Paths (relative to the package root, "/"-separated) where protocol
#: state mutation is the *job*, not a bypass.
_STATE_CORE = (
    "core/protocols/", "core/manager.py", "core/blocks.py", "core/region.py",
)
#: The only modules allowed to build worker pools: the sweep engine.
_POOL_CORE = ("experiments/executor.py", "experiments/pool.py")
#: The only module allowed to move bytes between host and device stores:
#: the transfer-ledger entry points live here (DESIGN.md §14).
_LEDGER_CORE = ("hw/memory.py",)
#: Byte accessors on a ``*.memory`` receiver (device side) and the host
#: plane's privileged accessors, as seen by R006.
_DEVICE_BYTE_METHODS = {"read", "write", "fill", "view"}
_HOST_BYTE_METHODS = {"peek", "peek_view", "poke", "poke_fill"}


@dataclass(frozen=True)
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _allowed_lines(source: str) -> Dict[int, Set[str]]:
    allowed: Dict[int, Set[str]] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        for match in _ALLOW_RE.finditer(text):
            allowed.setdefault(number, set()).add(match.group(1))
    return allowed


class _Visitor(ast.NodeVisitor):
    def __init__(self, relative: str) -> None:
        self.relative = relative
        self.in_hw = relative.startswith("hw/")
        self.in_state_core = relative.startswith(_STATE_CORE)
        self.in_pool_core = relative in _POOL_CORE
        self.in_ledger_core = relative in _LEDGER_CORE
        self.findings: List[tuple[int, str, str]] = []

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append((node.lineno, rule, message))

    # R001 ------------------------------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if not self.in_hw and node.attr in _HW_INTERNALS:
            self._flag(
                node, "R001",
                f"'{node.attr}' is a DeviceMemory internal; use the public "
                "accessors so on_observe fires",
            )
        self.generic_visit(node)

    def _check_assign_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Attribute):
            if not self.in_hw and target.attr == "on_observe":
                self._flag(
                    target, "R001",
                    "on_observe may only be (re)assigned inside repro.hw; "
                    "instrument via Gpu.observe_hook instead",
                )
            if not self.in_state_core and target.attr == "state":
                self._flag(
                    target, "R004",
                    "direct block-state assignment bypasses the manager "
                    "(transitions uncounted, coherence events unsent)",
                )
        if isinstance(target, ast.Subscript):
            value = target.value
            if (isinstance(value, ast.Attribute)
                    and not self.in_state_core
                    and value.attr in ("states", "dirty_bits")):
                self._flag(
                    target, "R004",
                    f"direct '{value.attr}[...]' write bypasses the manager",
                )
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_assign_target(element)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_assign_target(target)
        self._check_direct_copy(node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_assign_target(node.target)
        self._check_direct_copy(node)
        self.generic_visit(node)

    def visit_Expr(self, node: ast.Expr) -> None:
        self._check_direct_copy(node)
        self.generic_visit(node)

    # R006 ------------------------------------------------------------------------

    def _check_direct_copy(self, node: ast.stmt) -> None:
        """One statement touching both byte planes is a ledger bypass."""
        if self.in_ledger_core:
            return
        device = host = False
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute) and sub.attr == "backing":
                host = True
            if not (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)):
                continue
            attr = sub.func.attr
            receiver = sub.func.value
            if (attr in _DEVICE_BYTE_METHODS
                    and isinstance(receiver, ast.Attribute)
                    and receiver.attr == "memory"):
                device = True
            elif attr in _HOST_BYTE_METHODS:
                host = True
            elif attr == "view" and (
                (isinstance(receiver, ast.Name) and "space" in receiver.id)
                or (isinstance(receiver, ast.Attribute)
                    and "space" in receiver.attr)
            ):
                host = True
        if device and host:
            self._flag(
                node, "R006",
                "statement copies bytes between host and device stores "
                "directly; route through repro.hw.memory.copy_h2d/copy_d2h "
                "so the transfer ledger stays sound",
            )

    # R002 / R003 / R004 ------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._check_bytes_copy(node)
        self._check_nondeterminism(node)
        self._check_table_fill(node)
        self._check_pool_construction(node)
        self.generic_visit(node)

    def _check_bytes_copy(self, node: ast.Call) -> None:
        if (isinstance(node.func, ast.Name) and node.func.id == "bytes"
                and len(node.args) == 1 and not node.keywords
                and isinstance(node.args[0], ast.Subscript)):
            self._flag(
                node, "R002",
                "bytes(view[...]) copies; pass the view through "
                "repro.util.buffers instead",
            )

    def _check_nondeterminism(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        root = func.value
        # np.random.default_rng() with no seed
        if (func.attr == "default_rng" and not node.args and not node.keywords
                and isinstance(root, ast.Attribute) and root.attr == "random"):
            self._flag(
                node, "R003",
                "default_rng() without a seed is irreproducible; thread the "
                "experiment seed through",
            )
        if isinstance(root, ast.Name):
            pair = (root.id, func.attr)
            if pair in _WALL_CLOCK:
                self._flag(
                    node, "R003",
                    f"{root.id}.{func.attr}() reads the wall clock; "
                    "simulated time comes from VirtualClock",
                )
            if root.id == "random":
                if func.attr in ("Random", "SystemRandom") and (
                    node.args or node.keywords
                ):
                    return  # seeded generator: fine
                self._flag(
                    node, "R003",
                    f"random.{func.attr}() uses the unseeded global state; "
                    "use a seeded random.Random or numpy Generator",
                )

    def _check_table_fill(self, node: ast.Call) -> None:
        func = node.func
        if self.in_state_core or not isinstance(func, ast.Attribute):
            return
        if func.attr not in ("fill", "fill_range"):
            return
        receiver = func.value
        is_table = (
            (isinstance(receiver, ast.Attribute) and receiver.attr == "table")
            or (isinstance(receiver, ast.Name) and receiver.id == "table")
        )
        if is_table:
            self._flag(
                node, "R004",
                f"table.{func.attr}(...) bypasses the manager; use "
                "set_states_only / set_index_range",
            )

    # R005 ------------------------------------------------------------------------

    def _check_pool_construction(self, node: ast.Call) -> None:
        """Flag ``multiprocessing.Pool(...)`` / ``context.Pool(...)`` /
        bare ``Pool(...)`` anywhere outside the executor engine."""
        if self.in_pool_core:
            return
        func = node.func
        named_pool = isinstance(func, ast.Name) and func.id == "Pool"
        attr_pool = isinstance(func, ast.Attribute) and func.attr == "Pool"
        if named_pool or attr_pool:
            self._flag(
                node, "R005",
                "worker pools are the executor engine's job; run sweeps "
                "through ExperimentExecutor (experiments/executor.py)",
            )


def lint_file(path: str, relative: str) -> List[Finding]:
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [Finding(path, error.lineno or 0, "R000", f"syntax: {error}")]
    visitor = _Visitor(relative)
    visitor.visit(tree)
    allowed = _allowed_lines(source)
    return [
        Finding(path, line, rule, message)
        for line, rule, message in sorted(visitor.findings)
        if rule not in allowed.get(line, set())
    ]


def _iter_python_files(root: str) -> Iterable[tuple[str, str]]:
    if os.path.isfile(root):
        yield root, os.path.basename(root)
        return
    for directory, _, names in os.walk(root):
        for name in sorted(names):
            if name.endswith(".py"):
                path = os.path.join(directory, name)
                yield path, os.path.relpath(path, root).replace(os.sep, "/")


def lint_paths(paths: Sequence[str]) -> List[Finding]:
    findings: List[Finding] = []
    for root in paths:
        for path, relative in _iter_python_files(root):
            findings.extend(lint_file(path, relative))
    return findings


def main(argv: Sequence[str]) -> int:
    targets = list(argv) or [os.path.dirname(os.path.dirname(__file__))]
    findings = lint_paths(targets)
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} finding(s)")
        return 1
    print("sanitizer lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
