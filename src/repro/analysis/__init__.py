"""ADSM sanitizer: dynamic coherence checking plus static lint.

Three tools, one package:

* :class:`~repro.analysis.checker.CoherenceModelChecker` — replays the
  coherence event stream against a reference model of the Figure 6 state
  machine and release consistency; any transition the reference model
  declares illegal becomes a violation with a precise diff.
* :class:`~repro.analysis.races.RaceDetector` — flags CPU accesses to
  objects bound to in-flight kernels (between ``adsmCall`` and
  ``adsmSync``), including interposed I/O and unmediated device access.
* :mod:`repro.analysis.lint` — a static AST pass enforcing repo
  invariants (run ``python -m repro.analysis.lint``).

The dynamic tools attach to one :class:`~repro.core.api.Gmac` instance
via :func:`attach_sanitizer`; the experiment runner does so automatically
when sanitizing is enabled (``--sanitize`` or ``REPRO_SANITIZE=1``).
The seeded-bug harness proving these checks have teeth lives in
:mod:`repro.analysis.mutations`.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

from repro.analysis.checker import CoherenceModelChecker
from repro.analysis.contracts import ContractMonitor
from repro.analysis.races import RaceDetector
from repro.analysis.report import (
    SanitizerViolation,
    Violation,
    write_report,
)

__all__ = [
    "CoherenceModelChecker",
    "ContractMonitor",
    "RaceDetector",
    "Sanitizer",
    "SanitizerViolation",
    "Violation",
    "attach_sanitizer",
    "disable",
    "enable",
    "enabled",
    "write_report",
]

#: Environment switch: any non-empty value other than "0" enables the
#: sanitizer for every GMAC execution in the process (workers inherit it).
ENABLE_ENV = "REPRO_SANITIZE"


def enabled() -> bool:
    return os.environ.get(ENABLE_ENV, "0") not in ("", "0")


def enable() -> None:
    os.environ[ENABLE_ENV] = "1"


def disable() -> None:
    os.environ.pop(ENABLE_ENV, None)


class Sanitizer:
    """Both dynamic checkers attached to one GMAC instance."""

    def __init__(self, gmac: Any, context: str = "run") -> None:
        self.gmac = gmac
        self.context = context
        self.checker = CoherenceModelChecker()
        self.checker.configure(gmac.protocol.name)
        self.races = RaceDetector(gmac.machine.clock)
        gmac.accounting.coherence = self.checker
        self.races.attach(gmac)
        #: Launch-time declaration verification, armed only when the
        #: active protocol carries declared access modes: a wrong
        #: annotation then becomes a precise violation instead of silent
        #: corruption.
        self.contracts: Optional[ContractMonitor] = None
        modes = getattr(gmac.protocol, "modes", None)
        if modes:
            self.contracts = ContractMonitor(modes, gmac.machine.clock)
            gmac.contract_monitor = self.contracts

    @property
    def violations(self) -> List[Violation]:
        found = self.checker.violations + self.races.violations
        if self.contracts is not None:
            found = found + self.contracts.violations
        return found

    def stats(self) -> Dict[str, int]:
        merged = dict(self.checker.stats())
        for key, value in self.races.stats().items():
            merged[f"race_{key}"] = value
        if self.contracts is not None:
            for key, value in self.contracts.stats().items():
                merged[f"contract_{key}"] = value
        merged["violations"] = len(self.violations)
        return merged

    def detach(self) -> None:
        self.races.detach()
        self.gmac.accounting.coherence = None
        if self.contracts is not None:
            self.gmac.contract_monitor = None

    def finish(self, raise_on_violation: bool = True) -> List[Violation]:
        """Detach, persist the report, and (by default) die on violations."""
        self.detach()
        found = self.violations
        report: Optional[str] = None
        if found:
            report = write_report(self.context, found, self.stats())
        if found and raise_on_violation:
            raise SanitizerViolation(self.context, found, report)
        return found


def attach_sanitizer(gmac: Any, context: str = "run") -> Sanitizer:
    """Arm both dynamic checkers on ``gmac``; pair with ``finish()``."""
    return Sanitizer(gmac, context)
