"""Exhaustive small-scope model checking of the coherence protocols.

The dynamic sanitizer (:mod:`repro.analysis.checker`) only judges the
event streams real workloads happen to produce.  This module closes the
gap the way small-scope model checkers do: it drives each *real*
protocol implementation through every interleaving of a small action
alphabet — host reads/writes on either block of a two-block object,
device-side memsets, annotated and unannotated kernel launches, syncs,
forced rolling evictions and peer-DMA owner moves — and feeds every
resulting coherence event through the reference state machine.  A state
is the pair (implementation claim, reference ground truth): the per-block
Figure 6 codes, the checker's ``host_valid``/``device_valid`` bits and
declared mode, the pending-launch count, rolling-update's dirty FIFO and
limit, and each region's owning device.  BFS over action sequences with
state-digest deduplication makes the exploration exhaustive up to the
configured depth, and every invariant the checker knows is evaluated at
every transition of every path.

Two kinds of failure can surface:

* a checker violation — some reachable interleaving makes a protocol
  emit an event the reference model refutes; the offending path is kept
  as a :class:`Counterexample` whose recorded event stream replays
  through a fresh checker (``counterexample.replay()``) to reproduce the
  exact violations without re-running the protocol;
* a crash — an action raised where its guard said it was legal.

:func:`selfcheck` is the checker's own proof of teeth: one hand-built
minimal event stream per safety rule, each asserted to fire.  Exploring
a protocol whose checker has silently lost an invariant would prove
nothing — the seeded-bug harness (:mod:`repro.analysis.mutations`)
weakens an invariant and expects this selfcheck to notice.

Run ``python -m repro.analysis.modelcheck`` to explore all four
protocols; ``--min-states``/``--min-transitions`` turn the reported
coverage into CI floors.
"""

from __future__ import annotations

import argparse
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.os.paging import PAGE_SIZE, AccessKind
from repro.hw.machine import multi_device_system, reference_system
from repro.cuda.kernels import Kernel
from repro.sim.tracing import CoherenceEvent
from repro.workloads.base import Application
from repro.analysis.checker import CoherenceModelChecker
from repro.analysis.report import Violation

#: Every safety rule the reference checker can fire, in checker order.
CHECKER_RULES = (
    "dirty-stale-host",
    "ro-stale-host",
    "ro-stale-device",
    "invalid-lost-update",
    "rolling-bound",
    "flush-stale-host",
    "barrier-bypass",
    "fetch-stale-device",
    "fetch-clobber",
    "evict-order",
    "peer-stale-host",
    "peer-lost-data",
    "call-dirty",
    "call-stale-device",
    "call-written-valid",
    "sync-missing-fetch",
)


# -- the probe kernel -------------------------------------------------------------

_NX = (2 * PAGE_SIZE) // 4
_NY = PAGE_SIZE // 4


def _mc_fn(gpu, x, y, nx, ny):
    vx = gpu.view(x, "f4", nx)
    vy = gpu.view(y, "f4", ny)
    vy[:] = vx[:ny]


#: One reader/writer kernel: reads both blocks of ``x``, overwrites all
#: of ``y`` — enough to exercise every release/acquire edge.
MC_PROBE = Kernel(
    "mc-probe",
    _mc_fn,
    cost=lambda x, y, nx, ny: (nx, 4 * (nx + ny)),
    writes=("y",),
)


# -- configurations ---------------------------------------------------------------


@dataclass(frozen=True)
class ModelConfig:
    """One protocol instance plus the action alphabet used to drive it."""

    name: str
    protocol: str
    actions: Tuple[str, ...]
    protocol_options: Tuple[Tuple[str, Any], ...] = ()
    devices: int = 1
    #: Action-sequence bound.  The default depths are one past each
    #: configuration's measured saturation point — BFS discovers no new
    #: state digest at the final level — so the default run is exhaustive
    #: for this scope, not merely deep.
    depth: int = 8


_COMMON_ACTIONS = (
    "host-write-x0",
    "host-write-x1",
    "host-read-x0",
    "host-write-y",
    "host-read-y",
    "memset-y",
    "call",
    "call-annotated",
    "sync",
)

#: The exhaustive sweep: all four protocols, plus a two-device lazy
#: configuration where kernel placement and explicit migration move
#: region ownership over peer DMA.
CONFIGS = (
    ModelConfig("batch", "batch", _COMMON_ACTIONS),
    ModelConfig("lazy", "lazy", _COMMON_ACTIONS),
    ModelConfig(
        "rolling", "rolling", _COMMON_ACTIONS + ("evict",),
        protocol_options=(("block_size", PAGE_SIZE), ("rolling_size", 1)),
    ),
    ModelConfig(
        "declared", "declared", _COMMON_ACTIONS,
        protocol_options=(("modes", (("x", "ro"), ("y", "wo"))),),
    ),
    ModelConfig(
        "lazy-2dev", "lazy",
        ("host-write-x0", "host-write-y", "host-read-y", "call", "sync",
         "migrate-x"),
        devices=2,
        depth=7,
    ),
)


class _Recorder:
    """Event sink that both records the stream and checks it live."""

    def __init__(self, protocol: str) -> None:
        self.events: List[CoherenceEvent] = []
        self.checker = CoherenceModelChecker()
        self.checker.configure(protocol)

    def record(self, event: CoherenceEvent) -> None:
        self.events.append(event)
        self.checker.record(event)


class _Context:
    """One fresh machine + GMAC instance, replayable from an action path."""

    def __init__(self, config: ModelConfig) -> None:
        if config.devices > 1:
            machine = multi_device_system(devices=config.devices)
        else:
            machine = reference_system()
        self.app = Application(machine)
        self.recorder = _Recorder(config.protocol)
        options = {
            key: dict(value) if isinstance(value, tuple) and value
            and isinstance(value[0], tuple) else value
            for key, value in config.protocol_options
        }
        self.gmac = self.app.gmac(
            protocol=config.protocol, layer="driver",
            protocol_options=options,
        )
        # Attach before the allocations so their events reach the model.
        self.gmac.accounting.coherence = self.recorder
        self.x = self.gmac.alloc(2 * PAGE_SIZE, name="x")
        self.y = self.gmac.alloc(PAGE_SIZE, name="y")

    @property
    def idle(self) -> bool:
        return not self.gmac._pending

    def apply(self, action: str) -> None:
        _ACTIONS[action].apply(self)


@dataclass(frozen=True)
class _Action:
    guard: Callable[[_Context], bool]
    apply: Callable[[_Context], None]


def _touch(kind: AccessKind, offset: int, ptr: str) -> Callable[[_Context], None]:
    def run(ctx: _Context) -> None:
        base = int(ctx.x if ptr == "x" else ctx.y)
        ctx.app.process.touch(base + offset, 64, kind)
    return run


def _call(annotated: bool) -> Callable[[_Context], None]:
    def run(ctx: _Context) -> None:
        writes = (ctx.y,) if annotated else None
        ctx.gmac.call(MC_PROBE, writes=writes, x=ctx.x, y=ctx.y,
                      nx=_NX, ny=_NY)
    return run


def _migrate(ctx: _Context) -> None:
    region = ctx.x.region
    ctx.gmac.manager.migrate_region(
        region, (region.owner + 1) % 2, reason="modelcheck"
    )


#: Guards admit exactly the sequences a correct program may issue: host
#: accesses and bulk ops only outside kernel windows (in-window accesses
#: are the race detector's domain, not the protocol's), syncs only with
#: work in flight, at most two overlapping launches.
_ACTIONS: Dict[str, _Action] = {
    "host-write-x0": _Action(
        lambda ctx: ctx.idle, _touch(AccessKind.WRITE, 0, "x")),
    "host-write-x1": _Action(
        lambda ctx: ctx.idle, _touch(AccessKind.WRITE, PAGE_SIZE, "x")),
    "host-read-x0": _Action(
        lambda ctx: ctx.idle, _touch(AccessKind.READ, 0, "x")),
    "host-write-y": _Action(
        lambda ctx: ctx.idle, _touch(AccessKind.WRITE, 0, "y")),
    "host-read-y": _Action(
        lambda ctx: ctx.idle, _touch(AccessKind.READ, 0, "y")),
    "memset-y": _Action(
        lambda ctx: ctx.idle,
        lambda ctx: ctx.gmac.memset(ctx.y, 0, PAGE_SIZE)),
    "call": _Action(
        lambda ctx: len(ctx.gmac._pending) < 2, _call(annotated=False)),
    "call-annotated": _Action(
        lambda ctx: len(ctx.gmac._pending) < 2, _call(annotated=True)),
    "sync": _Action(
        lambda ctx: len(ctx.gmac._pending) > 0,
        lambda ctx: ctx.gmac.sync()),
    "evict": _Action(
        lambda ctx: ctx.idle,
        lambda ctx: ctx.gmac.protocol.force_evict()),
    "migrate-x": _Action(
        lambda ctx: ctx.idle, _migrate),
}


def _digest(ctx: _Context) -> Tuple[Any, ...]:
    """The explored state: implementation claims + reference ground truth."""
    regions = []
    for region in sorted(ctx.gmac.manager.regions(), key=lambda r: r.name):
        model = ctx.recorder.checker.regions.get(region.name)
        regions.append((
            region.name,
            region.table.states.tobytes(),
            int(region.owner),
            model.host_valid.tobytes() if model is not None else b"",
            model.device_valid.tobytes() if model is not None else b"",
            model.mode if model is not None else "",
        ))
    protocol = ctx.gmac.protocol
    fifo = getattr(protocol, "_dirty", None)
    return (
        tuple(regions),
        len(ctx.gmac._pending),
        tuple((b.region.name, b.index) for b in fifo)
        if fifo is not None else (),
        getattr(protocol, "rolling_size", None),
    )


# -- results ----------------------------------------------------------------------


@dataclass
class Counterexample:
    """One failing action sequence, replayable from its event stream."""

    config: str
    protocol: str
    actions: Tuple[str, ...]
    events: Tuple[CoherenceEvent, ...]
    violations: Tuple[Violation, ...]
    crash: str = ""

    def replay(self) -> List[Violation]:
        """Re-derive the violations from the recorded events alone."""
        checker = CoherenceModelChecker()
        checker.configure(self.protocol)
        for event in self.events:
            checker.record(event)
        return checker.violations

    def render(self) -> str:
        lines = [f"counterexample [{self.config}]: "
                 + " -> ".join(self.actions)]
        if self.crash:
            lines.append(f"  crash: {self.crash}")
        for violation in self.violations:
            lines.append(f"  {violation.rule}: {violation.message}")
        lines.append("  event stream:")
        for event in self.events:
            span = (f" {event.region}[{event.first}..{event.last}]"
                    if event.region else "")
            extra = f" {event.state}" if event.state else ""
            detail = f" ({event.detail})" if event.detail else ""
            lines.append(f"    {event.kind}{span}{extra}{detail}")
        return "\n".join(lines)


@dataclass
class ExplorationResult:
    """Coverage and verdict for one configuration's BFS."""

    config: ModelConfig
    states: int
    transitions: int
    counterexamples: List[Counterexample] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.counterexamples


def _run_path(
    config: ModelConfig, path: Tuple[str, ...]
) -> Tuple[_Context, Optional[BaseException]]:
    ctx = _Context(config)
    try:
        for action in path:
            ctx.apply(action)
    except Exception as exc:  # noqa: BLE001 - a crash IS the finding
        return ctx, exc
    return ctx, None


def _enabled(config: ModelConfig, ctx: _Context) -> Tuple[str, ...]:
    return tuple(
        name for name in config.actions if _ACTIONS[name].guard(ctx)
    )


def explore(config: ModelConfig) -> ExplorationResult:
    """BFS the protocol's reachable states up to ``config.depth`` actions.

    Each transition replays its whole path on a fresh machine —
    deterministic simulation makes replay exact — so exploration needs no
    snapshot/restore support from the runtime.  Paths that violate an
    invariant (or crash) become counterexamples and are not expanded;
    states already seen (by digest) are not re-expanded.
    """
    root = _Context(config)
    result = ExplorationResult(config, states=1, transitions=0)
    seen = {_digest(root)}
    frontier: deque = deque([((), _enabled(config, root))])
    while frontier:
        path, enabled = frontier.popleft()
        if len(path) >= config.depth:
            continue
        for action in enabled:
            extended = path + (action,)
            ctx, crash = _run_path(config, extended)
            result.transitions += 1
            violations = ctx.recorder.checker.violations
            if crash is not None or violations:
                result.counterexamples.append(Counterexample(
                    config.name, config.protocol, extended,
                    tuple(ctx.recorder.events), tuple(violations),
                    crash=repr(crash) if crash is not None else "",
                ))
                continue
            key = _digest(ctx)
            if key not in seen:
                seen.add(key)
                result.states += 1
                frontier.append((extended, _enabled(config, ctx)))
    return result


# -- checker selfcheck ------------------------------------------------------------


def _selfcheck_streams() -> Dict[str, List[CoherenceEvent]]:
    """One minimal synthetic event stream per checker rule."""
    E = CoherenceEvent

    def alloc(blocks: int = 2) -> CoherenceEvent:
        return E("alloc", 0.0, "r", 0, blocks - 1)

    return {
        "dirty-stale-host": [
            alloc(),
            E("transition", 1.0, "r", 0, 0, state="invalid"),
            E("transition", 2.0, "r", 0, 0, state="dirty"),
        ],
        "ro-stale-host": [
            alloc(),
            E("transition", 1.0, "r", 0, 0, state="invalid"),
            E("transition", 2.0, "r", 0, 0, state="read-only"),
        ],
        "ro-stale-device": [
            alloc(),
            E("transition", 1.0, "r", 0, 0, state="dirty"),
            E("transition", 2.0, "r", 0, 0, state="read-only"),
        ],
        "invalid-lost-update": [
            alloc(),
            E("transition", 1.0, "r", 0, 0, state="dirty"),
            E("transition", 2.0, "r", 0, 0, state="invalid"),
        ],
        "rolling-bound": [
            E("protocol", 0.0, detail="rolling"),
            alloc(4),
            E("limit", 0.0, detail="1"),
            E("transition", 1.0, "r", 0, 2, state="dirty"),
        ],
        "flush-stale-host": [
            alloc(),
            E("transition", 1.0, "r", 0, 0, state="invalid"),
            E("flush", 2.0, "r", 0, 0),
        ],
        "barrier-bypass": [
            alloc(),
            E("fetch", 1.0, "r", 0, 0, detail="pending=2"),
        ],
        "fetch-stale-device": [
            alloc(),
            E("transition", 1.0, "r", 0, 0, state="dirty"),
            E("fetch", 2.0, "r", 0, 0),
        ],
        "fetch-clobber": [
            alloc(),
            E("transition", 1.0, "r", 0, 0, state="dirty"),
            E("fetch", 2.0, "r", 0, 0),
        ],
        "evict-order": [
            E("protocol", 0.0, detail="rolling"),
            alloc(4),
            E("limit", 0.0, detail="4"),
            E("transition", 1.0, "r", 0, 1, state="dirty"),
            E("evict", 2.0, "r", 1, 1, detail="eager"),
        ],
        "peer-stale-host": [
            alloc(),
            E("transition", 1.0, "r", 0, 0, state="invalid"),
            E("peer", 2.0, "r", 0, 1, detail="host:0->1"),
        ],
        "peer-lost-data": [
            alloc(),
            E("transition", 1.0, "r", 0, 0, state="invalid"),
            E("protocol", 2.0, detail="device-recovery"),
            E("peer", 3.0, "r", 0, 1, detail="dma:0->1"),
        ],
        "call-dirty": [
            alloc(),
            E("transition", 1.0, "r", 0, 0, state="dirty"),
            E("call", 2.0, detail="*"),
        ],
        "call-stale-device": [
            alloc(),
            E("protocol", 1.0, detail="device-recovery"),
            E("call", 2.0, detail="*"),
        ],
        "call-written-valid": [
            alloc(),
            E("call", 1.0, detail="r"),
        ],
        "sync-missing-fetch": [
            E("protocol", 0.0, detail="batch"),
            alloc(),
            E("transition", 1.0, "r", 0, 0, state="invalid"),
            E("sync", 2.0),
        ],
    }


def selfcheck() -> List[str]:
    """Prove every checker rule still fires; returns the silent ones.

    An empty list means all :data:`CHECKER_RULES` detected their
    hand-built minimal violation.  A non-empty list means the checker
    has lost teeth — exploration results can no longer be trusted, and
    the mutation harness treats exactly this as a caught seeded bug.
    """
    missed: List[str] = []
    for rule, events in _selfcheck_streams().items():
        checker = CoherenceModelChecker()
        for event in events:
            checker.record(event)
        if rule not in {violation.rule for violation in checker.violations}:
            missed.append(rule)
    return missed


# -- CLI --------------------------------------------------------------------------


def run_all(depth: Optional[int] = None) -> List[ExplorationResult]:
    """Explore every configuration (optionally overriding the depth)."""
    results = []
    for config in CONFIGS:
        if depth is not None:
            config = ModelConfig(
                config.name, config.protocol, config.actions,
                config.protocol_options, config.devices,
                min(depth, config.depth),
            )
        results.append(explore(config))
    return results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="exhaustively model-check the coherence protocols"
    )
    parser.add_argument("--depth", type=int, default=None,
                        help="cap the BFS depth of every configuration")
    parser.add_argument("--min-states", type=int, default=0,
                        help="fail unless at least this many distinct "
                             "states were explored in total")
    parser.add_argument("--min-transitions", type=int, default=0,
                        help="fail unless at least this many transitions "
                             "were checked in total")
    args = parser.parse_args(argv)

    missed = selfcheck()
    if missed:
        print(f"selfcheck: FAILED — silent rules: {', '.join(missed)}")
    else:
        print(f"selfcheck: all {len(CHECKER_RULES)} checker rules fire")

    results = run_all(depth=args.depth)
    total_states = total_transitions = 0
    failed = bool(missed)
    print(f"{'config':<12} {'protocol':<10} {'depth':>5} {'states':>8} "
          f"{'transitions':>12} verdict")
    for result in results:
        total_states += result.states
        total_transitions += result.transitions
        verdict = "ok" if result.ok else (
            f"{len(result.counterexamples)} counterexample(s)"
        )
        print(f"{result.config.name:<12} {result.config.protocol:<10} "
              f"{result.config.depth:>5} {result.states:>8} "
              f"{result.transitions:>12} {verdict}")
        if not result.ok:
            failed = True
    print(f"{'total':<12} {'':<10} {'':>5} {total_states:>8} "
          f"{total_transitions:>12}")
    for result in results:
        for counterexample in result.counterexamples[:4]:
            print()
            print(counterexample.render())
    if args.min_states and total_states < args.min_states:
        print(f"FAIL: explored {total_states} states "
              f"< floor {args.min_states}")
        failed = True
    if args.min_transitions and total_transitions < args.min_transitions:
        print(f"FAIL: checked {total_transitions} transitions "
              f"< floor {args.min_transitions}")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
