"""Kernel-window race detector.

Between ``adsmCall`` and ``adsmSync`` every object bound to the running
kernel is *released*: the accelerator owns it, and any CPU access to it
is a data race under GMAC's release consistency (Section 3.2).  The
detector tracks that window per object and flags three access paths:

* **Faulting access** (``window-access``): the CPU touches a released
  object through ordinary loads/stores.  Detected by registering first in
  the SIGSEGV handler chain — a released object's pages are protected, so
  the racing access faults before the protocol can service it.
* **Interposed I/O** (``window-io``): ``read``/``write``/``memset``/
  ``memcpy`` over a released object.  These are pre-faulted or routed to
  the device by the interposer and may never raise SIGSEGV, so the
  interposer reports the target intervals explicitly via
  :meth:`notify_io`.
* **Unmediated device access** (``window-device-observe``): device memory
  observed outside every mediated path (API boundary, fault service,
  interposed call, recovery).  Mediated paths bracket themselves with
  :meth:`enter_internal`/:meth:`exit_internal`; anything else touching
  device bytes while a window is open is a backdoor around the
  completion barrier.

The detector is an observer: its signal handler always returns False
(never claims the fault) and it never mutates protocol state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.util.intervals import Interval
from repro.analysis.report import Violation

#: Name under which the monitor registers its SIGSEGV handler; a second
#: monitor on the same dispatcher is a configuration error and collides.
HANDLER_NAME = "kernel-window-race-monitor"


@dataclass
class _Window:
    """One object released to an in-flight kernel."""

    region: Any
    interval: Interval
    mode: str  # "written" or "read"
    kernel: str
    seq: int


class RaceDetector:
    """Flags CPU accesses to objects bound to in-flight kernels."""

    def __init__(self, clock: Any) -> None:
        self.clock = clock
        self.windows: Dict[str, _Window] = {}
        self.violations: List[Violation] = []
        self.faults_screened = 0
        self.io_checks = 0
        self._internal_depth = 0
        self._seq = 0
        self._seen: Set[Tuple[str, str, int]] = set()
        self._gmac: Optional[Any] = None

    # -- wiring ---------------------------------------------------------------------

    def attach(self, gmac: Any) -> None:
        """Hook into a Gmac instance's signal, observe and API paths."""
        self._gmac = gmac
        gmac.monitor = self
        gmac.manager.monitor = self
        gmac.process.signals.register(self._on_signal, name=HANDLER_NAME)
        # Every device is a potential backdoor on multi-device machines.
        for gpu in gmac.machine.gpus:
            gpu.observe_hook = self._observed

    def detach(self) -> None:
        gmac = self._gmac
        if gmac is None:
            return
        for gpu in gmac.machine.gpus:
            gpu.observe_hook = None
        gmac.process.signals.unregister(self._on_signal)
        gmac.manager.monitor = None
        gmac.monitor = None
        self._gmac = None

    # -- internal-path bracketing ---------------------------------------------------

    def enter_internal(self) -> None:
        """A mediated GMAC path is running: suppress device-observe flags."""
        self._internal_depth += 1

    def exit_internal(self) -> None:
        self._internal_depth -= 1

    # -- window lifecycle -----------------------------------------------------------

    def on_call(self, regions: Iterable[Any], written: Optional[Any],
                kernel: str) -> None:
        """A kernel launched: open (or escalate) a window per object."""
        self._seq += 1
        written_set = None if written is None else set(written)
        for region in regions:
            mode = (
                "written" if written_set is None or region in written_set
                else "read"
            )
            existing = self.windows.get(region.name)
            if existing is not None:
                # Back-to-back launches: keep the stronger claim.
                if existing.mode == "written":
                    mode = "written"
            self.windows[region.name] = _Window(
                region, region.interval, mode, kernel, self._seq
            )

    def on_sync(self) -> None:
        """The completion barrier: every window closes."""
        self.windows.clear()

    # -- access judgment ------------------------------------------------------------

    def _flag(self, rule: str, window: _Window, message: str) -> None:
        key = (rule, window.region.name, window.seq)
        if key in self._seen:
            return
        self._seen.add(key)
        self.violations.append(Violation(
            "races", rule, self.clock.now, message,
            region=window.region.name,
        ))

    def _racing_windows(self, interval: Interval,
                        access_writes: bool) -> List[_Window]:
        """Windows this host access races with.

        A host *read* of a kernel-written object sees torn data; a host
        *write* races with the kernel whichever way the kernel uses the
        object.  Reading an object the kernel only reads is benign.
        """
        return [
            window for window in self.windows.values()
            if window.interval.overlaps(interval)
            and (access_writes or window.mode == "written")
        ]

    def _on_signal(self, info: Any) -> bool:
        """First in the SIGSEGV chain; observes and never claims."""
        self.faults_screened += 1
        point = Interval.sized(info.address, 1)
        writes = getattr(info.access, "name", "") == "WRITE"
        for window in self._racing_windows(point, writes):
            verb = "writes" if writes else "reads"
            self._flag(
                "window-access", window,
                f"CPU {verb} {info.address:#x} while kernel "
                f"'{window.kernel}' holds the object ({window.mode}); "
                "access precedes the adsmSync barrier",
            )
        return False

    def notify_io(self, kind: str, access: Any, interval: Interval) -> None:
        """Interposer callback: judge a libc call's target interval."""
        self.io_checks += 1
        writes = getattr(access, "name", "") == "WRITE"
        for window in self._racing_windows(interval, writes):
            self._flag(
                "window-io", window,
                f"interposed {kind}() touches "
                f"[{interval.start:#x}, {interval.end:#x}) while kernel "
                f"'{window.kernel}' holds the object ({window.mode}); "
                "I/O precedes the adsmSync barrier",
            )

    def _observed(self) -> None:
        """Device memory observed: legal only on a mediated path."""
        if self._internal_depth > 0 or not self.windows:
            return
        window = next(iter(self.windows.values()))
        self._flag(
            "window-device-observe", window,
            "device memory observed outside every mediated path while "
            f"kernel '{window.kernel}' is in flight: the access bypasses "
            "the completion barrier",
        )

    # -- results --------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "faults_screened": self.faults_screened,
            "io_checks": self.io_checks,
            "violations": len(self.violations),
        }
