"""Seeded-bug harness: proof the sanitizer has teeth.

Each :class:`Mutation` re-introduces a realistic coherence bug by
monkeypatching one protocol (or engine) method, runs a small sanitized
scenario, and asserts the sanitizer flags the bug with the *expected*
rule.  The harness also runs every scenario unmutated first and asserts
it is clean — a checker that flags correct runs is as useless as one
that misses broken ones.

Run as a module::

    python -m repro.analysis.mutations

Exit status is non-zero if any scenario false-positives or any seeded
bug escapes.  CI runs this next to the test suite; the mutation list is
the sanitizer's regression spec.
"""

from __future__ import annotations

import os
import sys
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Tuple

import numpy as np

from repro import analysis
from repro.analysis import SanitizerViolation, Violation, attach_sanitizer
from repro.analysis.checker import CoherenceModelChecker
from repro.analysis.report import write_report
from repro.core.api import Gmac
from repro.core.blocks import BlockState, INVALID_CODE
from repro.core.protocols.batch import BatchUpdate
from repro.core.protocols.lazy import LazyUpdate
from repro.core.protocols.rolling import RollingUpdate
from repro.cuda.driver import DriverContext
from repro.cuda.kernels import Kernel
from repro.hw.gpu import Gpu
from repro.hw.interconnect import Direction
from repro.hw.machine import reference_system
from repro.os.paging import AccessKind, Prot
from repro.util.units import KB
from repro.workloads.vecadd import VectorAdd

#: Patch target: (owner class, attribute name, replacement callable).
Patch = Tuple[type, str, Any]


# -- scenarios -------------------------------------------------------------------
#
# Small by design: a few hundred KB keeps the whole harness sub-second
# while still producing multi-block traffic (evictions, faults, fetches)
# under every protocol.

def _run_vecadd(protocol: str,
                options: Dict[str, Any] | None = None) -> List[Violation]:
    """One sanitized vecadd run; returns the violations it raised."""
    previous = os.environ.get(analysis.ENABLE_ENV)
    analysis.enable()
    try:
        VectorAdd(elements=128 * 1024).execute(
            mode="gmac", protocol=protocol, gmac_options=options
        )
        return []
    except SanitizerViolation as error:
        return error.violations
    finally:
        if previous is None:
            analysis.disable()
        else:
            os.environ[analysis.ENABLE_ENV] = previous


def _scenario_rolling() -> List[Violation]:
    # A small fixed rolling size forces eager evictions during produce.
    return _run_vecadd("rolling", {
        "protocol_options": {"block_size": 64 * KB, "rolling_size": 2},
        "layer": "driver",
    })


def _scenario_lazy() -> List[Violation]:
    return _run_vecadd("lazy", {"layer": "driver"})


def _scenario_batch() -> List[Violation]:
    return _run_vecadd("batch", {"layer": "driver"})


def _scenario_declared() -> List[Violation]:
    # execute() injects VectorAdd.declared_modes into the protocol, and
    # the sanitizer arms a ContractMonitor whenever the protocol carries
    # modes — so a wrong declaration is flagged at the launch boundary.
    return _run_vecadd("declared", {"layer": "driver"})


def _scenario_modelcheck() -> List[Violation]:
    """Model-checker self-proof: every rule's minimal stream must flag.

    :func:`repro.analysis.modelcheck.selfcheck` replays one hand-built
    minimal violating event stream per checker rule.  A rule that stays
    silent means the checker lost teeth — surfaced here as a violation so
    the harness scores weakened invariants like any other seeded bug.
    """
    from repro.analysis import modelcheck

    return [
        Violation(
            source="modelcheck", rule="selfcheck-missed", time=0.0,
            message=f"minimal violating stream for {rule!r} went unflagged",
            region=rule,
        )
        for rule in modelcheck.selfcheck()
    ]


def _copy_fn(gpu: Any, a: int, c: int, n: int) -> None:
    gpu.view(c, "f4", n)[:] = gpu.view(a, "f4", n)


_COPY = Kernel(
    "san-copy", _copy_fn, cost=lambda a, c, n: (n, 8 * n), writes=("c",)
)


def _scenario_annotated_lazy() -> List[Violation]:
    """A run using the Section 4.3 output annotation (``writes=``).

    The stock workloads launch unannotated, so the annotation-specific
    invariant (written objects must not stay host-valid across the call)
    needs its own scenario.
    """
    machine = reference_system()
    from repro.workloads.base import Application

    app = Application(machine)
    gmac = app.gmac(protocol="lazy", layer="driver")
    sanitizer = attach_sanitizer(gmac, context="mutation:annotated-lazy")
    nbytes = 64 * KB
    a = gmac.alloc(nbytes, name="a")
    c = gmac.alloc(nbytes, name="c")
    payload = np.arange(nbytes // 4, dtype=np.float32)
    a.write_bytes(memoryview(payload).cast("B"))
    gmac.call(_COPY, writes=[c], a=a, c=c, n=nbytes // 4)
    gmac.sync()
    out = np.empty(nbytes, dtype=np.uint8)
    c.read_into(out)
    try:
        sanitizer.finish()
    except SanitizerViolation as error:
        return error.violations
    return []


# -- the seeded bugs -------------------------------------------------------------

def _evict_without_flush(self: Any, block: Any) -> None:
    """Bug 1: eager eviction demotes the block but forgets the transfer."""
    self.evictions += 1
    block.region.table.dirty_bits[block.index] = False  # sanitizer: allow[R004]
    self.manager.note_coherence(
        "evict", block.region.name, block.index, block.index
    )
    self.manager.set_block(block, BlockState.READ_ONLY, Prot.READ)


def _mark_dirty_unbounded(self: Any, block: Any) -> None:
    """Bug 2: the dirty-block cache never evicts (unbounded rolling)."""
    self.manager.set_block(block, BlockState.DIRTY, Prot.RW)
    block.region.table.dirty_bits[block.index] = True  # sanitizer: allow[R004]
    self._dirty.append(block)


def _lazy_fault_without_fetch(self: Any, block: Any, access: Any) -> None:
    """Bug 3: invalid objects are remapped without fetching device data."""
    manager = self.manager
    if block.state is BlockState.READ_ONLY:
        manager.set_block(block, BlockState.DIRTY, Prot.RW)
    elif access is AccessKind.WRITE:
        manager.set_block(block, BlockState.DIRTY, Prot.RW)
    else:
        manager.set_block(block, BlockState.READ_ONLY, Prot.READ)


def _lazy_pre_call_no_invalidate(self: Any, regions: Any,
                                 written: Any = None) -> None:
    """Bug 4: kernel-written objects keep their host mapping valid."""
    for region in regions:
        for index in region.table.indices_in(BlockState.DIRTY):
            self.manager.flush_index(region, int(index), sync=True)
        if region.table.states[0] != INVALID_CODE:
            self.manager.set_region_blocks(
                region, BlockState.READ_ONLY, Prot.READ
            )


def _lazy_pre_call_skip_flush(self: Any, regions: Any,
                              written: Any = None) -> None:
    """Bug 5: release invalidates dirty objects without flushing them."""
    for region in regions:
        self.manager.set_region_blocks(region, BlockState.INVALID, Prot.NONE)


def _batch_post_sync_no_fetch(self: Any, regions: Any) -> None:
    """Bug 6: the acquire barrier marks objects dirty without fetching."""
    for region in regions:
        self.manager.set_states_only(region, BlockState.DIRTY)


def _mark_dirty_evict_newest(self: Any, block: Any) -> None:
    """Bug 7: capacity eviction retires the newest settled block (LIFO).

    The block whose write fault is in progress must stay resident (an
    unrepaired fault is a crash), so the victim is the second-newest —
    still the wrong end of the FIFO.
    """
    self.manager.set_block(block, BlockState.DIRTY, Prot.RW)
    block.region.table.dirty_bits[block.index] = True  # sanitizer: allow[R004]
    self._dirty.append(block)
    while len(self._dirty) > max(self.rolling_size, 1):
        faulting = self._dirty.pop()
        victim = self._dirty.pop()
        self._dirty.append(faulting)
        self._evict(victim)


_REAL_SYNC = Gmac.sync


def _sync_touches_released_object(self: Any) -> Any:
    """Bug 8: the application reads a shared object before adsmSync."""
    region = self.manager.regions()[0]
    self.process.touch(region.host_start, 64, AccessKind.WRITE)
    return _REAL_SYNC(self)


def _observed_without_materialize(self: Any) -> None:
    """Bug 9: device-byte reads skip the deferred-numerics barrier."""
    if self._replaying:
        return
    if self.observe_hook is not None:
        self.observe_hook()


def _memcpy_d2h_direct(self: Any, host: int, device: int, size: int,
                       stream: Any = None, sync: bool = True) -> Any:
    """Bug 10: a hand-rolled D2H 'fast path' grabs the backing buffers
    directly, skipping the ledger entry point — and with it the device
    observation barrier, dirty-run recording and deferred-extent
    materialization."""
    self._driver_call()
    self._check_alive()
    self._maybe_fail_transfer(Direction.D2H, size)
    allocation, offset = self.gpu.memory._locate(device, size)  # sanitizer: allow[R001]
    self.process.address_space.poke(  # sanitizer: allow[R006]
        host, allocation.buffer[offset:offset + size]
    )
    completion = self._schedule_transfer(size, Direction.D2H, stream)
    if sync:
        completion.wait()
    return completion


#: Bug 11: the programmer mislabels the kernel's output as read-only.
#: The static contract (``infer_kernel_contract``) proves the kernel
#: writes ``c``, so the launch-time ContractMonitor must reject the
#: declaration before the elided transfers can corrupt the output.
_WRONG_VECADD_MODES = {"a": "ro", "b": "ro", "c": "ro"}


def _invalidate_without_lost_update_check(self: Any, event: Any, model: Any,
                                          lo: int, hi: int) -> None:
    """Bug 12: invalidation forgets the lost-update audit.

    The weakened checker still mirrors the state change (so every other
    rule keeps passing) but never inspects the dirty blocks it is about
    to drop — exactly the kind of silent invariant rot the model
    checker's self-check exists to catch.
    """
    model.device_valid[lo:hi] = True
    model.host_valid[lo:hi] = False


@dataclass(frozen=True)
class Mutation:
    name: str
    description: str
    #: Flagging any of these rules counts as catching the bug.
    expected: Tuple[str, ...]
    scenario: Callable[[], List[Violation]]
    patches: Tuple[Patch, ...]


MUTATIONS: Tuple[Mutation, ...] = (
    Mutation(
        "rolling-skip-eviction-flush",
        "eager eviction demotes without transferring the block",
        ("ro-stale-device",),
        _scenario_rolling,
        ((RollingUpdate, "_evict", _evict_without_flush),),
    ),
    Mutation(
        "rolling-unbounded-cache",
        "dirty-block cache ignores the rolling size",
        ("rolling-bound",),
        _scenario_rolling,
        ((RollingUpdate, "_mark_dirty", _mark_dirty_unbounded),),
    ),
    Mutation(
        "lazy-stale-fetch",
        "invalid objects remapped without fetching device data",
        ("ro-stale-host", "dirty-stale-host"),
        _scenario_lazy,
        ((LazyUpdate, "on_fault", _lazy_fault_without_fetch),),
    ),
    Mutation(
        "lazy-missing-invalidate",
        "kernel-written objects stay host-valid across the call",
        ("call-written-valid",),
        _scenario_annotated_lazy,
        ((LazyUpdate, "pre_call", _lazy_pre_call_no_invalidate),),
    ),
    Mutation(
        "lazy-lost-update",
        "release invalidates dirty objects without flushing",
        ("invalid-lost-update",),
        _scenario_lazy,
        ((LazyUpdate, "pre_call", _lazy_pre_call_skip_flush),),
    ),
    Mutation(
        "batch-skip-fetch",
        "acquire marks objects dirty without fetching them back",
        ("dirty-stale-host",),
        _scenario_batch,
        ((BatchUpdate, "post_sync", _batch_post_sync_no_fetch),),
    ),
    Mutation(
        "rolling-evict-newest",
        "capacity eviction retires the newest block instead of the oldest",
        ("evict-order",),
        _scenario_rolling,
        ((RollingUpdate, "_mark_dirty", _mark_dirty_evict_newest),),
    ),
    Mutation(
        "kernel-window-race",
        "CPU writes a released object before the completion barrier",
        ("window-access",),
        _scenario_lazy,
        ((Gmac, "sync", _sync_touches_released_object),),
    ),
    Mutation(
        "deferred-barrier-bypass",
        "device reads skip the deferred kernel-numerics barrier",
        ("barrier-bypass",),
        _scenario_batch,
        ((Gpu, "_memory_observed", _observed_without_materialize),),
    ),
    Mutation(
        "ledger-bypass-direct-copy",
        "D2H fast path copies device bytes around the transfer ledger",
        ("barrier-bypass",),
        _scenario_batch,
        ((DriverContext, "memcpy_d2h", _memcpy_d2h_direct),),
    ),
    Mutation(
        "wrong-mode-declaration",
        "workload declares its kernel-written output read-only",
        ("wrong-mode-declaration",),
        _scenario_declared,
        ((VectorAdd, "declared_modes", _WRONG_VECADD_MODES),),
    ),
    Mutation(
        "modelcheck-invariant-weakened",
        "checker drops the lost-update audit on invalidation",
        ("selfcheck-missed",),
        _scenario_modelcheck,
        ((CoherenceModelChecker, "_check_to_invalid",
          _invalidate_without_lost_update_check),),
    ),
)


@contextmanager
def _applied(patches: Tuple[Patch, ...]) -> Iterator[None]:
    saved = [(owner, name, owner.__dict__[name]) for owner, name, _ in patches]
    try:
        for owner, name, replacement in patches:
            setattr(owner, name, replacement)
        yield
    finally:
        for owner, name, original in saved:
            setattr(owner, name, original)


@dataclass
class Outcome:
    mutation: str
    caught: bool
    rules: Tuple[str, ...]
    detail: str = ""


def run_mutation(mutation: Mutation) -> Outcome:
    """Apply one seeded bug, run its scenario, judge the flags."""
    try:
        with _applied(mutation.patches):
            violations = mutation.scenario()
    except Exception as error:  # crashed before the sanitizer could rule
        return Outcome(
            mutation.name, False, (),
            detail=f"scenario crashed: {type(error).__name__}: {error}",
        )
    rules = tuple(sorted({violation.rule for violation in violations}))
    caught = any(rule in rules for rule in mutation.expected)
    if violations:
        write_report(f"mutation:{mutation.name}", violations)
    return Outcome(mutation.name, caught, rules)


def run_all() -> Tuple[List[Outcome], List[str]]:
    """All mutations plus baseline (unmutated) cleanliness checks."""
    false_positives = []
    for scenario in (
        _scenario_rolling, _scenario_lazy, _scenario_batch,
        _scenario_annotated_lazy, _scenario_declared, _scenario_modelcheck,
    ):
        clean = scenario()
        if clean:
            rules = sorted({violation.rule for violation in clean})
            false_positives.append(f"{scenario.__name__}: {rules}")
    return [run_mutation(mutation) for mutation in MUTATIONS], false_positives


def main() -> int:
    outcomes, false_positives = run_all()
    status = 0
    for name in false_positives:
        print(f"FALSE-POSITIVE {name}")
        status = 1
    for outcome in outcomes:
        mutation = next(m for m in MUTATIONS if m.name == outcome.mutation)
        if outcome.caught:
            flagged = ",".join(
                rule for rule in outcome.rules if rule in mutation.expected
            )
            print(f"caught   {outcome.mutation:28s} -> {flagged}")
        else:
            print(
                f"MISSED   {outcome.mutation:28s} expected "
                f"{'/'.join(mutation.expected)}; saw {outcome.rules or '()'} "
                f"{outcome.detail}"
            )
            status = 1
    total = sum(outcome.caught for outcome in outcomes)
    print(f"{total}/{len(outcomes)} seeded bugs caught, "
          f"{len(false_positives)} false positive(s)")
    return status


if __name__ == "__main__":
    sys.exit(main())
