"""Coherence model checker: a reference state machine for the event stream.

The checker is a pure observer.  It subscribes to the
:class:`~repro.sim.tracing.CoherenceEvent` stream (as the
``TimeAccounting.coherence`` sink) and replays every event against a
*reference* model of GMAC's release-consistency protocol — the Figure 6
state machine plus two ground-truth bits per block that the
implementation does not keep:

``host_valid``
    the host copy of the block holds the program's current data,

``device_valid``
    the accelerator copy does.

The claimed :class:`~repro.core.blocks.BlockState` is then just an
assertion about those bits — DIRTY claims the host copy is canonical,
INVALID claims the device copy is, READ_ONLY claims both match — and a
transition is legal exactly when the bits back the claim.  Flushes,
fetches, evictions, kernel launches and syncs each update or check the
bits; any mismatch produces a :class:`~repro.analysis.report.Violation`
with a precise expected-vs-claimed diff.

After flagging a violation the checker *adopts* the implementation's
claim (sets the bits the claim asserts), so one protocol bug yields one
violation at its first observable event rather than a cascade of
downstream noise.

The transfer ledger (DESIGN.md §14) needs no checker changes: a fetch
that records a deferred extent still makes the *host* logically valid —
the entry's versioned bytes are the host copy, materialized on first
observation — and a delta-trimmed flush still makes the device valid, so
``host_valid``/``device_valid`` keep their meaning unmodified.  The
``pending=`` sample on fetch events (the deferred-numerics barrier
check) is taken inside the ledger's record path at the same point an
eager copy would observe device bytes, which is what lets the
ledger-bypass mutation trip the existing ``barrier-bypass`` rule.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Set

import numpy as np

from repro.core.blocks import DIRTY_CODE, INVALID_CODE, READ_ONLY_CODE
from repro.analysis.report import Violation

_STATE_CODES = {
    "invalid": INVALID_CODE,
    "dirty": DIRTY_CODE,
    "read-only": READ_ONLY_CODE,
}
_CODE_NAMES = {code: name for name, code in _STATE_CODES.items()}


def _span(indices: np.ndarray) -> str:
    """Summarize offending block indices compactly: ``3`` or ``3..17 (9)``."""
    if indices.size == 1:
        return str(int(indices[0]))
    return (
        f"{int(indices[0])}..{int(indices[-1])} ({int(indices.size)} blocks)"
    )


class _RegionModel:
    """Reference state for one shared region, one entry per block."""

    def __init__(self, n_blocks: int) -> None:
        self.n_blocks = n_blocks
        # Fresh allocations start READ_ONLY with both copies "valid":
        # host and device hold the same (zeroed) bytes.
        self.states = np.full(n_blocks, READ_ONLY_CODE, dtype=np.uint8)
        self.host_valid = np.ones(n_blocks, dtype=bool)
        self.device_valid = np.ones(n_blocks, dtype=bool)
        #: Declared access mode ("rw" unless a ``mode`` event announced
        #: otherwise); relaxes exactly the invariants a verified
        #: declaration makes safe to relax.
        self.mode = "rw"


class CoherenceModelChecker:
    """Replays coherence events against the reference protocol model."""

    def __init__(self, max_violations: int = 64) -> None:
        self.regions: Dict[str, _RegionModel] = {}
        self.violations: List[Violation] = []
        self.events_checked = 0
        self.max_violations = max_violations
        self.protocol = ""
        #: FIFO mirror of rolling-update's dirty-block cache: (region, index)
        #: in the order the blocks became dirty.
        self.fifo: Deque[tuple[str, int]] = deque()
        self._fifo_members: Set[tuple[str, int]] = set()
        self.rolling_limit = 0

    # -- plumbing -------------------------------------------------------------------

    def configure(self, protocol: str) -> None:
        self.protocol = protocol

    def _flag(self, event: Any, rule: str, message: str) -> None:
        if len(self.violations) >= self.max_violations:
            return
        self.violations.append(Violation(
            "checker", rule, event.time, message, region=event.region
        ))

    def _model(self, event: Any) -> Optional[_RegionModel]:
        return self.regions.get(event.region)

    # -- event dispatch -------------------------------------------------------------

    def record(self, event: Any) -> None:
        """Sink entry point: check one :class:`CoherenceEvent`."""
        self.events_checked += 1
        handler = getattr(self, f"_on_{event.kind}", None)
        if handler is not None:
            handler(event)

    def _on_alloc(self, event: Any) -> None:
        self.regions[event.region] = _RegionModel(event.last + 1)

    def _on_free(self, event: Any) -> None:
        self.regions.pop(event.region, None)
        for key in [k for k in self._fifo_members if k[0] == event.region]:
            self._fifo_members.discard(key)
            self.fifo.remove(key)

    def _on_limit(self, event: Any) -> None:
        self.rolling_limit = int(event.detail)

    def _on_mode(self, event: Any) -> None:
        """The declared protocol announced a region's access mode."""
        model = self._model(event)
        if model is not None:
            model.mode = event.detail

    def _on_protocol(self, event: Any) -> None:
        if event.detail == "device-recovery":
            # The accelerator lost its memory: every device copy is gone
            # until the recovery path restores it.  Recovery's contract
            # (core/recovery.py) is that the host is a complete checkpoint
            # — it re-flushes every block from the host copy — so the
            # host becomes canonical by fiat.  Whether in-flight kernel
            # output was truly lost is the oracle's question, not a
            # coherence-protocol violation.
            for model in self.regions.values():
                model.device_valid[:] = False
                model.host_valid[:] = True
            return
        self.configure(event.detail)
        if self.protocol != "rolling":
            self.fifo.clear()
            self._fifo_members.clear()

    # -- transitions ----------------------------------------------------------------

    def _on_transition(self, event: Any) -> None:
        model = self._model(event)
        if model is None:
            return
        lo, hi = event.first, event.last + 1
        code = _STATE_CODES[event.state]
        if code == DIRTY_CODE:
            self._check_to_dirty(event, model, lo, hi)
        elif code == READ_ONLY_CODE:
            self._check_to_read_only(event, model, lo, hi)
        else:
            self._check_to_invalid(event, model, lo, hi)
        model.states[lo:hi] = code  # sanitizer: allow[R004]
        self._mirror_fifo(event, lo, hi, code)

    def _check_to_dirty(self, event: Any, model: _RegionModel,
                        lo: int, hi: int) -> None:
        """DIRTY claims the host copy is canonical — it must be valid."""
        stale = np.nonzero(~model.host_valid[lo:hi])[0] + lo
        if stale.size:
            self._flag(
                event, "dirty-stale-host",
                f"blocks {_span(stale)} marked dirty but the host copy is "
                "stale (the device holds newer data that was never fetched)",
            )
        # The CPU is about to write: the device copy falls behind, and
        # (adopting the claim) the host copy is what the program sees.
        model.device_valid[lo:hi] = False
        model.host_valid[lo:hi] = True

    def _check_to_read_only(self, event: Any, model: _RegionModel,
                            lo: int, hi: int) -> None:
        """READ_ONLY claims both copies match — both must be valid."""
        stale_host = np.nonzero(~model.host_valid[lo:hi])[0] + lo
        if stale_host.size:
            self._flag(
                event, "ro-stale-host",
                f"blocks {_span(stale_host)} marked read-only but the host "
                "copy is stale (device data was never fetched)",
            )
        stale_device = np.nonzero(~model.device_valid[lo:hi])[0] + lo
        if stale_device.size:
            self._flag(
                event, "ro-stale-device",
                f"blocks {_span(stale_device)} marked read-only but the "
                "device copy is stale (host data was never flushed)",
            )
        model.host_valid[lo:hi] = True
        model.device_valid[lo:hi] = True

    def _check_to_invalid(self, event: Any, model: _RegionModel,
                          lo: int, hi: int) -> None:
        """INVALID claims the device copy is canonical — dropping a dirty
        host copy whose data never reached the device loses an update."""
        segment = model.states[lo:hi]
        lost = np.nonzero(
            (segment == DIRTY_CODE) & ~model.device_valid[lo:hi]
        )[0] + lo
        if lost.size and not (
            event.detail == "wo-release" and model.mode == "wo"
        ):
            # A declared write-only release legitimately drops dirty host
            # bytes: the kernel overwrites the whole object, so nothing
            # the program will ever read is lost.  Any other invalidation
            # of unflushed dirty blocks loses an update.
            self._flag(
                event, "invalid-lost-update",
                f"blocks {_span(lost)} invalidated while dirty: host writes "
                "were discarded without ever being flushed to the device",
            )
        model.device_valid[lo:hi] = True
        model.host_valid[lo:hi] = False

    def _mirror_fifo(self, event: Any, lo: int, hi: int, code: int) -> None:
        """Track rolling-update's dirty-block FIFO and its size bound."""
        for index in range(lo, hi):
            key = (event.region, index)
            if code == DIRTY_CODE:
                if key not in self._fifo_members:
                    self._fifo_members.add(key)
                    self.fifo.append(key)
            elif key in self._fifo_members:
                self._fifo_members.discard(key)
                self.fifo.remove(key)
        if (self.protocol == "rolling" and self.rolling_limit
                and len(self.fifo) > max(self.rolling_limit, 1) + 1):
            self._flag(
                event, "rolling-bound",
                f"{len(self.fifo)} dirty blocks cached but the rolling "
                f"limit is {self.rolling_limit}: eviction is not keeping "
                "the cache bounded",
            )

    # -- data movement --------------------------------------------------------------

    def _on_flush(self, event: Any) -> None:
        """Host-to-device transfer: the host copy must be worth sending."""
        model = self._model(event)
        if model is None:
            return
        index = event.first
        if not model.host_valid[index]:
            self._flag(
                event, "flush-stale-host",
                f"block {index} flushed to the device but the host copy is "
                "stale: the transfer clobbers newer device data",
            )
        model.device_valid[index] = True

    def _on_fetch(self, event: Any) -> None:
        """Device-to-host transfer: the device must be idle and fresh."""
        model = self._model(event)
        if model is None:
            return
        index = event.first
        pending = int(event.detail.split("=", 1)[1]) if event.detail else 0
        if pending > 0:
            self._flag(
                event, "barrier-bypass",
                f"block {index} fetched with {pending} kernel launch(es) "
                "still executing: the read bypassed the completion barrier",
            )
        if not model.device_valid[index]:
            self._flag(
                event, "fetch-stale-device",
                f"block {index} fetched but the device copy is stale: the "
                "host receives data older than what it already had",
            )
        if model.states[index] == DIRTY_CODE:
            self._flag(
                event, "fetch-clobber",
                f"block {index} fetched while dirty: unflushed host writes "
                "are overwritten by the incoming device data",
            )
        model.host_valid[index] = True

    def _on_evict(self, event: Any) -> None:
        """Rolling eviction must leave the cache in FIFO order."""
        if event.detail == "forced":
            return  # capacity pressure flushes out of order by design
        key = (event.region, event.first)
        if self._fifo_members and key in self._fifo_members:
            head = self.fifo[0]
            if head != key:
                self._flag(
                    event, "evict-order",
                    f"block {event.first} evicted ahead of the FIFO head "
                    f"({head[0]} block {head[1]}): rolling-update must "
                    "retire the oldest dirty block first",
                )
        # The following READ_ONLY transition removes the entry.

    def _on_bulk(self, event: Any) -> None:
        """Device-side memset/memcpy/peer-DMA: device becomes canonical."""
        model = self._model(event)
        if model is None:
            return
        index = event.first
        model.device_valid[index] = True
        model.host_valid[index] = False

    def _on_peer(self, event: Any) -> None:
        """Region migration between devices (peer DMA or host re-route).

        A ``dma:src->dst`` migration moves the device copy verbatim, so
        every block whose *device* copy is canonical (INVALID claims) must
        actually hold valid device data — migrating a stale device copy
        onto the new owner loses the program's current bytes.  A
        ``host:src->dst`` re-route re-materialises the region from host
        memory instead, which is only sound when the host copy is valid
        for every block.
        """
        model = self._model(event)
        if model is None:
            return
        lo, hi = event.first, event.last + 1
        if event.detail.startswith("host:"):
            stale = np.nonzero(~model.host_valid[lo:hi])[0] + lo
            if stale.size:
                self._flag(
                    event, "peer-stale-host",
                    f"blocks {_span(stale)} re-routed via host memory but "
                    "the host copy is stale: device-only data is lost",
                )
            # Adopt: the region was flushed whole from host bytes.
            model.host_valid[lo:hi] = True
            model.device_valid[lo:hi] = True
        else:
            lost = np.nonzero(
                (model.states[lo:hi] == INVALID_CODE)
                & ~model.device_valid[lo:hi]
            )[0] + lo
            if lost.size:
                self._flag(
                    event, "peer-lost-data",
                    f"blocks {_span(lost)} migrated device-to-device while "
                    "the device copy is stale: the new owner inherits old "
                    "bytes the host never validated",
                )
            # Adopt: whatever the source device held now lives on the
            # target; host validity is untouched by a peer copy.
            model.device_valid[lo:hi][
                model.states[lo:hi] == INVALID_CODE
            ] = True

    # -- synchronization points -----------------------------------------------------

    def _on_call(self, event: Any) -> None:
        """Kernel launch: every object must be released and device-fresh."""
        written = None if event.detail == "*" else set(
            name for name in event.detail.split(",") if name
        )
        for name, model in self.regions.items():
            if model.mode == "none":
                # Declared untouched by every kernel: dirty host blocks
                # are legal across the launch and the device copy may lag
                # forever — the kernel provably never observes either.
                continue
            dirty = np.nonzero(model.states == DIRTY_CODE)[0]
            if dirty.size:
                self._flag(
                    event, "call-dirty",
                    f"{name}: blocks {_span(dirty)} still dirty at kernel "
                    "launch — unflushed host writes are invisible to the "
                    "accelerator",
                )
            stale = np.nonzero(
                ~model.device_valid & (model.states != DIRTY_CODE)
            )[0]
            if stale.size:
                self._flag(
                    event, "call-stale-device",
                    f"{name}: blocks {_span(stale)} released to the kernel "
                    "but the device copy is stale",
                )
        for name, model in self.regions.items():
            if written is not None and name not in written:
                continue
            # The kernel writes this object: host copies go stale, and a
            # block still claiming READ_ONLY now overstates host validity.
            valid_claim = np.nonzero(model.states == READ_ONLY_CODE)[0]
            if valid_claim.size and event.detail != "*":
                self._flag(
                    event, "call-written-valid",
                    f"{name}: blocks {_span(valid_claim)} remain read-only "
                    "across a kernel that writes the object — the next CPU "
                    "read will see pre-kernel data",
                )
            model.host_valid[:] = False
            model.device_valid[:] = True

    def _on_sync(self, event: Any) -> None:
        """Acquire: batch must have re-fetched everything it will read."""
        if self.protocol != "batch":
            return
        for name, model in self.regions.items():
            missing = np.nonzero(model.states == INVALID_CODE)[0]
            if missing.size:
                self._flag(
                    event, "sync-missing-fetch",
                    f"{name}: blocks {_span(missing)} still invalid after "
                    "sync — batch-update must restore host copies at the "
                    "acquire point",
                )

    # -- results --------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "events_checked": self.events_checked,
            "violations": len(self.violations),
        }
