"""Static access-mode contracts: inference, declarations, verification.

The coherence protocols conservatively assume every shared object may be
read *and* written inside every kernel window; Section 4.3 suggests the
escape hatch — "compiler analysis or programmer annotations" that tell
the runtime which objects a kernel actually touches.  This module is
that static half, in three pieces:

* **Inference** — :func:`infer_kernel_contract` parses a kernel's Python
  source (every kernel computes over ``gpu.view(...)`` numpy views of its
  pointer parameters) and classifies each pointer parameter:

  - *proven write*: a store through a subscript of the parameter's view
    (``out[:] = ...``, ``bins[i] += ...``),
  - *proven read*: a load through a subscript of the view,
  - *escape*: the view flows into a helper call or container, where the
    AST loses track — treated as a possible read, and as a possible
    write only when the kernel's ``writes=`` signature says so.

  The per-parameter mode is then ``rw``/``wo``/``ro`` exactly as a
  human would annotate it, erring conservative on escapes.
  :func:`workload_bindings` lifts this to whole workloads by walking
  ``run_gmac``: ``name="..."`` allocation keywords bind variables to
  region names, kernel-call keywords bind region names to kernel
  parameters (through plain aliasing, tuple swaps and ``**self
  ._kernel_args(...)`` expansion), and the per-region join over every
  binding is the workload's inferred contract — including ``none`` for
  regions no kernel ever binds.

* **Declarations** — the :func:`access_modes` class decorator lets a
  workload state its contract (``@access_modes(atoms="ro", grid="wo")``).
  :func:`check_workload` cross-checks declarations against inference and
  returns :class:`~repro.analysis.report.Violation` values with precise
  expected-vs-declared diffs; a declaration the static analysis can
  refute never reaches the runtime.

* **Runtime verification** — :class:`ContractMonitor` re-checks every
  actual launch: when the ``declared`` protocol is active, each bound
  region's declared mode is compared against the launched kernel's
  inferred contract, so a wrong annotation surfaces as a precise
  ``wrong-mode-declaration`` violation instead of silent corruption.

Modes form a lattice ``none < ro, wo < rw``; joins happen when several
kernels (or several bindings) touch one region.  ``wo`` asserts the
kernel overwrites the *whole* object without reading it — the
``declared`` protocol exploits this by skipping the release-time flush
of dirty host blocks; ``none`` asserts no kernel ever touches the
object, so release may leave it entirely alone.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.util.errors import ReproError
from repro.analysis.report import Violation

#: The access-mode vocabulary, weakest to strongest claim about kernels.
MODES = ("none", "ro", "wo", "rw")

#: Methods that return a reshaped/retyped view of the same bytes; a view
#: wrapped in one still aliases its parameter.
_VIEW_WRAPPERS = ("reshape", "view", "astype", "ravel")

#: Rule id shared by static cross-check and runtime monitor findings.
RULE = "wrong-mode-declaration"


def join_modes(a: str, b: str) -> str:
    """The mode lattice join: ``none`` is identity, ``ro``+``wo`` = ``rw``."""
    if a == b:
        return a
    if a == "none":
        return b
    if b == "none":
        return a
    return "rw"


# -- kernel-level inference -------------------------------------------------------


@dataclass(frozen=True)
class KernelContract:
    """Per-kernel-window access modes for one kernel's pointer params.

    ``complete`` is False when the kernel source was unavailable (the
    contract then degrades to the ``writes=`` signature alone and every
    check built on proven reads/writes stays silent).
    """

    kernel: str
    params: Tuple[str, ...]
    modes: Dict[str, str] = field(default_factory=dict)
    proven_reads: FrozenSet[str] = frozenset()
    proven_writes: FrozenSet[str] = frozenset()
    escapes: FrozenSet[str] = frozenset()
    signature_writes: FrozenSet[str] = frozenset()
    complete: bool = True

    @property
    def writes(self) -> FrozenSet[str]:
        """Every parameter the kernel may write (signature or proven)."""
        return self.signature_writes | self.proven_writes

    @property
    def signature_gaps(self) -> FrozenSet[str]:
        """AST-proven writes the ``writes=`` signature fails to declare."""
        return self.proven_writes - self.signature_writes

    def mode_of(self, param: str) -> str:
        return self.modes.get(param, "rw")


def _unwrap_view(node: ast.AST, gpu: str, params: Set[str]) -> Optional[str]:
    """The pointer parameter ``node`` is a device view of, if any.

    Recognizes ``gpu.view(param, ...)`` and the same wrapped in reshaping
    method chains (``gpu.view(p, ...).reshape(...)``).
    """
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == gpu
        and func.attr == "view"
        and node.args
        and isinstance(node.args[0], ast.Name)
        and node.args[0].id in params
    ):
        return node.args[0].id
    # ``view`` doubles as an ndarray method, so the base case above must
    # win before the wrapper-chain recursion sees the same attribute.
    if (
        isinstance(func, ast.Attribute)
        and func.attr in _VIEW_WRAPPERS
    ):
        return _unwrap_view(func.value, gpu, params)
    return None


def _function_def(source: str) -> ast.FunctionDef:
    tree = ast.parse(textwrap.dedent(source))
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            return node
    raise ReproError("no function definition found in kernel source")


class _KernelScan(ast.NodeVisitor):
    """Classify every use of a kernel's device views.

    Two aliasing levels are tracked: named aliases (``marking =
    gpu.view(places, ...)``) and direct in-expression views
    (``gpu.view(bins, ...)[:] = ...``).  A ``Name`` that is merely the
    base of a store-subscript is not a data read; everything else a view
    flows into is either a proven subscript access or an escape.
    """

    def __init__(self, gpu: str, params: Set[str]) -> None:
        self.gpu = gpu
        self.params = params
        self.aliases: Dict[str, str] = {}
        self.reads: Set[str] = set()
        self.writes: Set[str] = set()
        self.escapes: Set[str] = set()
        #: Name/Call nodes already consumed as a subscript base (their
        #: Load context is addressing, not data access).
        self._consumed: Set[int] = set()

    # An expression that denotes a whole device view, or None.
    def _view_of(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return self.aliases.get(node.id)
        return _unwrap_view(node, self.gpu, self.params)

    def visit_Assign(self, node: ast.Assign) -> None:
        # Alias definition: <name> = gpu.view(<param>, ...)[.reshape(...)]
        param = _unwrap_view(node.value, self.gpu, self.params)
        if param is not None and len(node.targets) == 1 and isinstance(
            node.targets[0], ast.Name
        ):
            self.aliases[node.targets[0].id] = param
            # The view construction itself touches no data: skip the
            # value subtree so Name(param) does not count as an escape.
            return
        for target in node.targets:
            self.visit(target)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # ``view[i] += x`` both reads and writes the parameter.
        if isinstance(node.target, ast.Subscript):
            param = self._view_of(node.target.value)
            if param is not None:
                self.reads.add(param)
                self.writes.add(param)
                self._consumed.add(id(node.target.value))
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        param = self._view_of(node.value)
        if param is not None:
            self._consumed.add(id(node.value))
            if isinstance(node.ctx, ast.Store):
                self.writes.add(param)
            elif isinstance(node.ctx, ast.Del):
                self.writes.add(param)
            else:
                self.reads.add(param)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if id(node) in self._consumed:
            return
        param = self.aliases.get(node.id)
        if param is not None and isinstance(node.ctx, ast.Load):
            self.escapes.add(param)

    def visit_Call(self, node: ast.Call) -> None:
        # A direct view expression used anywhere but as a subscript base
        # escapes into the call machinery (helper functions, memo lookups).
        param = _unwrap_view(node, self.gpu, self.params)
        if param is not None and id(node) not in self._consumed:
            self.escapes.add(param)
            return
        self.generic_visit(node)


_KERNEL_CONTRACTS: Dict[Any, KernelContract] = {}


def infer_kernel_contract(kernel: Any) -> KernelContract:
    """Static per-parameter access modes for one kernel (memoized)."""
    cached = _KERNEL_CONTRACTS.get(kernel.fn)
    if cached is not None:
        return cached
    signature_writes = frozenset(kernel.writes)
    try:
        source = inspect.getsource(kernel.fn)
        fn_def = _function_def(source)
    except (OSError, TypeError, ReproError, SyntaxError):
        # No source (built-in, exec'd, ...): fall back to the signature.
        contract = KernelContract(
            kernel=kernel.name,
            params=tuple(sorted(signature_writes)),
            modes={name: "rw" for name in signature_writes},
            signature_writes=signature_writes,
            complete=False,
        )
        _KERNEL_CONTRACTS[kernel.fn] = contract
        return contract
    arg_names = [arg.arg for arg in fn_def.args.args]
    gpu = arg_names[0] if arg_names else "gpu"
    candidates = set(arg_names[1:])
    # Pointer parameters are the ones viewed as device memory.
    pointer_params: Set[str] = set()
    for node in ast.walk(fn_def):
        param = _unwrap_view(node, gpu, candidates)
        if param is not None:
            pointer_params.add(param)
    pointer_params |= signature_writes & candidates
    scan = _KernelScan(gpu, pointer_params)
    for statement in fn_def.body:
        scan.visit(statement)
    modes: Dict[str, str] = {}
    for param in sorted(pointer_params):
        written = param in signature_writes or param in scan.writes
        read = param in scan.reads or param in scan.escapes
        if written and read:
            modes[param] = "rw"
        elif written:
            modes[param] = "wo"
        else:
            modes[param] = "ro"
    contract = KernelContract(
        kernel=kernel.name,
        params=tuple(sorted(pointer_params)),
        modes=modes,
        proven_reads=frozenset(scan.reads),
        proven_writes=frozenset(scan.writes),
        escapes=frozenset(scan.escapes),
        signature_writes=signature_writes,
    )
    _KERNEL_CONTRACTS[kernel.fn] = contract
    return contract


# -- workload-level inference -----------------------------------------------------

#: Allocation entry points whose ``name=`` keyword binds a region name.
_ALLOC_ATTRS = ("alloc", "safe_alloc", "adsmAlloc", "adsmSafeAlloc")

#: Kernel-launch entry points on the GMAC object.
_CALL_ATTRS = ("call", "adsmCall")


@dataclass(frozen=True)
class Binding:
    """One static (region, kernel parameter) association."""

    region: str
    kernel: Any
    param: str


def _method_source(func: Any) -> Optional[ast.FunctionDef]:
    try:
        return _function_def(inspect.getsource(func))
    except (OSError, TypeError, ReproError, SyntaxError):
        return None


def _resolve_regions(node: ast.AST, refs: Dict[str, Set[str]]) -> Set[str]:
    """Region names an argument expression may denote (flow-insensitive)."""
    if isinstance(node, ast.Name):
        return set(refs.get(node.id, ()))
    if isinstance(node, ast.BinOp):
        # Pointer arithmetic (ptr + offset) stays within the base region.
        return _resolve_regions(node.left, refs)
    return set()


def _expand_kwargs_helper(
    cls: type, call_value: ast.Call, refs: Dict[str, Set[str]]
) -> Dict[str, Set[str]]:
    """Expand ``**self._kernel_args(...)`` into param -> region names.

    The helper pattern the Parboil ports use: a method whose return is a
    ``dict(...)`` literal mapping kernel parameters to its own formals.
    Call-site arguments are matched to formals positionally; anything
    unresolvable simply contributes no binding (conservative silence).
    """
    func = call_value.func
    if not (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
    ):
        return {}
    method = getattr(cls, func.attr, None)
    if method is None:
        return {}
    helper = _method_source(method)
    if helper is None:
        return {}
    formals = [arg.arg for arg in helper.args.args][1:]  # drop self
    formal_regions: Dict[str, Set[str]] = {}
    for formal, outer in zip(formals, call_value.args):
        formal_regions[formal] = _resolve_regions(outer, refs)
    out: Dict[str, Set[str]] = {}
    for node in ast.walk(helper):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        value = node.value
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name) \
                and value.func.id == "dict":
            entries = [(kw.arg, kw.value) for kw in value.keywords if kw.arg]
        elif isinstance(value, ast.Dict):
            entries = [
                (key.value, item)
                for key, item in zip(value.keys, value.values)
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            ]
        else:
            continue
        for param, expr in entries:
            regions = _resolve_regions(expr, formal_regions)
            if regions:
                out.setdefault(param, set()).update(regions)
    return out


def _assign_refs(node: ast.Assign, gmac: str,
                 refs: Dict[str, Set[str]]) -> None:
    """Track region references through allocations, aliasing and swaps."""
    value = node.value
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Attribute)
        and isinstance(value.func.value, ast.Name)
        and value.func.value.id == gmac
        and value.func.attr in _ALLOC_ATTRS
    ):
        name = next(
            (
                kw.value.value
                for kw in value.keywords
                if kw.arg == "name" and isinstance(kw.value, ast.Constant)
            ),
            None,
        )
        if name is not None and len(node.targets) == 1 and isinstance(
            node.targets[0], ast.Name
        ):
            refs.setdefault(node.targets[0].id, set()).add(name)
        return
    targets = node.targets[0] if len(node.targets) == 1 else None
    if isinstance(targets, ast.Name):
        sources = _resolve_regions(value, refs)
        if sources:
            refs.setdefault(targets.id, set()).update(sources)
    elif isinstance(targets, ast.Tuple) and isinstance(value, ast.Tuple):
        # ``current, scratch = scratch, current``: elementwise, unioned
        # flow-insensitively, so ping-pong swaps bind both regions.
        for target, source in zip(targets.elts, value.elts):
            if isinstance(target, ast.Name):
                regions = _resolve_regions(source, refs)
                if regions:
                    refs.setdefault(target.id, set()).update(regions)


def workload_bindings(
    workload_cls: type,
) -> Tuple[Dict[str, Set[str]], List[Binding]]:
    """Static walk of ``run_gmac``: region names and kernel bindings.

    Returns ``(alloc_names, bindings)`` where ``alloc_names`` maps each
    statically-named region to the variables referencing it (inverted for
    convenience of the none-mode check) and ``bindings`` lists every
    (region, kernel, parameter) association any launch may create.
    """
    func = inspect.unwrap(workload_cls.run_gmac)
    fn_def = _method_source(func)
    if fn_def is None:
        return {}, []
    params = [arg.arg for arg in fn_def.args.args]
    gmac = params[2] if len(params) > 2 else "gmac"
    module_globals = getattr(func, "__globals__", {})
    refs: Dict[str, Set[str]] = {}
    alloc_names: Dict[str, Set[str]] = {}
    bindings: List[Binding] = []
    for node in ast.walk(fn_def):
        if isinstance(node, ast.Assign):
            _assign_refs(node, gmac, refs)
    for var, regions in refs.items():
        for region in regions:
            alloc_names.setdefault(region, set()).add(var)
    for node in ast.walk(fn_def):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == gmac
            and node.func.attr in _CALL_ATTRS
            and node.args
        ):
            continue
        kernel_expr = node.args[0]
        kernel = (
            module_globals.get(kernel_expr.id)
            if isinstance(kernel_expr, ast.Name) else None
        )
        if kernel is None:
            continue
        for keyword in node.keywords:
            if keyword.arg == "writes":
                continue
            if keyword.arg is None:
                if isinstance(keyword.value, ast.Call):
                    expanded = _expand_kwargs_helper(
                        workload_cls, keyword.value, refs
                    )
                    for param, regions in expanded.items():
                        for region in sorted(regions):
                            bindings.append(Binding(region, kernel, param))
                continue
            for region in sorted(_resolve_regions(keyword.value, refs)):
                bindings.append(Binding(region, kernel, keyword.arg))
    return alloc_names, bindings


def infer_workload_contract(workload_cls: type) -> Dict[str, str]:
    """Region name -> inferred mode, joined over every static binding.

    Regions allocated but never bound to a kernel parameter infer
    ``none`` — the strongest (and riskiest) claim, which is why it is
    only ever *suggested* here and enforced both statically and at
    runtime when declared.
    """
    alloc_names, bindings = workload_bindings(workload_cls)
    contract: Dict[str, str] = {name: "none" for name in alloc_names}
    for binding in bindings:
        mode = infer_kernel_contract(binding.kernel).mode_of(binding.param)
        contract[binding.region] = join_modes(
            contract.get(binding.region, "none"), mode
        )
    return contract


# -- declarations and the cross-check ---------------------------------------------


def access_modes(**modes: str) -> Any:
    """Class decorator declaring a workload's per-region access modes.

    Keys are region names as passed to ``gmac.alloc(..., name=...)``
    (hyphenated names use the ``**{"k-coords": "ro"}`` spelling); values
    are one of ``ro``/``wo``/``rw``/``none``.  Undeclared regions default
    to ``rw`` (always sound).  Declarations are verified statically by
    :func:`check_workload` and at every launch by
    :class:`ContractMonitor` whenever the ``declared`` protocol runs.
    """
    for name, mode in modes.items():
        if mode not in MODES:
            raise ReproError(
                f"access mode for {name!r} must be one of {MODES}, "
                f"got {mode!r}"
            )

    def apply(cls: type) -> type:
        cls.declared_modes = dict(modes)
        return cls

    return apply


def check_workload(workload_cls: type) -> List[Violation]:
    """Cross-check a workload's declarations against static inference.

    Only *refutable* declarations are flagged: declaring ``rw`` where
    ``ro`` would do is sound (just conservative), but declaring ``ro`` or
    ``none`` on an object some kernel writes — or ``wo`` on one a kernel
    provably reads — would corrupt data, and yields a precise
    expected-vs-declared diff.
    """
    declared = getattr(workload_cls, "declared_modes", None) or {}
    violations: List[Violation] = []
    alloc_names, bindings = workload_bindings(workload_cls)
    inferred = infer_workload_contract(workload_cls)
    by_region: Dict[str, List[Binding]] = {}
    for binding in bindings:
        by_region.setdefault(binding.region, []).append(binding)

    def flag(region: str, message: str) -> None:
        violations.append(
            Violation("contracts", RULE, 0.0, message, region=region)
        )

    for region, mode in sorted(declared.items()):
        expected = inferred.get(region)
        if region not in alloc_names:
            flag(
                region,
                f"declared {mode!r} but no allocation in "
                f"{workload_cls.__name__}.run_gmac names a region "
                f"{region!r}",
            )
            continue
        bound = by_region.get(region, [])
        if mode == "none" and bound:
            binding = bound[0]
            flag(
                region,
                f"declared 'none' but kernel {binding.kernel.name!r} binds "
                f"it to parameter {binding.param!r} (expected "
                f"{expected!r})",
            )
            continue
        for binding in bound:
            contract = infer_kernel_contract(binding.kernel)
            if mode in ("ro", "none") and binding.param in contract.writes:
                flag(
                    region,
                    f"declared {mode!r} but kernel {binding.kernel.name!r} "
                    f"writes parameter {binding.param!r} (expected "
                    f"{expected!r}): stale host copies would survive the "
                    "kernel",
                )
                break
            if mode == "wo" and binding.param in contract.proven_reads:
                flag(
                    region,
                    f"declared 'wo' but kernel {binding.kernel.name!r} "
                    f"provably reads parameter {binding.param!r} (expected "
                    f"{expected!r}): skipping the release flush would feed "
                    "the kernel stale device bytes",
                )
                break
        for binding in bound:
            gaps = infer_kernel_contract(binding.kernel).signature_gaps
            if binding.param in gaps:
                violations.append(Violation(
                    "contracts", "kernel-signature-gap", 0.0,
                    f"kernel {binding.kernel.name!r} provably writes "
                    f"parameter {binding.param!r} but its writes= signature "
                    "omits it",
                    region=region,
                ))
    return violations


# -- runtime verification ---------------------------------------------------------


class ContractMonitor:
    """Launch-time declaration checking for the ``declared`` protocol.

    Armed by the sanitizer whenever the active protocol carries declared
    modes.  At each launch the *actual* parameter-to-region bindings are
    compared against the launched kernel's inferred contract — this
    closes the gap static workload analysis cannot see (dynamically
    chosen kernels, pointer arithmetic, bindings built at runtime).
    """

    def __init__(self, modes: Dict[str, str], clock: Any) -> None:
        self.modes = dict(modes)
        self.clock = clock
        self.violations: List[Violation] = []
        self.launches_checked = 0
        self._seen: Set[Tuple[str, str, str]] = set()

    def on_launch(self, kernel: Any, bindings: Dict[str, Any]) -> None:
        """Check one launch; ``bindings`` maps param name -> region."""
        self.launches_checked += 1
        contract = infer_kernel_contract(kernel)
        for param, region in bindings.items():
            if region is None:
                continue
            declared = self.modes.get(region.name, "rw")
            if declared == "rw":
                continue
            key = (kernel.name, param, region.name)
            if key in self._seen:
                continue
            problem = None
            if declared == "none":
                problem = (
                    f"declared 'none' but launched kernel {kernel.name!r} "
                    f"binds it to parameter {param!r}"
                )
            elif declared == "ro" and param in contract.writes:
                problem = (
                    f"declared 'ro' but launched kernel {kernel.name!r} "
                    f"writes parameter {param!r}: the protocol kept a host "
                    "copy the kernel is about to invalidate"
                )
            elif declared == "wo" and param in contract.proven_reads:
                problem = (
                    f"declared 'wo' but launched kernel {kernel.name!r} "
                    f"provably reads parameter {param!r}: the skipped "
                    "release flush starves the kernel of host writes"
                )
            if problem is not None:
                self._seen.add(key)
                self.violations.append(Violation(
                    "contracts", RULE, self.clock.now, problem,
                    region=region.name,
                ))

    def stats(self) -> Dict[str, int]:
        return {
            "launches_checked": self.launches_checked,
            "violations": len(self.violations),
        }
