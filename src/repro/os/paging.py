"""Pages, protection bits and access kinds.

The simulated MMU works at 4KB page granularity, like the x86 hosts in the
paper's testbed.  GMAC's lazy-update protocol protects whole objects and
rolling-update protects fixed-size blocks; both express protections as page
ranges through ``mprotect``.
"""

import enum

#: 4KB, the x86 base page size and the smallest block size in Figure 11.
PAGE_SIZE = 4096


class Prot(enum.IntFlag):
    """mprotect-style protection bits."""

    NONE = 0
    READ = 1
    WRITE = 2
    RW = READ | WRITE


class AccessKind(enum.Enum):
    """What a faulting access was trying to do."""

    READ = "read"
    WRITE = "write"

    # Members are singletons; the identity hash skips Enum's name-based
    # hashing on the access-check fast path (soft-TLB dict lookups).
    __hash__ = object.__hash__

    @property
    def required_prot(self):
        if self is AccessKind.READ:
            return Prot.READ
        return Prot.WRITE

    def __str__(self):
        return self.value


def page_floor(address):
    """Round an address down to its page boundary."""
    return address - (address % PAGE_SIZE)


def page_ceil(address):
    """Round an address up to the next page boundary."""
    return -(-address // PAGE_SIZE) * PAGE_SIZE


def page_index(base, address):
    """Index of the page containing ``address`` within a mapping at ``base``."""
    return (address - base) // PAGE_SIZE
