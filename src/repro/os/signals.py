"""SIGSEGV dispatch to user-level handlers.

Lazy- and rolling-update detect CPU accesses "using the CPU hardware memory
protection mechanisms ... to trigger a page fault exception (delivered as a
POSIX signal to user-level)" (Section 4.3).  The dispatcher models the
kernel's part of that path: it charges a fixed delivery overhead, counts
deliveries, and invokes the registered handler.  A handler must return True
to claim the fault; an unclaimed fault is a crash
(:class:`~repro.util.errors.SegmentationFault`), as it would be for an
application bug.
"""

from dataclasses import dataclass

from repro.util.errors import SegmentationFault
from repro.sim.tracing import Category


@dataclass(frozen=True)
class SegvInfo:
    """What the kernel tells the handler: faulting address and access kind.

    ``span`` is the byte count the interrupted access still wants past the
    faulting address — a hint, not a promise.  A handler may use it to
    repair more than the faulting page in one delivery (fault-storm
    batching); handlers that ignore it behave exactly as before.
    """

    address: int
    access: object  # AccessKind
    span: int = 1


class SignalDispatcher:
    """Delivers simulated SIGSEGVs to registered user-level handlers."""

    #: Kernel-side cost of taking the fault and delivering the signal
    #: (trap, signal frame setup, sigreturn).  Charged per delivery.
    DELIVERY_OVERHEAD_S = 0.5e-6

    def __init__(self, clock, accounting=None, overhead_s=None):
        self.clock = clock
        self.accounting = accounting
        self.overhead_s = (
            self.DELIVERY_OVERHEAD_S if overhead_s is None else overhead_s
        )
        self._handlers = []
        self._names = {}
        self.delivered = 0
        self.unhandled = 0

    @staticmethod
    def _default_name(handler):
        """A stable identity for a handler: qualified name + owner id.

        Bound methods are materialized fresh on each attribute access, so
        ``id(handler)`` is unstable; the owning instance's id is not.
        """
        owner = getattr(handler, "__self__", handler)
        qualname = getattr(handler, "__qualname__", None) or repr(handler)
        return f"{qualname}@{id(owner):#x}"

    @staticmethod
    def _describe(handler):
        owner = getattr(handler, "__self__", None)
        if owner is not None:
            return f"{handler.__qualname__} of {owner!r}"
        return repr(handler)

    def register(self, handler, name=None):
        """Install a handler; later registrations run first (like chaining).

        Idempotent for the *same* handler object: re-registering keeps its
        position and does not duplicate it (a GMAC instance re-arms its
        handler on recovery paths, and a duplicated entry would
        double-handle — and double-charge — every subsequent fault).

        ``name`` labels the registration; registering a *different*
        handler under a name already in use is a collision, and the error
        names the colliding handler so the caller can tell exactly which
        installation it raced with.
        """
        if name is None:
            name = self._default_name(handler)
        existing = self._names.get(name)
        if existing is not None and existing != handler:
            raise ValueError(
                f"signal handler name {name!r} is already registered by "
                f"{self._describe(existing)}; unregister it before "
                f"installing {self._describe(handler)}"
            )
        if handler not in self._handlers:
            self._handlers.insert(0, handler)
        self._names[name] = handler
        return handler

    def unregister(self, handler):
        self._handlers.remove(handler)
        for name, installed in list(self._names.items()):
            if installed == handler:
                del self._names[name]

    def deliver(self, info):
        """Deliver one SIGSEGV; raise if nobody claims it."""
        self.delivered += 1
        self.clock.advance(self.overhead_s)
        if self.accounting is not None:
            self.accounting.charge(
                Category.SIGNAL, self.overhead_s, label="signal-delivery"
            )
        for handler in self._handlers:
            if handler(info):
                return
        self.unhandled += 1
        raise SegmentationFault(info.address, info.access)
