"""SIGSEGV dispatch to user-level handlers.

Lazy- and rolling-update detect CPU accesses "using the CPU hardware memory
protection mechanisms ... to trigger a page fault exception (delivered as a
POSIX signal to user-level)" (Section 4.3).  The dispatcher models the
kernel's part of that path: it charges a fixed delivery overhead, counts
deliveries, and invokes the registered handler.  A handler must return True
to claim the fault; an unclaimed fault is a crash
(:class:`~repro.util.errors.SegmentationFault`), as it would be for an
application bug.
"""

from dataclasses import dataclass

from repro.util.errors import SegmentationFault
from repro.sim.tracing import Category


@dataclass(frozen=True)
class SegvInfo:
    """What the kernel tells the handler: faulting address and access kind."""

    address: int
    access: object  # AccessKind


class SignalDispatcher:
    """Delivers simulated SIGSEGVs to registered user-level handlers."""

    #: Kernel-side cost of taking the fault and delivering the signal
    #: (trap, signal frame setup, sigreturn).  Charged per delivery.
    DELIVERY_OVERHEAD_S = 0.5e-6

    def __init__(self, clock, accounting=None, overhead_s=None):
        self.clock = clock
        self.accounting = accounting
        self.overhead_s = (
            self.DELIVERY_OVERHEAD_S if overhead_s is None else overhead_s
        )
        self._handlers = []
        self.delivered = 0
        self.unhandled = 0

    def register(self, handler):
        """Install a handler; later registrations run first (like chaining).

        Idempotent: re-registering an installed handler keeps its position
        and does not duplicate it.  A GMAC instance re-arms its handler on
        recovery paths, and a duplicated entry would double-handle (and
        double-charge) every subsequent fault.
        """
        if handler not in self._handlers:
            self._handlers.insert(0, handler)
        return handler

    def unregister(self, handler):
        self._handlers.remove(handler)

    def deliver(self, info):
        """Deliver one SIGSEGV; raise if nobody claims it."""
        self.delivered += 1
        self.clock.advance(self.overhead_s)
        if self.accounting is not None:
            self.accounting.charge(
                Category.SIGNAL, self.overhead_s, label="signal-delivery"
            )
        for handler in self._handlers:
            if handler(info):
                return
        self.unhandled += 1
        raise SegmentationFault(info.address, info.access)
