"""A simulated filesystem over the disk model.

Workload inputs (MRI samples, video frames, astronomical catalogues) are
deterministic pseudo-random files; outputs are written back and can be
asserted byte-for-byte against oracles.  Every read and write charges the
disk timeline, which is what surfaces IORead/IOWrite in the Figure 10
break-down and gives large sequential dumps their bandwidth advantage
(the Figure 9 volume-write effect).
"""

import numpy as np

from repro.util.buffers import as_byte_view
from repro.util.errors import IoError

#: Memoized outputs of :meth:`FileSystem.create_random`, keyed by the value
#: parameters (not the path).  The generated contents are a pure function of
#: (size, seed, dtype), and an experiment sweep regenerates identical input
#: files for every spec.  The cached array is read-only and shared; the
#: *file* gets a fresh mutable bytearray copy per call, so per-machine file
#: contents stay independently writable.
_RANDOM_FILE_CACHE = {}
_RANDOM_FILE_CACHE_MAX = 64


class FileHandle:
    """An open file with a position, in the POSIX style."""

    def __init__(self, fs, path, mode):
        if mode not in ("r", "w", "a"):
            raise IoError(f"unsupported open mode {mode!r}")
        self.fs = fs
        self.path = path
        self.mode = mode
        self.closed = False
        if mode == "w":
            fs._files[path] = bytearray()
        self.position = len(fs._files[path]) if mode == "a" else 0

    def _require_open(self):
        if self.closed:
            raise IoError(f"operation on closed file {self.path!r}")

    def read(self, size):
        """Read up to ``size`` bytes from the current position.

        POSIX permits short reads; an installed fault plan exercises that
        by occasionally delivering only a prefix of the request.  Callers
        that assume full reads — the un-interposed libc path — then lose
        the undelivered tail, exactly the un-restartable-I/O hazard of
        Section 4.4; GMAC's interposed chunked reads resume instead.
        """
        self._require_open()
        if self.mode != "r":
            raise IoError(f"file {self.path!r} not open for reading")
        plan = self.fs.disk.faults
        if plan is not None and plan.enabled:
            size = plan.short_read(size)
        data = self.fs._files[self.path]
        chunk = bytes(data[self.position:self.position + size])  # sanitizer: allow[R002]
        self.position += len(chunk)
        if chunk:
            self.fs.disk.read(len(chunk), label=f"read:{self.path}")
        return chunk

    def write(self, data):
        """Write a bytes-like buffer at the current position, extending
        the file.  The payload is viewed, not copied, on its way into the
        file buffer (zero-copy for memoryview/array sources)."""
        self._require_open()
        if self.mode == "r":
            raise IoError(f"file {self.path!r} not open for writing")
        data = as_byte_view(data)
        length = len(data)
        buffer = self.fs._files[self.path]
        end = self.position + length
        if self.position > len(buffer):
            # Seek past EOF: zero-fill the gap (sparse-file semantics).
            buffer.extend(bytes(self.position - len(buffer)))
        if self.position == len(buffer):
            # Appending — the common case — extends straight from the
            # view, with no zero-filled temporary.
            buffer += data
        else:
            if end > len(buffer):
                buffer.extend(bytes(end - len(buffer)))
            buffer[self.position:end] = data
        self.position = end
        if length:
            self.fs.disk.write(length, label=f"write:{self.path}")
        return length

    def seek(self, position):
        self._require_open()
        if position < 0:
            raise IoError(f"seek to negative position {position}")
        self.position = position

    def tell(self):
        return self.position

    def close(self):
        self.closed = True

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


class FileSystem:
    """All files of the simulated machine."""

    def __init__(self, disk):
        self.disk = disk
        self._files = {}

    def create(self, path, data=b""):
        """Create (or truncate) a file with explicit contents."""
        self._files[path] = bytearray(bytes(data))

    def create_random(self, path, size, seed=0, dtype=np.float32):
        """Create a file of deterministic pseudo-random values.

        Returns the numpy array written, so oracles can reuse it.
        """
        dtype = np.dtype(dtype)
        if size % dtype.itemsize != 0:
            raise IoError(
                f"file size {size} is not a multiple of {dtype} item size"
            )
        key = (size, seed, dtype.str)
        cached = _RANDOM_FILE_CACHE.get(key)
        if cached is None:
            rng = np.random.default_rng(seed)
            values = rng.random(size // dtype.itemsize).astype(dtype)
            values.setflags(write=False)
            cached = (values, values.tobytes())
            while len(_RANDOM_FILE_CACHE) >= _RANDOM_FILE_CACHE_MAX:
                _RANDOM_FILE_CACHE.pop(next(iter(_RANDOM_FILE_CACHE)))
            _RANDOM_FILE_CACHE[key] = cached
        values, raw = cached
        self._files[path] = bytearray(raw)
        return values

    def exists(self, path):
        return path in self._files

    def size_of(self, path):
        self._require(path)
        return len(self._files[path])

    def data_of(self, path):
        """The raw bytes of a file (for test assertions; no disk charge)."""
        self._require(path)
        return bytes(self._files[path])  # sanitizer: allow[R002]

    def unlink(self, path):
        self._require(path)
        del self._files[path]

    def open(self, path, mode="r"):
        if mode == "r":
            self._require(path)
        elif path not in self._files:
            self._files[path] = bytearray()
        return FileHandle(self, path, mode)

    def _require(self, path):
        if path not in self._files:
            raise IoError(f"no such file: {path!r}")
