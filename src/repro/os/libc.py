"""The C library veneer: I/O and bulk memory calls, with interposition.

Section 4.4 of the paper describes two problems GMAC solves with library
interposition:

1. **Un-restartable I/O.**  A ``read()`` into a shared object faults when
   the kernel's copy touches the next protected block; after any bytes have
   been transferred the operating system cannot restart the call.  The
   default implementations here reproduce that failure mode faithfully: a
   fault *before* any progress is retried (the handler repairs the page),
   but a fault *after* partial progress delivers the signal and then aborts
   with :class:`IoError` — the data consumed from the file is lost.

2. **Bulk memory over shared objects.**  Plain ``memset``/``memcpy`` would
   fault block by block and stream every byte through the CPU; GMAC
   overloads them to use accelerator-specific calls.

GMAC installs its overloads through :meth:`Libc.interpose`; each overload
receives the default implementation so it can forward non-shared ranges
unchanged, exactly like symbol interposition with ``dlsym(RTLD_NEXT)``.

Every byte this layer moves flows through :class:`~repro.os.process.Process`
/ :class:`~repro.os.address_space.AddressSpace` accessors, which notify a
mapping's transfer-ledger plane (DESIGN.md §14): reads materialize pending
device extents first, writes record dirty runs for the delta flush.  The
veneer itself never needs ledger awareness.
"""

from repro.util.errors import IoError, SegmentationFault
from repro.sim.tracing import Category
from repro.os.paging import AccessKind
from repro.os.signals import SegvInfo


class Libc:
    """read/write/memset/memcpy against simulated memory and files."""

    def __init__(self, process, filesystem, accounting=None):
        self.process = process
        self.filesystem = filesystem
        self.accounting = accounting
        self._impls = {
            "read": self._read_default,
            "write": self._write_default,
            "memset": self._memset_default,
            "memcpy": self._memcpy_default,
        }

    # -- interposition -----------------------------------------------------------

    def interpose(self, name, factory):
        """Replace implementation ``name`` with ``factory(default)``.

        ``factory`` receives the current implementation and must return the
        new one, mirroring how an LD_PRELOAD shim forwards to the real
        symbol.  Returns the previous implementation for uninstalling.
        """
        if name not in self._impls:
            raise ValueError(f"no interposable call named {name!r}")
        previous = self._impls[name]
        self._impls[name] = factory(previous)
        return previous

    def restore(self, name, implementation):
        self._impls[name] = implementation

    # -- public entry points -------------------------------------------------------

    def read(self, handle, address, size):
        """POSIX read(fd, buf, count) into simulated memory."""
        return self._impls["read"](handle, address, size)

    def write(self, handle, address, size):
        """POSIX write(fd, buf, count) from simulated memory."""
        return self._impls["write"](handle, address, size)

    def memset(self, address, value, size):
        return self._impls["memset"](address, value, size)

    def memcpy(self, destination, source, size):
        return self._impls["memcpy"](destination, source, size)

    # -- default implementations -----------------------------------------------------

    def _measure(self, category):
        if self.accounting is not None:
            return self.accounting.measure(category)
        import contextlib

        return contextlib.nullcontext()

    def _copy_with_syscall_semantics(self, address, size, kind, commit):
        """The kernel's user-memory copy loop: restartable only at offset 0."""
        space = self.process.address_space
        copied = 0
        while copied < size:
            cursor = address + copied
            accessible = space.writable_prefix(cursor, size - copied, kind)
            if accessible > 0:
                commit(copied, accessible)
                copied += accessible
                continue
            self.process.signals.deliver(SegvInfo(cursor, kind))
            if copied > 0:
                # Progress was made: the in-flight operation cannot be
                # restarted (Section 4.4).  The handler already ran, but the
                # consumed data is gone.
                raise IoError(
                    f"I/O aborted by page fault at {cursor:#x} after "
                    f"{copied} of {size} bytes (operation is not restartable)"
                )
            if space.writable_prefix(cursor, size - copied, kind) == 0:
                raise SegmentationFault(cursor, kind)
        return copied

    def _read_default(self, handle, address, size):
        with self._measure(Category.IO_READ):
            # View, don't slice: commit chunks alias the file data instead
            # of copying a bytes object per protection boundary.
            data = memoryview(handle.read(size))

            def commit(offset, length):
                self.process.address_space.poke(
                    address + offset, data[offset:offset + length]
                )

            return self._copy_with_syscall_semantics(
                address, len(data), AccessKind.WRITE, commit
            )

    def _write_default(self, handle, address, size):
        with self._measure(Category.IO_WRITE):
            chunks = []

            def commit(offset, length):
                chunks.append(
                    self.process.address_space.peek_view(
                        address + offset, length
                    )
                )

            self._copy_with_syscall_semantics(
                address, size, AccessKind.READ, commit
            )
            if len(chunks) == 1:
                # The whole range was accessible: hand the borrowed view
                # straight to the file (zero-copy fast path).
                return handle.write(chunks[0])
            return handle.write(b"".join(chunks))

    def _memset_default(self, address, value, size):
        with self._measure(Category.CPU):
            self.process.fill(address, value, size)
            self.process.machine.clock.advance(
                self.process.machine.cpu.spec.touch_seconds(size)
            )
        return address

    def _memcpy_default(self, destination, source, size):
        with self._measure(Category.CPU):
            data = self.process.read(source, size)
            self.process.write(destination, data)
            self.process.machine.clock.advance(
                self.process.machine.cpu.spec.touch_seconds(2 * size)
            )
        return destination
