"""Page-granular virtual address space with a software MMU.

A :class:`Mapping` is an anonymous memory region with per-page protection
bits and a byte-accurate backing store.  :class:`AddressSpace` keeps
mappings disjoint and implements the three system interfaces GMAC's shared
address space needs (Section 4.2 of the paper):

* ``mmap`` with an optional *fixed* address — how GMAC places system memory
  at the exact virtual range ``cudaMalloc`` returned,
* ``munmap``,
* ``mprotect`` — how lazy- and rolling-update arm fault detection.

The MMU itself is the :meth:`AddressSpace.check` method: given an access,
it returns the first page-protection violation, which the process layer
converts into a SIGSEGV.  ``peek``/``poke`` bypass protections; they model
the library's own privileged access to memory it manages.
"""

import numpy as np

from repro.util.buffers import as_byte_array
from repro.util.errors import AddressError, AllocationError, ProtectionError
from repro.util.intervals import Interval, RangeMap
from repro.os.paging import PAGE_SIZE, Prot, page_ceil

#: Where non-fixed mmaps are placed, loosely mimicking the Linux x86-64
#: mmap area.  The device heap (DEVICE_BASE) sits far above this, which is
#: why fixed mappings at cudaMalloc addresses normally succeed.
MMAP_BASE = 0x2AAA_0000_0000

#: Upper bound of the simulated user address space (47-bit, as on x86-64).
USER_TOP = 1 << 47


class Mapping:
    """One anonymous mapping: backing bytes + per-page protections."""

    def __init__(self, start, size, prot):
        if start % PAGE_SIZE != 0 or size % PAGE_SIZE != 0:
            raise AddressError(
                f"mapping [{start:#x}, +{size:#x}) is not page aligned"
            )
        self.interval = Interval.sized(start, size)
        self.backing = np.zeros(size, dtype=np.uint8)
        self.page_prots = np.full(size // PAGE_SIZE, int(prot), dtype=np.uint8)

    @property
    def start(self):
        return self.interval.start

    @property
    def end(self):
        return self.interval.end

    @property
    def size(self):
        return self.interval.size

    def _page_range(self, interval):
        first = (interval.start - self.start) // PAGE_SIZE
        last = (page_ceil(interval.end) - self.start) // PAGE_SIZE
        return first, last

    def set_prot(self, interval, prot):
        first, last = self._page_range(interval)
        self.page_prots[first:last] = int(prot)

    def prot_of(self, address):
        return Prot(int(self.page_prots[(address - self.start) // PAGE_SIZE]))

    def first_violation(self, interval, kind):
        """Address of the first page lacking ``kind``'s required bit."""
        first, last = self._page_range(interval)
        required = int(kind.required_prot)
        violations = (self.page_prots[first:last] & required) != required
        index = int(np.argmax(violations)) if violations.any() else -1
        if index < 0:
            return None
        page_start = self.start + (first + index) * PAGE_SIZE
        return max(page_start, interval.start)

    def slice(self, interval):
        """Writable numpy view of the backing bytes for ``interval``."""
        lo = interval.start - self.start
        hi = interval.end - self.start
        return self.backing[lo:hi]


class AddressSpace:
    """All mappings of one process, plus the software MMU."""

    def __init__(self):
        self._mappings = RangeMap()

    def __len__(self):
        return len(self._mappings)

    def mappings(self):
        return self._mappings.values()

    # -- mmap / munmap / mprotect -------------------------------------------

    def mmap(self, size, prot=Prot.RW, fixed_address=None):
        """Create an anonymous mapping; returns the :class:`Mapping`.

        With ``fixed_address`` the mapping must land exactly there
        (MAP_FIXED_NOREPLACE semantics): any overlap raises
        :class:`AllocationError`, which is the address-collision failure
        mode Section 4.2 discusses for multi-accelerator systems.
        """
        if size <= 0:
            raise AllocationError(f"mmap size must be positive, got {size}")
        size = page_ceil(size)
        if fixed_address is not None:
            if fixed_address % PAGE_SIZE != 0:
                raise AddressError(
                    f"fixed mmap address {fixed_address:#x} is not page aligned"
                )
            interval = Interval.sized(fixed_address, size)
            overlaps = self._mappings.overlapping(interval)
            if overlaps:
                raise AllocationError(
                    f"fixed mmap at {interval} collides with {overlaps[0][0]}"
                )
        else:
            interval = self._mappings.find_gap(
                size, MMAP_BASE, USER_TOP, alignment=PAGE_SIZE
            )
            if interval is None:
                raise AllocationError(f"address space exhausted for {size} bytes")
        mapping = Mapping(interval.start, size, prot)
        self._mappings.add(interval, mapping)
        return mapping

    def conflict_at(self, start, size):
        """The first existing mapping overlapping [start, start+size), or
        None when the range is free (used to negotiate a common virtual
        range with a virtual-memory accelerator)."""
        overlaps = self._mappings.overlapping(Interval.sized(start, size))
        return overlaps[0][0] if overlaps else None

    def munmap(self, start):
        """Remove the mapping starting at ``start``."""
        _, mapping = self._mappings.remove(start)
        return mapping

    def mprotect(self, address, size, prot):
        """Change protections over ``[address, address+size)``.

        The range must be page aligned and fall inside a single mapping —
        the only pattern GMAC uses (a block never spans mappings).
        """
        if address % PAGE_SIZE != 0:
            raise ProtectionError(f"mprotect address {address:#x} not page aligned")
        interval = Interval.sized(address, page_ceil(size))
        found = self._mappings.find(address)
        if found is None or not found[0].contains_interval(interval):
            raise ProtectionError(f"mprotect range {interval} is not mapped")
        found[1].set_prot(interval, prot)

    # -- the software MMU -----------------------------------------------------

    def mapping_at(self, address):
        """The mapping containing ``address`` or None."""
        found = self._mappings.find(address)
        return found[1] if found else None

    def check(self, address, size, kind):
        """Return the first faulting address for an access, or None.

        Unmapped addresses fault at the first unmapped byte; mapped pages
        fault where protection bits are missing.
        """
        if size <= 0:
            raise ValueError(f"access size must be positive, got {size}")
        cursor = address
        end = address + size
        while cursor < end:
            mapping = self.mapping_at(cursor)
            if mapping is None:
                return cursor
            span = Interval(cursor, min(end, mapping.end))
            violation = mapping.first_violation(span, kind)
            if violation is not None:
                return violation
            cursor = span.end
        return None

    def writable_prefix(self, address, size, kind):
        """Byte count from ``address`` accessible for ``kind`` (maybe 0).

        The process access loop uses this to commit the accessible prefix
        of a large access before faulting on the rest — matching how real
        hardware retires stores up to the faulting instruction.
        """
        fault = self.check(address, size, kind)
        if fault is None:
            return size
        return fault - address

    # -- privileged data access (no protection checks) ------------------------

    def _require_mapped(self, address, size):
        mapping = self.mapping_at(address)
        if mapping is None or address + size > mapping.end:
            raise AddressError(
                f"access [{address:#x}, +{size:#x}) crosses unmapped memory"
            )
        return mapping

    def peek(self, address, size):
        """Read bytes ignoring protections (library-internal access)."""
        mapping = self._require_mapped(address, size)
        return bytes(mapping.slice(Interval.sized(address, size)))

    def peek_view(self, address, size):
        """Borrow the backing bytes ignoring protections — zero-copy.

        The returned read-only view aliases the mapping's backing store:
        it is only valid until the mapping is unmapped, and it tracks later
        writes.  Callers that need a stable snapshot use :meth:`peek`.
        """
        mapping = self._require_mapped(address, size)
        return memoryview(
            mapping.slice(Interval.sized(address, size))
        ).toreadonly()

    def poke(self, address, data):
        """Write a bytes-like buffer ignoring protections — zero-copy.

        Accepts any C-contiguous buffer (bytes, memoryview, numpy array);
        the payload is viewed, not copied, on its way into the backing.
        """
        data = as_byte_array(data)
        mapping = self._require_mapped(address, len(data))
        mapping.slice(Interval.sized(address, len(data)))[:] = data

    def poke_fill(self, address, value, size):
        """memset ignoring protections."""
        mapping = self._require_mapped(address, size)
        mapping.slice(Interval.sized(address, size))[:] = value & 0xFF

    def view(self, address, dtype, count):
        """Writable numpy view (privileged; used by oracles and the library)."""
        dtype = np.dtype(dtype)
        size = dtype.itemsize * count
        mapping = self._require_mapped(address, size)
        return mapping.slice(Interval.sized(address, size)).view(dtype)
