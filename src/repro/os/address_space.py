"""Page-granular virtual address space with a software MMU.

A :class:`Mapping` is an anonymous memory region with per-page protection
bits and a byte-accurate backing store.  :class:`AddressSpace` keeps
mappings disjoint and implements the three system interfaces GMAC's shared
address space needs (Section 4.2 of the paper):

* ``mmap`` with an optional *fixed* address — how GMAC places system memory
  at the exact virtual range ``cudaMalloc`` returned,
* ``munmap``,
* ``mprotect`` — how lazy- and rolling-update arm fault detection.

The MMU itself is the :meth:`AddressSpace.check` method: given an access,
it returns the first page-protection violation, which the process layer
converts into a SIGSEGV.  ``peek``/``poke`` bypass protections; they model
the library's own privileged access to memory it manages.
"""

import numpy as np

from repro.util.buffers import as_byte_array
from repro.util.errors import AddressError, AllocationError, ProtectionError
from repro.util.intervals import Interval, RangeMap
from repro.os.paging import PAGE_SIZE, AccessKind, Prot, page_ceil

#: AccessKind -> required protection bits, flattened to plain ints once:
#: the MMU consults this on every access check, and the enum property +
#: IntFlag conversion were measurable there.
_REQUIRED_PROT = {
    AccessKind.READ: int(Prot.READ),
    AccessKind.WRITE: int(Prot.WRITE),
}

#: Where non-fixed mmaps are placed, loosely mimicking the Linux x86-64
#: mmap area.  The device heap (DEVICE_BASE) sits far above this, which is
#: why fixed mappings at cudaMalloc addresses normally succeed.
MMAP_BASE = 0x2AAA_0000_0000

#: Upper bound of the simulated user address space (47-bit, as on x86-64).
USER_TOP = 1 << 47


class Mapping:
    """One anonymous mapping: backing bytes + per-page protections."""

    #: Transfer-ledger plane (:class:`repro.hw.memory.MappingPlane`), bound
    #: when this mapping backs a shared region on a deferred-transfer GPU;
    #: None for plain mappings and in eager mode.  The access paths below
    #: consult it duck-typed — :mod:`repro.os` never imports :mod:`repro.hw`.
    plane = None

    def __init__(self, start, size, prot):
        if start % PAGE_SIZE != 0 or size % PAGE_SIZE != 0:
            raise AddressError(
                f"mapping [{start:#x}, +{size:#x}) is not page aligned"
            )
        self.interval = Interval.sized(start, size)
        self.backing = np.zeros(size, dtype=np.uint8)
        self.page_prots = np.full(size // PAGE_SIZE, int(prot), dtype=np.uint8)

    @property
    def start(self):
        return self.interval.start

    @property
    def end(self):
        return self.interval.end

    @property
    def size(self):
        return self.interval.size

    def _page_range(self, interval):
        first = (interval.start - self.start) // PAGE_SIZE
        last = (page_ceil(interval.end) - self.start) // PAGE_SIZE
        return first, last

    def set_prot(self, interval, prot):
        first, last = self._page_range(interval)
        self.page_prots[first:last] = int(prot)

    def set_prot_span(self, address, size, prot):
        """Like :meth:`set_prot` for a page-aligned span (hot path)."""
        first = (address - self.interval.start) // PAGE_SIZE
        self.page_prots[first:first + size // PAGE_SIZE] = int(prot)

    def prot_of(self, address):
        return Prot(int(self.page_prots[(address - self.start) // PAGE_SIZE]))

    def first_violation(self, interval, kind):
        """Address of the first page lacking ``kind``'s required bit."""
        return self.first_violation_at(
            interval.start, interval.end - interval.start, kind
        )

    def first_violation_at(self, address, size, kind):
        """Like :meth:`first_violation` without an Interval (hot path)."""
        start = self.interval.start
        first = (address - start) // PAGE_SIZE
        last = (page_ceil(address + size) - start) // PAGE_SIZE
        required = _REQUIRED_PROT[kind]
        prots = self.page_prots
        # Faults overwhelmingly land on an access's first page (the retry
        # loop re-enters exactly where it stopped), so a scalar test there
        # skips building the vector mask for wide spans.
        if prots[first] & required != required:
            return max(start + first * PAGE_SIZE, address)
        violations = (prots[first:last] & required) != required
        index = int(np.argmax(violations)) if violations.any() else -1
        if index < 0:
            return None
        page_start = start + (first + index) * PAGE_SIZE
        return max(page_start, address)

    def slice(self, interval):
        """Writable numpy view of the backing bytes for ``interval``."""
        lo = interval.start - self.start
        hi = interval.end - self.start
        return self.backing[lo:hi]

    def slice_at(self, address, size):
        """Like :meth:`slice` without materializing an Interval (hot path)."""
        lo = address - self.start
        return self.backing[lo:lo + size]


class AddressSpace:
    """All mappings of one process, plus the software MMU.

    The MMU keeps a one-entry-per-:class:`~repro.os.paging.AccessKind`
    **soft TLB**: the maximal run of pages around the last successful
    access check whose protections permit that kind.  Sequential bulk
    accesses (the common workload pattern) then resolve by two integer
    compares instead of a mapping lookup plus a page-bit scan.
    ``mmap``/``munmap`` bump a generation counter that invalidates every
    cached run at once; ``mprotect`` invalidates surgically — only a change
    that revokes a kind's required bit inside that kind's cached run can
    shrink the run, so grants (the fault-handling path) keep runs alive.
    """

    def __init__(self):
        self._mappings = RangeMap()
        self._generation = 0
        self._tlb = {}
        #: Last mapping a lookup resolved — accesses are strongly local, so
        #: most lookups skip the range-map bisect.  Only mmap/munmap change
        #: the mapping *set* (mprotect does not), hence the separate
        #: generation counter.
        self._map_generation = 0
        self._last_mapping = None

    def __len__(self):
        return len(self._mappings)

    def mappings(self):
        return self._mappings.values()

    # -- mmap / munmap / mprotect -------------------------------------------

    def mmap(self, size, prot=Prot.RW, fixed_address=None):
        """Create an anonymous mapping; returns the :class:`Mapping`.

        With ``fixed_address`` the mapping must land exactly there
        (MAP_FIXED_NOREPLACE semantics): any overlap raises
        :class:`AllocationError`, which is the address-collision failure
        mode Section 4.2 discusses for multi-accelerator systems.
        """
        if size <= 0:
            raise AllocationError(f"mmap size must be positive, got {size}")
        size = page_ceil(size)
        if fixed_address is not None:
            if fixed_address % PAGE_SIZE != 0:
                raise AddressError(
                    f"fixed mmap address {fixed_address:#x} is not page aligned"
                )
            interval = Interval.sized(fixed_address, size)
            overlaps = self._mappings.overlapping(interval)
            if overlaps:
                raise AllocationError(
                    f"fixed mmap at {interval} collides with {overlaps[0][0]}"
                )
        else:
            interval = self._mappings.find_gap(
                size, MMAP_BASE, USER_TOP, alignment=PAGE_SIZE
            )
            if interval is None:
                raise AllocationError(f"address space exhausted for {size} bytes")
        mapping = Mapping(interval.start, size, prot)
        self._mappings.add(interval, mapping)
        self._generation += 1
        self._map_generation += 1
        return mapping

    def conflict_at(self, start, size):
        """The first existing mapping overlapping [start, start+size), or
        None when the range is free (used to negotiate a common virtual
        range with a virtual-memory accelerator)."""
        overlaps = self._mappings.overlapping(Interval.sized(start, size))
        return overlaps[0][0] if overlaps else None

    def munmap(self, start):
        """Remove the mapping starting at ``start``."""
        _, mapping = self._mappings.remove(start)
        self._generation += 1
        self._map_generation += 1
        self._last_mapping = None
        return mapping

    def mprotect(self, address, size, prot):
        """Change protections over ``[address, address+size)``.

        The range must be page aligned and fall inside a single mapping —
        the only pattern GMAC uses (a block never spans mappings).
        """
        if address % PAGE_SIZE != 0:
            raise ProtectionError(f"mprotect address {address:#x} not page aligned")
        size = page_ceil(size)
        mapping = self.mapping_at(address)
        if mapping is None or address + size > mapping.interval.end:
            raise ProtectionError(
                f"mprotect range {Interval.sized(address, size)} is not mapped"
            )
        mapping.set_prot_span(address, size, prot)
        # Surgical soft-TLB invalidation: granting a bit can never shrink an
        # accessible run, so only a change that *revokes* a kind's required
        # bit inside that kind's cached run drops the entry.  Fault handling
        # mprotects to grant access, so cached runs survive the fault storm
        # of a kernel prologue; revocations (block demotion/invalidate)
        # still invalidate exactly the runs they can affect.
        prot_int = int(prot)
        end = address + size
        for kind in tuple(self._tlb):
            required = _REQUIRED_PROT[kind]
            if prot_int & required == required:
                continue
            entry = self._tlb[kind]
            if address < entry[2] and end > entry[1]:
                del self._tlb[kind]

    # -- the software MMU -----------------------------------------------------

    def mapping_at(self, address):
        """The mapping containing ``address`` or None."""
        cached = self._last_mapping
        if (
            cached is not None
            and cached[0] == self._map_generation
            and cached[1].interval.start <= address < cached[1].interval.end
        ):
            return cached[1]
        found = self._mappings.find(address)
        if found is None:
            return None
        self._last_mapping = (self._map_generation, found[1])
        return found[1]

    def check(self, address, size, kind):
        """Return the first faulting address for an access, or None.

        Unmapped addresses fault at the first unmapped byte; mapped pages
        fault where protection bits are missing.
        """
        if size <= 0:
            raise ValueError(f"access size must be positive, got {size}")
        cursor = address
        end = address + size
        while cursor < end:
            mapping = self.mapping_at(cursor)
            if mapping is None:
                return cursor
            span_end = mapping.interval.end
            if span_end > end:
                span_end = end
            violation = mapping.first_violation_at(
                cursor, span_end - cursor, kind
            )
            if violation is not None:
                return violation
            cursor = span_end
        return None

    def accessible_mapping(self, address, size, kind):
        """The mapping behind a fully TLB-covered access, or None.

        A soft-TLB hit guarantees the whole range is accessible for
        ``kind`` *and* lies inside one mapping (only single-mapping runs
        are cached), so bulk access paths can commit in one slice copy
        without the prefix walk or a per-chunk closure.
        """
        entry = self._tlb.get(kind)
        if (
            entry is not None
            and entry[0] == self._generation
            and entry[1] <= address
            and address + size <= entry[2]
        ):
            return self.mapping_at(address)
        return None

    def writable_prefix(self, address, size, kind):
        """Byte count from ``address`` accessible for ``kind`` (maybe 0).

        The process access loop uses this to commit the accessible prefix
        of a large access before faulting on the rest — matching how real
        hardware retires stores up to the faulting instruction.  A soft-TLB
        hit (the access falls inside the cached accessible run for this
        kind, and no protection change happened since) skips the walk.
        """
        entry = self._tlb.get(kind)
        if (
            entry is not None
            and entry[0] == self._generation
            and entry[1] <= address
            and address + size <= entry[2]
        ):
            return size
        fault = self.check(address, size, kind)
        if fault is None:
            self._cache_accessible_run(address, size, kind)
            return size
        return fault - address

    def _cache_accessible_run(self, address, size, kind):
        """Cache the maximal ``kind``-accessible page run around an access.

        Only single-mapping accesses are cached (GMAC blocks never span
        mappings); the run extends left and right from the access until a
        page lacks the required bit or the mapping ends.
        """
        mapping = self.mapping_at(address)
        if mapping is None or address + size > mapping.end:
            return
        required = _REQUIRED_PROT[kind]
        ok = (mapping.page_prots & required) == required
        first = (address - mapping.start) // PAGE_SIZE
        last = (address + size - 1 - mapping.start) // PAGE_SIZE
        blocked_before = np.flatnonzero(~ok[:first])
        lo_page = int(blocked_before[-1]) + 1 if len(blocked_before) else 0
        blocked_after = np.flatnonzero(~ok[last + 1:])
        hi_page = (
            last + 1 + int(blocked_after[0]) if len(blocked_after) else len(ok)
        )
        self._tlb[kind] = (
            self._generation,
            mapping.start + lo_page * PAGE_SIZE,
            mapping.start + hi_page * PAGE_SIZE,
        )

    # -- privileged data access (no protection checks) ------------------------

    def _require_mapped(self, address, size):
        mapping = self.mapping_at(address)
        if mapping is None or address + size > mapping.end:
            raise AddressError(
                f"access [{address:#x}, +{size:#x}) crosses unmapped memory"
            )
        return mapping

    def resolve(self, address, size):
        """The mapping wholly containing ``[address, +size)``.

        Public counterpart of the privileged access helpers for callers —
        the driver's DMA entry points — that hand the mapping itself to
        :func:`repro.hw.memory.copy_h2d`/``copy_d2h``.  Raises
        :class:`AddressError` when the range crosses unmapped memory.
        """
        return self._require_mapped(address, size)

    def peek(self, address, size):
        """Read bytes ignoring protections (library-internal access)."""
        mapping = self._require_mapped(address, size)
        plane = mapping.plane
        if plane is not None:
            plane.host_read(address - mapping.start, size)
        return bytes(mapping.slice_at(address, size))

    def peek_view(self, address, size):
        """Borrow the backing bytes ignoring protections — zero-copy.

        The returned read-only view aliases the mapping's backing store:
        it is only valid until the mapping is unmapped, and it tracks later
        writes.  Callers that need a stable snapshot use :meth:`peek`.
        """
        mapping = self._require_mapped(address, size)
        plane = mapping.plane
        if plane is not None:
            plane.host_read(address - mapping.start, size)
        return memoryview(mapping.slice_at(address, size)).toreadonly()

    def poke(self, address, data):
        """Write a bytes-like buffer ignoring protections — zero-copy.

        Accepts any C-contiguous buffer (bytes, memoryview, numpy array);
        the payload is viewed, not copied, on its way into the backing.
        """
        data = as_byte_array(data)
        mapping = self._require_mapped(address, len(data))
        plane = mapping.plane
        if plane is not None:
            plane.host_write(address - mapping.start, len(data))
        mapping.slice_at(address, len(data))[:] = data

    def poke_fill(self, address, value, size):
        """memset ignoring protections."""
        mapping = self._require_mapped(address, size)
        plane = mapping.plane
        if plane is not None:
            plane.host_write(address - mapping.start, size)
        mapping.slice_at(address, size)[:] = value & 0xFF

    def view(self, address, dtype, count):
        """Writable numpy view (privileged; used by oracles and the library)."""
        dtype = np.dtype(dtype)
        size = dtype.itemsize * count
        mapping = self._require_mapped(address, size)
        plane = mapping.plane
        if plane is not None:
            # The view is writable and escapes: fold pending entries in
            # (read) and mark the range dirty (write), conservatively.
            lo = address - mapping.start
            plane.host_read(lo, size)
            plane.host_write(lo, size)
        return mapping.slice_at(address, size).view(dtype)
