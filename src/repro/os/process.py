"""Processes: the CPU-side access path every load and store goes through.

On real hardware a store to a protected page traps, the handler repairs the
page, and the store retries.  :meth:`Process.write`/:meth:`Process.read`
model that loop for bulk accesses: the accessible prefix commits, the first
violation raises a SIGSEGV through the dispatcher, and the access resumes
where it faulted.  Committing the prefix (rather than re-checking the whole
range) is essential: rolling-update may demote an *earlier* block to
read-only while handling a fault on a *later* one, and sequential CPU code
must not re-trip on the demoted block.

A fault the handler fails to repair (the page is still inaccessible on
retry) is a crash, raised as :class:`SegmentationFault`.
"""

import numpy as np

from repro.util.buffers import as_byte_view
from repro.util.errors import AddressError, SegmentationFault
from repro.os.paging import Prot, AccessKind, page_ceil
from repro.os.address_space import AddressSpace
from repro.os.signals import SegvInfo, SignalDispatcher


class Process:
    """One simulated process: address space + signal handling + heap."""

    def __init__(self, machine):
        self.machine = machine
        self.address_space = AddressSpace()
        self.signals = SignalDispatcher(
            machine.clock, accounting=machine.accounting
        )

    # -- heap ------------------------------------------------------------------

    def malloc(self, size):
        """Allocate ordinary (non-shared) memory; returns a :class:`Ptr`."""
        mapping = self.address_space.mmap(page_ceil(max(size, 1)), Prot.RW)
        return Ptr(self, mapping.start)

    def free(self, ptr):
        """Release memory obtained from :meth:`malloc`."""
        self.address_space.munmap(int(ptr))

    # -- the fault/retry access loop --------------------------------------------

    def _advance_through(self, address, size, kind, commit=None):
        """Walk an access range, committing prefixes and faulting as needed.

        ``commit(offset, length)`` is invoked for each accessible chunk, in
        order.  Returns only when the whole range has been covered.
        """
        # Bound methods hoisted out of the loop: this runs once per chunk of
        # every simulated load/store, and with the address-space soft TLB the
        # prefix check itself is now cheap enough for the lookups to show.
        writable_prefix = self.address_space.writable_prefix
        deliver = self.signals.deliver
        offset = 0
        while offset < size:
            cursor = address + offset
            remaining = size - offset
            accessible = writable_prefix(cursor, remaining, kind)
            if accessible > 0:
                if commit is not None:
                    commit(offset, accessible)
                offset += accessible
                continue
            fault_address = cursor
            deliver(SegvInfo(fault_address, kind, remaining))
            # The handler must have repaired the faulting page; a second
            # fault at the same byte means it did not.
            if writable_prefix(cursor, remaining, kind) == 0:
                raise SegmentationFault(
                    fault_address,
                    kind,
                    message=f"unrepaired {kind} fault at {fault_address:#x}",
                )

    def touch(self, address, size, kind):
        """Fault in a range without moving data (pre-faulting)."""
        self._advance_through(address, size, kind)

    def read(self, address, size):
        """Protection-checked bulk read; returns bytes (one copy, at join)."""
        chunks = []

        def commit(offset, length):
            chunks.append(
                self.address_space.peek_view(address + offset, length)
            )

        self._advance_through(address, size, AccessKind.READ, commit)
        if len(chunks) == 1:
            return bytes(chunks[0])  # sanitizer: allow[R002]
        return b"".join(chunks)

    def read_view(self, address, size):
        """Protection-checked zero-copy read; returns a read-only view.

        The fast path borrows the mapping's backing store directly (no
        copy); an access spanning mappings falls back to a copying read.
        Like :meth:`~repro.os.address_space.AddressSpace.peek_view`, the
        borrowed view tracks later writes to the range.
        """
        self.touch(address, size, AccessKind.READ)
        try:
            return self.address_space.peek_view(address, size)
        except AddressError:
            return memoryview(self.read(address, size))

    def read_into(self, address, out):
        """Protection-checked read into a caller-provided writable buffer.

        Fills ``out`` (any C-contiguous writable buffer) without any
        intermediate allocation; returns the byte count read.
        """
        out = np.frombuffer(out, dtype=np.uint8)
        space = self.address_space
        size = len(out)
        # Soft-TLB hit: the whole range is readable inside one mapping, so
        # one slice copy replaces the prefix walk and per-chunk closures.
        mapping = space.accessible_mapping(address, size, AccessKind.READ)
        if mapping is not None:
            lo = address - mapping.interval.start
            plane = mapping.plane
            if plane is not None:
                plane.host_read(lo, size)
            out[:size] = mapping.backing[lo:lo + size]
            return size

        def commit(offset, length):
            out[offset:offset + length] = np.frombuffer(
                space.peek_view(address + offset, length), dtype=np.uint8
            )

        self._advance_through(address, size, AccessKind.READ, commit)
        return size

    def write(self, address, data):
        """Protection-checked bulk write, committing progressively.

        ``data`` may be any C-contiguous buffer (bytes, memoryview, numpy
        array); it is viewed, never copied, on its way to the backing.
        """
        view = as_byte_view(data)
        size = len(view)
        space = self.address_space
        mapping = space.accessible_mapping(address, size, AccessKind.WRITE)
        if mapping is not None and size:
            lo = address - mapping.interval.start
            plane = mapping.plane
            if plane is not None:
                plane.host_write(lo, size)
            mapping.backing[lo:lo + size] = np.frombuffer(view, dtype=np.uint8)
            return

        def commit(offset, length):
            space.poke(address + offset, view[offset:offset + length])

        self._advance_through(address, size, AccessKind.WRITE, commit)

    def fill(self, address, value, size):
        """Protection-checked memset."""

        def commit(offset, length):
            self.address_space.poke_fill(address + offset, value, length)

        self._advance_through(address, size, AccessKind.WRITE, commit)

    # -- typed helpers -----------------------------------------------------------

    def read_array(self, address, dtype, count):
        """Protection-checked read returning a numpy array (one copy)."""
        dtype = np.dtype(dtype)
        out = np.empty(count, dtype=dtype)
        if count:
            self.read_into(address, out.view(np.uint8))
        return out

    def write_array(self, address, array):
        """Protection-checked write of a numpy array's bytes (no copy)."""
        array = np.ascontiguousarray(array)
        if array.nbytes:
            self.write(address, array.reshape(-1).view(np.uint8))


class Ptr:
    """A typed-pointer convenience over a process address.

    Workloads manipulate simulated memory exclusively through these, so all
    of their accesses flow through the protection-checked path and drive
    GMAC's fault-based protocols.
    """

    __slots__ = ("process", "addr")

    def __init__(self, process, addr):
        self.process = process
        self.addr = addr

    def __int__(self):
        return self.addr

    def __index__(self):
        return self.addr

    def __add__(self, offset):
        return type(self)(self.process, self.addr + offset)

    def __eq__(self, other):
        return isinstance(other, Ptr) and (
            self.process is other.process and self.addr == other.addr
        )

    def __hash__(self):
        return hash((id(self.process), self.addr))

    def __repr__(self):
        return f"{type(self).__name__}({self.addr:#x})"

    def read_bytes(self, size, offset=0):
        return self.process.read(self.addr + offset, size)

    def read_view(self, size, offset=0):
        """Zero-copy read; see :meth:`Process.read_view`."""
        return self.process.read_view(self.addr + offset, size)

    def read_into(self, out, offset=0):
        """Read into a caller buffer; see :meth:`Process.read_into`."""
        return self.process.read_into(self.addr + offset, out)

    def write_bytes(self, data, offset=0):
        self.process.write(self.addr + offset, data)

    def read_array(self, dtype, count, offset=0):
        return self.process.read_array(self.addr + offset, dtype, count)

    def write_array(self, array, offset=0):
        self.process.write_array(self.addr + offset, array)

    def fill(self, value, size, offset=0):
        self.process.fill(self.addr + offset, value, size)
