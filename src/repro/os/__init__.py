"""The simulated operating system.

GMAC is a user-level library: everything it does rests on OS services —
anonymous ``mmap`` at a chosen address, ``mprotect``, SIGSEGV delivery to a
user-level handler, and file I/O.  Python cannot intercept real page
faults, so this package simulates those services byte- and event-accurately
(see DESIGN.md section 2):

* :mod:`repro.os.paging` -- page sizes, protection bits, access kinds,
* :mod:`repro.os.address_space` -- page-granular mappings with a software
  MMU (`check`/`peek`/`poke`),
* :mod:`repro.os.signals` -- SIGSEGV dispatch to registered handlers,
* :mod:`repro.os.process` -- the fault/retry access loop every CPU load and
  store goes through, plus typed pointer helpers,
* :mod:`repro.os.filesystem` -- simulated files over the disk model,
* :mod:`repro.os.libc` -- ``read``/``write``/``memset``/``memcpy`` with the
  interposition table GMAC overloads (Section 4.4 of the paper).
"""

from repro.os.paging import PAGE_SIZE, Prot, AccessKind, page_floor, page_ceil
from repro.os.address_space import AddressSpace, Mapping
from repro.os.signals import SegvInfo, SignalDispatcher
from repro.os.process import Process, Ptr
from repro.os.filesystem import FileSystem
from repro.os.libc import Libc

__all__ = [
    "PAGE_SIZE",
    "Prot",
    "AccessKind",
    "page_floor",
    "page_ceil",
    "AddressSpace",
    "Mapping",
    "SegvInfo",
    "SignalDispatcher",
    "Process",
    "Ptr",
    "FileSystem",
    "Libc",
]
