"""Hardware parameter presets.

Numbers are taken from the paper where it states them (PCIe 2.0 16X bus,
NVIDIA G280 with 1GB of device memory, 3GHz dual-core Opterons, 8GB RAM)
and from public datasheets of the named parts otherwise.  Absolute values
matter less than their ratios: the evaluation reproduces slow-downs and
crossovers, not seconds (see DESIGN.md section 2).
"""

from dataclasses import dataclass

from repro.util.units import GB, MB, KB


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point interconnect: per-transfer latency + peak bandwidth.

    Effective bandwidth for a transfer of ``size`` bytes is
    ``size / (latency + size / peak)``; small transfers are latency-bound,
    which is exactly the effect Figure 11 sweeps across block sizes.
    """

    name: str
    latency_s: float
    h2d_bytes_per_s: float
    d2h_bytes_per_s: float

    def transfer_seconds(self, size, d2h=False):
        if size < 0:
            raise ValueError(f"negative transfer size {size}")
        if size == 0:
            return 0.0
        peak = self.d2h_bytes_per_s if d2h else self.h2d_bytes_per_s
        return self.latency_s + size / peak

    def effective_bandwidth(self, size, d2h=False):
        seconds = self.transfer_seconds(size, d2h=d2h)
        if seconds == 0:
            return 0.0
        return size / seconds


@dataclass(frozen=True)
class GpuSpec:
    """An accelerator: device-memory capacity plus a kernel cost model.

    ``issue_overhead_s`` is the fixed per-launch cost; each kernel then
    charges work through :meth:`kernel_seconds` based on the number of
    abstract work units it performs and the GPU's throughput.
    """

    name: str
    memory_bytes: int
    memory_bandwidth_bytes_per_s: float
    work_units_per_s: float
    issue_overhead_s: float
    #: Whether the accelerator implements virtual memory (Section 4.2:
    #: "Virtual memory mechanisms are implemented in latest GPUs, but not
    #: available to programmers" -- e.g. NVIDIA Fermi's 40-bit VA).  With
    #: it, adsmAlloc can always place host and device mappings at the same
    #: virtual address, even on multi-accelerator systems.
    virtual_memory: bool = False

    def kernel_seconds(self, work_units, bytes_touched=0):
        """Kernel duration: max of compute-bound and memory-bound time."""
        if work_units < 0 or bytes_touched < 0:
            raise ValueError("negative kernel cost inputs")
        compute = work_units / self.work_units_per_s
        memory = bytes_touched / self.memory_bandwidth_bytes_per_s
        return max(compute, memory)


@dataclass(frozen=True)
class CpuSpec:
    """A general-purpose CPU: clock, IPC, and memory touch costs."""

    name: str
    clock_hz: float
    ipc: float
    touch_bytes_per_s: float

    def compute_seconds(self, instructions):
        if instructions < 0:
            raise ValueError(f"negative instruction count {instructions}")
        return instructions / (self.clock_hz * self.ipc)

    def touch_seconds(self, nbytes):
        if nbytes < 0:
            raise ValueError(f"negative byte count {nbytes}")
        return nbytes / self.touch_bytes_per_s


@dataclass(frozen=True)
class DiskSpec:
    """A disk: per-operation latency plus streaming bandwidth."""

    name: str
    latency_s: float
    read_bytes_per_s: float
    write_bytes_per_s: float

    def read_seconds(self, size):
        if size < 0:
            raise ValueError(f"negative read size {size}")
        if size == 0:
            return 0.0
        return self.latency_s + size / self.read_bytes_per_s

    def write_seconds(self, size):
        if size < 0:
            raise ValueError(f"negative write size {size}")
        if size == 0:
            return 0.0
        return self.latency_s + size / self.write_bytes_per_s


# ---------------------------------------------------------------------------
# Interconnect presets (Figure 2's horizontal capacity lines, Figure 11's bus)
# ---------------------------------------------------------------------------

#: PCIe 2.0 x16: 8GB/s raw per direction; DMA setup latency dominates small
#: transfers.  The measured asymptotic bandwidth in Figure 11 approaches the
#: bus peak only at ~32MB blocks, which the latency term reproduces.
PCIE_2_0_X16 = LinkSpec(
    name="PCIe 2.0 x16",
    latency_s=18e-6,
    h2d_bytes_per_s=5.6 * GB,
    d2h_bytes_per_s=5.2 * GB,
)

#: HyperTransport 3.0 (the paper's footnote: a shared memory controller
#: would look like HyperTransport bandwidth to the accelerator).
HYPERTRANSPORT = LinkSpec(
    name="HyperTransport",
    latency_s=0.4e-6,
    h2d_bytes_per_s=10.4 * GB,
    d2h_bytes_per_s=10.4 * GB,
)

#: Intel QuickPath Interconnect.
QPI = LinkSpec(
    name="QPI",
    latency_s=0.3e-6,
    h2d_bytes_per_s=12.8 * GB,
    d2h_bytes_per_s=12.8 * GB,
)

#: On-board GDDR3 bandwidth of the NVIDIA GTX295 (Figure 2's top line).
GTX295_MEMORY = LinkSpec(
    name="NVIDIA GTX295 Memory",
    latency_s=0.05e-6,
    h2d_bytes_per_s=111.9 * GB,
    d2h_bytes_per_s=111.9 * GB,
)

# ---------------------------------------------------------------------------
# Device presets (the Section 5 testbed)
# ---------------------------------------------------------------------------

GTX280 = GpuSpec(
    name="NVIDIA G280",
    memory_bytes=1 * GB,
    memory_bandwidth_bytes_per_s=141.7 * GB,
    work_units_per_s=500e9,
    issue_overhead_s=8e-6,
)

#: A Fermi-generation accelerator with virtual memory (the Section 4.2
#: "good solution to the problem of conflicting address ranges").
FERMI = GpuSpec(
    name="NVIDIA Fermi",
    memory_bytes=1 * GB,
    memory_bandwidth_bytes_per_s=144 * GB,
    work_units_per_s=1000e9,
    issue_overhead_s=6e-6,
    virtual_memory=True,
)

OPTERON_2222 = CpuSpec(
    name="AMD Opteron 2222",
    clock_hz=3.0e9,
    ipc=1.0,
    touch_bytes_per_s=4.0 * GB,
)

COMMODITY_DISK = DiskSpec(
    name="SATA disk",
    latency_s=80e-6,
    read_bytes_per_s=250 * MB,
    write_bytes_per_s=220 * MB,
)

#: The simulated OS page size; also the smallest block size in Figure 11.
PAGE_SIZE = 4 * KB
