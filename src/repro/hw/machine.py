"""Assembly of the heterogeneous machine.

:func:`reference_system` builds the paper's Figure 1 architecture (separate
CPU and accelerator memories joined by PCIe); :func:`integrated_system`
builds the low-cost variant of Section 3.1 where CPU and accelerator share
one physical memory, which lets the same ADSM program run with zero copies
— the architecture-independence benefit the paper claims for the
data-centric model.
"""

from repro.sim.clock import SimClock
from repro.sim.tracing import TimeAccounting, TraceLog
from repro.hw.specs import (
    PCIE_2_0_X16,
    HYPERTRANSPORT,
    GTX280,
    OPTERON_2222,
    COMMODITY_DISK,
)
from repro.hw.interconnect import Link
from repro.hw.gpu import Gpu
from repro.hw.memory import DEVICE_BASE
from repro.hw.cpu import Cpu
from repro.hw.disk import Disk

#: Device-heap spacing for multi-device machines: 64GB per device keeps
#: every heap disjoint (device memories are ~1GB) while staying well inside
#: the 47-bit shared virtual address space of Section 4.2.
DEVICE_BASE_STRIDE = 0x10_0000_0000


class Machine:
    """One simulated heterogeneous node: clock, CPU, GPU(s), link(s), disk."""

    def __init__(
        self,
        cpu_spec=OPTERON_2222,
        gpu_spec=GTX280,
        link_spec=PCIE_2_0_X16,
        disk_spec=COMMODITY_DISK,
        gpu_count=1,
        integrated=False,
        trace=False,
        defer_numerics=None,
        defer_transfers=None,
        link_specs=None,
        multi_device=False,
    ):
        self.clock = SimClock()
        self.trace = TraceLog() if trace else None
        self.accounting = TimeAccounting(self.clock, trace=self.trace)
        self.cpu = Cpu(cpu_spec, self.clock, accounting=self.accounting)
        self.disk = Disk(disk_spec, self.clock, trace=trace)
        self.integrated = integrated
        #: True for machines built by :func:`multi_device_system`: every
        #: device gets a disjoint heap and its own link, and GMAC places,
        #: migrates and fails objects over across devices.  False keeps
        #: the legacy topology (shared link, overlapping device heaps).
        self.multi_device = bool(multi_device)
        #: Fault-injection plan (None = no injection, zero-cost no-ops).
        #: Driver contexts consult this dynamically; the disk gets its own
        #: reference because the filesystem only sees the disk.
        self.faults = None
        if integrated:
            # CPU and accelerator share physical memory: a "transfer" is a
            # zero-cost no-op that still snapshots bytes at issue time, so
            # there is nothing for the ledger to defer.  Force eager.
            defer_transfers = False
        specs = list(link_specs) if link_specs else [link_spec] * gpu_count
        if len(specs) != gpu_count:
            raise ValueError(
                f"{len(specs)} link specs for {gpu_count} GPUs; "
                "give one per device (asymmetric bandwidths allowed)"
            )
        self.gpus = []
        #: One Link per GPU.  Legacy machines route everything over
        #: ``links[0]`` (the :attr:`link` property); multi-device machines
        #: route per-owner via :meth:`link_for`.
        self.links = []
        for index in range(gpu_count):
            if self.multi_device:
                base = DEVICE_BASE + index * DEVICE_BASE_STRIDE
                gpu = Gpu(gpu_spec, self.clock, memory_base=base,
                          trace=trace, defer_numerics=defer_numerics,
                          defer_transfers=defer_transfers)
            else:
                # Multiple GPUs get overlapping device address ranges,
                # exactly the collision hazard Section 4.2 describes;
                # adsmSafeAlloc is the software fallback exercised against
                # gpu_count > 1.
                gpu = Gpu(gpu_spec, self.clock, trace=trace,
                          defer_numerics=defer_numerics,
                          defer_transfers=defer_transfers)
            self.gpus.append(gpu)
            self.links.append(Link(specs[index], self.clock, trace=trace))
        if not self.gpus:
            raise ValueError("a heterogeneous machine needs at least one GPU")

    @property
    def gpu(self):
        return self.gpus[0]

    @property
    def link(self):
        """The primary link (device 0); the whole link on legacy machines."""
        return self.links[0]

    def device_index(self, gpu):
        """Index of ``gpu`` on this machine (0 for foreign/test GPUs)."""
        for index, candidate in enumerate(self.gpus):
            if candidate is gpu:
                return min(index, len(self.links) - 1)
        return 0

    def link_for(self, gpu):
        """The link that carries DMA traffic for ``gpu``."""
        return self.links[self.device_index(gpu)]

    def install_faults(self, plan):
        """Install a :class:`~repro.faults.FaultPlan` across all layers.

        The driver, interconnect and filesystem consult the plan at their
        injection points; passing ``None`` uninstalls.  A GMAC instance
        created on a machine with an *enabled* plan automatically arms its
        recovery machinery (see :class:`repro.core.recovery.RecoveryPolicy`).
        """
        self.faults = plan
        self.disk.faults = plan
        return plan

    def elapsed(self):
        return self.clock.now

    def reset_transfer_counters(self):
        for link in self.links:
            link.reset_counters()


def reference_system(trace=False, gpu_count=1, defer_numerics=None,
                     defer_transfers=None):
    """The Figure 1 reference architecture (the Section 5 testbed)."""
    return Machine(trace=trace, gpu_count=gpu_count,
                   defer_numerics=defer_numerics,
                   defer_transfers=defer_transfers)


def multi_device_system(devices=2, link_specs=None, trace=False,
                        defer_numerics=None, defer_transfers=None):
    """N accelerators with per-device links and disjoint device heaps.

    The survivable-topology variant: each device gets its own
    :class:`~repro.hw.interconnect.Link` (``link_specs`` may list one
    spec per device for asymmetric bandwidths) and a disjoint device
    address range, so shared mappings never collide and GMAC can place,
    peer-migrate and fail objects over between devices.
    """
    if devices < 1:
        raise ValueError(f"a multi-device system needs >= 1 device, got {devices}")
    return Machine(trace=trace, gpu_count=devices, link_specs=link_specs,
                   multi_device=True, defer_numerics=defer_numerics,
                   defer_transfers=defer_transfers)


def integrated_system(trace=False):
    """A low-cost system where CPU and accelerator share physical memory.

    The link is replaced by the memory-controller path (HyperTransport-like
    in the paper's footnote) and GMAC performs no copies at all on it.
    """
    return Machine(link_spec=HYPERTRANSPORT, integrated=True, trace=trace)
