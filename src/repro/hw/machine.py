"""Assembly of the heterogeneous machine.

:func:`reference_system` builds the paper's Figure 1 architecture (separate
CPU and accelerator memories joined by PCIe); :func:`integrated_system`
builds the low-cost variant of Section 3.1 where CPU and accelerator share
one physical memory, which lets the same ADSM program run with zero copies
— the architecture-independence benefit the paper claims for the
data-centric model.
"""

from repro.sim.clock import SimClock
from repro.sim.tracing import TimeAccounting, TraceLog
from repro.hw.specs import (
    PCIE_2_0_X16,
    HYPERTRANSPORT,
    GTX280,
    OPTERON_2222,
    COMMODITY_DISK,
)
from repro.hw.interconnect import Link
from repro.hw.gpu import Gpu
from repro.hw.cpu import Cpu
from repro.hw.disk import Disk


class Machine:
    """One simulated heterogeneous node: clock, CPU, GPU(s), link, disk."""

    def __init__(
        self,
        cpu_spec=OPTERON_2222,
        gpu_spec=GTX280,
        link_spec=PCIE_2_0_X16,
        disk_spec=COMMODITY_DISK,
        gpu_count=1,
        integrated=False,
        trace=False,
        defer_numerics=None,
    ):
        self.clock = SimClock()
        self.trace = TraceLog() if trace else None
        self.accounting = TimeAccounting(self.clock, trace=self.trace)
        self.cpu = Cpu(cpu_spec, self.clock, accounting=self.accounting)
        self.link = Link(link_spec, self.clock, trace=trace)
        self.disk = Disk(disk_spec, self.clock, trace=trace)
        self.integrated = integrated
        #: Fault-injection plan (None = no injection, zero-cost no-ops).
        #: Driver contexts consult this dynamically; the disk gets its own
        #: reference because the filesystem only sees the disk.
        self.faults = None
        self.gpus = []
        for index in range(gpu_count):
            # Multiple GPUs get overlapping device address ranges, exactly
            # the collision hazard Section 4.2 describes; adsmSafeAlloc is
            # the software fallback exercised against gpu_count > 1.
            self.gpus.append(Gpu(gpu_spec, self.clock, trace=trace,
                                 defer_numerics=defer_numerics))
        if not self.gpus:
            raise ValueError("a heterogeneous machine needs at least one GPU")

    @property
    def gpu(self):
        return self.gpus[0]

    def install_faults(self, plan):
        """Install a :class:`~repro.faults.FaultPlan` across all layers.

        The driver, interconnect and filesystem consult the plan at their
        injection points; passing ``None`` uninstalls.  A GMAC instance
        created on a machine with an *enabled* plan automatically arms its
        recovery machinery (see :class:`repro.core.recovery.RecoveryPolicy`).
        """
        self.faults = plan
        self.disk.faults = plan
        return plan

    def elapsed(self):
        return self.clock.now

    def reset_transfer_counters(self):
        self.link.reset_counters()


def reference_system(trace=False, gpu_count=1, defer_numerics=None):
    """The Figure 1 reference architecture (the Section 5 testbed)."""
    return Machine(trace=trace, gpu_count=gpu_count,
                   defer_numerics=defer_numerics)


def integrated_system(trace=False):
    """A low-cost system where CPU and accelerator share physical memory.

    The link is replaced by the memory-controller path (HyperTransport-like
    in the paper's footnote) and GMAC performs no copies at all on it.
    """
    return Machine(link_spec=HYPERTRANSPORT, integrated=True, trace=trace)
