"""The CPU<->accelerator interconnect.

A :class:`Link` owns two independent :class:`~repro.sim.resource.Resource`
timelines, one per direction (PCIe is full duplex), and converts transfer
sizes to durations through its :class:`~repro.hw.specs.LinkSpec`.  Byte
counters per direction feed Figure 8 (transferred data) and Figure 11
(effective bandwidth vs block size).
"""

import enum

from repro.sim.resource import Resource


class Direction(enum.Enum):
    H2D = "host-to-accelerator"
    D2H = "accelerator-to-host"

    # Identity hash: per-direction byte counters are bumped on every
    # transfer, and Enum's name-based hash was visible in profiles.
    __hash__ = object.__hash__

    def __str__(self):
        return self.value


class Link:
    """A full-duplex link between system memory and accelerator memory."""

    def __init__(self, spec, clock, trace=False):
        self.spec = spec
        self.clock = clock
        self._resources = {
            Direction.H2D: Resource(f"{spec.name} H2D", clock, trace=trace),
            Direction.D2H: Resource(f"{spec.name} D2H", clock, trace=trace),
        }
        self.bytes_moved = {Direction.H2D: 0, Direction.D2H: 0}
        self.transfer_count = {Direction.H2D: 0, Direction.D2H: 0}
        # Aborted DMA attempts (fault injection), counted separately so the
        # Figure 8/11 counters keep reflecting *logical* data movement.
        self.faulted_bytes = {Direction.H2D: 0, Direction.D2H: 0}
        self.faulted_count = {Direction.H2D: 0, Direction.D2H: 0}
        # Bytes the transfer ledger did NOT physically copy at issue time
        # (recorded D2H extents, flush-delta skips).  They remain part of
        # ``bytes_moved`` — the link was charged and Figures 8/11 reflect
        # logical movement — this counter just sizes the elision.
        self.deferred_bytes = {Direction.H2D: 0, Direction.D2H: 0}

    def resource(self, direction):
        return self._resources[direction]

    def transfer_seconds(self, size, direction):
        return self.spec.transfer_seconds(size, d2h=direction is Direction.D2H)

    def transfer(self, size, direction, label="dma", earliest=None,
                 deferred=0):
        """Schedule a DMA of ``size`` bytes; returns a Completion (async).

        ``deferred`` reports how many of the bytes were *not* physically
        copied by the caller (the transfer ledger's elision); timing and
        the Figure 8/11 counters are identical either way.
        """
        duration = self.transfer_seconds(size, direction)
        self.bytes_moved[direction] += size
        self.transfer_count[direction] += 1
        if deferred:
            self.deferred_bytes[direction] += deferred
        return self._resources[direction].schedule(
            duration, label=label, earliest=earliest
        )

    def transfer_many(self, sizes, direction, label="dma", earliest=None,
                      deferred=0):
        """Schedule a burst of DMAs; returns their Completions (async).

        Equivalent to calling :meth:`transfer` per size with no clock
        movement in between, but the byte/count bookkeeping and resource
        updates are amortized over the burst (streaming pipelines issue
        dozens of chunks at one instant).  ``deferred`` as in
        :meth:`transfer`, totalled over the burst.
        """
        durations = [self.transfer_seconds(size, direction) for size in sizes]
        self.bytes_moved[direction] += sum(sizes)
        self.transfer_count[direction] += len(durations)
        if deferred:
            self.deferred_bytes[direction] += deferred
        return self._resources[direction].schedule_many(
            durations, label=label, earliest=earliest
        )

    def faulted_transfer(self, size, direction, label="dma-faulted"):
        """Schedule a DMA attempt that will fail at completion time.

        The aborted attempt still holds the direction's timeline for its
        full duration — the DMA engine only reports the error when the
        transfer would have completed — so retries are genuinely charged
        to the PCIe resource and Figure 10-style accounting stays honest
        under fault injection.  The bytes are *not* added to
        ``bytes_moved`` (no data arrived); they land in ``faulted_bytes``.
        """
        duration = self.transfer_seconds(size, direction)
        self.faulted_bytes[direction] += size
        self.faulted_count[direction] += 1
        return self._resources[direction].schedule(duration, label=label)

    def transfer_sync(self, size, direction, label="dma", earliest=None):
        """Schedule a DMA and block until it completes."""
        completion = self.transfer(size, direction, label=label, earliest=earliest)
        completion.wait()
        return completion

    def drain(self):
        """Wait for all in-flight transfers in both directions."""
        for resource in self._resources.values():
            resource.drain()
        return self.clock.now

    def pending_until(self):
        """The timestamp when the last queued transfer will finish."""
        return max(r.available_at for r in self._resources.values())

    def effective_bandwidth(self, size, direction):
        """Measured-style effective bandwidth for one transfer of ``size``."""
        return self.spec.effective_bandwidth(
            size, d2h=direction is Direction.D2H
        )

    def reset_counters(self):
        self.bytes_moved = {Direction.H2D: 0, Direction.D2H: 0}
        self.transfer_count = {Direction.H2D: 0, Direction.D2H: 0}
        self.faulted_bytes = {Direction.H2D: 0, Direction.D2H: 0}
        self.faulted_count = {Direction.H2D: 0, Direction.D2H: 0}
        self.deferred_bytes = {Direction.H2D: 0, Direction.D2H: 0}
