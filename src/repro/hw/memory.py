"""Byte-accurate device memory with a real allocator.

The accelerator's on-board memory is a flat physical address space starting
at :data:`DEVICE_BASE`.  ``cudaMalloc`` allocates out of it with a
first-fit, coalescing free-list allocator (the classic design); each
allocation is backed lazily by its own zeroed numpy buffer, so a 1GB device
costs host RAM only for the bytes actually allocated.  Kernels obtain numpy
views directly into the backing buffers, so kernel numerics are exact while
allocation behaviour (address reuse, fragmentation, collisions with host
addresses in multi-GPU setups) stays realistic.
"""

import bisect

import numpy as np

from repro.util.buffers import as_byte_array
from repro.util.errors import AddressError, AllocationError
from repro.util.intervals import Interval

#: Device allocations start here.  On the paper's single-GPU testbed the
#: range returned by cudaMalloc happens to be free in the host address space
#: (outside the ELF sections), which is what makes the mmap-at-same-address
#: trick work; we model that by placing the device heap high.
DEVICE_BASE = 0x7F00_0000_0000


class _Allocation:
    __slots__ = ("interval", "buffer")

    def __init__(self, interval):
        self.interval = interval
        self.buffer = np.zeros(interval.size, dtype=np.uint8)


class DeviceMemory:
    """A device physical memory: free-list allocator + per-allocation bytes."""

    #: cudaMalloc-style allocations are page aligned, which is what lets
    #: GMAC mmap host memory at the exact device address (Section 4.2).
    DEFAULT_ALIGNMENT = 4096

    #: Observation hook: called (no arguments) before any byte-level access
    #: — ``read``/``write``/``fill``/``view`` — and before ``free`` drops an
    #: allocation's buffer.  The owning :class:`~repro.hw.gpu.Gpu` installs
    #: its numerics-materialization barrier here, so *every* path that can
    #: observe device bytes (driver copies, peer DMA, coherence fetches,
    #: kernel views, direct test access) flushes deferred kernels first.
    #: Allocator metadata operations (``alloc``/``alloc_at``) observe no
    #: bytes and do not fire the hook.
    on_observe = None

    def __init__(self, capacity, base=DEVICE_BASE, alignment=DEFAULT_ALIGNMENT):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if alignment <= 0 or (alignment & (alignment - 1)) != 0:
            raise ValueError(f"alignment must be a power of two, got {alignment}")
        self.capacity = capacity
        self.base = base
        self.alignment = alignment
        # Free list of address-ordered, disjoint, coalesced intervals.
        self._free = [Interval.sized(base, capacity)]
        self._alloc_starts = []   # sorted allocation start addresses
        self._allocations = {}    # start address -> _Allocation
        self.bytes_in_use = 0

    # -- allocation ---------------------------------------------------------

    def alloc(self, size):
        """First-fit allocation; returns the device address."""
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")
        padded = -(-size // self.alignment) * self.alignment
        for index, hole in enumerate(self._free):
            if hole.size >= padded:
                allocated = Interval.sized(hole.start, padded)
                remainder = Interval(allocated.end, hole.end)
                if remainder:
                    self._free[index] = remainder
                else:
                    self._free.pop(index)
                self._allocations[allocated.start] = _Allocation(allocated)
                bisect.insort(self._alloc_starts, allocated.start)
                self.bytes_in_use += padded
                return allocated.start
        raise AllocationError(
            f"device memory exhausted: {size} bytes requested, "
            f"{self.bytes_free} free (fragmented into {len(self._free)} holes)"
        )

    def alloc_at(self, address, size):
        """Allocate at an exact address (virtual-memory accelerators only).

        Section 4.2's collision-free path: with virtual memory on the
        accelerator, adsmAlloc picks one virtual range free on *both*
        processors and maps it on each.  Raises AllocationError when the
        range is not wholly inside a free hole.
        """
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")
        padded = -(-size // self.alignment) * self.alignment
        if address % self.alignment != 0:
            raise AllocationError(
                f"device address {address:#x} not {self.alignment}-aligned"
            )
        wanted = Interval.sized(address, padded)
        for index, hole in enumerate(self._free):
            if hole.contains_interval(wanted):
                before = Interval(hole.start, wanted.start)
                after = Interval(wanted.end, hole.end)
                replacement = [piece for piece in (before, after) if piece]
                self._free[index:index + 1] = replacement
                self._allocations[wanted.start] = _Allocation(wanted)
                bisect.insort(self._alloc_starts, wanted.start)
                self.bytes_in_use += padded
                return wanted.start
        raise AllocationError(
            f"device range [{address:#x}, +{padded:#x}) is not free"
        )

    def free_holes(self):
        """The current free intervals (used to search for common ranges)."""
        return list(self._free)

    def free(self, address):
        """Release an allocation, coalescing with free neighbours."""
        if self.on_observe is not None:
            # A deferred kernel may still have to write this allocation;
            # its bytes become unobservable once the buffer is dropped.
            self.on_observe()
        allocation = self._allocations.pop(address, None)
        if allocation is None:
            raise AllocationError(f"free of unallocated device address {address:#x}")
        self._alloc_starts.remove(address)
        self.bytes_in_use -= allocation.interval.size
        self._insert_free(allocation.interval)

    def _insert_free(self, interval):
        lo = bisect.bisect_left([hole.start for hole in self._free], interval.start)
        self._free.insert(lo, interval)
        # Coalesce with the next hole, then the previous one.
        if lo + 1 < len(self._free) and self._free[lo].end == self._free[lo + 1].start:
            merged = Interval(self._free[lo].start, self._free[lo + 1].end)
            self._free[lo:lo + 2] = [merged]
        if lo > 0 and self._free[lo - 1].end == self._free[lo].start:
            merged = Interval(self._free[lo - 1].start, self._free[lo].end)
            self._free[lo - 1:lo + 1] = [merged]

    @property
    def bytes_free(self):
        return sum(hole.size for hole in self._free)

    def allocation_at(self, address):
        """The Interval of the allocation containing ``address``, or None."""
        found = self._find(address)
        return found.interval if found is not None else None

    def _find(self, address):
        index = bisect.bisect_right(self._alloc_starts, address)
        if index == 0:
            return None
        allocation = self._allocations[self._alloc_starts[index - 1]]
        if allocation.interval.contains(address):
            return allocation
        return None

    def check_invariants(self):
        """Free list is sorted, disjoint, coalesced and complements allocs."""
        previous = None
        for hole in self._free:
            if previous is not None:
                if hole.start < previous.end:
                    raise AssertionError("free list overlaps")
                if hole.start == previous.end:
                    raise AssertionError("free list not coalesced")
            previous = hole
        total = self.bytes_free + sum(
            allocation.interval.size for allocation in self._allocations.values()
        )
        if total != self.capacity:
            raise AssertionError(
                f"allocator leaked: free+used={total}, capacity={self.capacity}"
            )

    # -- data access --------------------------------------------------------

    def _locate(self, address, size):
        allocation = self._find(address)
        if allocation is None or address + size > allocation.interval.end:
            raise AddressError(
                f"device access [{address:#x}, +{size:#x}) outside any allocation"
            )
        offset = address - allocation.interval.start
        return allocation.buffer, offset

    def read(self, address, size):
        """Copy ``size`` bytes out of device memory."""
        if self.on_observe is not None:
            self.on_observe()
        buffer, offset = self._locate(address, size)
        return bytes(buffer[offset:offset + size])  # sanitizer: allow[R002]

    def write(self, address, data):
        """Copy a bytes-like buffer into device memory (source not copied)."""
        if self.on_observe is not None:
            self.on_observe()
        data = as_byte_array(data)
        buffer, offset = self._locate(address, len(data))
        buffer[offset:offset + len(data)] = data

    def fill(self, address, value, size):
        """memset-style fill."""
        if self.on_observe is not None:
            self.on_observe()
        buffer, offset = self._locate(address, size)
        buffer[offset:offset + size] = value & 0xFF

    def view(self, address, dtype, count):
        """A writable numpy view into device memory (what kernels use)."""
        if self.on_observe is not None:
            self.on_observe()
        dtype = np.dtype(dtype)
        size = dtype.itemsize * count
        buffer, offset = self._locate(address, size)
        return buffer[offset:offset + size].view(dtype)
