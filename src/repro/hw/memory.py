"""Byte-accurate device memory with a real allocator, plus the transfer ledger.

The accelerator's on-board memory is a flat physical address space starting
at :data:`DEVICE_BASE`.  ``cudaMalloc`` allocates out of it with a
first-fit, coalescing free-list allocator (the classic design); each
allocation is backed lazily by its own zeroed numpy buffer, so a 1GB device
costs host RAM only for the bytes actually allocated.  Kernels obtain numpy
views directly into the backing buffers, so kernel numerics are exact while
allocation behaviour (address reuse, fragmentation, collisions with host
addresses in multi-GPU setups) stays realistic.

This module is also the home of the **transfer ledger** (DESIGN.md §14):
the only two host<->device byte-copy entry points in the repository are
:func:`copy_h2d` and :func:`copy_d2h` (lint rule R006 enforces this).  In
the default lazy mode a device->host transfer records a versioned extent
entry against the destination mapping instead of copying — the virtual
``Link`` cost is charged by the caller exactly as before — and the bytes
materialize only when the host range is actually observed.  Host->device
transfers stay eager (the device side has no fault hook) but copy only the
*delta*: host-dirty runs plus runs not known to already match the device.
Sources of outstanding entries are protected by copy-on-write, so the
ledger changes *when* bytes move, never *what* bytes are observed.
"""

import bisect
import itertools

import numpy as np

from repro.util.buffers import as_byte_array
from repro.util.errors import AddressError, AllocationError
from repro.util.intervals import Interval

#: Device allocations start here.  On the paper's single-GPU testbed the
#: range returned by cudaMalloc happens to be free in the host address space
#: (outside the ELF sections), which is what makes the mmap-at-same-address
#: trick work; we model that by placing the device heap high.
DEVICE_BASE = 0x7F00_0000_0000

#: Module-wide transfer-ledger counters (reported in BENCH_hotpath.json).
#: ``transfers_elided`` counts recorded transfers whose entry died whole
#: without ever being read; ``bytes_deferred`` counts bytes recorded instead
#: of copied at D2H time; ``bytes_materialized`` counts entry bytes that did
#: end up copied to the host; ``cow_snapshots`` counts entries snapshotted
#: because a device write overlapped their source; ``flush_bytes_copied`` /
#: ``flush_bytes_skipped`` split every deferred-mode H2D flush into the
#: delta that moved and the synced remainder that provably matched.
_LEDGER_COUNTERS = {
    "transfers_elided": 0,
    "bytes_deferred": 0,
    "bytes_materialized": 0,
    "cow_snapshots": 0,
    "flush_bytes_copied": 0,
    "flush_bytes_skipped": 0,
}

#: Monotonic version stamp for recorded transfer extents.
_VERSIONS = itertools.count(1)


def reset_ledger_counters():
    for key in _LEDGER_COUNTERS:
        _LEDGER_COUNTERS[key] = 0


def ledger_counters():
    """A snapshot of the ledger counters plus the derived elision ratio.

    ``elided_fraction`` is the share of bytes *offered* to the data plane
    (deferred D2H records + every byte a deferred flush considered) that
    never physically moved: ``1 - moved/offered`` where ``moved`` is
    materialized entry bytes plus flush delta bytes.
    """
    counters = dict(_LEDGER_COUNTERS)
    moved = counters["bytes_materialized"] + counters["flush_bytes_copied"]
    offered = (
        counters["bytes_deferred"]
        + counters["flush_bytes_copied"]
        + counters["flush_bytes_skipped"]
    )
    counters["elided_fraction"] = (
        max(0.0, 1.0 - moved / offered) if offered else 0.0
    )
    return counters


class RunSet:
    """Sorted, disjoint, half-open ``[lo, hi)`` integer runs.

    The ledger's bookkeeping primitive: host-dirty runs and
    synced-with-device runs are both RunSets over mapping offsets.  Stored
    as a flat sorted edge list (``[lo0, hi0, lo1, hi1, ...]``) where index
    parity distinguishes starts from ends, so every operation is a bisect
    plus one splice.  ``add`` coalesces touching runs.
    """

    __slots__ = ("_edges",)

    def __init__(self):
        self._edges = []

    def add(self, lo, hi):
        if hi <= lo:
            return
        edges = self._edges
        left = bisect.bisect_left(edges, lo)
        right = bisect.bisect_right(edges, hi)
        insert = []
        if left % 2 == 0:
            insert.append(lo)
        if right % 2 == 0:
            insert.append(hi)
        edges[left:right] = insert

    def discard(self, lo, hi):
        if hi <= lo:
            return
        edges = self._edges
        left = bisect.bisect_left(edges, lo)
        right = bisect.bisect_right(edges, hi)
        insert = []
        if left % 2 == 1:
            insert.append(lo)
        if right % 2 == 1:
            insert.append(hi)
        edges[left:right] = insert

    def runs_in(self, lo, hi):
        """Runs clipped to ``[lo, hi)`` as ``(run_lo, run_hi)`` pairs."""
        edges = self._edges
        out = []
        index = bisect.bisect_right(edges, lo)
        if index % 2 == 1:
            index -= 1
        while index < len(edges) and edges[index] < hi:
            run_lo = edges[index] if edges[index] > lo else lo
            run_hi = edges[index + 1] if edges[index + 1] < hi else hi
            if run_hi > run_lo:
                out.append((run_lo, run_hi))
            index += 2
        return out

    def clear(self):
        self._edges.clear()

    def __bool__(self):
        return bool(self._edges)

    def __iter__(self):
        edges = self._edges
        return iter(zip(edges[0::2], edges[1::2]))

    def total(self):
        return sum(hi - lo for lo, hi in self)


def _delta_runs(lo, hi, synced, dirty):
    """Runs inside ``[lo, hi)`` a deferred flush must write:
    ``(not synced) | dirty``."""
    need = RunSet()
    need.add(lo, hi)
    for run_lo, run_hi in synced.runs_in(lo, hi):
        need.discard(run_lo, run_hi)
    for run_lo, run_hi in dirty.runs_in(lo, hi):
        need.add(run_lo, run_hi)
    return need.runs_in(lo, hi)


class _LedgerEntry:
    """One recorded — not yet copied — device->host transfer extent.

    ``buffer``/``buf_offset`` name the source bytes: initially a direct
    reference into the device allocation's backing array (zero-copy), or a
    private snapshot after a copy-on-write.  Holding the numpy array object
    itself (never the owning DeviceMemory) makes entries immune to frees,
    device resets and migrations: the array stays alive for exactly as
    long as some entry still needs it.  ``deps`` points back at the source
    allocation's dependent list so entries created by a split can register
    themselves for COW; a snapshot clears it.
    """

    __slots__ = (
        "host_lo", "host_hi", "buffer", "buf_offset", "version", "dead",
        "deps",
    )

    def __init__(self, host_lo, host_hi, buffer, buf_offset, version, deps):
        self.host_lo = host_lo
        self.host_hi = host_hi
        self.buffer = buffer
        self.buf_offset = buf_offset
        self.version = version
        self.dead = False
        self.deps = deps


class MappingPlane:
    """Transfer-ledger state for one host mapping bound to a device range.

    Attached to :class:`~repro.os.address_space.Mapping` objects as
    ``mapping.plane`` by :func:`ledger_bind`; the host-side access layers
    call :meth:`host_read` / :meth:`host_write` duck-typed, so :mod:`repro.os`
    never imports :mod:`repro.hw`.
    """

    __slots__ = ("mapping", "entries", "dirty", "synced", "synced_token")

    def __init__(self, mapping):
        self.mapping = mapping
        #: Live entries, sorted by ``host_lo``, pairwise disjoint.
        self.entries = []
        #: Host-written runs not yet flushed to the device.
        self.dirty = RunSet()
        #: Runs whose device bytes equal the host's *logical* bytes
        #: (backing overlaid with entries) — a flush may skip them.
        self.synced = RunSet()
        #: ``synced`` is only meaningful against one device-memory
        #: incarnation; a ``Gpu.reset`` mints a new token and implicitly
        #: empties it (without retaining the dead DeviceMemory object).
        self.synced_token = None

    def sync_runs(self, token):
        """The synced RunSet, validated against incarnation ``token``."""
        if self.synced_token != token:
            self.synced.clear()
            self.synced_token = token
        return self.synced

    # -- host-side observation hooks ----------------------------------------

    def host_read(self, lo, size):
        """The host is about to observe ``[lo, lo+size)``: materialize any
        overlapping entries (whole — entries are block-sized and splitting
        on read would only re-copy the remainder later)."""
        entries = self.entries
        if not entries:
            return
        hi = lo + size
        keep = []
        backing = self.mapping.backing
        for entry in entries:
            if entry.host_hi <= lo or entry.host_lo >= hi:
                keep.append(entry)
                continue
            length = entry.host_hi - entry.host_lo
            backing[entry.host_lo:entry.host_hi] = entry.buffer[
                entry.buf_offset:entry.buf_offset + length
            ]
            _LEDGER_COUNTERS["bytes_materialized"] += length
            entry.dead = True
        if len(keep) != len(entries):
            self.entries = keep

    def host_write(self, lo, size):
        """The host is about to overwrite ``[lo, lo+size)``: overlapping
        entry portions die unread (their bytes were never needed) and the
        range joins the dirty set for the next delta flush."""
        hi = lo + size
        if self.entries:
            self._kill_range(lo, hi)
        self.dirty.add(lo, hi)

    # -- internals ----------------------------------------------------------

    def _overlapping(self, lo, hi):
        return [
            entry for entry in self.entries
            if entry.host_lo < hi and entry.host_hi > lo
        ]

    def _kill_range(self, lo, hi):
        """Destroy entry coverage of ``[lo, hi)`` without copying a byte.

        Partial overlaps split: the surviving head/tail keeps the source
        reference (adjusted offset) and re-registers with the source
        allocation's dependent list so later device writes still COW it.
        """
        entries = self.entries
        keep = []
        changed = False
        for entry in entries:
            e_lo = entry.host_lo
            e_hi = entry.host_hi
            if e_hi <= lo or e_lo >= hi:
                keep.append(entry)
                continue
            changed = True
            if lo <= e_lo and e_hi <= hi:
                entry.dead = True
                _LEDGER_COUNTERS["transfers_elided"] += 1
                continue
            if e_lo < lo and e_hi > hi:
                tail = _LedgerEntry(
                    hi, e_hi, entry.buffer,
                    entry.buf_offset + (hi - e_lo), entry.version, entry.deps,
                )
                if entry.deps is not None:
                    entry.deps.append(tail)
                entry.host_hi = lo
                keep.append(entry)
                keep.append(tail)
            elif e_lo < lo:
                entry.host_hi = lo
                keep.append(entry)
            else:
                entry.buf_offset += hi - e_lo
                entry.host_lo = hi
                keep.append(entry)
        if changed:
            self.entries = keep


class DevicePlane:
    """Transfer-ledger state for one device allocation."""

    __slots__ = ("dependents", "bindings")

    def __init__(self):
        #: Entries whose source bytes live in this allocation's buffer;
        #: a write into their range snapshots them (copy-on-write).
        self.dependents = []
        #: ``(alloc_lo, alloc_hi, MappingPlane, delta)`` — host mappings
        #: whose ``synced`` runs shadow this allocation; ``delta`` converts
        #: an allocation offset into a mapping offset.  A device write
        #: un-syncs the overlap so the next flush re-copies it.
        self.bindings = []


def _segments(lo, hi, entries):
    """Partition ``[lo, hi)`` into ``(seg_lo, seg_hi, entry-or-None)``
    pieces against a sorted, disjoint entry list."""
    out = []
    cursor = lo
    for entry in entries:
        if entry.host_hi <= lo:
            continue
        if entry.host_lo >= hi:
            break
        e_lo = entry.host_lo if entry.host_lo > cursor else cursor
        if e_lo > cursor:
            out.append((cursor, e_lo, None))
        e_hi = entry.host_hi if entry.host_hi < hi else hi
        if e_hi > e_lo:
            out.append((e_lo, e_hi, entry))
        if e_hi > cursor:
            cursor = e_hi
    if cursor < hi:
        out.append((cursor, hi, None))
    return out


class _Allocation:
    __slots__ = ("interval", "buffer", "plane")

    def __init__(self, interval):
        self.interval = interval
        self.buffer = np.zeros(interval.size, dtype=np.uint8)
        self.plane = None


class DeviceMemory:
    """A device physical memory: free-list allocator + per-allocation bytes."""

    #: cudaMalloc-style allocations are page aligned, which is what lets
    #: GMAC mmap host memory at the exact device address (Section 4.2).
    DEFAULT_ALIGNMENT = 4096

    #: Observation hook: called (no arguments) before any byte-level access
    #: — ``read``/``write``/``fill``/``view``/``expose`` — and before
    #: ``free`` drops an allocation's buffer.  The owning
    #: :class:`~repro.hw.gpu.Gpu` installs its numerics-materialization
    #: barrier here, so *every* path that can observe device bytes (driver
    #: copies, peer DMA, coherence fetches, kernel views, direct test
    #: access) flushes deferred kernels first.  Allocator metadata
    #: operations (``alloc``/``alloc_at``) observe no bytes and do not
    #: fire the hook.
    on_observe = None

    #: Incarnation tokens: a fresh DeviceMemory (initial attach or a
    #: ``Gpu.reset``) gets a new one, which is how mapping planes learn
    #: their ``synced`` knowledge went stale without holding a reference
    #: to the dead memory.
    _tokens = itertools.count(1)

    def __init__(self, capacity, base=DEVICE_BASE, alignment=DEFAULT_ALIGNMENT):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if alignment <= 0 or (alignment & (alignment - 1)) != 0:
            raise ValueError(f"alignment must be a power of two, got {alignment}")
        self.capacity = capacity
        self.base = base
        self.alignment = alignment
        self.token = next(DeviceMemory._tokens)
        # Free list of address-ordered, disjoint, coalesced intervals.
        self._free = [Interval.sized(base, capacity)]
        self._alloc_starts = []   # sorted allocation start addresses
        self._allocations = {}    # start address -> _Allocation
        self.bytes_in_use = 0

    # -- allocation ---------------------------------------------------------

    def alloc(self, size):
        """First-fit allocation; returns the device address."""
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")
        padded = -(-size // self.alignment) * self.alignment
        for index, hole in enumerate(self._free):
            if hole.size >= padded:
                allocated = Interval.sized(hole.start, padded)
                remainder = Interval(allocated.end, hole.end)
                if remainder:
                    self._free[index] = remainder
                else:
                    self._free.pop(index)
                self._allocations[allocated.start] = _Allocation(allocated)
                bisect.insort(self._alloc_starts, allocated.start)
                self.bytes_in_use += padded
                return allocated.start
        raise AllocationError(
            f"device memory exhausted: {size} bytes requested, "
            f"{self.bytes_free} free (fragmented into {len(self._free)} holes)"
        )

    def alloc_at(self, address, size):
        """Allocate at an exact address (virtual-memory accelerators only).

        Section 4.2's collision-free path: with virtual memory on the
        accelerator, adsmAlloc picks one virtual range free on *both*
        processors and maps it on each.  Raises AllocationError when the
        range is not wholly inside a free hole.
        """
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")
        padded = -(-size // self.alignment) * self.alignment
        if address % self.alignment != 0:
            raise AllocationError(
                f"device address {address:#x} not {self.alignment}-aligned"
            )
        wanted = Interval.sized(address, padded)
        for index, hole in enumerate(self._free):
            if hole.contains_interval(wanted):
                before = Interval(hole.start, wanted.start)
                after = Interval(wanted.end, hole.end)
                replacement = [piece for piece in (before, after) if piece]
                self._free[index:index + 1] = replacement
                self._allocations[wanted.start] = _Allocation(wanted)
                bisect.insort(self._alloc_starts, wanted.start)
                self.bytes_in_use += padded
                return wanted.start
        raise AllocationError(
            f"device range [{address:#x}, +{padded:#x}) is not free"
        )

    def free_holes(self):
        """The current free intervals (used to search for common ranges)."""
        return list(self._free)

    def free(self, address):
        """Release an allocation, coalescing with free neighbours.

        Outstanding ledger entries sourced here keep the backing *array*
        alive through their own references; only the allocator record is
        dropped.
        """
        if self.on_observe is not None:
            # A deferred kernel may still have to write this allocation;
            # its bytes become unobservable once the buffer is dropped.
            self.on_observe()
        allocation = self._allocations.pop(address, None)
        if allocation is None:
            raise AllocationError(f"free of unallocated device address {address:#x}")
        self._alloc_starts.remove(address)
        self.bytes_in_use -= allocation.interval.size
        self._insert_free(allocation.interval)

    def _insert_free(self, interval):
        lo = bisect.bisect_left([hole.start for hole in self._free], interval.start)
        self._free.insert(lo, interval)
        # Coalesce with the next hole, then the previous one.
        if lo + 1 < len(self._free) and self._free[lo].end == self._free[lo + 1].start:
            merged = Interval(self._free[lo].start, self._free[lo + 1].end)
            self._free[lo:lo + 2] = [merged]
        if lo > 0 and self._free[lo - 1].end == self._free[lo].start:
            merged = Interval(self._free[lo - 1].start, self._free[lo].end)
            self._free[lo - 1:lo + 1] = [merged]

    @property
    def bytes_free(self):
        return sum(hole.size for hole in self._free)

    def allocation_at(self, address):
        """The Interval of the allocation containing ``address``, or None."""
        found = self._find(address)
        return found.interval if found is not None else None

    def _find(self, address):
        index = bisect.bisect_right(self._alloc_starts, address)
        if index == 0:
            return None
        allocation = self._allocations[self._alloc_starts[index - 1]]
        if allocation.interval.contains(address):
            return allocation
        return None

    def check_invariants(self):
        """Free list is sorted, disjoint, coalesced and complements allocs."""
        previous = None
        for hole in self._free:
            if previous is not None:
                if hole.start < previous.end:
                    raise AssertionError("free list overlaps")
                if hole.start == previous.end:
                    raise AssertionError("free list not coalesced")
            previous = hole
        total = self.bytes_free + sum(
            allocation.interval.size for allocation in self._allocations.values()
        )
        if total != self.capacity:
            raise AssertionError(
                f"allocator leaked: free+used={total}, capacity={self.capacity}"
            )

    # -- data access --------------------------------------------------------

    def _locate(self, address, size):
        allocation = self._find(address)
        if allocation is None or address + size > allocation.interval.end:
            raise AddressError(
                f"device access [{address:#x}, +{size:#x}) outside any allocation"
            )
        return allocation, address - allocation.interval.start

    def expose(self, address, size):
        """Fire the observation barrier, then locate ``address``.

        The ledger's record/flush entry points go through this so deferred
        kernel numerics materialize at exactly the moments the eager
        engine's ``view`` calls used to force them — the event stream the
        model checker replays is identical in both transfer modes.
        """
        if self.on_observe is not None:
            self.on_observe()
        return self._locate(address, size)

    def _device_write(self, allocation, offset, size):
        """Pre-write hook for every device byte mutation.

        Copy-on-write: outstanding ledger entries sourced from the written
        range snapshot their bytes first.  Bound host mappings un-sync the
        overlap, so the next delta flush re-copies it.  Runs regardless of
        the numerics-replay flag — replayed kernel writes mutate real
        bytes just the same.
        """
        plane = allocation.plane
        if plane is None:
            return
        end = offset + size
        deps = plane.dependents
        if deps:
            buffer = allocation.buffer
            keep = []
            for entry in deps:
                if entry.dead or entry.buffer is not buffer:
                    continue
                e_lo = entry.buf_offset
                e_hi = e_lo + (entry.host_hi - entry.host_lo)
                if e_lo < end and e_hi > offset:
                    entry.buffer = buffer[e_lo:e_hi].copy()
                    entry.buf_offset = 0
                    entry.deps = None
                    _LEDGER_COUNTERS["cow_snapshots"] += 1
                    continue
                keep.append(entry)
            if len(keep) != len(deps):
                deps[:] = keep
        for bind_lo, bind_hi, mplane, delta in plane.bindings:
            if bind_lo < end and bind_hi > offset:
                run_lo = bind_lo if bind_lo > offset else offset
                run_hi = bind_hi if bind_hi < end else end
                mplane.sync_runs(self.token).discard(
                    run_lo + delta, run_hi + delta
                )

    def read(self, address, size):
        """Copy ``size`` bytes out of device memory."""
        if self.on_observe is not None:
            self.on_observe()
        allocation, offset = self._locate(address, size)
        return bytes(allocation.buffer[offset:offset + size])  # sanitizer: allow[R002]

    def write(self, address, data):
        """Copy a bytes-like buffer into device memory (source not copied)."""
        if self.on_observe is not None:
            self.on_observe()
        data = as_byte_array(data)
        allocation, offset = self._locate(address, len(data))
        self._device_write(allocation, offset, len(data))
        allocation.buffer[offset:offset + len(data)] = data

    def fill(self, address, value, size):
        """memset-style fill."""
        if self.on_observe is not None:
            self.on_observe()
        allocation, offset = self._locate(address, size)
        self._device_write(allocation, offset, size)
        allocation.buffer[offset:offset + size] = value & 0xFF

    def view(self, address, dtype, count):
        """A writable numpy view into device memory (what kernels use)."""
        if self.on_observe is not None:
            self.on_observe()
        dtype = np.dtype(dtype)
        size = dtype.itemsize * count
        allocation, offset = self._locate(address, size)
        # Views are writable and escape; treat as a write conservatively.
        self._device_write(allocation, offset, size)
        return allocation.buffer[offset:offset + size].view(dtype)


# -- transfer ledger entry points -------------------------------------------


def _ensure_binding(allocation, dplane, mplane, delta):
    """Register (idempotently) that ``mplane`` shadows this allocation.

    The binding spans the whole consistent overlap, so one record per
    (mapping, delta) pair covers every block of a region; rebinding is
    self-healing — a flush or record after a migration/recovery simply
    re-registers against the fresh allocation.
    """
    for binding in dplane.bindings:
        if binding[2] is mplane and binding[3] == delta:
            return
    alloc_size = allocation.interval.size
    lo = -delta if delta < 0 else 0
    hi = min(alloc_size, mplane.mapping.size - delta)
    if hi > lo:
        dplane.bindings.append((lo, hi, mplane, delta))


def _plane_for(mapping):
    plane = mapping.plane
    if plane is None:
        plane = mapping.plane = MappingPlane(mapping)
    return plane


def _insert_entry(plane, entry):
    entries = plane.entries
    index = len(entries)
    while index and entries[index - 1].host_lo > entry.host_lo:
        index -= 1
    entries.insert(index, entry)


def ledger_bind(memory, device_start, mapping, host_start, size, synced=False):
    """Associate ``[device_start, +size)`` with ``[host_start, +size)``.

    Called when a shared region is created (and, self-healingly, by every
    deferred record/flush).  ``synced=True`` asserts both sides currently
    hold identical bytes — true at allocation, where the device buffer and
    the fresh mmap are both zeros, which is what makes the *first* flush
    of an untouched block free.
    """
    allocation, dev_off = memory._locate(device_start, size)
    plane = _plane_for(mapping)
    dplane = allocation.plane
    if dplane is None:
        dplane = allocation.plane = DevicePlane()
    host_lo = host_start - mapping.start
    _ensure_binding(allocation, dplane, plane, host_lo - dev_off)
    if synced:
        plane.sync_runs(memory.token).add(host_lo, host_lo + size)


def ledger_unbind(memory, device_start, mapping):
    """Drop the device-side binding for ``mapping`` (region free)."""
    plane = mapping.plane
    if plane is None:
        return
    try:
        allocation, _ = memory._locate(device_start, 1)
    except AddressError:
        # Device side already gone (reset mid-free); nothing to unhook.
        return
    dplane = allocation.plane
    if dplane is not None and dplane.bindings:
        dplane.bindings = [
            binding for binding in dplane.bindings if binding[2] is not plane
        ]


def ledger_release(mapping):
    """Drop all ledger state for ``mapping`` (before munmap).

    Outstanding entries die unread — a freed region's host bytes are
    unobservable, so their transfers were fully elided.
    """
    plane = mapping.plane
    if plane is None:
        return
    for entry in plane.entries:
        entry.dead = True
        _LEDGER_COUNTERS["transfers_elided"] += 1
    mapping.plane = None


def discard_host_range(mapping, host_start, size):
    """Pre-fetch hint: the caller is about to overwrite this host range
    with device fetches, so outstanding entries (and the COW snapshots
    they would otherwise force during the fetch's numerics replay) are
    dead weight.  Kills entry coverage without copying a byte."""
    plane = mapping.plane
    if plane is None or not plane.entries:
        return
    lo = host_start - mapping.start
    plane._kill_range(lo, lo + size)


def copy_d2h(memory, device, mapping, host, size, deferred=False):
    """Device->host copy entry point (one of the only two; lint rule R006).

    Returns the number of bytes physically copied now — 0 for a recorded
    (deferred) transfer.  Callers charge the virtual link cost for the
    full ``size`` either way: the ledger changes when bytes move, never
    what the timeline sees.
    """
    lo = host - mapping.start
    hi = lo + size
    plane = mapping.plane
    if deferred and plane is not None:
        if plane.entries:
            # This fetch supersedes any older entries over the range.
            plane._kill_range(lo, hi)
        allocation, offset = memory.expose(device, size)
        dplane = allocation.plane
        if dplane is None:
            dplane = allocation.plane = DevicePlane()
        entry = _LedgerEntry(
            lo, hi, allocation.buffer, offset, next(_VERSIONS),
            dplane.dependents,
        )
        dplane.dependents.append(entry)
        _insert_entry(plane, entry)
        _ensure_binding(allocation, dplane, plane, lo - offset)
        # The recorded bytes *are* the device bytes: host-logical == device
        # over the range, and any host scribbles below it are moot now.
        plane.sync_runs(memory.token).add(lo, hi)
        plane.dirty.discard(lo, hi)
        _LEDGER_COUNTERS["bytes_deferred"] += size
        return 0
    allocation, offset = memory.expose(device, size)
    if plane is not None and plane.entries:
        plane._kill_range(lo, hi)
    mapping.backing[lo:hi] = allocation.buffer[offset:offset + size]
    if plane is not None:
        plane.sync_runs(memory.token).add(lo, hi)
        plane.dirty.discard(lo, hi)
    return size


def copy_h2d(memory, device, mapping, host, size, deferred=False):
    """Host->device copy entry point (one of the only two; lint rule R006).

    Always leaves the device holding the host's logical bytes — kernels
    have no fault hook, so flushes cannot defer — but in deferred mode
    only the *delta* moves: runs that are host-dirty or not known synced.
    Live same-source entry runs are skipped outright (the device already
    holds those very bytes).  Returns bytes physically copied.
    """
    lo = host - mapping.start
    hi = lo + size
    plane = mapping.plane
    allocation, offset = memory.expose(device, size)
    if not deferred or plane is None:
        if plane is not None and plane.entries:
            # Entries are part of the host-logical bytes; fold them into
            # the backing store before the whole-range copy below.
            plane.host_read(lo, size)
        memory._device_write(allocation, offset, size)
        allocation.buffer[offset:offset + size] = mapping.backing[lo:hi]
        if plane is not None:
            plane.sync_runs(memory.token).add(lo, hi)
            plane.dirty.discard(lo, hi)
        return size
    delta = lo - offset
    dplane = allocation.plane
    if dplane is None:
        dplane = allocation.plane = DevicePlane()
    _ensure_binding(allocation, dplane, plane, delta)
    synced = plane.sync_runs(memory.token)
    need = _delta_runs(lo, hi, synced, plane.dirty)
    copied = 0
    if need:
        buffer = allocation.buffer
        backing = mapping.backing
        entries = plane._overlapping(lo, hi)
        for run_lo, run_hi in need:
            for seg_lo, seg_hi, entry in _segments(run_lo, run_hi, entries):
                length = seg_hi - seg_lo
                if (entry is not None and entry.buffer is buffer
                        and entry.buf_offset - entry.host_lo == -delta):
                    # Live entry sourced from this very device range: the
                    # device already holds these logical bytes.
                    continue
                memory._device_write(allocation, seg_lo - delta, length)
                if entry is None:
                    buffer[seg_lo - delta:seg_hi - delta] = backing[
                        seg_lo:seg_hi
                    ]
                else:
                    e_off = entry.buf_offset + (seg_lo - entry.host_lo)
                    buffer[seg_lo - delta:seg_hi - delta] = entry.buffer[
                        e_off:e_off + length
                    ]
                copied += length
    synced.add(lo, hi)
    plane.dirty.discard(lo, hi)
    _LEDGER_COUNTERS["flush_bytes_copied"] += copied
    _LEDGER_COUNTERS["flush_bytes_skipped"] += size - copied
    return copied
