"""The CPU cost model.

Workloads run their control code in real Python but charge virtual time
for the work the *modelled* CPU would do: ``compute(instructions)`` for
arithmetic phases and ``touch(nbytes)`` for memory-streaming phases.  The
costs advance the shared clock directly, so CPU phases naturally overlap
with any in-flight asynchronous DMA or kernel execution.
"""

from repro.sim.tracing import Category


class Cpu:
    """A general-purpose CPU advancing the virtual clock."""

    def __init__(self, spec, clock, accounting=None):
        self.spec = spec
        self.clock = clock
        self.accounting = accounting
        self.instructions_retired = 0
        self.bytes_touched = 0

    def _charge(self, seconds, label):
        self.clock.advance(seconds)
        if self.accounting is not None:
            self.accounting.charge(Category.CPU, seconds, label=label)
        return seconds

    def compute(self, instructions, label="compute"):
        """Charge time for an arithmetic phase of ``instructions`` ops."""
        self.instructions_retired += instructions
        return self._charge(self.spec.compute_seconds(instructions), label)

    def touch(self, nbytes, label="touch"):
        """Charge time for streaming ``nbytes`` through the CPU."""
        self.bytes_touched += nbytes
        return self._charge(self.spec.touch_seconds(nbytes), label)

    def stream(self, nbytes, bytes_per_s, label="stream"):
        """Charge time for producing/consuming ``nbytes`` at a custom rate.

        Workloads with cache-resident inner loops (vector initialisation,
        element-wise post-processing) stream far faster than the spec's
        memory-touch rate; they model that with an explicit rate.
        """
        if bytes_per_s <= 0:
            raise ValueError(f"stream rate must be positive, got {bytes_per_s}")
        self.bytes_touched += nbytes
        return self._charge(nbytes / bytes_per_s, label)

    def busy(self, seconds, label="busy"):
        """Charge an explicit duration (e.g. a fixed-cost phase)."""
        if seconds < 0:
            raise ValueError(f"negative busy time {seconds}")
        return self._charge(seconds, label)
