"""The accelerator model.

A :class:`Gpu` owns its device memory and a single execution timeline
(kernels from one application serialize, as on the paper's G280).  Kernel
launches are asynchronous: the launch returns immediately with a
:class:`~repro.sim.resource.Completion` and the host pays the wait at
synchronization time — the behaviour `adsmSync`/`cudaThreadSynchronize`
relies on.

Asymmetry (the core ADSM premise) is enforced here: kernels receive numpy
views of *device* memory only; there is no path from device code to host
mappings.

**Deferred kernel numerics.**  Virtual time is charged per launch (in
:meth:`launch`, exactly as before), but the numpy evaluation of a kernel is
queued by :meth:`enqueue_numerics` and only replayed when something
observes device-memory *bytes* — the :class:`~repro.hw.memory.DeviceMemory`
``on_observe`` hook fires :meth:`materialize`.  Consecutive queued launches
of one kernel whose only differing arguments are in its ``batch_by`` set
are evaluated in a single ``batched_fn`` pass.  Because kernel functions
are pure functions of device bytes (they never touch the clock), deferral
cannot change any figure, trace, or chaos outcome; it only changes *when*
the host-side numpy work happens.  See DESIGN.md §9.
"""

import os

from repro.sim.resource import Resource
from repro.hw.memory import DeviceMemory

#: Process-wide default for deferral; ``REPRO_EAGER_KERNELS=1`` restores
#: the pre-deferral eager engine (used by the equivalence golden suite).
DEFAULT_DEFER_NUMERICS = os.environ.get("REPRO_EAGER_KERNELS", "0") != "1"

#: Process-wide default for the transfer ledger (DESIGN.md §14);
#: ``REPRO_EAGER_TRANSFERS=1`` restores eager byte-copying transfers
#: (used by the transfer-equivalence golden suite and the CI byte-identity
#: gate).  Engine configuration only — never part of a result cache key.
DEFAULT_DEFER_TRANSFERS = os.environ.get("REPRO_EAGER_TRANSFERS", "0") != "1"


class Gpu:
    """An accelerator: device memory + serialized execution engine."""

    def __init__(self, spec, clock, memory_base=None, trace=False,
                 defer_numerics=None, defer_transfers=None):
        self.spec = spec
        self.clock = clock
        if memory_base is None:
            memory = DeviceMemory(spec.memory_bytes)
        else:
            memory = DeviceMemory(spec.memory_bytes, base=memory_base)
        self._attach_memory(memory)
        self.engine = Resource(f"{spec.name} engine", clock, trace=trace)
        self.kernels_launched = 0
        if defer_numerics is None:
            defer_numerics = DEFAULT_DEFER_NUMERICS
        self.defer_numerics = defer_numerics
        if defer_transfers is None:
            defer_transfers = DEFAULT_DEFER_TRANSFERS
        #: Transfer-ledger mode: when True, D2H copies into bound shared
        #: mappings record ledger entries and H2D copies flush deltas
        #: (DESIGN.md §14).  When False every copy moves bytes eagerly and
        #: no plane is ever created, byte- and trace-identical to the
        #: pre-ledger engine.
        self.defer_transfers = defer_transfers
        #: Pending (kernel, args) numerics in launch order.
        self._queue = []
        #: True while replaying the queue (or running an eager kernel), so
        #: the kernel's own device views do not recursively re-materialize.
        self._replaying = False
        #: Throughput counters (see bench_hotpath's kernel_numerics block):
        #: launches whose numerics have executed, the subset that executed
        #: through a ``batched_fn``, and the number of materialization
        #: flush events.
        self.numerics_rounds = 0
        self.batched_rounds = 0
        self.numerics_flushes = 0

    #: Optional sanitizer hook, called (no arguments) whenever device bytes
    #: are observed outside a numerics replay — *before* materialization,
    #: so the kernel-window race detector sees the observation even if the
    #: materialization barrier itself were broken.  Lives on the Gpu (not
    #: the DeviceMemory) because device resets attach a fresh memory.
    observe_hook = None

    def _attach_memory(self, memory):
        """Install ``memory`` and wire its observation barrier to us."""
        memory.on_observe = self._memory_observed
        self.memory = memory

    def _memory_observed(self):
        if self._replaying:
            return
        if self.observe_hook is not None:
            self.observe_hook()
        self.materialize()

    def reset(self):
        """Device reset after a device-lost event.

        All on-board memory contents and allocations are gone; the caller
        (driver/recovery machinery) is responsible for replaying the
        allocations and re-materialising data from host-canonical state.
        The execution timeline survives — a reset does not rewrite history.

        Numerics queued before the loss replay against the *old* memory
        first: in the eager engine they had already executed at launch
        time, and recovery's host-canonical snapshot must not depend on
        the engine mode.
        """
        self.materialize()
        self._attach_memory(
            DeviceMemory(self.spec.memory_bytes, base=self.memory.base)
        )

    # -- numerics -----------------------------------------------------------

    @property
    def pending_numerics(self):
        """Number of launches whose numerics have not yet executed."""
        return len(self._queue)

    def enqueue_numerics(self, kernel, args):
        """Queue (or, in eager mode, run) one launch's numpy evaluation."""
        if self.defer_numerics:
            self._queue.append((kernel, args))
            return
        self._replaying = True
        try:
            kernel.execute(self, args)
        finally:
            self._replaying = False
        self.numerics_rounds += 1

    def materialize(self):
        """Replay all pending numerics, batching compatible runs."""
        if not self._queue:
            return
        queue, self._queue = self._queue, []
        self.numerics_flushes += 1
        self._replaying = True
        try:
            index, count = 0, len(queue)
            while index < count:
                kernel, args = queue[index]
                upto = index + 1
                if kernel.batched_fn is not None:
                    while (
                        upto < count
                        and queue[upto][0] is kernel
                        and kernel.batch_compatible(args, queue[upto][1])
                    ):
                        upto += 1
                    kernel.execute_batch(
                        self, [entry[1] for entry in queue[index:upto]]
                    )
                    self.batched_rounds += upto - index
                else:
                    kernel.execute(self, args)
                self.numerics_rounds += upto - index
                index = upto
        finally:
            self._replaying = False

    # -- timing -------------------------------------------------------------

    def launch(self, duration, label="kernel", earliest=None):
        """Schedule kernel execution time; returns a Completion."""
        self.kernels_launched += 1
        issue = self.spec.issue_overhead_s
        return self.engine.schedule(
            issue + duration, label=label, earliest=earliest
        )

    def kernel_seconds(self, work_units, bytes_touched=0):
        return self.spec.kernel_seconds(work_units, bytes_touched)

    def synchronize(self):
        """Block the host until all launched kernels have finished.

        Synchronization observes *completions* (virtual time), never device
        bytes, so it deliberately does **not** materialize pending
        numerics — that is what lets back-to-back launch/sync loops (pns)
        accumulate batchable queues.  Any actual byte access after the
        sync still flushes via the memory observation barrier.
        """
        return self.engine.drain()

    def view(self, address, dtype, count):
        """Device-memory numpy view handed to kernel functions."""
        return self.memory.view(address, dtype, count)
