"""The accelerator model.

A :class:`Gpu` owns its device memory and a single execution timeline
(kernels from one application serialize, as on the paper's G280).  Kernel
launches are asynchronous: the launch returns immediately with a
:class:`~repro.sim.resource.Completion` and the host pays the wait at
synchronization time — the behaviour `adsmSync`/`cudaThreadSynchronize`
relies on.

Asymmetry (the core ADSM premise) is enforced here: kernels receive numpy
views of *device* memory only; there is no path from device code to host
mappings.
"""

from repro.sim.resource import Resource
from repro.hw.memory import DeviceMemory


class Gpu:
    """An accelerator: device memory + serialized execution engine."""

    def __init__(self, spec, clock, memory_base=None, trace=False):
        self.spec = spec
        self.clock = clock
        if memory_base is None:
            self.memory = DeviceMemory(spec.memory_bytes)
        else:
            self.memory = DeviceMemory(spec.memory_bytes, base=memory_base)
        self.engine = Resource(f"{spec.name} engine", clock, trace=trace)
        self.kernels_launched = 0

    def reset(self):
        """Device reset after a device-lost event.

        All on-board memory contents and allocations are gone; the caller
        (driver/recovery machinery) is responsible for replaying the
        allocations and re-materialising data from host-canonical state.
        The execution timeline survives — a reset does not rewrite history.
        """
        self.memory = DeviceMemory(self.spec.memory_bytes,
                                   base=self.memory.base)

    def launch(self, duration, label="kernel", earliest=None):
        """Schedule kernel execution time; returns a Completion."""
        self.kernels_launched += 1
        issue = self.spec.issue_overhead_s
        return self.engine.schedule(
            issue + duration, label=label, earliest=earliest
        )

    def kernel_seconds(self, work_units, bytes_touched=0):
        return self.spec.kernel_seconds(work_units, bytes_touched)

    def synchronize(self):
        """Block the host until all launched kernels have finished."""
        return self.engine.drain()

    def view(self, address, dtype, count):
        """Device-memory numpy view handed to kernel functions."""
        return self.memory.view(address, dtype, count)
