"""The disk model.

File reads and writes serialize on a single disk timeline; durations come
from the :class:`~repro.hw.specs.DiskSpec` latency+bandwidth model.  The
simulated filesystem (:mod:`repro.os.filesystem`) charges its operations
here, which is what makes IORead/IOWrite visible in the Figure 10
break-down and makes large-block disk dumps cheaper per byte (the Figure 9
volume-dump effect).
"""

from repro.sim.resource import Resource


class Disk:
    """A single-spindle disk with a FIFO timeline."""

    def __init__(self, spec, clock, trace=False):
        self.spec = spec
        self.clock = clock
        self.resource = Resource(spec.name, clock, trace=trace)
        self.bytes_read = 0
        self.bytes_written = 0
        #: Fault-injection plan consulted by the filesystem (short reads);
        #: installed via :meth:`repro.hw.machine.Machine.install_faults`.
        self.faults = None

    def read(self, size, label="disk-read"):
        """Schedule and wait for a read of ``size`` bytes."""
        self.bytes_read += size
        return self.resource.execute(self.spec.read_seconds(size), label=label)

    def write(self, size, label="disk-write"):
        """Schedule and wait for a write of ``size`` bytes."""
        self.bytes_written += size
        return self.resource.execute(self.spec.write_seconds(size), label=label)
