"""Hardware models for the Figure 1 reference architecture.

The paper's testbed is a dual Opteron host with 8GB of RAM, an NVIDIA G280
with 1GB of GDDR attached over PCIe 2.0 x16, and a disk.  This package
models each piece with virtual-time cost models:

* :mod:`repro.hw.specs` -- named parameter presets (PCIe, HyperTransport,
  QPI, GTX280/GTX295, Opteron, a commodity disk),
* :mod:`repro.hw.memory` -- a byte-accurate device-memory store with a
  first-fit, coalescing free-list allocator,
* :mod:`repro.hw.interconnect` -- a latency+bandwidth link with independent
  per-direction timelines,
* :mod:`repro.hw.gpu` -- the accelerator: device memory plus an execution
  timeline,
* :mod:`repro.hw.cpu` -- CPU compute cost helpers,
* :mod:`repro.hw.disk` -- the disk timeline,
* :mod:`repro.hw.machine` -- assembly of the whole machine, including the
  integrated (shared-memory) variant discussed in Section 3.1.
"""

from repro.hw.specs import (
    LinkSpec,
    GpuSpec,
    CpuSpec,
    DiskSpec,
    PCIE_2_0_X16,
    HYPERTRANSPORT,
    QPI,
    GTX295_MEMORY,
    GTX280,
    OPTERON_2222,
    COMMODITY_DISK,
)
from repro.hw.memory import DeviceMemory
from repro.hw.interconnect import Link, Direction
from repro.hw.gpu import Gpu
from repro.hw.cpu import Cpu
from repro.hw.disk import Disk
from repro.hw.machine import Machine, reference_system, integrated_system

__all__ = [
    "LinkSpec",
    "GpuSpec",
    "CpuSpec",
    "DiskSpec",
    "PCIE_2_0_X16",
    "HYPERTRANSPORT",
    "QPI",
    "GTX295_MEMORY",
    "GTX280",
    "OPTERON_2222",
    "COMMODITY_DISK",
    "DeviceMemory",
    "Link",
    "Direction",
    "Gpu",
    "Cpu",
    "Disk",
    "Machine",
    "reference_system",
    "integrated_system",
]
